//! Cross-crate timing invariants: properties the paper's latency
//! arithmetic implies, checked over a grid of configurations and with
//! property-based workloads.

use padlock::core::{
    Machine, MachineConfig, SecureBackend, SecureBackendConfig, SecurityMode, SncConfig,
    SncOrganization, SncPolicy,
};
use padlock::cpu::{LineKind, MemoryBackend, StrideWorkload};
use padlock::crypto::CryptoUnitModel;
use proptest::prelude::*;

fn controller(mode: SecurityMode, crypto: u64) -> SecureBackend {
    let mut cfg = SecureBackendConfig::paper(mode);
    cfg.crypto = CryptoUnitModel::new(crypto, true, 1);
    cfg.mem_occupancy = 0;
    SecureBackend::new(cfg)
}

#[test]
fn otp_fast_path_is_max_plus_one_over_the_grid() {
    for mem_latency in [60u64, 100, 200] {
        for crypto in [25u64, 50, 102, 250] {
            let mut cfg = SecureBackendConfig::paper(SecurityMode::otp_lru_64k());
            cfg.crypto = CryptoUnitModel::new(crypto, true, 1);
            cfg.mem_latency = mem_latency;
            cfg.mem_occupancy = 0;
            let mut b = SecureBackend::new(cfg);
            let done = b.line_read(0, 0x4000, LineKind::Instruction);
            assert_eq!(
                done,
                mem_latency.max(crypto) + 1,
                "mem {mem_latency}, crypto {crypto}"
            );
        }
    }
}

#[test]
fn xom_path_is_serial_sum_over_the_grid() {
    for crypto in [25u64, 50, 102, 250] {
        let mut b = controller(SecurityMode::Xom, crypto);
        assert_eq!(b.line_read(0, 0x4000, LineKind::Data), 100 + crypto);
    }
}

#[test]
fn lru_query_miss_costs_sequence_fetch_then_overlapped_line_fetch() {
    // Algorithm 1: mem (seq) + crypto (decrypt) + max(mem, crypto) + 1.
    let mut b = controller(
        SecurityMode::Otp {
            snc: SncConfig {
                capacity_bytes: 2,
                entry_bytes: 2,
                organization: SncOrganization::FullyAssociative,
                policy: SncPolicy::Lru,
                covered_line_bytes: 128,
            },
        },
        50,
    );
    b.line_writeback(0, 0x8000);
    b.line_writeback(0, 0x9000); // evicts 0x8000's sequence number
    let done = b.line_read(10_000, 0x8000, LineKind::Data);
    assert_eq!(done - 10_000, 100 + 50 + 100 + 1);
}

/// Machine-level orderings on a common workload.
fn cycles(mode: SecurityMode, ws: u64) -> u64 {
    let mut machine = Machine::new(MachineConfig::paper(mode));
    let mut w = StrideWorkload::new(ws, 128, 0.3);
    machine.run(&mut w, 5_000, 20_000).stats.cycles
}

#[test]
fn security_never_speeds_up_and_otp_never_beats_baseline_by_design() {
    for ws in [64 << 10, 4 << 20, 32 << 20] {
        let base = cycles(SecurityMode::Insecure, ws);
        let otp = cycles(SecurityMode::otp_lru_64k(), ws);
        let xom = cycles(SecurityMode::Xom, ws);
        assert!(base <= otp, "ws {ws}: baseline {base} vs otp {otp}");
        assert!(otp <= xom, "ws {ws}: otp {otp} vs xom {xom}");
    }
}

#[test]
fn slow_crypto_hurts_xom_much_more_than_otp() {
    let ws = 32 << 20;
    let base = cycles(SecurityMode::Insecure, ws) as f64;
    let xom50 = cycles(SecurityMode::Xom, ws) as f64;
    let mut cfg = MachineConfig::paper(SecurityMode::Xom);
    cfg.security = cfg.security.with_slow_crypto();
    let xom102 = {
        let mut m = Machine::new(cfg);
        let mut w = StrideWorkload::new(ws, 128, 0.3);
        m.run(&mut w, 5_000, 20_000).stats.cycles as f64
    };
    let mut cfg = MachineConfig::paper(SecurityMode::otp_lru_64k());
    cfg.security = cfg.security.with_slow_crypto();
    let otp102 = {
        let mut m = Machine::new(cfg);
        let mut w = StrideWorkload::new(ws, 128, 0.3);
        m.run(&mut w, 5_000, 20_000).stats.cycles as f64
    };
    let xom_delta = (xom102 - xom50) / base;
    let otp102_over = (otp102 - base) / base;
    assert!(
        xom_delta > 0.05,
        "doubling crypto latency must visibly hurt XOM (delta {xom_delta})"
    );
    assert!(
        otp102_over < 0.10,
        "OTP must stay nearly insensitive (overhead {otp102_over})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random small workload shapes: the backend orderings hold for all.
    #[test]
    fn orderings_hold_for_random_workloads(
        ws_pow in 14u32..24,
        stride in prop::sample::select(vec![32u64, 64, 128, 256]),
        memfrac in 0.05f64..0.5,
    ) {
        let ws = 1u64 << ws_pow;
        let run = |mode: SecurityMode| {
            let mut machine = Machine::new(MachineConfig::paper(mode));
            let mut w = StrideWorkload::new(ws, stride, memfrac);
            machine.run(&mut w, 2_000, 8_000).stats.cycles
        };
        let base = run(SecurityMode::Insecure);
        let otp = run(SecurityMode::otp_lru_64k());
        let xom = run(SecurityMode::Xom);
        prop_assert!(base <= otp);
        prop_assert!(otp <= xom);
    }
}
