//! End-to-end integration: vendor → secure loader → VM, across
//! processors and under attack — the paper's threat model exercised
//! through the full public API.

use padlock::core::vendor::{LoadError, ProcessorIdentity, SecureLoader, SegmentKind, Vendor};
use padlock::core::{IntegrityMode, SeedScheme};
use padlock::crypto::CipherKind;
use padlock::isa::{assemble, Vm, VmError};
use rand::rngs::StdRng;
use rand::SeedableRng;

const GCD_SOURCE: &str = r#"
    addi r1, r0, 1071
    addi r2, r0, 462
gcd:
    beq  r2, r0, done
    ; r3 = r1 mod r2 by repeated subtraction
    add  r3, r1, r0
rem:
    slt  r5, r3, r2
    bne  r5, r0, swap
    sub  r3, r3, r2
    beq  r0, r0, rem
swap:
    add  r1, r2, r0
    add  r2, r3, r0
    beq  r0, r0, gcd
done:
    out  r1
    halt
"#;

fn build(rng: &mut StdRng) -> (ProcessorIdentity, padlock::core::vendor::SoftwarePackage) {
    let cpu = ProcessorIdentity::generate(1, rng);
    let program = assemble(GCD_SOURCE).expect("assembles");
    let package = Vendor::paper_default()
        .package(
            "gcd",
            &[
                (0x1000, SegmentKind::Code, program.encode()),
                (0x2_0000, SegmentKind::Data, vec![0u8; 256]),
            ],
            0x1000,
            cpu.public_key(),
            rng,
        )
        .expect("packages");
    (cpu, package)
}

#[test]
fn program_runs_on_its_target_processor() {
    let mut rng = StdRng::seed_from_u64(1);
    let (cpu, package) = build(&mut rng);
    let loaded = SecureLoader::new(IntegrityMode::Mac)
        .load(&package, &cpu)
        .expect("loads");
    let mut vm = Vm::new(loaded.memory, loaded.entry);
    vm.run(200_000).expect("runs to completion");
    assert_eq!(vm.output(), &[21], "gcd(1071, 462) = 21");
}

#[test]
fn program_refuses_to_run_on_another_processor() {
    let mut rng = StdRng::seed_from_u64(2);
    let (_, package) = build(&mut rng);
    let pirate = ProcessorIdentity::generate(99, &mut rng);
    let err = SecureLoader::new(IntegrityMode::Mac)
        .load(&package, &pirate)
        .expect_err("piracy must fail");
    assert!(
        matches!(
            err,
            LoadError::WrongProcessor
                | LoadError::BadKeyLength { .. }
                | LoadError::PackageTampered { .. }
        ),
        "unexpected error: {err}"
    );
}

#[test]
fn shipped_ciphertext_never_contains_the_plaintext() {
    let mut rng = StdRng::seed_from_u64(3);
    let (_, package) = build(&mut rng);
    let plain = assemble(GCD_SOURCE).unwrap().encode();
    let shipped = &package.segments[0].bytes;
    // No 8-byte window of the shipped code equals the plaintext's.
    for (i, window) in plain.windows(8).enumerate() {
        assert_ne!(&shipped[i..i + 8], window, "plaintext leaked at {i}");
    }
}

#[test]
fn tampering_with_running_memory_traps_the_vm() {
    let mut rng = StdRng::seed_from_u64(4);
    let (cpu, package) = build(&mut rng);
    let loaded = SecureLoader::new(IntegrityMode::Mac)
        .load(&package, &cpu)
        .expect("loads");
    let mut vm = Vm::new(loaded.memory, loaded.entry);
    // Run a little, then flip ciphertext bits under the program's feet.
    for _ in 0..10 {
        vm.step().expect("healthy prefix");
    }
    vm.memory_mut().attack_spoof(0x1000, &[0xAA; 32]);
    let err = vm.run(100_000).expect_err("tampering must trap");
    assert!(
        matches!(
            err,
            VmError::MemoryFault(_) | VmError::IllegalInstruction { .. }
        ),
        "unexpected error: {err}"
    );
}

#[test]
fn every_cipher_choice_supports_the_full_pipeline() {
    for (cipher, scheme) in [
        (CipherKind::Des, SeedScheme::PaperAdditive),
        (CipherKind::TripleDes, SeedScheme::PaperAdditive),
        (CipherKind::Aes128, SeedScheme::Structured),
    ] {
        let mut rng = StdRng::seed_from_u64(5);
        let cpu = ProcessorIdentity::generate(7, &mut rng);
        let program = assemble("addi r1, r0, 9\nout r1\nhalt").unwrap();
        let package = Vendor::new(cipher, scheme, 128)
            .package(
                "nine",
                &[(0x1000, SegmentKind::Code, program.encode())],
                0x1000,
                cpu.public_key(),
                &mut rng,
            )
            .expect("packages");
        let loaded = SecureLoader::new(IntegrityMode::MacTree)
            .load(&package, &cpu)
            .expect("loads");
        let mut vm = Vm::new(loaded.memory, loaded.entry);
        vm.run(100).expect("runs");
        assert_eq!(vm.output(), &[9], "cipher {cipher}");
    }
}
