//! Security-model integration tests spanning crypto, secure memory, and
//! compartments: the invariants an adversary-facing review would check.

use padlock::core::compartment::{CompartmentError, CompartmentManager, XomId};
use padlock::core::{
    AttackOutcome, IntegrityMode, LineProtection, SecureMemory, SeedScheme,
};
use padlock::crypto::CipherKind;
use proptest::prelude::*;

fn memory(integrity: IntegrityMode, scheme: SeedScheme) -> SecureMemory {
    let mut m = SecureMemory::new(CipherKind::Des, &[0x77u8; 16], scheme, 128, integrity);
    m.add_region("data", 0x1_0000, 0x4_0000, LineProtection::OtpDynamic)
        .unwrap();
    m
}

#[test]
fn attack_matrix_matches_the_papers_claims() {
    // (attack, integrity) -> expected outcome.
    let secret = vec![0xABu8; 128];
    for integrity in [IntegrityMode::None, IntegrityMode::Mac, IntegrityMode::MacTree] {
        // Spoofing.
        let mut m = memory(integrity, SeedScheme::PaperAdditive);
        m.write_line(0x1_0000, &secret).unwrap();
        m.attack_spoof(0x1_0000, &[0x5A; 128]);
        let outcome = m.probe_attack(0x1_0000, &secret);
        match integrity {
            IntegrityMode::None => assert_eq!(outcome, AttackOutcome::GarbagePlaintext),
            _ => assert_eq!(outcome, AttackOutcome::Detected),
        }

        // Replay of (data, mac, spilled sequence number).
        let mut m = memory(integrity, SeedScheme::PaperAdditive);
        m.write_line(0x1_0000, &secret).unwrap();
        let snap = m.attack_snapshot(0x1_0000);
        m.write_line(0x1_0000, &[0xCD; 128]).unwrap();
        m.attack_replay(&snap);
        let outcome = m.probe_attack(0x1_0000, &secret);
        match integrity {
            IntegrityMode::MacTree => assert_eq!(outcome, AttackOutcome::Detected),
            _ => assert_eq!(
                outcome,
                AttackOutcome::Undetected,
                "full replay defeats per-line MACs (paper defers to hash trees)"
            ),
        }
    }
}

#[test]
fn ciphertext_repetition_is_hidden_across_space_and_time() {
    // The paper's §3.4 motivation: repeated values must not produce
    // repeated ciphertext, either at different addresses or across
    // rewrites of the same address.
    let mut m = memory(IntegrityMode::None, SeedScheme::PaperAdditive);
    let value = vec![0u8; 128];
    m.write_line(0x1_0000, &value).unwrap();
    m.write_line(0x1_0080, &value).unwrap();
    let a = m.raw_ciphertext(0x1_0000, 128);
    let b = m.raw_ciphertext(0x1_0080, 128);
    assert_ne!(a, b, "spatial repetition leaked");
    m.write_line(0x1_0000, &value).unwrap();
    let a2 = m.raw_ciphertext(0x1_0000, 128);
    assert_ne!(a, a2, "temporal repetition leaked");
}

#[test]
fn compartment_walls_hold_across_interrupt_storms() {
    let mut cm = CompartmentManager::new();
    cm.register_compartment(XomId(1), [1u8; 16]);
    cm.register_compartment(XomId(2), [2u8; 16]);

    cm.enter(XomId(1)).unwrap();
    cm.write_reg(1, 111);
    let frame1 = cm.interrupt().unwrap();

    // The OS schedules compartment 2.
    cm.enter(XomId(2)).unwrap();
    cm.write_reg(1, 222);
    let frame2 = cm.interrupt().unwrap();

    // Frames restore their own compartments only.
    cm.resume(&frame1).unwrap();
    assert_eq!(cm.active(), XomId(1));
    assert_eq!(cm.read_reg(1).unwrap(), 111);
    let frame1b = cm.interrupt().unwrap();

    cm.resume(&frame2).unwrap();
    assert_eq!(cm.read_reg(1).unwrap(), 222);

    // Compartment 2 cannot read a register tagged by compartment 1.
    cm.resume(&frame1b).unwrap();
    cm.write_reg(3, 333);
    cm.enter(XomId(2)).unwrap();
    assert!(matches!(
        cm.read_reg(3),
        Err(CompartmentError::RegisterViolation { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever bytes a program writes, it reads them back exactly, and
    /// the off-chip image never shows them, under every scheme/integrity
    /// combination.
    #[test]
    fn write_read_roundtrip_and_confidentiality(
        payload in proptest::collection::vec(any::<u8>(), 128),
        line in 0u64..64,
        scheme in prop::sample::select(vec![SeedScheme::PaperAdditive, SeedScheme::Structured]),
        integrity in prop::sample::select(vec![
            IntegrityMode::None, IntegrityMode::Mac, IntegrityMode::MacTree]),
        rewrites in 1usize..4,
    ) {
        let addr = 0x1_0000 + line * 128;
        let mut m = memory(integrity, scheme);
        for _ in 0..rewrites {
            m.write_line(addr, &payload).unwrap();
        }
        prop_assert_eq!(m.read_line(addr).unwrap(), payload.clone());
        // Confidentiality: nonzero payloads must not appear verbatim.
        if payload.iter().any(|&b| b != 0) {
            prop_assert_ne!(m.raw_ciphertext(addr, 128), payload);
        }
    }

    /// Byte-granular RMW across arbitrary offsets is consistent.
    #[test]
    fn byte_granular_rmw_is_consistent(
        data in proptest::collection::vec(any::<u8>(), 1..300),
        offset in 0u64..512,
    ) {
        let mut m = memory(IntegrityMode::Mac, SeedScheme::PaperAdditive);
        let addr = 0x1_0000 + offset;
        m.write_bytes(addr, &data).unwrap();
        prop_assert_eq!(m.read_bytes(addr, data.len()).unwrap(), data);
    }
}
