//! Smoke-scale regression tests on the *shape* of every figure: who
//! wins, by roughly what factor, and where the crossovers fall. These
//! run the real experiment harness at its smallest scale, so they guard
//! the whole reproduction pipeline without taking minutes.

use padlock_bench::{Lab, RunScale};

fn lab() -> Lab {
    Lab::new(RunScale::Smoke)
}

#[test]
fn figure3_xom_hurts_memory_bound_benchmarks_most() {
    let mut lab = lab();
    let fig = lab.figure3();
    let xom = &fig.series[0];
    let by_name = |n: &str| {
        let i = fig.rows.iter().position(|r| r == n).unwrap();
        xom.measured[i]
    };
    // Memory-bound benchmarks lose far more than cache-resident ones.
    // (Smoke windows are short, so assertions are relative: mesa and
    // gzip must sit well below the memory-bound group.)
    assert!(by_name("mcf") > 10.0, "mcf {}", by_name("mcf"));
    assert!(by_name("art") > 10.0, "art {}", by_name("art"));
    assert!(by_name("mesa") < by_name("mcf") / 2.0, "mesa {}", by_name("mesa"));
    assert!(by_name("gzip") < by_name("art") / 2.0, "gzip {}", by_name("gzip"));
    assert!(xom.measured_avg() > 5.0);
}

#[test]
fn figure5_ordering_xom_worse_than_norepl_worse_than_lru() {
    let mut lab = lab();
    let fig = lab.figure5();
    let avg: Vec<f64> = fig.series.iter().map(|s| s.measured_avg()).collect();
    let (xom, norepl, lru) = (avg[0], avg[1], avg[2]);
    assert!(xom > norepl, "XOM {xom} must exceed no-repl {norepl}");
    // At smoke scale the no-replacement SNC has not yet filled, so the
    // no-repl/LRU gap (clear at quick/full scale, see EXPERIMENTS.md)
    // only needs to be non-inverted here.
    assert!(
        norepl > lru - 0.5,
        "no-repl {norepl} must not beat LRU {lru} meaningfully"
    );
    // The headline: LRU recovers the large majority of XOM's loss.
    assert!(lru < xom / 3.0, "LRU {lru} vs XOM {xom}");
}

#[test]
fn figure6_larger_sncs_help_monotonically_on_average() {
    let mut lab = lab();
    let fig = lab.figure6();
    let avg: Vec<f64> = fig.series.iter().map(|s| s.measured_avg()).collect();
    assert!(avg[0] >= avg[1], "32KB {} vs 64KB {}", avg[0], avg[1]);
    assert!(avg[1] >= avg[2], "64KB {} vs 128KB {}", avg[1], avg[2]);
}

#[test]
fn figure7_thirty_two_ways_suffice_except_for_ammp() {
    let mut lab = lab();
    let fig = lab.figure7();
    let full = &fig.series[0];
    let way32 = &fig.series[1];
    let ammp = fig.rows.iter().position(|r| r == "ammp").unwrap();
    for i in 0..fig.rows.len() {
        if i == ammp {
            continue;
        }
        let delta = (way32.measured[i] - full.measured[i]).abs();
        assert!(
            delta < 2.0,
            "{}: 32-way {} vs full {}",
            fig.rows[i],
            way32.measured[i],
            full.measured[i]
        );
    }
    // ammp's 32-way degradation (paper: 2.76% -> 9.62%) needs the SNC
    // near capacity, which smoke windows cannot reach; here we only
    // require that ammp is not *better* under 32 ways by more than
    // noise. The full effect is recorded in EXPERIMENTS.md.
    assert!(
        way32.measured[ammp] > full.measured[ammp] - 1.0,
        "ammp 32-way {} vs fully associative {}",
        way32.measured[ammp],
        full.measured[ammp]
    );
}

#[test]
fn figure8_snc_beats_equal_area_bigger_l2() {
    let mut lab = lab();
    let fig = lab.figure8();
    let avg: Vec<f64> = fig.series.iter().map(|s| s.measured_avg()).collect();
    let (xom256, xom384, snc) = (avg[0], avg[1], avg[2]);
    assert!(xom384 < xom256, "a bigger L2 helps XOM a little");
    assert!(
        snc < xom384 - 0.02,
        "spending the area on an SNC ({snc}) must beat a bigger L2 ({xom384})"
    );
    // The area model itself agrees the comparison is fair.
    let (combo, mid, big) = padlock::area::paper_fig8_areas();
    assert!(mid < combo && combo < big);
}

#[test]
fn figure9_snc_traffic_is_a_small_fraction() {
    let mut lab = lab();
    let fig = lab.figure9();
    let avg = fig.series[0].measured_avg();
    assert!(avg < 5.0, "SNC-induced traffic {avg}% must stay small");
}

#[test]
fn figure10_lru_is_insensitive_to_crypto_latency() {
    let mut lab = lab();
    let f5 = lab.figure5();
    let f10 = lab.figure10();
    let xom_50 = f5.series[0].measured_avg();
    let xom_102 = f10.series[0].measured_avg();
    let lru_50 = f5.series[2].measured_avg();
    let lru_102 = f10.series[2].measured_avg();
    assert!(
        xom_102 > xom_50 * 1.5,
        "XOM degrades with crypto latency: {xom_50} -> {xom_102}"
    );
    assert!(
        lru_102 < lru_50 + 3.0,
        "LRU stays nearly flat: {lru_50} -> {lru_102}"
    );
}
