//! Property-based tests on the miss-completion calendar: for
//! *arbitrary* access streams the hierarchy's announced
//! [`Hierarchy::next_completion`] must be an exact minimum (advancing
//! the clock to just below it never drops or reorders anything — the
//! event-driven core's time jump can never skip over an earlier
//! completion), eagerly issued singleton misses must resolve with
//! the same cycles, in the same order, as one batched drain, and
//! speculative singleton-window issue over a *non*-eager-safe
//! (FR-FCFS banked) backend must be indistinguishable from parked
//! drains except for its own three counters — even on deep windows
//! where most batches couple and replay.

use padlock_cpu::{
    Access, AccessToken, Core, Hierarchy, HierarchyConfig, InsecureBackend, LineKind,
    MemoryBackend, MicroOp, OpClass, PipelineConfig, Workload,
};
use proptest::prelude::*;

const LINE: u64 = 128;

/// A hierarchy with scheduled (eager) miss completions over the flat
/// insecure backend — the configuration whose calendar feeds the
/// fast-forward core's time jumps.
fn eager_hierarchy(mshrs: usize, channels: usize, banks: usize) -> Hierarchy<InsecureBackend> {
    let backend = InsecureBackend::new(100, 8)
        .with_channels(channels)
        .with_banks(banks);
    assert!(backend.eager_issue_safe(), "FIFO insecure backend is eager-safe");
    Hierarchy::new(
        HierarchyConfig::paper_default()
            .with_l2_mshrs(mshrs)
            .with_eager_completions(true),
        backend,
    )
}

/// A hierarchy that accumulates misses and drains them in batches —
/// the pre-calendar behaviour the eager path must stay bit-exact with.
fn batched_hierarchy(mshrs: usize, channels: usize, banks: usize) -> Hierarchy<InsecureBackend> {
    Hierarchy::new(
        HierarchyConfig::paper_default().with_l2_mshrs(mshrs),
        InsecureBackend::new(100, 8)
            .with_channels(channels)
            .with_banks(banks),
    )
}

/// One step of an arbitrary access stream: a clock increment, a line
/// index into a 512KB footprint (beyond the 256KB L2, so lines evict
/// and re-miss), and the access kind.
fn step_strategy() -> impl Strategy<Value = (u64, u64, bool)> {
    (0u64..220, 0u64..4_096, any::<bool>())
}

/// Completion cycle of one non-blocking access on an *eager* hierarchy:
/// fresh misses resolve at allocation and merges queue their resolution
/// immediately, so `resolve` never has to force a drain here.
fn eager_done(h: &mut Hierarchy<InsecureBackend>, now: u64, addr: u64, is_store: bool) -> u64 {
    match h.data_access_nb(now, addr, is_store) {
        Access::Ready(done) => done,
        Access::Pending(token) => h.resolve(token),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `next_completion` is an exact minimum: retiring the calendar at
    /// one cycle *below* the announced next completion is a no-op. A
    /// twin hierarchy that performs that jump before every access stays
    /// in lockstep with an unperturbed one — same completion cycle for
    /// every access, same counters — so an event-driven core advancing
    /// its clock to `next_completion()` can never jump past (and lose)
    /// an earlier completion.
    #[test]
    fn advancing_to_the_announced_completion_skips_no_event(
        stream in proptest::collection::vec(step_strategy(), 1..200),
        mshrs in 2usize..9,
        channels in 1usize..3,
        banks in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let mut plain = eager_hierarchy(mshrs, channels, banks);
        let mut jumpy = eager_hierarchy(mshrs, channels, banks);
        let mut now = 0u64;
        for &(dt, idx, is_store) in &stream {
            now += dt;
            if let Some(c) = jumpy.next_completion() {
                jumpy.retire_completed(c.saturating_sub(1));
                prop_assert_eq!(
                    jumpy.next_completion(),
                    Some(c),
                    "an event earlier than the announced minimum {} was dropped",
                    c
                );
            }
            let addr = 0x10_0000 + idx * LINE;
            let a = eager_done(&mut plain, now, addr, is_store);
            let b = eager_done(&mut jumpy, now, addr, is_store);
            prop_assert!(a >= now, "completion {} before the access at {}", a, now);
            prop_assert_eq!(a, b, "the sub-completion jump changed a latency");
        }
        prop_assert_eq!(plain.next_completion(), jumpy.next_completion());
        prop_assert_eq!(
            format!("{:?}", plain.mshr_stats()),
            format!("{:?}", jumpy.mshr_stats())
        );
    }

    /// The eager-issue contract at the backend: issuing each miss as a
    /// singleton batch at its own arrival returns the same completion
    /// cycles — and therefore the same resolution order — as one
    /// batched drain of the whole set, whenever the backend declares
    /// `eager_issue_safe`. (FR-FCFS and multi-inflight windows refuse
    /// the declaration precisely because this would not hold.)
    #[test]
    fn eager_singleton_issue_matches_batched_drain(
        gaps in proptest::collection::vec((0u64..150, 0u64..1 << 16), 1..64),
        channels in 1usize..3,
        banks in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let make = || {
            InsecureBackend::new(100, 8)
                .with_channels(channels)
                .with_banks(banks)
        };
        let mut batched = make();
        let mut eager = make();
        prop_assume!(batched.eager_issue_safe());

        let mut at = 0u64;
        let reqs: Vec<(u64, u64, LineKind)> = gaps
            .iter()
            .map(|&(dt, idx)| {
                at += dt;
                (at, idx * LINE, LineKind::Data)
            })
            .collect();
        let as_batch = batched.line_read_batch_at(&reqs);
        let as_singletons: Vec<u64> = reqs
            .iter()
            .map(|&req| {
                *eager
                    .line_read_batch_at(&[req])
                    .first()
                    .expect("one completion per request")
            })
            .collect();
        prop_assert_eq!(&as_batch, &as_singletons, "completion cycles diverged");

        // Same cycles in the same positions means the same resolution
        // order; assert the order explicitly all the same.
        let order = |dones: &[u64]| {
            let mut ix: Vec<usize> = (0..dones.len()).collect();
            ix.sort_by_key(|&i| (dones[i], i));
            ix
        };
        prop_assert_eq!(order(&as_batch), order(&as_singletons));
        prop_assert_eq!(
            format!("{:?}", batched.traffic()),
            format!("{:?}", eager.traffic())
        );
    }

    /// The same contract one layer up, through the MSHR file: a stream
    /// of distinct-line misses resolves with identical completion
    /// cycles whether the hierarchy schedules each miss eagerly or
    /// parks it for batched drains — and the batched file delivers its
    /// resolutions in issue order, matching the order the eager file
    /// handed them out.
    #[test]
    fn eager_and_batched_hierarchies_resolve_identically(
        gaps in proptest::collection::vec((0u64..220, 1u64..40), 1..120),
        mshrs in 2usize..9,
        channels in 1usize..3,
    ) {
        let mut eager = eager_hierarchy(mshrs, channels, 1);
        let mut batched = batched_hierarchy(mshrs, channels, 1);

        let mut now = 0u64;
        let mut idx = 0u64; // strictly increasing: every access a fresh line
        let mut eager_dones: Vec<u64> = Vec::new();
        let mut batched_dones: Vec<Option<u64>> = Vec::new();
        let mut waiting: Vec<(usize, AccessToken)> = Vec::new();
        let mut resolved: Vec<(AccessToken, u64)> = Vec::new();
        for &(dt, stride) in &gaps {
            now += dt;
            idx += stride;
            let addr = 0x10_0000 + idx * LINE;
            eager_dones.push(eager_done(&mut eager, now, addr, false));
            match batched.data_access_nb(now, addr, false) {
                Access::Ready(done) => batched_dones.push(Some(done)),
                Access::Pending(token) => {
                    waiting.push((batched_dones.len(), token));
                    batched_dones.push(None);
                }
            }
        }
        batched.drain_pending();
        batched.take_resolutions(&mut resolved);
        prop_assert_eq!(resolved.len(), waiting.len());
        // Accumulated across every drain, resolutions arrive in issue
        // order — the order the eager hierarchy resolved them in.
        for (&(slot, expected_token), &(token, done)) in waiting.iter().zip(&resolved) {
            prop_assert_eq!(expected_token, token, "batched drain reordered resolutions");
            batched_dones[slot] = Some(done);
        }
        let batched_dones: Vec<u64> = batched_dones
            .into_iter()
            .map(|d| d.expect("every access resolved"))
            .collect();
        prop_assert_eq!(eager_dones, batched_dones);
    }

    /// Deep-window speculation is invisible: with
    /// `speculative_completions` on over a backend that is *not*
    /// `eager_issue_safe` (FR-FCFS over banks, where overlapping
    /// window members couple), an arbitrary access stream resolves
    /// with the same hit/miss classification, the same completion
    /// cycle for every access, and the same resolution order as the
    /// parked machine. Only the three speculation counters may
    /// differ — and the parked side must never touch them.
    #[test]
    fn speculative_hierarchy_is_indistinguishable_from_the_parked_one(
        stream in proptest::collection::vec(step_strategy(), 1..120),
        mshrs in 2usize..9,
        channels in 1usize..3,
        banks in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let make = |speculative: bool| {
            let backend = InsecureBackend::new(100, 8)
                .with_channels(channels)
                .with_banks(banks)
                .with_drain_order(padlock_mem::DrainOrder::RowFirst);
            assert!(!backend.eager_issue_safe(), "FR-FCFS windows couple");
            Hierarchy::new(
                HierarchyConfig::paper_default()
                    .with_l2_mshrs(mshrs)
                    .with_speculative_completions(speculative),
                backend,
            )
        };
        let mut spec = make(true);
        let mut parked = make(false);
        let mut spec_waiting: Vec<AccessToken> = Vec::new();
        let mut parked_waiting: Vec<AccessToken> = Vec::new();
        let mut now = 0u64;
        for &(dt, idx, is_store) in &stream {
            now += dt;
            let addr = 0x10_0000 + idx * LINE;
            match (
                spec.data_access_nb(now, addr, is_store),
                parked.data_access_nb(now, addr, is_store),
            ) {
                (Access::Ready(a), Access::Ready(b)) => {
                    prop_assert_eq!(a, b, "ready completion cycles diverged");
                }
                (Access::Pending(a), Access::Pending(b)) => {
                    spec_waiting.push(a);
                    parked_waiting.push(b);
                }
                _ => prop_assert!(false, "hit/miss classification diverged"),
            }
        }
        spec.drain_pending();
        parked.drain_pending();
        let mut spec_resolved: Vec<(AccessToken, u64)> = Vec::new();
        let mut parked_resolved: Vec<(AccessToken, u64)> = Vec::new();
        spec.take_resolutions(&mut spec_resolved);
        parked.take_resolutions(&mut parked_resolved);
        prop_assert_eq!(spec_resolved.len(), spec_waiting.len());
        prop_assert_eq!(parked_resolved.len(), parked_waiting.len());
        for (i, (&(st, sd), &(pt, pd))) in
            spec_resolved.iter().zip(&parked_resolved).enumerate()
        {
            prop_assert_eq!(st, spec_waiting[i], "speculative side reordered");
            prop_assert_eq!(pt, parked_waiting[i], "parked side reordered");
            prop_assert_eq!(sd, pd, "pending completion cycles diverged");
        }
        // Counters: identical except the speculation-only three; the
        // first cold miss always speculates (the backend is idle), so
        // the mechanism provably engaged.
        let spec_only = [
            "speculative_issues",
            "window_replays",
            "replay_patched_completions",
        ];
        for (name, v) in parked.mshr_stats().iter() {
            prop_assert!(!spec_only.contains(&name), "parked run counted {}", name);
            prop_assert_eq!(spec.mshr_stats().get(name), v, "MSHR counter {}", name);
        }
        for (name, v) in spec.mshr_stats().iter() {
            if spec_only.contains(&name) {
                continue;
            }
            prop_assert_eq!(parked.mshr_stats().get(name), v, "MSHR counter {}", name);
        }
        prop_assert!(spec.mshr_stats().get("speculative_issues") > 0);
        prop_assert_eq!(
            format!("{:?}", spec.backend().traffic()),
            format!("{:?}", parked.backend().traffic()),
            "backend traffic diverged"
        );
    }
}

/// A workload replaying an arbitrary generated op vector in a loop.
#[derive(Debug, Clone)]
struct Arbitrary {
    ops: Vec<MicroOp>,
    i: usize,
}

impl Workload for Arbitrary {
    fn next_op(&mut self) -> MicroOp {
        let op = self.ops[self.i % self.ops.len()];
        self.i += 1;
        op
    }
    fn name(&self) -> &str {
        "arbitrary"
    }
}

fn op_strategy() -> impl Strategy<Value = MicroOp> {
    let class = prop_oneof![
        Just(OpClass::IntAlu),
        Just(OpClass::FpMul),
        (0u64..1 << 26).prop_map(|a| OpClass::Load(a * 8)),
        (0u64..1 << 26).prop_map(|a| OpClass::Store(a * 8)),
        any::<bool>().prop_map(|taken| OpClass::Branch { taken }),
    ];
    (class, 0u64..1 << 20, 0u16..32, 0u16..32).prop_map(|(class, pc, d1, d2)| {
        MicroOp::new(0x1000 + pc * 4, class).with_deps(d1, d2)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The pipeline's event calendar is complete for arbitrary op
    /// streams: the run loop never has to fall back to a forced +1
    /// step, with misses parked for batched drains, scheduled eagerly
    /// at allocation, *or* issued speculatively over a non-eager-safe
    /// FR-FCFS banked backend (where coupled windows abort and replay
    /// mid-stream).
    #[test]
    fn run_loop_never_forces_a_step(
        ops in proptest::collection::vec(op_strategy(), 1..64),
        eager in any::<bool>(),
        speculative in any::<bool>(),
        mshrs in 1usize..9,
    ) {
        let backend = if speculative {
            // The regime speculation exists for: windows couple, so
            // eager issue is unsafe and replays actually happen.
            InsecureBackend::new(100, 8)
                .with_banks(4)
                .with_drain_order(padlock_mem::DrainOrder::RowFirst)
        } else {
            InsecureBackend::new(100, 8)
        };
        let hierarchy = Hierarchy::new(
            HierarchyConfig::paper_default()
                .with_l2_mshrs(mshrs)
                .with_eager_completions(eager && !speculative)
                .with_speculative_completions(speculative),
            backend,
        );
        let mut core = Core::with_hierarchy(PipelineConfig::paper_default(), hierarchy);
        let stats = core.run(&mut Arbitrary { ops, i: 0 }, 3_000);
        prop_assert_eq!(stats.instructions, 3_000);
        prop_assert_eq!(stats.forced_steps, 0, "the calendar ran dry mid-stream");
    }
}
