//! Property-based tests on the out-of-order engine: for *arbitrary*
//! op streams the pipeline must terminate, commit exactly what was
//! asked, be deterministic, and respect basic cost bounds.

use padlock_cpu::{Core, InsecureBackend, MicroOp, OpClass, PipelineConfig, Workload};
use proptest::prelude::*;

/// A workload replaying an arbitrary generated op vector in a loop.
#[derive(Debug, Clone)]
struct Arbitrary {
    ops: Vec<MicroOp>,
    i: usize,
}

impl Workload for Arbitrary {
    fn next_op(&mut self) -> MicroOp {
        let op = self.ops[self.i % self.ops.len()];
        self.i += 1;
        op
    }
    fn name(&self) -> &str {
        "arbitrary"
    }
}

fn op_strategy() -> impl Strategy<Value = MicroOp> {
    let class = prop_oneof![
        Just(OpClass::IntAlu),
        Just(OpClass::IntMul),
        Just(OpClass::FpAlu),
        Just(OpClass::FpMul),
        (0u64..1 << 26).prop_map(|a| OpClass::Load(a * 8)),
        (0u64..1 << 26).prop_map(|a| OpClass::Store(a * 8)),
        any::<bool>().prop_map(|taken| OpClass::Branch { taken }),
    ];
    (class, 0u64..1 << 20, 0u16..32, 0u16..32).prop_map(|(class, pc, d1, d2)| {
        MicroOp::new(0x1000 + pc * 4, class).with_deps(d1, d2)
    })
}

fn core() -> Core<InsecureBackend> {
    Core::new(PipelineConfig::paper_default(), InsecureBackend::new(100, 8))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The engine always terminates and commits exactly `n` ops.
    #[test]
    fn commits_exactly_what_was_requested(
        ops in proptest::collection::vec(op_strategy(), 1..64),
        n in 1u64..5_000,
    ) {
        let mut c = core();
        let stats = c.run(&mut Arbitrary { ops, i: 0 }, n);
        prop_assert_eq!(stats.instructions, n);
        prop_assert!(stats.cycles >= 1);
    }

    /// Same stream, same machine: identical cycle counts.
    #[test]
    fn simulation_is_deterministic(
        ops in proptest::collection::vec(op_strategy(), 1..64),
    ) {
        let w = Arbitrary { ops, i: 0 };
        let mut a = core();
        let mut b = core();
        let sa = a.run(&mut w.clone(), 3_000);
        let sb = b.run(&mut w.clone(), 3_000);
        prop_assert_eq!(sa, sb);
    }

    /// Cost bounds: a 4-wide machine needs at least n/4 cycles, and no
    /// op can take longer than a worst-case memory round trip amortised.
    #[test]
    fn cycle_count_is_bounded(
        ops in proptest::collection::vec(op_strategy(), 1..64),
    ) {
        let n = 2_000u64;
        let mut c = core();
        let stats = c.run(&mut Arbitrary { ops, i: 0 }, n);
        prop_assert!(stats.cycles >= n / 4, "4-wide lower bound");
        // Upper bound: every op a serialised L2 miss plus redirect slack.
        prop_assert!(
            stats.cycles < n * 400,
            "cycles {} for {} ops is beyond any plausible worst case",
            stats.cycles,
            n
        );
    }

    /// Branch accounting: mispredicts never exceed branches.
    #[test]
    fn mispredicts_are_a_subset_of_branches(
        ops in proptest::collection::vec(op_strategy(), 1..64),
    ) {
        let mut c = core();
        let stats = c.run(&mut Arbitrary { ops, i: 0 }, 4_000);
        prop_assert!(stats.mispredicts <= stats.branches);
        prop_assert_eq!(
            stats.loads + stats.stores + stats.branches
                <= stats.instructions,
            true
        );
    }
}
