//! An out-of-order, four-issue processor timing model in the spirit of
//! SimpleScalar's `sim-outorder`, the simulator the paper evaluates with.
//!
//! The model is deliberately at the same altitude as the paper's use of
//! SimpleScalar: it captures the properties the figures depend on —
//! how many L2 misses reach memory, how much of the added decryption
//! latency the out-of-order window hides, how writebacks generate
//! sequence-number traffic — without modelling details the paper never
//! varies (TLBs, register renaming structure, replay).
//!
//! Structure:
//!
//! * [`MicroOp`]/[`Workload`] — the dynamic instruction stream interface
//!   that `padlock-workloads` implements;
//! * [`BimodalPredictor`]/[`GsharePredictor`] — branch direction
//!   predictors (SimpleScalar's default is bimodal 2K);
//! * [`Hierarchy`] + [`MemoryBackend`] — split L1 I/D, unified L2, and the
//!   pluggable "below L2" interface that `padlock-core` implements with
//!   the XOM / one-time-pad secure memory controllers;
//! * [`Core`] — fetch/dispatch, issue, complete, commit over a ROB,
//!   driven cycle by cycle with event skipping.
//!
//! # Examples
//!
//! ```
//! use padlock_cpu::{Core, InsecureBackend, PipelineConfig, StrideWorkload};
//!
//! let config = PipelineConfig::paper_default();
//! let backend = InsecureBackend::new(100, 8);
//! let mut core = Core::new(config, backend);
//! let mut workload = StrideWorkload::new(1 << 20, 64, 0.2);
//! let stats = core.run(&mut workload, 10_000);
//! assert_eq!(stats.instructions, 10_000);
//! assert!(stats.cycles > 0);
//! ```

#![warn(missing_docs)]

mod bpred;
mod hierarchy;
mod op;
mod pipeline;

pub use bpred::{BimodalPredictor, BranchPredictor, GsharePredictor};
pub use hierarchy::{
    Access, AccessToken, Hierarchy, HierarchyConfig, InsecureBackend, LineKind, MemoryBackend,
    MemoryChannel,
};
pub use op::{MicroOp, OffsetWorkload, OpClass, StrideWorkload, Workload};
pub use pipeline::{Core, PipelineConfig, RunSession, RunStats};

// The sweep executor simulates one hierarchy per worker thread; these
// bounds keep the pipeline and memory model `Send` so a sweep can move
// them to whichever worker claims the grid point (see the T1 audit —
// no shared-ownership cells hide in here).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Core<InsecureBackend>>();
    assert_send::<Hierarchy<InsecureBackend>>();
    assert_send::<HierarchyConfig>();
    assert_send::<PipelineConfig>();
};
