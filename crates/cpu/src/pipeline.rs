//! The out-of-order execution engine: fetch/dispatch, issue, complete,
//! commit over a reorder buffer, with event-driven fast-forwarding.
//!
//! # Fast-forward core
//!
//! The run loop is event-driven rather than cycle-scanned. Two
//! structures replace the seed core's per-cycle O(|ROB|) rescans (the
//! seed loop is preserved verbatim in `padlock-bench`'s `seed_core`
//! module and the `fastforward_vs_seed` differential proves the two
//! produce bit-exact cycles and counters):
//!
//! * **Completion calendar** — a min-heap of future completion cycles.
//!   Every issue and every miss resolution pushes the op's completion
//!   cycle; when no fetch/dispatch/issue/commit can occur, `now` jumps
//!   straight to the earliest future event (folding in the fetch gates
//!   and [`Hierarchy::next_completion`]) instead of scanning the ROB.
//!   Stale entries (cycles the clock has passed) are popped lazily.
//!
//! * **Incremental issue readiness** — instead of re-testing every
//!   un-issued slot's dependences each cycle, each producer slot keeps
//!   the list of its in-ROB consumers. When a producer's completion
//!   cycle becomes known (at issue, or when an L2 miss resolves), its
//!   consumers' outstanding-dependence counts are decremented and each
//!   newly unblocked consumer is filed either into the *ready sets*
//!   (two `BTreeSet`s in program order, memory vs. non-memory ops) or
//!   into a *ready calendar* keyed by the cycle its last producer
//!   completes. Issue then merge-walks the two ready sets oldest-first,
//!   reproducing the seed scan's order exactly: the overall issue-width
//!   cap stops the walk, while the memory-port cap skips memory ops but
//!   lets younger non-memory ops through.
//!
//! Readiness cycles never need their own calendar events: a consumer's
//! `ready_at` equals some producer's completion cycle, which is already
//! in the completion calendar (a producer whose completion is still in
//! the future cannot have committed).
//!
//! Loads that miss past the L2 park with a [`PENDING`] completion until
//! the MSHR file schedules or drains them (see
//! [`Hierarchy`](crate::hierarchy::Hierarchy) for the eager-completion
//! rules); a parked load at the ROB head forces a drain exactly as the
//! seed loop did, so the backend observes the identical window
//! composition.

use crate::bpred::{BimodalPredictor, BranchPredictor};
use crate::hierarchy::{Access, AccessToken, Hierarchy, MemoryBackend};
use crate::op::{OpClass, Workload};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

/// Pipeline widths and structure sizes.
///
/// Defaults follow SimpleScalar `sim-outorder`'s defaults, which the
/// paper states it used apart from the cache/memory parameters: 4-wide
/// fetch/issue/commit, a 16-entry register update unit (our ROB), two
/// memory ports, bimodal 2K predictor.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Ops fetched/dispatched per cycle.
    pub fetch_width: u32,
    /// Ops issued to execution per cycle.
    pub issue_width: u32,
    /// Ops committed per cycle.
    pub commit_width: u32,
    /// Reorder-buffer entries (SimpleScalar's RUU).
    pub rob_size: usize,
    /// Memory operations issued per cycle (load/store ports).
    pub mem_ports: u32,
    /// Extra front-end cycles after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
    /// Entries in the bimodal predictor.
    pub bpred_entries: usize,
}

impl PipelineConfig {
    /// The paper's processor: 4-issue out-of-order with SimpleScalar
    /// defaults.
    pub fn paper_default() -> Self {
        Self {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_size: 16,
            mem_ports: 2,
            mispredict_penalty: 3,
            bpred_entries: 2048,
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Results of one simulated window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Ops committed in the window.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Times the clock was forced forward by one cycle because the
    /// event calendar held no future event while nothing could run.
    ///
    /// This is the release-mode escape hatch for what `debug_assert`s
    /// flag in debug builds; a correct model keeps it at 0, and the
    /// test suite asserts so.
    pub forced_steps: u64,
}

impl RunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

const NO_DEP: u64 = u64::MAX;
const NOT_ISSUED: u64 = u64::MAX;
/// Completion sentinel for a load waiting on an in-flight L2 miss; the
/// real cycle arrives when the hierarchy drains its MSHR file.
const PENDING: u64 = u64::MAX - 1;

#[derive(Debug, Clone, Copy)]
enum SlotKind {
    Fixed(u64),
    Load(u64),
    Store(u64),
    /// A mispredicted branch; resolving it un-blocks the front end.
    BranchRedirect,
}

#[derive(Debug)]
struct Slot {
    kind: SlotKind,
    issued: bool,
    complete_at: u64,
    /// Earliest cycle this slot's known producers allow it to issue
    /// (running max over producer completion cycles).
    ready_at: u64,
    /// Producers whose completion cycle is still unknown (un-issued, or
    /// parked on an in-flight miss).
    unresolved: u8,
    /// Memory op (load/store): subject to the memory-port cap.
    is_mem: bool,
    /// Absolute sequence numbers of in-ROB consumers to notify when
    /// this slot's completion cycle becomes known.
    consumers: Vec<u64>,
}

/// Notifies `rob[p_idx]`'s registered consumers that its completion
/// cycle is `done`: decrements their outstanding-dependence counts and
/// files newly unblocked slots into the ready sets (ready now) or the
/// ready calendar (ready at a future cycle).
#[allow(clippy::too_many_arguments)]
fn complete_producer(
    rob: &mut VecDeque<Slot>,
    base: u64,
    now: u64,
    p_idx: usize,
    done: u64,
    ready_mem: &mut BTreeSet<u64>,
    ready_alu: &mut BTreeSet<u64>,
    ready_cal: &mut BTreeMap<u64, Vec<u64>>,
    pool: &mut Vec<Vec<u64>>,
) {
    if rob[p_idx].consumers.is_empty() {
        return;
    }
    let mut consumers = std::mem::take(&mut rob[p_idx].consumers);
    for &c in &consumers {
        // Consumers are strictly younger than their producer and cannot
        // commit before it, so they are still in the ROB.
        let idx = (c - base) as usize;
        let s = &mut rob[idx];
        s.ready_at = s.ready_at.max(done);
        s.unresolved -= 1;
        if s.unresolved == 0 {
            let (ready_at, is_mem) = (s.ready_at, s.is_mem);
            if ready_at <= now {
                if is_mem {
                    ready_mem.insert(c);
                } else {
                    ready_alu.insert(c);
                }
            } else {
                ready_cal
                    .entry(ready_at)
                    .or_insert_with(|| pool.pop().unwrap_or_default())
                    .push(c);
            }
        }
    }
    consumers.clear();
    pool.push(consumers);
}

/// The out-of-order core: a [`Hierarchy`] plus the execution engine.
///
/// # Examples
///
/// ```
/// use padlock_cpu::{Core, InsecureBackend, PipelineConfig, StrideWorkload};
///
/// let mut core = Core::new(PipelineConfig::paper_default(),
///                          InsecureBackend::new(100, 8));
/// let stats = core.run(&mut StrideWorkload::new(4096, 64, 0.1), 5_000);
/// assert!(stats.ipc() > 0.5);
/// ```
#[derive(Debug)]
pub struct Core<B> {
    config: PipelineConfig,
    hierarchy: Hierarchy<B>,
    bpred: BimodalPredictor,
    now: u64,
}

impl<B: MemoryBackend> Core<B> {
    /// Creates a core with the paper's cache hierarchy over `backend`.
    pub fn new(config: PipelineConfig, backend: B) -> Self {
        Self::with_hierarchy(
            config,
            Hierarchy::new(crate::hierarchy::HierarchyConfig::paper_default(), backend),
        )
    }

    /// Creates a core over an explicit hierarchy (custom cache geometry).
    pub fn with_hierarchy(config: PipelineConfig, hierarchy: Hierarchy<B>) -> Self {
        let bpred = BimodalPredictor::new(config.bpred_entries);
        Self {
            config,
            hierarchy,
            bpred,
            now: 0,
        }
    }

    /// The cache hierarchy (stats access).
    pub fn hierarchy(&self) -> &Hierarchy<B> {
        &self.hierarchy
    }

    /// Mutable hierarchy access (backend control).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy<B> {
        &mut self.hierarchy
    }

    /// Current simulated cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Resets hierarchy/backend statistics; used between the warm-up and
    /// measured windows (the paper fast-forwards 10B instructions before
    /// measuring).
    pub fn reset_stats(&mut self) {
        self.hierarchy.reset_stats();
    }

    /// Runs until `n_ops` ops have committed; returns window statistics.
    ///
    /// Successive calls continue from the current microarchitectural
    /// state (warm caches, trained predictor), so the idiomatic pattern
    /// is one warm-up call followed by `reset_stats` and a measured call.
    ///
    /// Equivalent to [`Core::begin_run`] / [`Core::step_run`] /
    /// [`Core::finish_run`] driven to completion — the multi-core
    /// server interleaves several cores' sessions through that split
    /// surface, so a single-core run and a one-core server run execute
    /// the identical sequence of hierarchy calls by construction.
    pub fn run<W: Workload + ?Sized>(&mut self, workload: &mut W, n_ops: u64) -> RunStats {
        let mut session = self.begin_run(n_ops);
        while self.step_run(&mut session, workload) {}
        self.finish_run(session)
    }

    /// Opens a run session targeting `n_ops` committed ops.
    ///
    /// The session owns all per-window execution state (ROB, ready
    /// sets, calendars, front-end latches); the core keeps only its
    /// persistent microarchitecture (caches, predictor, clock). Drive
    /// it with [`Core::step_run`] and close it with
    /// [`Core::finish_run`].
    pub fn begin_run(&mut self, n_ops: u64) -> RunSession {
        let rob_size = self.config.rob_size;
        RunSession {
            stats: RunStats::default(),
            start_cycle: self.now,
            n_ops,
            rob: VecDeque::with_capacity(rob_size),
            base: 0,
            dispatched: 0,
            committed: 0,
            pending_loads: BTreeMap::new(),
            resolved_buf: Vec::new(),
            completions: BinaryHeap::with_capacity(rob_size * 2),
            ready_mem: BTreeSet::new(),
            ready_alu: BTreeSet::new(),
            ready_cal: BTreeMap::new(),
            vec_pool: Vec::new(),
            fetch_ready_at: 0,
            redirect_pending: false,
            fetch_resume_at: 0,
            pending_op: None,
            last_fetch_line: u64::MAX,
            l1i_line: self.hierarchy.config().l1i.line_bytes() as u64,
        }
    }

    /// Executes one scheduling step of the session: one pass of the
    /// collect/commit/issue/fetch loop ending in a clock advance (or an
    /// MSHR drain re-run). Returns `false` once the session's commit
    /// target is reached — call [`Core::finish_run`] then.
    pub fn step_run<W: Workload + ?Sized>(&mut self, s: &mut RunSession, workload: &mut W) -> bool {
        if s.committed >= s.n_ops {
            return false;
        }
        let now = self.now;
        let mut progress = false;

        // ---- Collect resolved fills ----
        // A hierarchy drain (MSHR-file exhaustion inside an access,
        // the forced stall-on-use drain below, or an eagerly
        // scheduled completion) resolves pending loads to their real
        // completion cycles.
        self.hierarchy.take_resolutions(&mut s.resolved_buf);
        for (token, done) in s.resolved_buf.drain(..) {
            let Some(seq) = s.pending_loads.remove(&token) else {
                continue; // fire-and-forget store fill
            };
            if seq >= s.base {
                let idx = (seq - s.base) as usize;
                s.rob[idx].complete_at = done;
                if done > now {
                    s.completions.push(Reverse(done));
                }
                complete_producer(
                    &mut s.rob,
                    s.base,
                    now,
                    idx,
                    done,
                    &mut s.ready_mem,
                    &mut s.ready_alu,
                    &mut s.ready_cal,
                    &mut s.vec_pool,
                );
            }
        }

        // ---- Stall on use ----
        // The oldest op is a load still waiting on an in-flight
        // miss: commit is blocked on it, so the MSHR file drains
        // now — issuing every accumulated miss as one batch (each
        // charged from its own arrival) — and this cycle re-runs
        // with the resolved completion cycles.
        if self.hierarchy.pending_misses() > 0
            && s.rob
                .front()
                .is_some_and(|slot| slot.issued && slot.complete_at == PENDING)
        {
            self.hierarchy.drain_pending();
            return true;
        }

        // ---- Commit ----
        let mut commits = 0;
        while commits < self.config.commit_width {
            match s.rob.front() {
                Some(slot) if slot.issued && slot.complete_at <= now => {
                    debug_assert!(
                        slot.consumers.is_empty(),
                        "committed slot with unnotified consumers"
                    );
                    if let Some(mut slot) = s.rob.pop_front() {
                        slot.consumers.clear();
                        s.vec_pool.push(slot.consumers);
                    }
                    s.base += 1;
                    s.committed += 1;
                    commits += 1;
                    progress = true;
                    if s.committed >= s.n_ops {
                        break;
                    }
                }
                _ => break,
            }
        }
        if s.committed >= s.n_ops {
            return false;
        }

        // ---- Issue (oldest first, from the ready sets) ----
        // Promote slots whose readiness cycle has arrived.
        while s.ready_cal.first_key_value().is_some_and(|(&t, _)| t <= now) {
            let Some((_, seqs)) = s.ready_cal.pop_first() else {
                break;
            };
            for &seq in &seqs {
                let idx = (seq - s.base) as usize;
                if s.rob[idx].is_mem {
                    s.ready_mem.insert(seq);
                } else {
                    s.ready_alu.insert(seq);
                }
            }
            let mut seqs = seqs;
            seqs.clear();
            s.vec_pool.push(seqs);
        }
        // Merge-walk the two ready sets in program order: the
        // issue-width cap ends the walk, the memory-port cap skips
        // memory ops while younger non-memory ops still issue —
        // exactly the seed scan's behaviour.
        let mut issues = 0;
        let mut mem_issues = 0;
        while issues < self.config.issue_width {
            let mem_head = if mem_issues < self.config.mem_ports {
                s.ready_mem.first().copied()
            } else {
                None
            };
            let alu_head = s.ready_alu.first().copied();
            let seq = match (mem_head, alu_head) {
                (Some(m), Some(a)) => m.min(a),
                (Some(m), None) => m,
                (None, Some(a)) => a,
                (None, None) => break,
            };
            let idx = (seq - s.base) as usize;
            let kind = s.rob[idx].kind;
            let is_mem = s.rob[idx].is_mem;
            if is_mem {
                s.ready_mem.remove(&seq);
            } else {
                s.ready_alu.remove(&seq);
            }
            let complete_at = match kind {
                SlotKind::Fixed(lat) => now + lat,
                SlotKind::Load(addr) => match self.hierarchy.data_access_nb(now, addr, false) {
                    Access::Ready(done) => done,
                    Access::Pending(token) => {
                        // The miss sits in the MSHR file; the slot
                        // completes when a drain or a scheduled
                        // completion resolves it.
                        s.pending_loads.insert(token, seq);
                        PENDING
                    }
                },
                SlotKind::Store(addr) => {
                    // The store retires via the store buffer; the line
                    // fill proceeds in the background (a pending fill
                    // stays in the MSHR file until a later drain).
                    let _ = self.hierarchy.data_access_nb(now, addr, true);
                    now + 1
                }
                SlotKind::BranchRedirect => {
                    let done = now + 1;
                    s.redirect_pending = false;
                    s.fetch_resume_at = done + self.config.mispredict_penalty;
                    done
                }
            };
            {
                let slot = &mut s.rob[idx];
                slot.issued = true;
                slot.complete_at = complete_at;
            }
            issues += 1;
            if is_mem {
                mem_issues += 1;
            }
            if complete_at != PENDING {
                if complete_at > now {
                    s.completions.push(Reverse(complete_at));
                }
                complete_producer(
                    &mut s.rob,
                    s.base,
                    now,
                    idx,
                    complete_at,
                    &mut s.ready_mem,
                    &mut s.ready_alu,
                    &mut s.ready_cal,
                    &mut s.vec_pool,
                );
            }
            progress = true;
        }

        // ---- Fetch / dispatch ----
        let rob_size = self.config.rob_size;
        let mut fetched = 0;
        while fetched < self.config.fetch_width
            && s.rob.len() < rob_size
            && !s.redirect_pending
            && now >= s.fetch_resume_at
            && now >= s.fetch_ready_at
            && s.dispatched < s.n_ops + rob_size as u64
        {
            let op = match s.pending_op.take() {
                Some(op) => op,
                None => workload.next_op(),
            };
            // I-cache: a new line triggers a fetch access.
            let line = op.pc / s.l1i_line;
            if line != s.last_fetch_line {
                let avail = self.hierarchy.inst_fetch(now, op.pc);
                s.last_fetch_line = line;
                if avail > now + self.hierarchy.config().l1_latency {
                    // I-miss: hold the op until the line arrives.
                    s.fetch_ready_at = avail;
                    s.pending_op = Some(op);
                    break;
                }
            }

            let seq = s.dispatched;
            let to_abs = |dist: u16| -> u64 {
                if dist == 0 || u64::from(dist) > seq {
                    NO_DEP
                } else {
                    seq - u64::from(dist)
                }
            };
            let kind = match op.class {
                OpClass::Load(a) => SlotKind::Load(a),
                OpClass::Store(a) => SlotKind::Store(a),
                OpClass::Branch { taken } => {
                    s.stats.branches += 1;
                    let predicted = self.bpred.predict(op.pc);
                    self.bpred.update(op.pc, taken);
                    if predicted != taken {
                        s.stats.mispredicts += 1;
                        SlotKind::BranchRedirect
                    } else {
                        SlotKind::Fixed(1)
                    }
                }
                other => SlotKind::Fixed(other.fixed_latency().expect("non-mem fixed")),
            };
            match op.class {
                OpClass::Load(_) => s.stats.loads += 1,
                OpClass::Store(_) => s.stats.stores += 1,
                _ => {}
            }
            let is_redirect = matches!(kind, SlotKind::BranchRedirect);
            if is_redirect {
                s.redirect_pending = true;
                // Fetch stops after this branch until it resolves.
            }
            // Dependence registration: known-complete producers fold
            // into ready_at; unknown ones get this slot as a
            // consumer to notify later.
            let is_mem = matches!(kind, SlotKind::Load(_) | SlotKind::Store(_));
            let mut unresolved = 0u8;
            let mut ready_at = 0u64;
            for dep in [to_abs(op.dep1), to_abs(op.dep2)] {
                if dep == NO_DEP || dep < s.base {
                    continue;
                }
                let p = &mut s.rob[(dep - s.base) as usize];
                if p.issued && p.complete_at != PENDING {
                    ready_at = ready_at.max(p.complete_at);
                } else {
                    p.consumers.push(seq);
                    unresolved += 1;
                }
            }
            s.rob.push_back(Slot {
                kind,
                issued: false,
                complete_at: NOT_ISSUED,
                ready_at,
                unresolved,
                is_mem,
                consumers: s.vec_pool.pop().unwrap_or_default(),
            });
            if unresolved == 0 {
                if ready_at <= now {
                    if is_mem {
                        s.ready_mem.insert(seq);
                    } else {
                        s.ready_alu.insert(seq);
                    }
                } else {
                    s.ready_cal
                        .entry(ready_at)
                        .or_insert_with(|| s.vec_pool.pop().unwrap_or_default())
                        .push(seq);
                }
            }
            s.dispatched += 1;
            fetched += 1;
            progress = true;
            if is_redirect {
                break;
            }
        }

        // ---- Advance time ----
        if progress {
            self.now += 1;
        } else {
            // Nothing happened: jump to the earliest future event.
            // Parked loads have no completion cycle yet; they are
            // excluded here and force a drain when nothing else can
            // run.
            while s.completions.peek().is_some_and(|&Reverse(t)| t <= now) {
                s.completions.pop();
            }
            let mut next = s.completions.peek().map_or(u64::MAX, |&Reverse(t)| t);
            if s.fetch_ready_at > now {
                next = next.min(s.fetch_ready_at);
            }
            if s.fetch_resume_at > now && !s.redirect_pending {
                next = next.min(s.fetch_resume_at);
            }
            if let Some(c) = self.hierarchy.next_completion() {
                // Scheduled-but-uncollected miss completions (eager
                // issue) are events too.
                if c > now {
                    next = next.min(c);
                }
            }
            if next == u64::MAX && self.hierarchy.pending_misses() > 0 {
                // Stall on use: every runnable op waits on an
                // in-flight miss, so the MSHR file drains. Each
                // miss is charged from its own arrival cycle, so
                // batching them here costs no simulated time.
                self.hierarchy.drain_pending();
                return true;
            }
            debug_assert!(
                next != u64::MAX,
                "stalled with no future event: rob={:?}",
                s.rob
            );
            if next == u64::MAX {
                s.stats.forced_steps += 1;
                self.now = now + 1;
            } else {
                self.now = next;
            }
        }
        true
    }

    /// Closes a run session: issues fills still sitting in the MSHR
    /// file (fire-and-forget store misses, loads past the commit
    /// target) so their memory traffic lands in this window's counters,
    /// and returns the window statistics.
    pub fn finish_run(&mut self, mut s: RunSession) -> RunStats {
        self.hierarchy.drain_pending();
        self.hierarchy.take_resolutions(&mut s.resolved_buf);
        s.resolved_buf.clear();
        s.stats.instructions = s.committed;
        s.stats.cycles = self.now - s.start_cycle;
        s.stats
    }
}

/// The per-window execution state of one [`Core::run`] window, split
/// out so a caller can interleave several cores' windows (the
/// multi-core secure server steps N sessions against one shared
/// backend). Create with [`Core::begin_run`], drive with
/// [`Core::step_run`], close with [`Core::finish_run`].
#[derive(Debug)]
pub struct RunSession {
    stats: RunStats,
    start_cycle: u64,
    n_ops: u64,
    rob: VecDeque<Slot>,
    base: u64, // sequence number of rob.front()
    dispatched: u64,
    committed: u64,
    // Loads waiting on in-flight L2 misses: MSHR token -> absolute
    // ROB sequence number of the load's slot.
    // BTreeMap (padlock-lint D1): token -> ROB slot bookkeeping must
    // stay deterministic if it is ever iterated or debugged.
    pending_loads: BTreeMap<AccessToken, u64>,
    resolved_buf: Vec<(AccessToken, u64)>,
    // Event calendar: future completion cycles of issued ops (and
    // resolved misses). The min drives the no-progress time jump.
    completions: BinaryHeap<Reverse<u64>>,
    // Ready tracking: slots whose producers are all known-complete,
    // split by port class, in program order (BTreeSet: padlock-lint
    // D1, and the merge walk needs ordered iteration anyway).
    ready_mem: BTreeSet<u64>,
    ready_alu: BTreeSet<u64>,
    // Slots unblocked but not ready until a future cycle.
    ready_cal: BTreeMap<u64, Vec<u64>>,
    // Recycled consumer/calendar vectors (keeps the hot loop off the
    // allocator).
    vec_pool: Vec<Vec<u64>>,
    // Front-end state.
    fetch_ready_at: u64, // I-miss stall
    redirect_pending: bool, // mispredict: blocked until resolve
    fetch_resume_at: u64,
    pending_op: Option<crate::op::MicroOp>,
    last_fetch_line: u64,
    l1i_line: u64,
}

impl RunSession {
    /// Ops committed so far in this window.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// The window's commit target.
    pub fn target_ops(&self) -> u64 {
        self.n_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::InsecureBackend;
    use crate::op::{MicroOp, StrideWorkload};

    /// A scripted workload for microbenchmark-style pipeline tests.
    struct Script {
        ops: Vec<MicroOp>,
        idx: usize,
    }

    impl Script {
        fn repeat(op: MicroOp) -> Self {
            Self {
                ops: vec![op],
                idx: 0,
            }
        }

        fn cycle(ops: Vec<MicroOp>) -> Self {
            Self { ops, idx: 0 }
        }
    }

    impl Workload for Script {
        fn next_op(&mut self) -> MicroOp {
            let op = self.ops[self.idx % self.ops.len()];
            self.idx += 1;
            op
        }
        fn name(&self) -> &str {
            "script"
        }
    }

    fn core() -> Core<InsecureBackend> {
        Core::new(PipelineConfig::paper_default(), InsecureBackend::new(100, 0))
    }

    #[test]
    fn independent_alu_ops_reach_full_width() {
        let mut c = core();
        let stats = c.run(
            &mut Script::repeat(MicroOp::new(0x1000, OpClass::IntAlu)),
            40_000,
        );
        // 4-wide with 16-entry ROB: IPC close to 4.
        assert!(stats.ipc() > 3.0, "ipc {}", stats.ipc());
        assert_eq!(stats.forced_steps, 0);
    }

    #[test]
    fn serial_dependence_chain_limits_ipc_to_one() {
        let mut c = core();
        let op = MicroOp::new(0x1000, OpClass::IntAlu).with_deps(1, 0);
        let stats = c.run(&mut Script::repeat(op), 20_000);
        assert!(stats.ipc() <= 1.05, "ipc {}", stats.ipc());
        assert!(stats.ipc() > 0.9, "ipc {}", stats.ipc());
        assert_eq!(stats.forced_steps, 0);
    }

    #[test]
    fn imul_chain_runs_at_one_third_ipc() {
        let mut c = core();
        let op = MicroOp::new(0x1000, OpClass::IntMul).with_deps(1, 0);
        let stats = c.run(&mut Script::repeat(op), 9_000);
        let cpi = stats.cpi();
        assert!((2.8..3.3).contains(&cpi), "cpi {cpi}");
        assert_eq!(stats.forced_steps, 0);
    }

    #[test]
    fn l1_resident_loads_are_fast() {
        let mut c = core();
        // 16 addresses in one 4KB page: fits L1D easily.
        let ops: Vec<MicroOp> = (0..16)
            .map(|i| MicroOp::new(0x1000, OpClass::Load(0x8000 + i * 32)))
            .collect();
        let mut w = Script::cycle(ops);
        c.run(&mut w, 1_000); // warm
        let stats = c.run(&mut w, 10_000);
        assert!(stats.ipc() > 1.8, "ipc {}", stats.ipc());
    }

    #[test]
    fn memory_bound_pointer_chase_exposes_dram_latency() {
        let mut c = core();
        // Serial dependent loads over a huge working set: every load is
        // an L2 miss costing ~107 cycles, fully serialised.
        let mut w = StrideWorkload::new(64 << 20, 128, 1.0);
        // Make it serial: StrideWorkload already sets dep1 = 1.
        c.run(&mut w, 2_000);
        c.reset_stats();
        let stats = c.run(&mut w, 4_000);
        let cpi = stats.cpi();
        assert!(cpi > 80.0, "cpi {cpi} should be memory dominated");
        assert_eq!(stats.forced_steps, 0);
    }

    #[test]
    fn rob_caps_memory_level_parallelism() {
        // Independent loads: with ROB 16 some misses overlap, so CPI is
        // well under the serial 107 but far above 1.
        let mut c = core();
        struct WideLoads {
            i: u64,
        }
        impl Workload for WideLoads {
            fn next_op(&mut self) -> MicroOp {
                self.i += 1;
                MicroOp::new(0x1000, OpClass::Load(self.i * 128 % (256 << 20)))
            }
            fn name(&self) -> &str {
                "wide"
            }
        }
        let stats = c.run(&mut WideLoads { i: 0 }, 4_000);
        let cpi = stats.cpi();
        // Theoretical MLP limit: ~107-cycle misses / 16-entry ROB ≈ 6.7.
        assert!(cpi < 20.0, "cpi {cpi}: ROB-wide MLP expected");
        assert!(cpi > 4.0, "cpi {cpi}: misses must still dominate");
        assert_eq!(stats.forced_steps, 0);
    }

    #[test]
    fn mispredicted_branches_cost_redirect_cycles() {
        let mut well_predicted = core();
        let mut poorly_predicted = core();
        // Alternating taken/not-taken at one PC defeats bimodal.
        struct Alt {
            i: u64,
            every: u64,
        }
        impl Workload for Alt {
            fn next_op(&mut self) -> MicroOp {
                self.i += 1;
                if self.i.is_multiple_of(4) {
                    MicroOp::new(0x2000, OpClass::Branch {
                        taken: (self.i / 4).is_multiple_of(self.every),
                    })
                } else {
                    MicroOp::new(0x1000 + (self.i % 4) * 4, OpClass::IntAlu)
                }
            }
            fn name(&self) -> &str {
                "alt"
            }
        }
        let good = well_predicted.run(&mut Alt { i: 0, every: u64::MAX }, 20_000);
        let bad = poorly_predicted.run(&mut Alt { i: 0, every: 2 }, 20_000);
        assert!(bad.mispredicts > good.mispredicts + 1000);
        assert!(bad.cycles > good.cycles, "mispredicts must cost cycles");
        assert_eq!(bad.forced_steps, 0);
    }

    #[test]
    fn stats_count_op_classes() {
        let mut c = core();
        let stats = c.run(&mut StrideWorkload::new(4096, 64, 0.25), 10_000);
        assert_eq!(stats.instructions, 10_000);
        assert!(stats.loads > 0);
        assert!(stats.stores > 0);
        assert!(stats.branches > 0);
        assert_eq!(stats.forced_steps, 0);
    }

    #[test]
    fn run_resumes_from_previous_state() {
        let mut c = core();
        let mut w = StrideWorkload::new(4096, 64, 0.25);
        c.run(&mut w, 1_000);
        let t0 = c.now();
        c.run(&mut w, 1_000);
        assert!(c.now() > t0);
    }

    #[test]
    fn mixed_latency_producers_file_consumers_through_ready_calendar() {
        // A multiply (latency 3) feeding an ALU op (latency 1) exercises
        // the future-readiness path: the consumer's ready cycle is known
        // at the producer's issue but lies ahead of `now`, so it must
        // wait in the ready calendar without being lost or issued early.
        let mut c = core();
        let ops = vec![
            MicroOp::new(0x1000, OpClass::IntMul).with_deps(3, 0),
            MicroOp::new(0x1004, OpClass::IntAlu).with_deps(1, 0),
            MicroOp::new(0x1008, OpClass::IntAlu).with_deps(1, 0),
        ];
        let stats = c.run(&mut Script::cycle(ops), 9_000);
        // The serial multiply chain gates each 3-op group at 3 cycles.
        let cpi = stats.cpi();
        assert!((0.95..1.15).contains(&cpi), "cpi {cpi}");
        assert_eq!(stats.forced_steps, 0);
    }

    #[test]
    fn ipc_and_cpi_are_reciprocal() {
        let stats = RunStats {
            instructions: 100,
            cycles: 200,
            ..Default::default()
        };
        assert_eq!(stats.ipc(), 0.5);
        assert_eq!(stats.cpi(), 2.0);
    }
}
