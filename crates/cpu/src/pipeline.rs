//! The out-of-order execution engine: fetch/dispatch, issue, complete,
//! commit over a reorder buffer, with event-skipping for speed.

use crate::bpred::{BimodalPredictor, BranchPredictor};
use crate::hierarchy::{Access, AccessToken, Hierarchy, MemoryBackend};
use crate::op::{OpClass, Workload};
use std::collections::{BTreeMap, VecDeque};

/// Pipeline widths and structure sizes.
///
/// Defaults follow SimpleScalar `sim-outorder`'s defaults, which the
/// paper states it used apart from the cache/memory parameters: 4-wide
/// fetch/issue/commit, a 16-entry register update unit (our ROB), two
/// memory ports, bimodal 2K predictor.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Ops fetched/dispatched per cycle.
    pub fetch_width: u32,
    /// Ops issued to execution per cycle.
    pub issue_width: u32,
    /// Ops committed per cycle.
    pub commit_width: u32,
    /// Reorder-buffer entries (SimpleScalar's RUU).
    pub rob_size: usize,
    /// Memory operations issued per cycle (load/store ports).
    pub mem_ports: u32,
    /// Extra front-end cycles after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
    /// Entries in the bimodal predictor.
    pub bpred_entries: usize,
}

impl PipelineConfig {
    /// The paper's processor: 4-issue out-of-order with SimpleScalar
    /// defaults.
    pub fn paper_default() -> Self {
        Self {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_size: 16,
            mem_ports: 2,
            mispredict_penalty: 3,
            bpred_entries: 2048,
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Results of one simulated window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Ops committed in the window.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
}

impl RunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

const NO_DEP: u64 = u64::MAX;
const NOT_ISSUED: u64 = u64::MAX;
/// Completion sentinel for a load waiting on an in-flight L2 miss; the
/// real cycle arrives when the hierarchy drains its MSHR file.
const PENDING: u64 = u64::MAX - 1;

#[derive(Debug, Clone, Copy)]
enum SlotKind {
    Fixed(u64),
    Load(u64),
    Store(u64),
    /// A mispredicted branch; resolving it un-blocks the front end.
    BranchRedirect,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    kind: SlotKind,
    /// Absolute sequence numbers of producers (NO_DEP when independent or
    /// already retired at dispatch).
    dep1: u64,
    dep2: u64,
    issued: bool,
    complete_at: u64,
}

/// The out-of-order core: a [`Hierarchy`] plus the execution engine.
///
/// # Examples
///
/// ```
/// use padlock_cpu::{Core, InsecureBackend, PipelineConfig, StrideWorkload};
///
/// let mut core = Core::new(PipelineConfig::paper_default(),
///                          InsecureBackend::new(100, 8));
/// let stats = core.run(&mut StrideWorkload::new(4096, 64, 0.1), 5_000);
/// assert!(stats.ipc() > 0.5);
/// ```
#[derive(Debug)]
pub struct Core<B> {
    config: PipelineConfig,
    hierarchy: Hierarchy<B>,
    bpred: BimodalPredictor,
    now: u64,
}

impl<B: MemoryBackend> Core<B> {
    /// Creates a core with the paper's cache hierarchy over `backend`.
    pub fn new(config: PipelineConfig, backend: B) -> Self {
        Self::with_hierarchy(
            config,
            Hierarchy::new(crate::hierarchy::HierarchyConfig::paper_default(), backend),
        )
    }

    /// Creates a core over an explicit hierarchy (custom cache geometry).
    pub fn with_hierarchy(config: PipelineConfig, hierarchy: Hierarchy<B>) -> Self {
        let bpred = BimodalPredictor::new(config.bpred_entries);
        Self {
            config,
            hierarchy,
            bpred,
            now: 0,
        }
    }

    /// The cache hierarchy (stats access).
    pub fn hierarchy(&self) -> &Hierarchy<B> {
        &self.hierarchy
    }

    /// Mutable hierarchy access (backend control).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy<B> {
        &mut self.hierarchy
    }

    /// Current simulated cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Resets hierarchy/backend statistics; used between the warm-up and
    /// measured windows (the paper fast-forwards 10B instructions before
    /// measuring).
    pub fn reset_stats(&mut self) {
        self.hierarchy.reset_stats();
    }

    /// Runs until `n_ops` ops have committed; returns window statistics.
    ///
    /// Successive calls continue from the current microarchitectural
    /// state (warm caches, trained predictor), so the idiomatic pattern
    /// is one warm-up call followed by `reset_stats` and a measured call.
    pub fn run<W: Workload + ?Sized>(&mut self, workload: &mut W, n_ops: u64) -> RunStats {
        let mut stats = RunStats::default();
        let start_cycle = self.now;

        let rob_size = self.config.rob_size;
        let mut rob: VecDeque<Slot> = VecDeque::with_capacity(rob_size);
        let mut base: u64 = 0; // sequence number of rob.front()
        let mut dispatched: u64 = 0;
        let mut committed: u64 = 0;

        // Loads waiting on in-flight L2 misses: MSHR token -> absolute
        // ROB sequence number of the load's slot.
        // BTreeMap (padlock-lint D1): token -> ROB slot bookkeeping must
        // stay deterministic if it is ever iterated or debugged.
        let mut pending_loads: BTreeMap<AccessToken, u64> = BTreeMap::new();
        let mut resolved_buf: Vec<(AccessToken, u64)> = Vec::new();

        // Front-end state.
        let mut fetch_ready_at: u64 = 0; // I-miss stall
        let mut redirect_pending = false; // mispredict: blocked until resolve
        let mut fetch_resume_at: u64 = 0;
        let mut pending_op: Option<crate::op::MicroOp> = None;
        let mut last_fetch_line: u64 = u64::MAX;
        let l1i_line = self.hierarchy.config().l1i.line_bytes() as u64;

        while committed < n_ops {
            let now = self.now;
            let mut progress = false;

            // ---- Collect resolved fills ----
            // A hierarchy drain (MSHR-file exhaustion inside an access,
            // or the forced stall-on-use drain below) resolves pending
            // loads to their real completion cycles.
            self.hierarchy.take_resolutions(&mut resolved_buf);
            for (token, done) in resolved_buf.drain(..) {
                let Some(seq) = pending_loads.remove(&token) else {
                    continue; // fire-and-forget store fill
                };
                if seq >= base {
                    let idx = (seq - base) as usize;
                    rob[idx].complete_at = done;
                }
            }

            // ---- Stall on use ----
            // The oldest op is a load still waiting on an in-flight
            // miss: commit is blocked on it, so the MSHR file drains
            // now — issuing every accumulated miss as one batch (each
            // charged from its own arrival) — and this cycle re-runs
            // with the resolved completion cycles.
            if self.hierarchy.pending_misses() > 0
                && rob
                    .front()
                    .is_some_and(|s| s.issued && s.complete_at == PENDING)
            {
                self.hierarchy.drain_pending();
                continue;
            }

            // ---- Commit ----
            let mut commits = 0;
            while commits < self.config.commit_width {
                match rob.front() {
                    Some(slot) if slot.issued && slot.complete_at <= now => {
                        rob.pop_front();
                        base += 1;
                        committed += 1;
                        commits += 1;
                        progress = true;
                        if committed >= n_ops {
                            break;
                        }
                    }
                    _ => break,
                }
            }
            if committed >= n_ops {
                break;
            }

            // ---- Issue (oldest first) ----
            let mut issues = 0;
            let mut mem_issues = 0;
            for i in 0..rob.len() {
                if issues >= self.config.issue_width {
                    break;
                }
                let slot = rob[i];
                if slot.issued {
                    continue;
                }
                // Dependences resolved?
                let dep_done = |dep: u64, rob: &VecDeque<Slot>| -> bool {
                    if dep == NO_DEP || dep < base {
                        return true;
                    }
                    let idx = (dep - base) as usize;
                    let d = &rob[idx];
                    d.issued && d.complete_at <= now
                };
                if !dep_done(slot.dep1, &rob) || !dep_done(slot.dep2, &rob) {
                    continue;
                }
                let is_mem = matches!(slot.kind, SlotKind::Load(_) | SlotKind::Store(_));
                if is_mem && mem_issues >= self.config.mem_ports {
                    continue;
                }
                let complete_at = match slot.kind {
                    SlotKind::Fixed(lat) => now + lat,
                    SlotKind::Load(addr) => match self.hierarchy.data_access_nb(now, addr, false) {
                        Access::Ready(done) => done,
                        Access::Pending(token) => {
                            // The miss sits in the MSHR file; the slot
                            // completes when a drain resolves it.
                            pending_loads.insert(token, base + i as u64);
                            PENDING
                        }
                    },
                    SlotKind::Store(addr) => {
                        // The store retires via the store buffer; the line
                        // fill proceeds in the background (a pending fill
                        // stays in the MSHR file until a later drain).
                        let _ = self.hierarchy.data_access_nb(now, addr, true);
                        now + 1
                    }
                    SlotKind::BranchRedirect => {
                        let done = now + 1;
                        redirect_pending = false;
                        fetch_resume_at = done + self.config.mispredict_penalty;
                        done
                    }
                };
                let s = &mut rob[i];
                s.issued = true;
                s.complete_at = complete_at;
                issues += 1;
                if is_mem {
                    mem_issues += 1;
                }
                progress = true;
            }

            // ---- Fetch / dispatch ----
            let mut fetched = 0;
            while fetched < self.config.fetch_width
                && rob.len() < rob_size
                && !redirect_pending
                && now >= fetch_resume_at
                && now >= fetch_ready_at
                && dispatched < n_ops + rob_size as u64
            {
                let op = match pending_op.take() {
                    Some(op) => op,
                    None => workload.next_op(),
                };
                // I-cache: a new line triggers a fetch access.
                let line = op.pc / l1i_line;
                if line != last_fetch_line {
                    let avail = self.hierarchy.inst_fetch(now, op.pc);
                    last_fetch_line = line;
                    if avail > now + self.hierarchy.config().l1_latency {
                        // I-miss: hold the op until the line arrives.
                        fetch_ready_at = avail;
                        pending_op = Some(op);
                        break;
                    }
                }

                let seq = dispatched;
                let to_abs = |dist: u16| -> u64 {
                    if dist == 0 || u64::from(dist) > seq {
                        NO_DEP
                    } else {
                        seq - u64::from(dist)
                    }
                };
                let mut kind = match op.class {
                    OpClass::Load(a) => SlotKind::Load(a),
                    OpClass::Store(a) => SlotKind::Store(a),
                    OpClass::Branch { taken } => {
                        stats.branches += 1;
                        let predicted = self.bpred.predict(op.pc);
                        self.bpred.update(op.pc, taken);
                        if predicted != taken {
                            stats.mispredicts += 1;
                            SlotKind::BranchRedirect
                        } else {
                            SlotKind::Fixed(1)
                        }
                    }
                    other => SlotKind::Fixed(other.fixed_latency().expect("non-mem fixed")),
                };
                match op.class {
                    OpClass::Load(_) => stats.loads += 1,
                    OpClass::Store(_) => stats.stores += 1,
                    _ => {}
                }
                let is_redirect = matches!(kind, SlotKind::BranchRedirect);
                if is_redirect {
                    redirect_pending = true;
                    // Fetch stops after this branch until it resolves.
                } else if let SlotKind::BranchRedirect = kind {
                    kind = SlotKind::Fixed(1);
                }
                rob.push_back(Slot {
                    kind,
                    dep1: to_abs(op.dep1),
                    dep2: to_abs(op.dep2),
                    issued: false,
                    complete_at: NOT_ISSUED,
                });
                dispatched += 1;
                fetched += 1;
                progress = true;
                if is_redirect {
                    break;
                }
            }

            // ---- Advance time ----
            if progress {
                self.now += 1;
            } else {
                // Nothing happened: skip to the next event. Pending
                // loads have no completion cycle yet; they are excluded
                // here and force a drain when nothing else can run.
                let mut next = u64::MAX;
                for s in &rob {
                    if s.issued && s.complete_at != PENDING && s.complete_at > now {
                        next = next.min(s.complete_at);
                    }
                }
                if fetch_ready_at > now {
                    next = next.min(fetch_ready_at);
                }
                if fetch_resume_at > now && !redirect_pending {
                    next = next.min(fetch_resume_at);
                }
                if next == u64::MAX && self.hierarchy.pending_misses() > 0 {
                    // Stall on use: every runnable op waits on an
                    // in-flight miss, so the MSHR file drains. Each
                    // miss is charged from its own arrival cycle, so
                    // batching them here costs no simulated time.
                    self.hierarchy.drain_pending();
                    continue;
                }
                debug_assert!(
                    next != u64::MAX,
                    "stalled with no future event: rob={rob:?}"
                );
                self.now = if next == u64::MAX { now + 1 } else { next };
            }
        }

        // Window wrap-up: issue fills still sitting in the MSHR file
        // (fire-and-forget store misses, loads past the commit target)
        // so their memory traffic lands in this window's counters.
        self.hierarchy.drain_pending();
        self.hierarchy.take_resolutions(&mut resolved_buf);
        resolved_buf.clear();

        stats.instructions = committed;
        stats.cycles = self.now - start_cycle;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::InsecureBackend;
    use crate::op::{MicroOp, StrideWorkload};

    /// A scripted workload for microbenchmark-style pipeline tests.
    struct Script {
        ops: Vec<MicroOp>,
        idx: usize,
    }

    impl Script {
        fn repeat(op: MicroOp) -> Self {
            Self {
                ops: vec![op],
                idx: 0,
            }
        }

        fn cycle(ops: Vec<MicroOp>) -> Self {
            Self { ops, idx: 0 }
        }
    }

    impl Workload for Script {
        fn next_op(&mut self) -> MicroOp {
            let op = self.ops[self.idx % self.ops.len()];
            self.idx += 1;
            op
        }
        fn name(&self) -> &str {
            "script"
        }
    }

    fn core() -> Core<InsecureBackend> {
        Core::new(PipelineConfig::paper_default(), InsecureBackend::new(100, 0))
    }

    #[test]
    fn independent_alu_ops_reach_full_width() {
        let mut c = core();
        let stats = c.run(
            &mut Script::repeat(MicroOp::new(0x1000, OpClass::IntAlu)),
            40_000,
        );
        // 4-wide with 16-entry ROB: IPC close to 4.
        assert!(stats.ipc() > 3.0, "ipc {}", stats.ipc());
    }

    #[test]
    fn serial_dependence_chain_limits_ipc_to_one() {
        let mut c = core();
        let op = MicroOp::new(0x1000, OpClass::IntAlu).with_deps(1, 0);
        let stats = c.run(&mut Script::repeat(op), 20_000);
        assert!(stats.ipc() <= 1.05, "ipc {}", stats.ipc());
        assert!(stats.ipc() > 0.9, "ipc {}", stats.ipc());
    }

    #[test]
    fn imul_chain_runs_at_one_third_ipc() {
        let mut c = core();
        let op = MicroOp::new(0x1000, OpClass::IntMul).with_deps(1, 0);
        let stats = c.run(&mut Script::repeat(op), 9_000);
        let cpi = stats.cpi();
        assert!((2.8..3.3).contains(&cpi), "cpi {cpi}");
    }

    #[test]
    fn l1_resident_loads_are_fast() {
        let mut c = core();
        // 16 addresses in one 4KB page: fits L1D easily.
        let ops: Vec<MicroOp> = (0..16)
            .map(|i| MicroOp::new(0x1000, OpClass::Load(0x8000 + i * 32)))
            .collect();
        let mut w = Script::cycle(ops);
        c.run(&mut w, 1_000); // warm
        let stats = c.run(&mut w, 10_000);
        assert!(stats.ipc() > 1.8, "ipc {}", stats.ipc());
    }

    #[test]
    fn memory_bound_pointer_chase_exposes_dram_latency() {
        let mut c = core();
        // Serial dependent loads over a huge working set: every load is
        // an L2 miss costing ~107 cycles, fully serialised.
        let mut w = StrideWorkload::new(64 << 20, 128, 1.0);
        // Make it serial: StrideWorkload already sets dep1 = 1.
        c.run(&mut w, 2_000);
        c.reset_stats();
        let stats = c.run(&mut w, 4_000);
        let cpi = stats.cpi();
        assert!(cpi > 80.0, "cpi {cpi} should be memory dominated");
    }

    #[test]
    fn rob_caps_memory_level_parallelism() {
        // Independent loads: with ROB 16 some misses overlap, so CPI is
        // well under the serial 107 but far above 1.
        let mut c = core();
        struct WideLoads {
            i: u64,
        }
        impl Workload for WideLoads {
            fn next_op(&mut self) -> MicroOp {
                self.i += 1;
                MicroOp::new(0x1000, OpClass::Load(self.i * 128 % (256 << 20)))
            }
            fn name(&self) -> &str {
                "wide"
            }
        }
        let stats = c.run(&mut WideLoads { i: 0 }, 4_000);
        let cpi = stats.cpi();
        // Theoretical MLP limit: ~107-cycle misses / 16-entry ROB ≈ 6.7.
        assert!(cpi < 20.0, "cpi {cpi}: ROB-wide MLP expected");
        assert!(cpi > 4.0, "cpi {cpi}: misses must still dominate");
    }

    #[test]
    fn mispredicted_branches_cost_redirect_cycles() {
        let mut well_predicted = core();
        let mut poorly_predicted = core();
        // Alternating taken/not-taken at one PC defeats bimodal.
        struct Alt {
            i: u64,
            every: u64,
        }
        impl Workload for Alt {
            fn next_op(&mut self) -> MicroOp {
                self.i += 1;
                if self.i.is_multiple_of(4) {
                    MicroOp::new(0x2000, OpClass::Branch {
                        taken: (self.i / 4).is_multiple_of(self.every),
                    })
                } else {
                    MicroOp::new(0x1000 + (self.i % 4) * 4, OpClass::IntAlu)
                }
            }
            fn name(&self) -> &str {
                "alt"
            }
        }
        let good = well_predicted.run(&mut Alt { i: 0, every: u64::MAX }, 20_000);
        let bad = poorly_predicted.run(&mut Alt { i: 0, every: 2 }, 20_000);
        assert!(bad.mispredicts > good.mispredicts + 1000);
        assert!(bad.cycles > good.cycles, "mispredicts must cost cycles");
    }

    #[test]
    fn stats_count_op_classes() {
        let mut c = core();
        let stats = c.run(&mut StrideWorkload::new(4096, 64, 0.25), 10_000);
        assert_eq!(stats.instructions, 10_000);
        assert!(stats.loads > 0);
        assert!(stats.stores > 0);
        assert!(stats.branches > 0);
    }

    #[test]
    fn run_resumes_from_previous_state() {
        let mut c = core();
        let mut w = StrideWorkload::new(4096, 64, 0.25);
        c.run(&mut w, 1_000);
        let t0 = c.now();
        c.run(&mut w, 1_000);
        assert!(c.now() > t0);
    }

    #[test]
    fn ipc_and_cpi_are_reciprocal() {
        let stats = RunStats {
            instructions: 100,
            cycles: 200,
            ..Default::default()
        };
        assert_eq!(stats.ipc(), 0.5);
        assert_eq!(stats.cpi(), 2.0);
    }
}
