//! Dynamic micro-operations and the workload interface.

use std::fmt;

/// The execution class of a [`MicroOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply (3 cycles).
    IntMul,
    /// Floating-point add/sub/compare (2 cycles).
    FpAlu,
    /// Floating-point multiply/divide (4 cycles).
    FpMul,
    /// A load from the data address.
    Load(u64),
    /// A store to the data address.
    Store(u64),
    /// A conditional branch with its actual direction.
    Branch {
        /// The architecturally taken direction (ground truth the
        /// predictor is scored against).
        taken: bool,
    },
}

impl OpClass {
    /// Fixed execution latency in cycles for non-memory classes
    /// (memory classes resolve through the cache hierarchy).
    pub fn fixed_latency(self) -> Option<u64> {
        match self {
            OpClass::IntAlu => Some(1),
            OpClass::IntMul => Some(3),
            OpClass::FpAlu => Some(2),
            OpClass::FpMul => Some(4),
            OpClass::Branch { .. } => Some(1),
            OpClass::Load(_) | OpClass::Store(_) => None,
        }
    }

    /// Whether this op accesses data memory.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load(_) | OpClass::Store(_))
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpClass::IntAlu => write!(f, "int"),
            OpClass::IntMul => write!(f, "imul"),
            OpClass::FpAlu => write!(f, "fadd"),
            OpClass::FpMul => write!(f, "fmul"),
            OpClass::Load(a) => write!(f, "load @{a:#x}"),
            OpClass::Store(a) => write!(f, "store @{a:#x}"),
            OpClass::Branch { taken } => write!(f, "branch ({})", if *taken { "T" } else { "N" }),
        }
    }
}

/// One dynamic micro-operation.
///
/// Register dependences are expressed as *distances*: `dep1 = 3` means
/// this op consumes the result of the op three positions earlier in the
/// dynamic stream (0 = no dependence). This is how trace-driven OoO
/// models encode dataflow without architectural registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Program counter (drives the I-cache and branch predictor).
    pub pc: u64,
    /// Execution class, with the data address embedded for memory ops.
    pub class: OpClass,
    /// First input dependence distance (0 = none).
    pub dep1: u16,
    /// Second input dependence distance (0 = none).
    pub dep2: u16,
}

impl MicroOp {
    /// Convenience constructor for a dependence-free op.
    pub fn new(pc: u64, class: OpClass) -> Self {
        Self {
            pc,
            class,
            dep1: 0,
            dep2: 0,
        }
    }

    /// Sets dependence distances (builder style).
    pub fn with_deps(mut self, dep1: u16, dep2: u16) -> Self {
        self.dep1 = dep1;
        self.dep2 = dep2;
        self
    }
}

/// A generator of the dynamic instruction stream.
///
/// Implementations are infinite: the simulator decides how many ops to
/// consume (warm-up plus measured window, like the paper's fast-forward
/// plus measurement runs).
pub trait Workload {
    /// Produces the next dynamic op.
    fn next_op(&mut self) -> MicroOp;

    /// A short display name (used as the row label in figures).
    fn name(&self) -> &str;
}

impl<W: Workload + ?Sized> Workload for &mut W {
    fn next_op(&mut self) -> MicroOp {
        (**self).next_op()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn next_op(&mut self) -> MicroOp {
        (**self).next_op()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Relocates a workload's address stream into a compartment's stripe:
/// every program counter and data address is offset by a fixed base.
///
/// Dependence distances, op classes, and branch directions pass through
/// untouched, so the relocated stream exercises a pipeline identically
/// to the original — only the cache/memory addresses move. A
/// multi-core server uses one of these per core to keep compartment
/// address spaces disjoint.
///
/// # Examples
///
/// ```
/// use padlock_cpu::{OffsetWorkload, OpClass, StrideWorkload, Workload};
///
/// let mut w = OffsetWorkload::new(StrideWorkload::new(4096, 64, 1.0), 1 << 40);
/// let op = w.next_op();
/// assert!(op.pc >= 1 << 40);
/// if let OpClass::Load(a) | OpClass::Store(a) = op.class {
///     assert!(a >= 1 << 40);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct OffsetWorkload<W> {
    inner: W,
    offset: u64,
}

impl<W: Workload> OffsetWorkload<W> {
    /// Wraps `inner`, offsetting every address by `offset`.
    pub fn new(inner: W, offset: u64) -> Self {
        Self { inner, offset }
    }

    /// The wrapped workload.
    pub fn inner(&self) -> &W {
        &self.inner
    }

    /// The address offset applied.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

impl<W: Workload> Workload for OffsetWorkload<W> {
    fn next_op(&mut self) -> MicroOp {
        let mut op = self.inner.next_op();
        op.pc = op.pc.wrapping_add(self.offset);
        op.class = match op.class {
            OpClass::Load(a) => OpClass::Load(a.wrapping_add(self.offset)),
            OpClass::Store(a) => OpClass::Store(a.wrapping_add(self.offset)),
            other => other,
        };
        op
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// A minimal built-in workload: strided loads/stores over a working set,
/// with ALU filler.
///
/// `padlock-workloads` builds the calibrated SPEC2000-like generators;
/// this one exists so `padlock-cpu` is testable and usable stand-alone.
///
/// # Examples
///
/// ```
/// use padlock_cpu::{StrideWorkload, Workload};
///
/// let mut w = StrideWorkload::new(64 * 1024, 64, 0.25);
/// let op = w.next_op();
/// assert_eq!(w.name(), "stride");
/// let _ = op.pc;
/// ```
#[derive(Debug, Clone)]
pub struct StrideWorkload {
    working_set: u64,
    stride: u64,
    mem_fraction: f64,
    cursor: u64,
    pc: u64,
    count: u64,
}

impl StrideWorkload {
    /// Creates a stream sweeping `working_set` bytes with the given stride;
    /// `mem_fraction` of ops are memory operations (1 store per 4 loads).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or `mem_fraction` is outside `[0, 1]`.
    pub fn new(working_set: u64, stride: u64, mem_fraction: f64) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(
            (0.0..=1.0).contains(&mem_fraction),
            "mem_fraction must be in [0, 1]"
        );
        Self {
            working_set: working_set.max(stride),
            stride,
            mem_fraction,
            cursor: 0,
            pc: 0x1000,
            count: 0,
        }
    }
}

impl Workload for StrideWorkload {
    fn next_op(&mut self) -> MicroOp {
        self.count += 1;
        self.pc = 0x1000 + (self.count % 256) * 4; // small code footprint
        let period = if self.mem_fraction > 0.0 {
            (1.0 / self.mem_fraction).round() as u64
        } else {
            u64::MAX
        };
        let class = if self.count.is_multiple_of(period) {
            self.cursor = (self.cursor + self.stride) % self.working_set;
            let addr = 0x10_0000 + self.cursor;
            if self.count.is_multiple_of(5 * period) {
                OpClass::Store(addr)
            } else {
                OpClass::Load(addr)
            }
        } else if self.count % 16 == 7 {
            OpClass::Branch {
                taken: self.count % 32 == 7,
            }
        } else {
            OpClass::IntAlu
        };
        MicroOp::new(self.pc, class).with_deps(1, 0)
    }

    fn name(&self) -> &str {
        "stride"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latencies() {
        assert_eq!(OpClass::IntAlu.fixed_latency(), Some(1));
        assert_eq!(OpClass::IntMul.fixed_latency(), Some(3));
        assert_eq!(OpClass::FpAlu.fixed_latency(), Some(2));
        assert_eq!(OpClass::FpMul.fixed_latency(), Some(4));
        assert_eq!(OpClass::Branch { taken: true }.fixed_latency(), Some(1));
        assert_eq!(OpClass::Load(0).fixed_latency(), None);
        assert_eq!(OpClass::Store(0).fixed_latency(), None);
    }

    #[test]
    fn is_mem_classifies() {
        assert!(OpClass::Load(4).is_mem());
        assert!(OpClass::Store(4).is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(!OpClass::Branch { taken: false }.is_mem());
    }

    #[test]
    fn builder_sets_deps() {
        let op = MicroOp::new(0x40, OpClass::IntAlu).with_deps(2, 5);
        assert_eq!(op.dep1, 2);
        assert_eq!(op.dep2, 5);
    }

    #[test]
    fn stride_workload_wraps_working_set() {
        let mut w = StrideWorkload::new(256, 64, 1.0);
        let mut addrs = Vec::new();
        for _ in 0..8 {
            if let OpClass::Load(a) | OpClass::Store(a) = w.next_op().class {
                addrs.push(a - 0x10_0000);
            }
        }
        assert!(addrs.iter().all(|&a| a < 256));
        assert_eq!(addrs[0], 64);
    }

    #[test]
    fn stride_workload_mixes_classes() {
        let mut w = StrideWorkload::new(1 << 20, 64, 0.25);
        let mut loads = 0;
        let mut stores = 0;
        let mut alus = 0;
        let mut branches = 0;
        for _ in 0..4000 {
            match w.next_op().class {
                OpClass::Load(_) => loads += 1,
                OpClass::Store(_) => stores += 1,
                OpClass::Branch { .. } => branches += 1,
                _ => alus += 1,
            }
        }
        assert!(loads > 0 && stores > 0 && alus > 0 && branches > 0);
        let memfrac = f64::from(loads + stores) / 4000.0;
        assert!((0.2..0.3).contains(&memfrac), "mem fraction {memfrac}");
    }

    #[test]
    fn zero_mem_fraction_generates_no_memory_ops() {
        let mut w = StrideWorkload::new(1024, 64, 0.0);
        for _ in 0..100 {
            assert!(!w.next_op().class.is_mem());
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(OpClass::Load(0x40).to_string(), "load @0x40");
        assert_eq!(OpClass::Branch { taken: true }.to_string(), "branch (T)");
    }
}
