//! Branch direction predictors.
//!
//! SimpleScalar's default (used by the paper's baseline) is a bimodal
//! table of 2-bit saturating counters; gshare is provided for the
//! ablation benches.

/// A branch direction predictor.
pub trait BranchPredictor {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&self, pc: u64) -> bool;

    /// Updates state with the architectural outcome.
    fn update(&mut self, pc: u64, taken: bool);
}

/// 2-bit saturating counter helper: 0,1 = not taken; 2,3 = taken.
#[inline]
fn bump(counter: u8, taken: bool) -> u8 {
    if taken {
        (counter + 1).min(3)
    } else {
        counter.saturating_sub(1)
    }
}

/// A bimodal predictor: a PC-indexed table of 2-bit counters.
///
/// # Examples
///
/// ```
/// use padlock_cpu::{BimodalPredictor, BranchPredictor};
///
/// let mut p = BimodalPredictor::new(2048);
/// p.update(0x40, true);
/// p.update(0x40, true);
/// assert!(p.predict(0x40));
/// ```
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    table: Vec<u8>,
    mask: u64,
}

impl BimodalPredictor {
    /// Creates a predictor with `entries` counters (power of two),
    /// initialised weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Self {
            table: vec![1u8; entries],
            mask: entries as u64 - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }
}

impl BranchPredictor for BimodalPredictor {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i] = bump(self.table[i], taken);
    }
}

/// A gshare predictor: global history XOR PC indexes the counter table.
///
/// # Examples
///
/// ```
/// use padlock_cpu::{BranchPredictor, GsharePredictor};
///
/// let mut p = GsharePredictor::new(4096, 8);
/// for _ in 0..4 {
///     let taken = p.predict(0x80); // alternating pattern trains history
///     p.update(0x80, !taken);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    table: Vec<u8>,
    mask: u64,
    history: u64,
    history_mask: u64,
}

impl GsharePredictor {
    /// Creates a gshare predictor with `entries` counters and
    /// `history_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two and
    /// `history_bits <= 32`.
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!(history_bits <= 32, "history too long");
        Self {
            table: vec![1u8; entries],
            mask: entries as u64 - 1,
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }
}

impl BranchPredictor for GsharePredictor {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i] = bump(self.table[i], taken);
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate() {
        assert_eq!(bump(3, true), 3);
        assert_eq!(bump(0, false), 0);
        assert_eq!(bump(1, true), 2);
        assert_eq!(bump(2, false), 1);
    }

    #[test]
    fn bimodal_learns_a_steady_branch() {
        let mut p = BimodalPredictor::new(64);
        assert!(!p.predict(0x100)); // weakly not-taken initial state
        p.update(0x100, true);
        p.update(0x100, true);
        assert!(p.predict(0x100));
        // Hysteresis: a single flip does not change the prediction.
        p.update(0x100, false);
        assert!(p.predict(0x100));
        p.update(0x100, false);
        assert!(!p.predict(0x100));
    }

    #[test]
    fn bimodal_aliases_modulo_table_size() {
        let mut p = BimodalPredictor::new(64);
        p.update(0x0, true);
        p.update(0x0, true);
        // pc 64*4 = 256 maps to the same entry ((pc>>2) & 63).
        assert!(p.predict(0x400));
    }

    #[test]
    fn bimodal_accuracy_on_biased_stream() {
        let mut p = BimodalPredictor::new(2048);
        let mut correct = 0u32;
        let mut state = 12345u64;
        for i in 0..10_000u64 {
            let pc = 0x1000 + (i % 16) * 4;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let taken = (state >> 33) % 10 < 9; // 90% taken
            if p.predict(pc) == taken {
                correct += 1;
            }
            p.update(pc, taken);
        }
        let acc = f64::from(correct) / 10_000.0;
        assert!(acc > 0.80, "accuracy {acc}");
    }

    #[test]
    fn gshare_learns_an_alternating_pattern_bimodal_cannot() {
        let mut g = GsharePredictor::new(4096, 8);
        let mut b = BimodalPredictor::new(4096);
        let mut g_correct = 0u32;
        let mut b_correct = 0u32;
        for i in 0..2_000u64 {
            let taken = i % 2 == 0;
            if g.predict(0x40) == taken {
                g_correct += 1;
            }
            if b.predict(0x40) == taken {
                b_correct += 1;
            }
            g.update(0x40, taken);
            b.update(0x40, taken);
        }
        assert!(
            g_correct > b_correct + 300,
            "gshare {g_correct} vs bimodal {b_correct}"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = BimodalPredictor::new(100);
    }
}
