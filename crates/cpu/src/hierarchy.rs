//! The cache hierarchy and the pluggable "below L2" memory interface.
//!
//! `padlock-core` implements [`MemoryBackend`] three ways — insecure,
//! XOM (decrypt-in-series), and one-time-pad with an SNC — which is
//! exactly the boundary the paper draws in Figs. 2 and 4: everything
//! above L2 is inside the security perimeter and identical across modes.

use padlock_cache::{AccessKind, CacheConfig, SetAssocCache, WriteBuffer};
use padlock_mem::{MemTimingModel, TrafficClass};
use padlock_stats::CounterSet;

/// Distinguishes instruction fills from data fills below L2.
///
/// The distinction matters to the secure modes: instruction lines are
/// never written back, so the OTP scheme seeds them purely by address and
/// never consults the SNC (§3.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineKind {
    /// An instruction-fetch fill.
    Instruction,
    /// A data fill (load or store write-allocate).
    Data,
}

/// What sits below the L2 cache.
///
/// `line_read` is called when an L2 miss must be satisfied from memory;
/// it returns the cycle at which the line's *plaintext* is available to
/// the processor (for secure modes this includes any decryption that is
/// on the critical path). `line_writeback` is called when a dirty L2
/// victim leaves the chip; it is off the critical path.
pub trait MemoryBackend {
    /// Satisfies an L2 read miss; returns the plaintext-available cycle.
    fn line_read(&mut self, now: u64, line_addr: u64, kind: LineKind) -> u64;

    /// Satisfies many independent L2 read misses issued at `now`,
    /// returning each request's plaintext-available cycle in order.
    ///
    /// This is the memory-level-parallelism surface: backends with an
    /// in-flight transaction queue overlap the requests' memory and
    /// crypto work. The default implementation is a compatibility shim
    /// that serialises through [`MemoryBackend::line_read`], so simple
    /// backends (and existing single-shot callers) keep working
    /// unchanged.
    fn line_read_batch(&mut self, now: u64, reqs: &[(u64, LineKind)]) -> Vec<u64> {
        reqs.iter()
            .map(|&(line_addr, kind)| self.line_read(now, line_addr, kind))
            .collect()
    }

    /// Accepts a dirty L2 victim for (encryption and) writeback.
    fn line_writeback(&mut self, now: u64, line_addr: u64);

    /// Completes deferred background work (queued transactions,
    /// partially packed spill buffers) at measurement wrap-up so
    /// traffic counters are exact. Default: nothing deferred.
    fn drain(&mut self, _now: u64) {}

    /// Memory traffic statistics (per [`TrafficClass`]).
    fn traffic(&self) -> &CounterSet;

    /// Resets statistics after warm-up.
    fn reset_stats(&mut self);

    /// A short label for reports (e.g. `"XOM"`, `"SNC-LRU 64KB"`).
    fn label(&self) -> String;
}

/// A memory channel shared by demand reads and buffered writebacks.
///
/// Encapsulates the paper's write-buffer behaviour (§3.4: writes "steal
/// idle bus cycles") so every backend models contention identically:
/// pending writebacks drain at their natural ready times, demand reads
/// queue behind whatever the channel is doing.
///
/// # Examples
///
/// ```
/// use padlock_cpu::MemoryChannel;
/// use padlock_mem::TrafficClass;
///
/// let mut ch = MemoryChannel::new(100, 8, 8);
/// ch.enqueue_write(0, 50, 0x80, TrafficClass::LineWrite, 128);
/// // A read at cycle 60 sees the drained write occupy the channel first.
/// let done = ch.demand_read(60, TrafficClass::LineRead, 128);
/// assert!(done >= 160);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryChannel {
    mem: MemTimingModel,
    write_buffer: WriteBuffer,
}

impl MemoryChannel {
    /// Creates a channel with the given DRAM latency, per-transaction
    /// occupancy, and write-buffer depth.
    pub fn new(mem_latency: u64, occupancy: u64, write_buffer_entries: usize) -> Self {
        Self {
            mem: MemTimingModel::new(mem_latency, occupancy),
            write_buffer: WriteBuffer::new(write_buffer_entries),
        }
    }

    /// The underlying DRAM timing model (traffic statistics).
    pub fn mem(&self) -> &MemTimingModel {
        &self.mem
    }

    /// Resets traffic statistics; buffered writes survive.
    pub fn reset_stats(&mut self) {
        self.mem.reset_stats();
        self.write_buffer.reset_stats();
    }

    /// Drains writes whose data became ready by `now` (they used idle
    /// channel slots at their natural times).
    fn drain_ready(&mut self, now: u64) {
        while let Some(entry) = self.write_buffer.pop_ready(now) {
            self.mem
                .write(entry.ready_at, TrafficClass::LineWrite, entry.bytes);
        }
    }

    /// Issues a demand read; returns its completion cycle.
    ///
    /// Demand reads have priority: the read claims the channel first,
    /// and ready writebacks drain *behind* it (they only delay later
    /// transactions, the way a read-priority memory scheduler behaves).
    pub fn demand_read(&mut self, now: u64, class: TrafficClass, bytes: u32) -> u64 {
        let done = self.mem.read(now, class, bytes);
        self.drain_ready(now);
        done
    }

    /// Issues a burst of `count` same-class demand reads at `now`;
    /// returns each read's completion cycle.
    ///
    /// The reads claim consecutive occupancy slots ahead of any pending
    /// writebacks (read-priority scheduling); ready writebacks then
    /// backfill behind the whole burst. A burst of one is exactly
    /// [`MemoryChannel::demand_read`].
    pub fn demand_read_burst(
        &mut self,
        now: u64,
        class: TrafficClass,
        bytes: u32,
        count: usize,
    ) -> Vec<u64> {
        let done = self.mem.read_burst(now, class, bytes, count);
        self.drain_ready(now);
        done
    }

    /// Issues a demand (blocking) write, e.g. a forced sequence-number
    /// spill; returns the channel-release cycle.
    pub fn demand_write(&mut self, now: u64, class: TrafficClass, bytes: u32) -> u64 {
        self.drain_ready(now);
        self.mem.write(now, class, bytes)
    }

    /// Enqueues a buffered writeback whose data (e.g. ciphertext) is
    /// ready at `ready_at`. A full buffer force-drains its head, which is
    /// the stall the paper attributes to bursts of replacements.
    pub fn enqueue_write(
        &mut self,
        now: u64,
        ready_at: u64,
        _addr: u64,
        class: TrafficClass,
        bytes: u32,
    ) {
        if self.write_buffer.is_full() {
            if let Some(head) = self.write_buffer.pop_ready(u64::MAX) {
                let start = head.ready_at.max(now);
                self.mem.write(start, TrafficClass::LineWrite, head.bytes);
            }
        }
        // The entry's own class is recorded when it drains; to keep
        // per-class accounting exact we record non-default classes here
        // instead of at drain time.
        if class != TrafficClass::LineWrite {
            // Count now; drain as generic traffic with zero extra bytes.
            self.mem.write(now.max(ready_at), class, bytes);
        } else {
            let pushed = self.write_buffer.push(_addr, ready_at, bytes);
            debug_assert!(pushed, "buffer cannot be full after force-drain");
        }
    }
}

/// Geometry and latencies of the on-chip hierarchy.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// L1 access latency in cycles.
    pub l1_latency: u64,
    /// L2 access latency in cycles (added after an L1 miss).
    pub l2_latency: u64,
}

impl HierarchyConfig {
    /// The paper's configuration: 32KB 4-way split L1 I/D, 256KB 4-way
    /// unified L2 with 128-byte lines (§5), SimpleScalar default
    /// latencies (1-cycle L1, 6-cycle L2).
    pub fn paper_default() -> Self {
        Self {
            l1i: CacheConfig::new("L1I", 32 * 1024, 32, 4),
            l1d: CacheConfig::new("L1D", 32 * 1024, 32, 4),
            l2: CacheConfig::new("L2", 256 * 1024, 128, 4),
            l1_latency: 1,
            l2_latency: 6,
        }
    }

    /// The paper's Fig. 8 variant: a 384KB 6-way L2 occupying the same
    /// area as the 256KB L2 plus a 64KB SNC.
    pub fn paper_big_l2() -> Self {
        Self {
            l2: CacheConfig::new("L2", 384 * 1024, 128, 6),
            ..Self::paper_default()
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The on-chip cache hierarchy over a pluggable memory backend.
///
/// # Examples
///
/// ```
/// use padlock_cpu::{Hierarchy, HierarchyConfig, InsecureBackend};
///
/// let mut h = Hierarchy::new(HierarchyConfig::paper_default(),
///                            InsecureBackend::new(100, 8));
/// let cold = h.data_access(0, 0x4000, false);
/// assert!(cold > 100); // cold miss goes to memory
/// let warm = h.data_access(cold, 0x4000, false);
/// assert_eq!(warm, cold + 1); // L1 hit
/// ```
#[derive(Debug)]
pub struct Hierarchy<B> {
    config: HierarchyConfig,
    l1i: SetAssocCache<()>,
    l1d: SetAssocCache<()>,
    l2: SetAssocCache<()>,
    backend: B,
}

impl<B: MemoryBackend> Hierarchy<B> {
    /// Creates an empty hierarchy.
    pub fn new(config: HierarchyConfig, backend: B) -> Self {
        let l1i = SetAssocCache::new(config.l1i.clone());
        let l1d = SetAssocCache::new(config.l1d.clone());
        let l2 = SetAssocCache::new(config.l2.clone());
        Self {
            config,
            l1i,
            l1d,
            l2,
            backend,
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// The backend below L2.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the backend (e.g. to flush its SNC on a context
    /// switch).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// L1I statistics.
    pub fn l1i_stats(&self) -> &CounterSet {
        self.l1i.stats()
    }

    /// L1D statistics.
    pub fn l1d_stats(&self) -> &CounterSet {
        self.l1d.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> &CounterSet {
        self.l2.stats()
    }

    /// Resets all cache and backend statistics (after warm-up), keeping
    /// contents.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.backend.reset_stats();
    }

    /// An instruction fetch of the line containing `pc`; returns the
    /// cycle the instruction bytes are available.
    pub fn inst_fetch(&mut self, now: u64, pc: u64) -> u64 {
        let t = now + self.config.l1_latency;
        let outcome = self.l1i.access(pc, AccessKind::Read);
        if outcome.hit {
            return t;
        }
        // L1I victims are never dirty; ignore them.
        self.fill_from_l2(t, pc, LineKind::Instruction)
    }

    /// A data access (load or store) at `addr`; returns the cycle the
    /// data is available (loads) or accepted (stores).
    pub fn data_access(&mut self, now: u64, addr: u64, is_store: bool) -> u64 {
        let kind = if is_store {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let t = now + self.config.l1_latency;
        let outcome = self.l1d.access(addr, kind);
        if let Some(victim) = &outcome.victim {
            if victim.dirty {
                self.l2_absorb_writeback(t, victim.addr);
            }
        }
        if outcome.hit {
            return t;
        }
        self.fill_from_l2(t, addr, LineKind::Data)
    }

    /// An L1 miss looks in L2; on L2 miss the backend supplies the line.
    fn fill_from_l2(&mut self, t: u64, addr: u64, kind: LineKind) -> u64 {
        let t2 = t + self.config.l2_latency;
        let outcome = self.l2.access(addr, AccessKind::Read);
        if let Some(victim) = &outcome.victim {
            if victim.dirty {
                self.backend.line_writeback(t2, victim.addr);
            }
        }
        if outcome.hit {
            return t2;
        }
        self.backend
            .line_read(t2, self.config.l2.line_addr(addr), kind)
    }

    /// A dirty L1D victim merges into L2 (allocating silently if the line
    /// was displaced from L2 — mostly-inclusive approximation).
    fn l2_absorb_writeback(&mut self, now: u64, victim_addr: u64) {
        if let Some(l2_victim) = self.l2.insert(victim_addr, (), true) {
            if l2_victim.dirty {
                self.backend.line_writeback(now, l2_victim.addr);
            }
        }
    }
}

/// The insecure baseline backend: a raw DRAM channel, no cryptography.
///
/// This is the paper's baseline processor against which every slowdown
/// percentage is computed.
#[derive(Debug, Clone)]
pub struct InsecureBackend {
    channel: MemoryChannel,
    line_bytes: u32,
}

impl InsecureBackend {
    /// Creates the baseline backend with the given DRAM latency and
    /// per-transaction channel occupancy.
    pub fn new(mem_latency: u64, occupancy: u64) -> Self {
        Self {
            channel: MemoryChannel::new(mem_latency, occupancy, 8),
            line_bytes: 128,
        }
    }

    /// Overrides the L2 line size used for traffic accounting.
    pub fn with_line_bytes(mut self, line_bytes: u32) -> Self {
        self.line_bytes = line_bytes;
        self
    }
}

impl MemoryBackend for InsecureBackend {
    fn line_read(&mut self, now: u64, _line_addr: u64, _kind: LineKind) -> u64 {
        self.channel
            .demand_read(now, TrafficClass::LineRead, self.line_bytes)
    }

    fn line_read_batch(&mut self, now: u64, reqs: &[(u64, LineKind)]) -> Vec<u64> {
        // No per-line state below L2: a batch is one read burst over
        // consecutive channel slots.
        self.channel
            .demand_read_burst(now, TrafficClass::LineRead, self.line_bytes, reqs.len())
    }

    fn line_writeback(&mut self, now: u64, line_addr: u64) {
        // No encryption: data is ready immediately.
        self.channel
            .enqueue_write(now, now, line_addr, TrafficClass::LineWrite, self.line_bytes);
    }

    fn traffic(&self) -> &CounterSet {
        self.channel.mem().stats()
    }

    fn reset_stats(&mut self) {
        self.channel.reset_stats();
    }

    fn label(&self) -> String {
        "baseline".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> Hierarchy<InsecureBackend> {
        Hierarchy::new(
            HierarchyConfig::paper_default(),
            InsecureBackend::new(100, 0),
        )
    }

    #[test]
    fn l1_hit_costs_l1_latency() {
        let mut h = hierarchy();
        h.data_access(0, 0x4000, false);
        let t = h.data_access(1000, 0x4000, false);
        assert_eq!(t, 1001);
    }

    #[test]
    fn l2_hit_costs_l1_plus_l2() {
        let mut h = hierarchy();
        h.data_access(0, 0x4000, false); // fills both
        // Evict from tiny L1 by touching conflicting addresses, keeping L2.
        // L1D: 32KB 4-way 32B lines -> 256 sets; stride 8KB maps same set.
        for i in 1..=4 {
            h.data_access(100, 0x4000 + i * 8 * 1024, false);
        }
        let t = h.data_access(1000, 0x4000, false);
        assert_eq!(t, 1000 + 1 + 6, "expected L2 hit");
    }

    #[test]
    fn l2_miss_reaches_memory() {
        let mut h = hierarchy();
        let t = h.data_access(0, 0x4000, false);
        assert_eq!(t, 1 + 6 + 100);
        assert_eq!(h.backend().traffic().get("line_reads"), 1);
    }

    #[test]
    fn instruction_fetches_fill_l1i_and_l2() {
        let mut h = hierarchy();
        let cold = h.inst_fetch(0, 0x1000);
        assert_eq!(cold, 107);
        let warm = h.inst_fetch(cold, 0x1000);
        assert_eq!(warm, cold + 1);
        assert_eq!(h.l1i_stats().get("misses"), 1);
        assert_eq!(h.l1i_stats().get("hits"), 1);
    }

    #[test]
    fn dirty_l2_victims_write_back_to_memory() {
        let mut h = hierarchy();
        // Dirty one line in L2 via a store, then stream enough lines
        // through the same L2 set to evict it.
        h.data_access(0, 0x0, true);
        // Flush it from L1D first so L1 does not shield the L2 state. The
        // L1D victim write allocates into L2 marking dirty.
        for i in 1..=4u64 {
            h.data_access(10, i * 8 * 1024, true);
        }
        // L2: 512 sets x 128B lines -> same-set stride = 64KB.
        for i in 1..=4u64 {
            h.data_access(100, i * 64 * 1024, false);
        }
        assert!(
            h.backend().traffic().get("line_writes") >= 1,
            "expected at least one writeback, traffic: {}",
            h.backend().traffic()
        );
    }

    #[test]
    fn store_misses_allocate_like_loads() {
        let mut h = hierarchy();
        let t = h.data_access(0, 0x9000, true);
        assert_eq!(t, 107);
        assert_eq!(h.backend().traffic().get("line_reads"), 1);
        // Subsequent load hits in L1.
        assert_eq!(h.data_access(200, 0x9008, false), 201);
    }

    #[test]
    fn reset_stats_clears_counts_keeps_contents() {
        let mut h = hierarchy();
        h.data_access(0, 0x4000, false);
        h.reset_stats();
        assert_eq!(h.l1d_stats().get("misses"), 0);
        assert_eq!(h.backend().traffic().get("line_reads"), 0);
        assert_eq!(h.data_access(500, 0x4000, false), 501); // still cached
    }

    #[test]
    fn channel_reads_have_priority_over_pending_writes() {
        let mut ch = MemoryChannel::new(100, 8, 8);
        ch.enqueue_write(0, 90, 0x80, TrafficClass::LineWrite, 128);
        // Read at 92: it claims the channel first (done at 192); the
        // ready write drains behind it and only delays *later* traffic.
        let done = ch.demand_read(92, TrafficClass::LineRead, 128);
        assert_eq!(done, 192);
        let next = ch.demand_read(92, TrafficClass::LineRead, 128);
        assert!(next > 200, "second read queues behind the drained write");
    }

    #[test]
    fn read_burst_claims_slots_ahead_of_ready_writes() {
        let mut ch = MemoryChannel::new(100, 8, 8);
        ch.enqueue_write(0, 50, 0x80, TrafficClass::LineWrite, 128);
        let dones = ch.demand_read_burst(60, TrafficClass::LineRead, 128, 3);
        assert_eq!(dones, vec![160, 168, 176]);
        // The ready write backfilled behind the burst.
        assert_eq!(ch.mem().stats().get("line_writes"), 1);
    }

    #[test]
    fn insecure_batch_reads_overlap_on_the_channel() {
        let mut b = InsecureBackend::new(100, 8);
        let reqs: Vec<(u64, LineKind)> =
            (0..4u64).map(|i| (i * 128, LineKind::Data)).collect();
        let dones = b.line_read_batch(0, &reqs);
        assert_eq!(dones, vec![100, 108, 116, 124]);
        assert_eq!(b.traffic().get("line_reads"), 4);
    }

    #[test]
    fn default_batch_shim_serialises_through_line_read() {
        // A backend without an engine gets the compatibility shim.
        #[derive(Debug)]
        struct Fixed(u64);
        impl MemoryBackend for Fixed {
            fn line_read(&mut self, now: u64, _a: u64, _k: LineKind) -> u64 {
                self.0 += 1;
                now + 100
            }
            fn line_writeback(&mut self, _now: u64, _a: u64) {}
            fn traffic(&self) -> &CounterSet {
                unimplemented!("not used in this test")
            }
            fn reset_stats(&mut self) {}
            fn label(&self) -> String {
                "fixed".into()
            }
        }
        let mut f = Fixed(0);
        let dones = f.line_read_batch(7, &[(0, LineKind::Data), (128, LineKind::Data)]);
        assert_eq!(dones, vec![107, 107]);
        assert_eq!(f.0, 2);
        f.drain(1_000); // default drain is a no-op
    }

    #[test]
    fn channel_full_buffer_force_drains() {
        let mut ch = MemoryChannel::new(100, 8, 2);
        ch.enqueue_write(0, 1000, 1, TrafficClass::LineWrite, 128);
        ch.enqueue_write(0, 1000, 2, TrafficClass::LineWrite, 128);
        // Third write forces the head out even though not ready.
        ch.enqueue_write(5, 1000, 3, TrafficClass::LineWrite, 128);
        assert_eq!(ch.mem().stats().get("line_writes"), 1);
    }

    #[test]
    fn insecure_label() {
        assert_eq!(InsecureBackend::new(100, 8).label(), "baseline");
    }
}
