//! The cache hierarchy, its L2 miss-status-holding registers, and the
//! pluggable "below L2" memory interface.
//!
//! `padlock-core` implements [`MemoryBackend`] three ways — insecure,
//! XOM (decrypt-in-series), and one-time-pad with an SNC — which is
//! exactly the boundary the paper draws in Figs. 2 and 4: everything
//! above L2 is inside the security perimeter and identical across modes.
//!
//! # Non-blocking misses
//!
//! The hierarchy is organised around an **L2 MSHR file** of
//! `l2_mshrs` miss-status-holding registers. A load that misses L2
//! allocates an MSHR and returns [`Access::Pending`]; a second access
//! to a line already in flight (an L1/L2 hit on the eagerly allocated
//! line, or a re-miss after the in-flight line was evicted) **merges**
//! into the existing entry instead of issuing a duplicate fill. Pending
//! misses are handed to the backend in one batch — through
//! [`MemoryBackend::line_read_batch_at`], which preserves each miss's
//! own arrival cycle — when the file fills, when the caller forces a
//! drain ([`Hierarchy::drain_pending`], the pipeline's stall-on-use),
//! or when a blocking caller needs a result now.
//!
//! With `l2_mshrs = 1` (the paper default) every allocation fills the
//! file and drains synchronously, so the hierarchy is cycle-for-cycle
//! identical to the historical blocking implementation — the
//! `hierarchy_vs_seed` differential test in `padlock-core` enforces it
//! across every security mode.
//!
//! # Scheduled (eager) completions
//!
//! With [`HierarchyConfig::eager_completions`] enabled and a backend
//! that declares [`MemoryBackend::eager_issue_safe`], a miss is issued
//! the moment its MSHR allocates and the returned completion cycle is
//! recorded on the entry. The access resolves immediately with a real
//! cycle — no parked [`Access::Pending`] loads, so an event-driven core
//! can jump over memory stalls via [`Hierarchy::next_completion`]
//! instead of falling back to batched stall-on-use drains. The entry
//! lingers as a merge target until simulated time passes its completion
//! ([`Hierarchy::retire_completed`]). Eager issue is only offered where
//! it is bit-exact with batching: backends whose per-window resources
//! (crypto pipeline slots, SNC ports, FR-FCFS reordering) could couple
//! two requests of one batch report `eager_issue_safe() == false` and
//! keep the accumulate-then-drain protocol.
//!
//! # Speculative completions with window replay
//!
//! [`HierarchyConfig::speculative_completions`] covers the backends that
//! *cannot* declare eager issue safe: on MSHR allocation the miss is
//! issued to the backend as a speculative singleton window
//! ([`MemoryBackend::speculative_issue_at`]) and the returned cycle is
//! recorded on the entry as a *speculative* completion. The access still
//! parks as [`Access::Pending`] and the speculated cycle is invisible to
//! [`Hierarchy::next_completion`] — the pipeline's drain triggers and
//! time-jump targets are bit-identical to the parked machine. The payoff
//! comes at the drain: if the window stayed a singleton (the common case
//! in pointer-chase phases), [`MemoryBackend::speculative_confirm`]
//! vouches for the speculated cycle and the drain resolves waiters with
//! no controller call at all. If anything else landed in the window — a
//! second miss, a writeback, any batch-coupled resource — the backend
//! rolls the speculated singleton back to its checkpoint and the drain
//! **replays** the whole window through the ordinary batched path at its
//! true arrival set, patching the affected completions. Replay falls
//! back to exactly the parked semantics, so cycles and counters match
//! the parked machine bit-for-bit in every case.

use padlock_cache::{AccessKind, CacheConfig, SetAssocCache};
use padlock_mem::{ChannelSet, ChannelSnapshot, TrafficClass};
use padlock_stats::CounterSet;

pub use padlock_mem::MemoryChannel;

/// Distinguishes instruction fills from data fills below L2.
///
/// The distinction matters to the secure modes: instruction lines are
/// never written back, so the OTP scheme seeds them purely by address and
/// never consults the SNC (§3.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineKind {
    /// An instruction-fetch fill.
    Instruction,
    /// A data fill (load or store write-allocate).
    Data,
}

/// What sits below the L2 cache.
///
/// `line_read` is called when an L2 miss must be satisfied from memory;
/// it returns the cycle at which the line's *plaintext* is available to
/// the processor (for secure modes this includes any decryption that is
/// on the critical path). `line_writeback` is called when a dirty L2
/// victim leaves the chip; it is off the critical path.
pub trait MemoryBackend {
    /// Satisfies an L2 read miss; returns the plaintext-available cycle.
    fn line_read(&mut self, now: u64, line_addr: u64, kind: LineKind) -> u64;

    /// Satisfies many independent L2 read misses issued at `now`,
    /// returning each request's plaintext-available cycle in order.
    ///
    /// This is the memory-level-parallelism surface: backends with an
    /// in-flight transaction queue overlap the requests' memory and
    /// crypto work. The default implementation is a compatibility shim
    /// that serialises through [`MemoryBackend::line_read`], so simple
    /// backends (and existing single-shot callers) keep working
    /// unchanged.
    fn line_read_batch(&mut self, now: u64, reqs: &[(u64, LineKind)]) -> Vec<u64> {
        reqs.iter()
            .map(|&(line_addr, kind)| self.line_read(now, line_addr, kind))
            .collect()
    }

    /// Satisfies many L2 read misses, each with its *own* arrival cycle
    /// (`(arrival, line_addr, kind)` per request), returning the
    /// plaintext-available cycles in order.
    ///
    /// This is the surface the hierarchy's MSHR file drains through:
    /// misses accumulate while the pipeline runs ahead and are issued
    /// together later, but each transaction's latency is still charged
    /// from the cycle it originally left L2. The default implementation
    /// serialises through [`MemoryBackend::line_read`] at each arrival.
    fn line_read_batch_at(&mut self, reqs: &[(u64, u64, LineKind)]) -> Vec<u64> {
        reqs.iter()
            .map(|&(at, line_addr, kind)| self.line_read(at, line_addr, kind))
            .collect()
    }

    /// Accepts a dirty L2 victim for (encryption and) writeback.
    fn line_writeback(&mut self, now: u64, line_addr: u64);

    /// Whether issuing each miss to this backend the moment it
    /// allocates an MSHR — as a singleton batch at its own arrival —
    /// is *bit-exact* with accumulating misses and draining them later
    /// in one [`MemoryBackend::line_read_batch_at`] call.
    ///
    /// That holds only when the backend's per-batch (window-scoped)
    /// resources can never couple two requests of one batch: with more
    /// than one in-flight transaction per window, crypto-pipeline
    /// coalescing, SNC port contention, and FR-FCFS reordering all make
    /// a request's latency depend on its window mates, so eager
    /// singleton windows would diverge from batched ones. Backends
    /// return `true` only for configurations where every window is a
    /// singleton anyway (e.g. `max_inflight == 1`, FIFO drain order).
    /// The default is `false`: batching semantics are always safe.
    fn eager_issue_safe(&self) -> bool {
        false
    }

    /// Speculatively issues one L2 miss as a singleton drain window,
    /// returning the plaintext-available cycle, or `None` when the
    /// backend declines to speculate.
    ///
    /// A successful call opens a *speculative window*: the backend
    /// checkpoints every resource the singleton touches so the issue
    /// can be rolled back. The window stays open until the next
    /// [`MemoryBackend::speculative_confirm`]. Any other mutating call
    /// in between — another `speculative_issue_at`, a writeback, a
    /// batch drain — *couples* the window: the backend rolls the
    /// speculated singleton back to its checkpoint (so the intervening
    /// operation and the eventual replayed batch see the exact
    /// unspeculated state) and poisons the window, making the pending
    /// confirm report failure.
    ///
    /// Backends may also decline up front (returning `None` with **no**
    /// state change) for requests whose processing is not cheaply
    /// reversible — that is the "would this batch decompose?"
    /// predicate: only requests whose singleton cost is independent of
    /// window mates and whose side effects fit the checkpoint are
    /// speculated. The default declines everything, which degrades
    /// [`HierarchyConfig::speculative_completions`] to plain parked
    /// batching.
    fn speculative_issue_at(&mut self, _arrival: u64, _line_addr: u64, _kind: LineKind) -> Option<u64> {
        None
    }

    /// Closes the current speculative window. Returns `true` when a
    /// window was open and undisturbed — the speculated completion is
    /// exact and the caller may resolve with it, skipping the batch
    /// drain. Returns `false` when the window was poisoned (the
    /// speculated issue was already rolled back; the caller must replay
    /// the batch) or no window was open. Always leaves the window
    /// closed and the poison cleared.
    fn speculative_confirm(&mut self) -> bool {
        false
    }

    /// Whether the backend's memory fabric is quiescent at `now` — no
    /// channel bus or bank busy, no transaction queued, no buffered
    /// writeback awaiting a flush. This is the signal an adaptive MSHR
    /// drain policy keys on ([`HierarchyConfig::drain_on_idle`]): when
    /// the fabric is idle, holding a miss back to batch it gains
    /// nothing, so it may as well issue immediately.
    ///
    /// The default says `true`: a backend with no modelled fabric state
    /// is trivially idle, which degrades drain-on-idle to drain-always
    /// — exactly the blocking behaviour such backends already have.
    fn is_idle(&self, _now: u64) -> bool {
        true
    }

    /// Completes deferred background work (queued transactions,
    /// partially packed spill buffers, buffered writebacks) at
    /// measurement wrap-up so traffic counters are exact. Default:
    /// nothing deferred.
    fn drain(&mut self, _now: u64) {}

    /// Memory traffic statistics (per [`TrafficClass`]), aggregated
    /// over every DRAM channel the backend drives.
    fn traffic(&self) -> CounterSet;

    /// Resets statistics after warm-up.
    fn reset_stats(&mut self);

    /// A short label for reports (e.g. `"XOM"`, `"SNC-LRU 64KB"`).
    fn label(&self) -> String;
}

/// Geometry and latencies of the on-chip hierarchy.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// L1 access latency in cycles.
    pub l1_latency: u64,
    /// L2 access latency in cycles (added after an L1 miss).
    pub l2_latency: u64,
    /// L2 miss-status-holding registers: the number of outstanding L2
    /// misses the hierarchy keeps in flight before it must drain them
    /// to the backend. `1` models the paper's blocking memory system
    /// exactly (every miss resolves synchronously).
    pub l2_mshrs: usize,
    /// When `true`, a newly allocated L2 miss drains the MSHR file
    /// immediately if the backend reports its fabric idle
    /// ([`MemoryBackend::is_idle`]) — batching is only worth the wait
    /// when there is in-flight work to overlap with. Default `false`:
    /// misses accumulate until the file fills or a caller forces a
    /// drain, the seed behaviour, bit-exact with every differential.
    ///
    /// Interaction with [`HierarchyConfig::eager_completions`]: eager
    /// issue takes precedence. An allocation that eager-schedules (the
    /// backend is [`MemoryBackend::eager_issue_safe`]) never consults
    /// the idle signal — it already issued, so there is nothing to
    /// drain early — and `idle_drains` stays 0 for those allocations.
    /// The idle-drain branch remains live for *parked* allocations,
    /// i.e. whenever the backend vetoes eager issue.
    ///
    /// Interaction with [`HierarchyConfig::speculative_completions`]:
    /// idle-drain keeps its parked semantics. An allocation that the
    /// parked machine would idle-drain skips speculation entirely (the
    /// window would confirm-and-resolve immediately anyway) and drains,
    /// so `idle_drains` matches the parked machine exactly.
    pub drain_on_idle: bool,
    /// When `true` *and* the backend reports
    /// [`MemoryBackend::eager_issue_safe`], every L2 miss is issued to
    /// the backend the moment its MSHR allocates: the returned
    /// completion cycle is recorded on the entry (a *scheduled*
    /// completion), the access resolves immediately with it, and the
    /// entry lingers only as a merge target until simulated time passes
    /// the completion ([`Hierarchy::retire_completed`]). This removes
    /// parked `Pending` loads entirely, so an event-driven core can
    /// jump straight over memory stalls instead of falling back to
    /// batched stall-on-use drains. Default `false`: accumulate-then-
    /// drain, the seed behaviour.
    pub eager_completions: bool,
    /// When `true`, a miss whose backend *cannot* promise eager-issue
    /// safety is still issued at allocation — as a speculative singleton
    /// window ([`MemoryBackend::speculative_issue_at`]) that the backend
    /// can roll back. Unlike eager mode the access stays parked
    /// ([`Access::Pending`]), `pending_misses` still counts it, and
    /// [`Hierarchy::next_completion`] ignores the speculated cycle, so
    /// every drain trigger fires exactly as in parked mode; the drain
    /// then either confirms the speculation (singleton window — resolve
    /// with no backend call) or replays the coupled batch through the
    /// ordinary path. Bit-exact with parked mode by construction.
    /// Default `false`.
    ///
    /// Mode precedence per allocation: **eager** (both
    /// [`HierarchyConfig::eager_completions`] and
    /// [`MemoryBackend::eager_issue_safe`] hold) → **speculative**
    /// (this knob, backend accepts the speculation) → **parked**.
    pub speculative_completions: bool,
}

impl HierarchyConfig {
    /// The paper's configuration: 32KB 4-way split L1 I/D, 256KB 4-way
    /// unified L2 with 128-byte lines (§5), SimpleScalar default
    /// latencies (1-cycle L1, 6-cycle L2), blocking misses (one MSHR).
    pub fn paper_default() -> Self {
        Self {
            l1i: CacheConfig::new("L1I", 32 * 1024, 32, 4),
            l1d: CacheConfig::new("L1D", 32 * 1024, 32, 4),
            l2: CacheConfig::new("L2", 256 * 1024, 128, 4),
            l1_latency: 1,
            l2_latency: 6,
            l2_mshrs: 1,
            drain_on_idle: false,
            eager_completions: false,
            speculative_completions: false,
        }
    }

    /// The paper's Fig. 8 variant: a 384KB 6-way L2 occupying the same
    /// area as the 256KB L2 plus a 64KB SNC.
    pub fn paper_big_l2() -> Self {
        Self {
            l2: CacheConfig::new("L2", 384 * 1024, 128, 6),
            ..Self::paper_default()
        }
    }

    /// Builder: set the number of L2 MSHRs (non-blocking load depth).
    pub fn with_l2_mshrs(mut self, n: usize) -> Self {
        self.l2_mshrs = n;
        self
    }

    /// Builder: drain newly allocated misses immediately whenever the
    /// backend's fabric is idle (see [`HierarchyConfig::drain_on_idle`]).
    pub fn with_drain_on_idle(mut self, on: bool) -> Self {
        self.drain_on_idle = on;
        self
    }

    /// Builder: schedule each miss's completion at allocation instead of
    /// parking it (see [`HierarchyConfig::eager_completions`]); only
    /// takes effect with a backend whose
    /// [`MemoryBackend::eager_issue_safe`] is `true`.
    pub fn with_eager_completions(mut self, on: bool) -> Self {
        self.eager_completions = on;
        self
    }

    /// Builder: speculatively issue each miss at allocation as a
    /// rollback-able singleton window, replaying the batch when the
    /// window couples (see
    /// [`HierarchyConfig::speculative_completions`]).
    pub fn with_speculative_completions(mut self, on: bool) -> Self {
        self.speculative_completions = on;
        self
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Identifies one outstanding (pending) hierarchy access until it is
/// resolved by an MSHR drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AccessToken(u64);

/// Outcome of a non-blocking hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The access completed (hit, or a miss the hierarchy resolved
    /// synchronously); the data is available at the given cycle.
    Ready(u64),
    /// The access waits on an in-flight L2 miss; its completion cycle
    /// arrives with [`Hierarchy::take_resolutions`] after a drain (or
    /// via [`Hierarchy::resolve`] for a blocking caller).
    Pending(AccessToken),
}

/// One in-flight L2 miss (an MSHR file entry).
#[derive(Debug, Clone, Copy)]
struct MshrEntry {
    /// Stable identity, unique for the hierarchy's lifetime. Waiters
    /// reference entries by this id, never by file index: eager-mode
    /// capacity eviction removes entries from the middle of the file,
    /// which would shift every later index out from under its waiters.
    id: u64,
    line_addr: u64,
    kind: LineKind,
    /// Cycle the miss left L2 (latency is charged from here no matter
    /// when the batch drains).
    issue_at: u64,
    /// The scheduled completion cycle, known at allocation when the
    /// miss was issued eagerly ([`HierarchyConfig::eager_completions`]);
    /// `None` while the miss waits for a batch drain. A scheduled entry
    /// stays in the file purely as a merge target until simulated time
    /// passes its completion.
    completion: Option<u64>,
    /// The *speculative* completion cycle recorded when the miss was
    /// issued as a rollback-able singleton window
    /// ([`HierarchyConfig::speculative_completions`]). Unlike
    /// `completion` this is not yet trusted: it becomes the resolution
    /// only if the backend confirms the window at the drain; a coupled
    /// window clears it and replays the batch.
    spec: Option<u64>,
}

/// One pending access waiting on an MSHR: the primary miss itself, or a
/// secondary access merged into it.
#[derive(Debug, Clone, Copy)]
struct Waiter {
    token: AccessToken,
    /// The stable [`MshrEntry::id`] of the entry whose fill this access
    /// waits on.
    entry: u64,
    /// The access's own pipeline-side ready cycle; completion is
    /// `max(floor, fill done)`.
    floor: u64,
}

/// The on-chip cache hierarchy over a pluggable memory backend.
///
/// # Examples
///
/// ```
/// use padlock_cpu::{Hierarchy, HierarchyConfig, InsecureBackend};
///
/// let mut h = Hierarchy::new(HierarchyConfig::paper_default(),
///                            InsecureBackend::new(100, 8));
/// let cold = h.data_access(0, 0x4000, false);
/// assert!(cold > 100); // cold miss goes to memory
/// let warm = h.data_access(cold, 0x4000, false);
/// assert_eq!(warm, cold + 1); // L1 hit
/// ```
#[derive(Debug)]
pub struct Hierarchy<B> {
    config: HierarchyConfig,
    l1i: SetAssocCache<()>,
    l1d: SetAssocCache<()>,
    l2: SetAssocCache<()>,
    backend: B,
    mshrs: Vec<MshrEntry>,
    waiters: Vec<Waiter>,
    resolutions: Vec<(AccessToken, u64)>,
    next_token: u64,
    next_entry_id: u64,
    /// Whether the current drain window already coupled: a speculation
    /// was aborted, or an entry parked unspeculated. No further
    /// speculation is attempted until the window drains (a coupled
    /// window replays as one batch; speculating into it would corrupt
    /// the replay's arrival set).
    window_coupled: bool,
    mshr_stats: CounterSet,
}

impl<B: MemoryBackend> Hierarchy<B> {
    /// Creates an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the configured MSHR count is zero.
    pub fn new(config: HierarchyConfig, backend: B) -> Self {
        assert!(config.l2_mshrs > 0, "l2_mshrs must be positive");
        let l1i = SetAssocCache::new(config.l1i.clone());
        let l1d = SetAssocCache::new(config.l1d.clone());
        let l2 = SetAssocCache::new(config.l2.clone());
        Self {
            config,
            l1i,
            l1d,
            l2,
            backend,
            mshrs: Vec::new(),
            waiters: Vec::new(),
            resolutions: Vec::new(),
            next_token: 0,
            next_entry_id: 0,
            window_coupled: false,
            mshr_stats: CounterSet::new("mshr"),
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// The backend below L2.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the backend (e.g. to flush its SNC on a context
    /// switch).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// L1I statistics (snapshot of the cache's fixed-slot counters).
    pub fn l1i_stats(&self) -> CounterSet {
        self.l1i.stats()
    }

    /// L1D statistics (snapshot of the cache's fixed-slot counters).
    pub fn l1d_stats(&self) -> CounterSet {
        self.l1d.stats()
    }

    /// L2 statistics (snapshot of the cache's fixed-slot counters).
    pub fn l2_stats(&self) -> CounterSet {
        self.l2.stats()
    }

    /// MSHR file statistics: `allocations`, `merges`, `full_drains`,
    /// `idle_drains`, `eager_issues`, `eager_evictions`,
    /// `speculative_issues`, `window_replays`,
    /// `replay_patched_completions`.
    pub fn mshr_stats(&self) -> &CounterSet {
        &self.mshr_stats
    }

    /// Resets all cache and backend statistics (after warm-up), keeping
    /// contents.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.mshr_stats.reset();
        self.backend.reset_stats();
    }

    fn new_token(&mut self) -> AccessToken {
        self.next_token += 1;
        AccessToken(self.next_token)
    }

    fn new_entry_id(&mut self) -> u64 {
        self.next_entry_id += 1;
        self.next_entry_id
    }

    /// The MSHR index holding `line_addr`'s in-flight fill, if any.
    fn mshr_of(&self, line_addr: u64) -> Option<usize> {
        self.mshrs.iter().position(|m| m.line_addr == line_addr)
    }

    /// Registers a pending access (primary or merged) on MSHR `mshr`.
    /// If the entry's completion is already scheduled (eager issue), the
    /// resolution is queued immediately instead of storing a waiter.
    fn wait_on(&mut self, mshr: usize, floor: u64) -> AccessToken {
        let token = self.new_token();
        if let Some(done) = self.mshrs[mshr].completion {
            self.resolutions.push((token, done.max(floor)));
        } else {
            // Un-issued (parked or speculated) entries resolve at the
            // drain; the waiter keys on the entry's stable id.
            let entry = self.mshrs[mshr].id;
            self.waiters.push(Waiter { token, entry, floor });
        }
        token
    }

    /// Whether allocations run under the speculative-completion scheme:
    /// requested by config and not superseded by eager issue (the
    /// precedence is eager, then speculative, then parked).
    fn spec_mode(&self) -> bool {
        self.config.speculative_completions
            && !(self.config.eager_completions && self.backend.eager_issue_safe())
    }

    /// L2 misses currently held in the MSHR file and not yet issued to
    /// the backend (scheduled entries awaiting retirement don't count:
    /// their fills are already in flight with known completions).
    /// Speculatively issued entries *do* count: their completions are
    /// not yet trusted, so they wait for the next drain exactly like
    /// parked entries.
    pub fn pending_misses(&self) -> usize {
        self.mshrs
            .iter()
            .filter(|m| m.completion.is_none())
            .count()
    }

    /// The earliest scheduled miss completion the caller has not yet
    /// collected: the minimum over queued resolutions and over
    /// eagerly issued MSHR entries. `None` when nothing is scheduled
    /// (un-issued misses have no completion cycle until a drain).
    /// Speculative completions are never surfaced here — handing them
    /// out before the drain confirms them would let the run loop act
    /// on a cycle that a window replay may later move.
    ///
    /// This is an event source for an event-driven core's time jump:
    /// together with the completion cycles already handed out, it
    /// bounds the next cycle at which hierarchy state can change.
    pub fn next_completion(&self) -> Option<u64> {
        let scheduled = self.mshrs.iter().filter_map(|m| m.completion).min();
        let queued = self.resolutions.iter().map(|&(_, done)| done).min();
        match (scheduled, queued) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Drops scheduled (eagerly issued) MSHR entries whose completion
    /// cycle the clock has passed: once the fill has landed, the line is
    /// plain L2 state and the entry's merge window closes.
    pub fn retire_completed(&mut self, now: u64) {
        if self.mshrs.is_empty() {
            return;
        }
        self.mshrs
            .retain(|m| m.completion.is_none_or(|done| done > now));
    }

    /// Issues every in-flight miss to the backend in one batch
    /// (each at its own arrival cycle) and resolves all waiters. The
    /// completion cycles are collected via
    /// [`Hierarchy::take_resolutions`].
    ///
    /// Scheduled entries (eager issue) are not re-issued: their
    /// completions were already delivered at allocation, so they stay
    /// resident as merge targets and a file holding only scheduled
    /// entries drains to nothing.
    ///
    /// In speculative mode this is where the window closes: a clean
    /// confirm promotes the speculative completion with no backend
    /// work, while a coupled window replays the whole batch through
    /// the backend at its true arrival set (the backend rolled itself
    /// back when the coupling was detected).
    pub fn drain_pending(&mut self) {
        if self.mshrs.iter().all(|m| m.completion.is_some()) {
            return; // empty, or everything already scheduled
        }
        if self.spec_mode() {
            if self.backend.speculative_confirm() {
                // Clean confirm: the window held exactly one request,
                // the speculated singleton, and its issue is already
                // committed in the backend. Its speculative completion
                // is the true one; no batch call.
                for w in self.waiters.drain(..) {
                    let done = self
                        .mshrs
                        .iter()
                        .find(|m| m.id == w.entry)
                        .and_then(|m| m.spec)
                        .expect("a confirmed window holds only speculated entries");
                    self.resolutions.push((w.token, done.max(w.floor)));
                }
                self.mshrs.retain(|m| m.completion.is_some());
                self.window_coupled = false;
                return;
            }
            // The window coupled (or never opened). Any speculative
            // completions still marked on entries were rolled back in
            // the backend at coupling time and get patched by the
            // replay below.
            let patched = self
                .mshrs
                .iter()
                .filter(|m| m.completion.is_none() && m.spec.is_some())
                .count() as u64;
            if patched > 0 {
                self.mshr_stats.incr("window_replays");
                self.mshr_stats.add("replay_patched_completions", patched);
            }
            for m in &mut self.mshrs {
                m.spec = None;
            }
        }
        // Batch every un-issued entry at its true arrival. Scheduled
        // (eager) entries keep their completions and stay resident;
        // waiters find their entry by stable id, immune to any index
        // shifts from eager capacity evictions.
        let mut ids: Vec<u64> = Vec::new();
        let mut reqs: Vec<(u64, u64, LineKind)> = Vec::new();
        for m in &self.mshrs {
            if m.completion.is_none() {
                ids.push(m.id);
                reqs.push((m.issue_at, m.line_addr, m.kind));
            }
        }
        let dones = self.backend.line_read_batch_at(&reqs);
        for w in self.waiters.drain(..) {
            let pos = ids
                .iter()
                .position(|&id| id == w.entry)
                .expect("waiter's entry is un-issued and drains here");
            self.resolutions.push((w.token, dones[pos].max(w.floor)));
        }
        self.mshrs.retain(|m| m.completion.is_some());
        self.window_coupled = false;
    }

    /// Moves every resolution produced by drains since the last call
    /// into `out` as `(token, completion cycle)` pairs.
    pub fn take_resolutions(&mut self, out: &mut Vec<(AccessToken, u64)>) {
        out.append(&mut self.resolutions);
    }

    /// Blocks on one pending access: drains the MSHR file if the token
    /// is still unresolved and returns its completion cycle. Other
    /// resolutions produced by the drain stay queued for
    /// [`Hierarchy::take_resolutions`].
    ///
    /// # Panics
    ///
    /// Panics on a token that was already consumed.
    pub fn resolve(&mut self, token: AccessToken) -> u64 {
        if let Some(done) = self.take_resolution_of(token) {
            return done;
        }
        self.drain_pending();
        self.take_resolution_of(token)
            .expect("pending token must resolve on drain")
    }

    fn take_resolution_of(&mut self, token: AccessToken) -> Option<u64> {
        let idx = self.resolutions.iter().position(|&(t, _)| t == token)?;
        Some(self.resolutions.swap_remove(idx).1)
    }

    /// An instruction fetch of the line containing `pc`; returns the
    /// cycle the instruction bytes are available.
    ///
    /// Instruction misses stall the front end regardless, so the fetch
    /// blocks — but it first drains any pending data misses (their
    /// latencies are unaffected: each is charged from its own arrival).
    pub fn inst_fetch(&mut self, now: u64, pc: u64) -> u64 {
        self.retire_completed(now);
        let t = now + self.config.l1_latency;
        let outcome = self.l1i.access(pc, AccessKind::Read);
        if outcome.hit {
            return t;
        }
        // L1I victims are never dirty; ignore them.
        match self.fill_from_l2(t, pc, LineKind::Instruction) {
            Access::Ready(done) => done,
            Access::Pending(token) => self.resolve(token),
        }
    }

    /// A blocking data access (load or store) at `addr`; returns the
    /// cycle the data is available (loads) or accepted (stores).
    ///
    /// Equivalent to [`Hierarchy::data_access_nb`] followed by an
    /// immediate [`Hierarchy::resolve`]; with `l2_mshrs = 1` the two
    /// are identical.
    pub fn data_access(&mut self, now: u64, addr: u64, is_store: bool) -> u64 {
        match self.data_access_nb(now, addr, is_store) {
            Access::Ready(done) => done,
            Access::Pending(token) => self.resolve(token),
        }
    }

    /// A non-blocking data access (load or store) at `addr`.
    ///
    /// Returns [`Access::Ready`] for hits and synchronously resolved
    /// misses, or [`Access::Pending`] when the access waits on an
    /// in-flight L2 miss (its own, or an earlier one it merged into).
    pub fn data_access_nb(&mut self, now: u64, addr: u64, is_store: bool) -> Access {
        self.retire_completed(now);
        let kind = if is_store {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let t = now + self.config.l1_latency;
        let outcome = self.l1d.access(addr, kind);
        if let Some(victim) = &outcome.victim {
            if victim.dirty {
                self.l2_absorb_writeback(t, victim.addr);
            }
        }
        if outcome.hit {
            // An L1 hit on a line whose L2 fill is still in flight must
            // wait for the fill (the line was allocated eagerly when the
            // miss was recorded).
            if let Some(m) = self.mshr_of(self.config.l2.line_addr(addr)) {
                self.mshr_stats.incr("merges");
                let token = self.wait_on(m, t);
                return Access::Pending(token);
            }
            return Access::Ready(t);
        }
        self.fill_from_l2(t, addr, LineKind::Data)
    }

    /// An L1 miss looks in L2; on L2 miss an MSHR tracks the fill.
    fn fill_from_l2(&mut self, t: u64, addr: u64, kind: LineKind) -> Access {
        let t2 = t + self.config.l2_latency;
        let line_addr = self.config.l2.line_addr(addr);
        let outcome = self.l2.access(addr, AccessKind::Read);
        if let Some(victim) = &outcome.victim {
            if victim.dirty {
                self.backend.line_writeback(t2, victim.addr);
            }
        }
        if let Some(m) = self.mshr_of(line_addr) {
            // The line is already in flight: an L2 hit on the eagerly
            // allocated line, or a re-miss after it was evicted
            // mid-flight. Either way the access merges into the
            // existing MSHR instead of issuing a duplicate fill.
            self.mshr_stats.incr("merges");
            let token = self.wait_on(m, t2);
            return Access::Pending(token);
        }
        if outcome.hit {
            return Access::Ready(t2);
        }
        // Allocate an MSHR. Capacity differs by mode: in eager mode a
        // file full of scheduled entries persists between accesses
        // (their merge windows are still open), so a full file evicts
        // a scheduled register below. In parked and speculative modes
        // an allocation that fills the file drains it synchronously
        // below, so the file always has a free register on entry.
        self.mshr_stats.incr("allocations");
        if self.config.eager_completions && self.backend.eager_issue_safe() {
            // Scheduled completion: issue the miss now as a singleton
            // batch at its own arrival (bit-exact with batching, per
            // the backend's own safety declaration) and record the
            // completion on the entry. The entry lingers as a merge
            // target until the clock passes the completion.
            if self.mshrs.len() == self.config.l2_mshrs {
                // Capacity: free the scheduled register whose fill
                // lands soonest. Removal shifts later indices, which
                // is safe because waiters reference entries by stable
                // id, never by position.
                if let Some((idx, _)) = self
                    .mshrs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, m)| m.completion.map(|d| (i, d)))
                    .min_by_key(|&(_, d)| d)
                {
                    self.mshrs.remove(idx);
                    self.mshr_stats.incr("eager_evictions");
                }
            }
            let done = self
                .backend
                .line_read_batch_at(&[(t2, line_addr, kind)])
                .first()
                .copied()
                .expect("backend returns one completion per request");
            let id = self.new_entry_id();
            self.mshrs.push(MshrEntry {
                id,
                line_addr,
                kind,
                issue_at: t2,
                completion: Some(done),
                spec: None,
            });
            self.mshr_stats.incr("eager_issues");
            return Access::Ready(done.max(t2));
        }
        let spec = if self.spec_mode() {
            self.speculative_slot(t2, line_addr, kind)
        } else {
            None
        };
        if self.spec_mode() && spec.is_none() {
            // A parked entry is joining the window (backend declined,
            // coupling aborted the open window, or the idle gate
            // fired): no further speculation until the window drains,
            // or a replay after a clean confirm would re-issue the
            // already-committed speculated read.
            self.window_coupled = true;
        }
        let id = self.new_entry_id();
        self.mshrs.push(MshrEntry {
            id,
            line_addr,
            kind,
            issue_at: t2,
            completion: None,
            spec,
        });
        let token = self.wait_on(self.mshrs.len() - 1, t2);
        if self.mshrs.len() == self.config.l2_mshrs {
            // File full on this allocation: drain now. With one MSHR
            // this happens on every miss — the blocking seed machine.
            self.mshr_stats.incr("full_drains");
            self.drain_pending();
            let done = self
                .take_resolution_of(token)
                .expect("own miss resolves in this drain");
            return Access::Ready(done);
        }
        if self.config.drain_on_idle && self.backend.is_idle(t2) {
            // Adaptive drain: the fabric below has nothing in flight, so
            // batching this miss with later ones buys no overlap — issue
            // the file now and return this access resolved.
            self.mshr_stats.incr("idle_drains");
            self.drain_pending();
            let done = self
                .take_resolution_of(token)
                .expect("own miss resolves in this drain");
            return Access::Ready(done);
        }
        Access::Pending(token)
    }

    /// Attempts a speculative issue for a new allocation, returning the
    /// speculative completion cycle, or `None` when this entry must
    /// park (and the caller marks the window coupled).
    fn speculative_slot(&mut self, t2: u64, line_addr: u64, kind: LineKind) -> Option<u64> {
        if self.window_coupled {
            return None;
        }
        if self
            .mshrs
            .iter()
            .any(|m| m.completion.is_none() && m.spec.is_some())
        {
            // A second request landed in the open window: coupling.
            // Issuing into an open window makes the backend roll back
            // the speculated read and poison the window, so from here
            // the backend state is exactly what a parked machine would
            // hold, and the drain replays the whole batch.
            let aborted = self.backend.speculative_issue_at(t2, line_addr, kind);
            debug_assert!(aborted.is_none(), "issue into an open window must abort");
            return None;
        }
        // The parked machine's idle-drain gate must see parked-equal
        // backend state, which holds right now (no open window). If it
        // would drain this allocation on idle, skip speculation so the
        // identical idle-drain branch below fires.
        if self.config.drain_on_idle && self.backend.is_idle(t2) {
            return None;
        }
        let spec = self.backend.speculative_issue_at(t2, line_addr, kind);
        if spec.is_some() {
            self.mshr_stats.incr("speculative_issues");
        }
        spec
    }

    /// A dirty L1D victim merges into L2 (allocating silently if the line
    /// was displaced from L2 — mostly-inclusive approximation).
    fn l2_absorb_writeback(&mut self, now: u64, victim_addr: u64) {
        if let Some(l2_victim) = self.l2.insert(victim_addr, (), true) {
            if l2_victim.dirty {
                self.backend.line_writeback(now, l2_victim.addr);
            }
        }
    }
}

/// The speculative-window state of a backend: closed (no speculation in
/// flight), open on one speculated line, or poisoned (a coupling rolled
/// the window back; no further speculation until the drain confirms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpecPhase {
    Closed,
    Open { line_addr: u64 },
    Poisoned,
}

/// The insecure baseline backend: raw DRAM channels, no cryptography.
///
/// This is the paper's baseline processor against which every slowdown
/// percentage is computed.
#[derive(Debug, Clone)]
pub struct InsecureBackend {
    channels: ChannelSet,
    line_bytes: u32,
    mem_latency: u64,
    occupancy: u64,
    num_channels: usize,
    bank_config: padlock_mem::BankConfig,
    drain_order: padlock_mem::DrainOrder,
    spec_phase: SpecPhase,
    spec_snapshot: ChannelSnapshot,
}

impl InsecureBackend {
    /// Creates the baseline backend with the given DRAM latency and
    /// per-transaction channel occupancy (one flat channel).
    pub fn new(mem_latency: u64, occupancy: u64) -> Self {
        Self {
            channels: ChannelSet::new(1, mem_latency, occupancy, 8, 128),
            line_bytes: 128,
            mem_latency,
            occupancy,
            num_channels: 1,
            bank_config: padlock_mem::BankConfig::flat(),
            drain_order: padlock_mem::DrainOrder::Fifo,
            spec_phase: SpecPhase::Closed,
            spec_snapshot: ChannelSnapshot::new(),
        }
    }

    /// Rolls back an open speculative window: restores the speculated
    /// line's channel to its pre-issue snapshot and poisons the window.
    /// No-op when the window is closed or already poisoned.
    fn spec_abort(&mut self) {
        if let SpecPhase::Open { line_addr } = self.spec_phase {
            self.channels.restore_channel(line_addr, &self.spec_snapshot);
            self.spec_phase = SpecPhase::Poisoned;
        }
    }

    fn rebuild(&mut self) {
        self.channels = ChannelSet::new(
            self.num_channels,
            self.mem_latency,
            self.occupancy,
            8,
            u64::from(self.line_bytes),
        )
        .with_banks(self.bank_config);
    }

    /// Overrides the L2 line size used for traffic accounting and
    /// channel interleaving.
    pub fn with_line_bytes(mut self, line_bytes: u32) -> Self {
        self.line_bytes = line_bytes;
        self.bank_config.row_bytes = u64::from(line_bytes) * padlock_mem::ROW_LINES;
        self.rebuild();
        self
    }

    /// Spreads traffic over `n` line-interleaved DRAM channels.
    pub fn with_channels(mut self, n: usize) -> Self {
        self.num_channels = n;
        self.rebuild();
        self
    }

    /// Adds `n` DRAM banks with row-buffer timing beneath every channel
    /// (`1` restores the flat uniform-latency model), so the baseline
    /// machine sees the same memory device physics as the secure ones.
    /// The page policy set by [`InsecureBackend::with_page_policy`]
    /// survives.
    pub fn with_banks(mut self, n: usize) -> Self {
        let policy = self.bank_config.page_policy;
        self.bank_config =
            padlock_mem::BankConfig::banked(n, self.line_bytes).with_page_policy(policy);
        self.rebuild();
        self
    }

    /// Sets the bank page policy (open rows vs auto-precharge), so the
    /// baseline machine can be swept along the same `--page` axis as
    /// the secure ones.
    pub fn with_page_policy(mut self, policy: padlock_mem::PagePolicy) -> Self {
        self.bank_config.page_policy = policy;
        self.rebuild();
        self
    }

    /// Sets the batch drain order: `RowFirst` issues a batch's reads
    /// grouped by `(channel, bank, row)` (FR-FCFS style) while still
    /// returning completions in request order; `Fifo` (the default)
    /// issues in request order, the seed behaviour.
    pub fn with_drain_order(mut self, order: padlock_mem::DrainOrder) -> Self {
        self.drain_order = order;
        self
    }

    /// Issues a batch of reads in the configured drain order, returning
    /// completion cycles in request order.
    fn issue_batch(&mut self, reqs: &[(u64, u64)]) -> Vec<u64> {
        match self.drain_order {
            padlock_mem::DrainOrder::Fifo => reqs
                .iter()
                .map(|&(at, addr)| {
                    self.channels
                        .demand_read(at, addr, TrafficClass::LineRead, self.line_bytes)
                })
                .collect(),
            padlock_mem::DrainOrder::RowFirst => {
                let mut out = vec![0u64; reqs.len()];
                for i in self.channels.row_first_order(reqs) {
                    let (at, addr) = reqs[i];
                    out[i] = self
                        .channels
                        .demand_read(at, addr, TrafficClass::LineRead, self.line_bytes);
                }
                out
            }
        }
    }
}

impl MemoryBackend for InsecureBackend {
    fn line_read(&mut self, now: u64, line_addr: u64, _kind: LineKind) -> u64 {
        self.spec_abort();
        self.channels
            .demand_read(now, line_addr, TrafficClass::LineRead, self.line_bytes)
    }

    fn line_read_batch(&mut self, now: u64, reqs: &[(u64, LineKind)]) -> Vec<u64> {
        // No per-line state below L2: a batch claims occupancy slots on
        // each line's own channel, in the configured drain order.
        self.spec_abort();
        let reqs: Vec<(u64, u64)> = reqs.iter().map(|&(addr, _)| (now, addr)).collect();
        self.issue_batch(&reqs)
    }

    fn line_read_batch_at(&mut self, reqs: &[(u64, u64, LineKind)]) -> Vec<u64> {
        self.spec_abort();
        let reqs: Vec<(u64, u64)> = reqs.iter().map(|&(at, addr, _)| (at, addr)).collect();
        self.issue_batch(&reqs)
    }

    fn line_writeback(&mut self, now: u64, line_addr: u64) {
        // No encryption: data is ready immediately. A writeback landing
        // in an open speculative window couples it (the write buffer
        // can forward into the speculated read's drain), so abort.
        self.spec_abort();
        self.channels
            .enqueue_write(now, now, line_addr, TrafficClass::LineWrite, self.line_bytes);
    }

    fn speculative_issue_at(&mut self, arrival: u64, line_addr: u64, _kind: LineKind) -> Option<u64> {
        match self.spec_phase {
            SpecPhase::Poisoned => None,
            SpecPhase::Open { .. } => {
                // Second request in the window: coupling. Roll back.
                self.spec_abort();
                None
            }
            SpecPhase::Closed => {
                // Would a batch holding only this read decompose? No:
                // a singleton drains identically in either order
                // (`row_first_order` on one element is the identity),
                // so a lone read is always safe to issue now. Later
                // arrivals in the window abort above instead.
                self.channels
                    .snapshot_channel(line_addr, &mut self.spec_snapshot);
                let done = self.channels.demand_read(
                    arrival,
                    line_addr,
                    TrafficClass::LineRead,
                    self.line_bytes,
                );
                self.spec_phase = SpecPhase::Open { line_addr };
                Some(done)
            }
        }
    }

    fn speculative_confirm(&mut self) -> bool {
        let ok = matches!(self.spec_phase, SpecPhase::Open { .. });
        self.spec_phase = SpecPhase::Closed;
        ok
    }

    fn is_idle(&self, now: u64) -> bool {
        self.channels.is_idle(now)
    }

    fn eager_issue_safe(&self) -> bool {
        // FIFO order issues a batch's reads one at a time against the
        // channel state, so N singleton batches are identical to one
        // N-request batch; FR-FCFS reorders within a batch and is not.
        // Writebacks go straight to the channels at call time either
        // way, so no queued state couples to batch boundaries.
        self.drain_order == padlock_mem::DrainOrder::Fifo
    }

    fn drain(&mut self, now: u64) {
        self.spec_abort();
        self.channels.flush_writes(now);
    }

    fn traffic(&self) -> CounterSet {
        self.channels.stats()
    }

    fn reset_stats(&mut self) {
        self.spec_abort();
        self.channels.reset_stats();
    }

    fn label(&self) -> String {
        let mut label = "baseline".to_string();
        if self.num_channels > 1 {
            label.push_str(&format!(" x{}ch", self.num_channels));
        }
        if self.bank_config.banks > 1 {
            label.push_str(&format!(" x{}bk", self.bank_config.banks));
            if self.bank_config.page_policy == padlock_mem::PagePolicy::Closed {
                label.push_str("-cp");
            }
        }
        if self.drain_order == padlock_mem::DrainOrder::RowFirst {
            label.push_str(" frfcfs");
        }
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> Hierarchy<InsecureBackend> {
        Hierarchy::new(
            HierarchyConfig::paper_default(),
            InsecureBackend::new(100, 0),
        )
    }

    fn hierarchy_mshrs(n: usize) -> Hierarchy<InsecureBackend> {
        Hierarchy::new(
            HierarchyConfig::paper_default().with_l2_mshrs(n),
            InsecureBackend::new(100, 8),
        )
    }

    #[test]
    fn baseline_backend_supports_banked_dram() {
        let mut b = InsecureBackend::new(100, 8).with_channels(2).with_banks(4);
        assert_eq!(b.label(), "baseline x2ch x4bk");
        // Two reads of the same row on the same channel (lines 0 and 2
        // both route to channel 0): the second is a row hit.
        b.line_read(0, 0x0, LineKind::Data);
        let done = b.line_read(1_000, 0x100, LineKind::Data);
        assert_eq!(
            done,
            1_000 + padlock_mem::DEFAULT_ROW_HIT_CYCLES,
            "open-row read should cost the hit latency"
        );
        assert_eq!(b.traffic().get("row_hits"), 1);
        // with_banks(1) restores the flat model.
        let mut flat = InsecureBackend::new(100, 8).with_banks(1);
        assert_eq!(flat.line_read(0, 0x0, LineKind::Data), 100);
        assert_eq!(flat.label(), "baseline");
    }

    #[test]
    fn l1_hit_costs_l1_latency() {
        let mut h = hierarchy();
        h.data_access(0, 0x4000, false);
        let t = h.data_access(1000, 0x4000, false);
        assert_eq!(t, 1001);
    }

    #[test]
    fn l2_hit_costs_l1_plus_l2() {
        let mut h = hierarchy();
        h.data_access(0, 0x4000, false); // fills both
        // Evict from tiny L1 by touching conflicting addresses, keeping L2.
        // L1D: 32KB 4-way 32B lines -> 256 sets; stride 8KB maps same set.
        for i in 1..=4 {
            h.data_access(100, 0x4000 + i * 8 * 1024, false);
        }
        let t = h.data_access(1000, 0x4000, false);
        assert_eq!(t, 1000 + 1 + 6, "expected L2 hit");
    }

    #[test]
    fn l2_miss_reaches_memory() {
        let mut h = hierarchy();
        let t = h.data_access(0, 0x4000, false);
        assert_eq!(t, 1 + 6 + 100);
        assert_eq!(h.backend().traffic().get("line_reads"), 1);
    }

    #[test]
    fn instruction_fetches_fill_l1i_and_l2() {
        let mut h = hierarchy();
        let cold = h.inst_fetch(0, 0x1000);
        assert_eq!(cold, 107);
        let warm = h.inst_fetch(cold, 0x1000);
        assert_eq!(warm, cold + 1);
        assert_eq!(h.l1i_stats().get("misses"), 1);
        assert_eq!(h.l1i_stats().get("hits"), 1);
    }

    #[test]
    fn dirty_l2_victims_write_back_to_memory() {
        let mut h = hierarchy();
        // Dirty one line in L2 via a store, then stream enough lines
        // through the same L2 set to evict it.
        h.data_access(0, 0x0, true);
        // Flush it from L1D first so L1 does not shield the L2 state. The
        // L1D victim write allocates into L2 marking dirty.
        for i in 1..=4u64 {
            h.data_access(10, i * 8 * 1024, true);
        }
        // L2: 512 sets x 128B lines -> same-set stride = 64KB.
        for i in 1..=4u64 {
            h.data_access(100, i * 64 * 1024, false);
        }
        assert!(
            h.backend().traffic().get("line_writes") >= 1,
            "expected at least one writeback, traffic: {}",
            h.backend().traffic()
        );
    }

    #[test]
    fn store_misses_allocate_like_loads() {
        let mut h = hierarchy();
        let t = h.data_access(0, 0x9000, true);
        assert_eq!(t, 107);
        assert_eq!(h.backend().traffic().get("line_reads"), 1);
        // Subsequent load hits in L1.
        assert_eq!(h.data_access(200, 0x9008, false), 201);
    }

    #[test]
    fn reset_stats_clears_counts_keeps_contents() {
        let mut h = hierarchy();
        h.data_access(0, 0x4000, false);
        h.reset_stats();
        assert_eq!(h.l1d_stats().get("misses"), 0);
        assert_eq!(h.backend().traffic().get("line_reads"), 0);
        assert_eq!(h.data_access(500, 0x4000, false), 501); // still cached
    }

    #[test]
    fn insecure_row_first_batches_group_row_mates() {
        use padlock_mem::{
            DrainOrder, ROW_LINES, DEFAULT_ROW_CONFLICT_CYCLES, DEFAULT_ROW_HIT_CYCLES,
        };
        let row = 128 * ROW_LINES;
        // One channel, two banks: rows 0 and 2 share bank 0, and the
        // arrival order ping-pongs between them.
        let reqs: Vec<(u64, LineKind)> = [0, 2 * row, 128, 2 * row + 128]
            .into_iter()
            .map(|a| (a, LineKind::Data))
            .collect();
        let mut fifo = InsecureBackend::new(100, 8).with_banks(2);
        let mut rowf = InsecureBackend::new(100, 8)
            .with_banks(2)
            .with_drain_order(DrainOrder::RowFirst);
        assert_eq!(rowf.label(), "baseline x2bk frfcfs");
        let f = fifo.line_read_batch(0, &reqs);
        let r = rowf.line_read_batch(0, &reqs);
        assert_eq!(fifo.traffic().get("row_hits"), 0);
        assert_eq!(rowf.traffic().get("row_hits"), 2);
        assert_eq!(
            f.iter().max().unwrap() - r.iter().max().unwrap(),
            2 * (DEFAULT_ROW_CONFLICT_CYCLES - DEFAULT_ROW_HIT_CYCLES)
        );
        // On a flat fabric the reorder degenerates to request order.
        let mut flat_fifo = InsecureBackend::new(100, 8).with_channels(2);
        let mut flat_rowf = InsecureBackend::new(100, 8)
            .with_channels(2)
            .with_drain_order(DrainOrder::RowFirst);
        let reqs: Vec<(u64, LineKind)> = (0..12u64)
            .map(|i| (i % 5 * 128, LineKind::Data))
            .collect();
        assert_eq!(
            flat_fifo.line_read_batch(0, &reqs),
            flat_rowf.line_read_batch(0, &reqs)
        );
    }

    #[test]
    fn insecure_closed_page_policy_threads_through() {
        use padlock_mem::{PagePolicy, DEFAULT_ROW_CLOSED_CYCLES};
        let mut b = InsecureBackend::new(100, 8)
            .with_page_policy(PagePolicy::Closed)
            .with_banks(2);
        assert_eq!(b.label(), "baseline x2bk-cp");
        // Same-row repeat: still no hit, flat closed-page latency.
        b.line_read(0, 0x0, LineKind::Data);
        let done = b.line_read(1_000, 0x100, LineKind::Data);
        assert_eq!(done, 1_000 + DEFAULT_ROW_CLOSED_CYCLES);
        assert_eq!(b.traffic().get("row_hits"), 0);
        assert_eq!(b.traffic().get("row_conflicts"), 2);
    }

    #[test]
    fn insecure_batch_reads_overlap_on_the_channel() {
        let mut b = InsecureBackend::new(100, 8);
        let reqs: Vec<(u64, LineKind)> =
            (0..4u64).map(|i| (i * 128, LineKind::Data)).collect();
        let dones = b.line_read_batch(0, &reqs);
        assert_eq!(dones, vec![100, 108, 116, 124]);
        assert_eq!(b.traffic().get("line_reads"), 4);
    }

    #[test]
    fn insecure_channels_spread_batch_reads() {
        let mut b = InsecureBackend::new(100, 8).with_channels(4);
        let reqs: Vec<(u64, LineKind)> =
            (0..4u64).map(|i| (i * 128, LineKind::Data)).collect();
        // Four lines on four channels: all complete uncontended.
        assert_eq!(b.line_read_batch(0, &reqs), vec![100, 100, 100, 100]);
        assert_eq!(b.traffic().get("line_reads"), 4);
        assert_eq!(b.label(), "baseline x4ch");
    }

    #[test]
    fn default_batch_shims_serialise_through_line_read() {
        // A backend without an engine gets the compatibility shims.
        #[derive(Debug)]
        struct Fixed(u64);
        impl MemoryBackend for Fixed {
            fn line_read(&mut self, now: u64, _a: u64, _k: LineKind) -> u64 {
                self.0 += 1;
                now + 100
            }
            fn line_writeback(&mut self, _now: u64, _a: u64) {}
            fn traffic(&self) -> CounterSet {
                CounterSet::new("fixed")
            }
            fn reset_stats(&mut self) {}
            fn label(&self) -> String {
                "fixed".into()
            }
        }
        let mut f = Fixed(0);
        let dones = f.line_read_batch(7, &[(0, LineKind::Data), (128, LineKind::Data)]);
        assert_eq!(dones, vec![107, 107]);
        assert_eq!(f.0, 2);
        let dones = f.line_read_batch_at(&[(3, 0, LineKind::Data), (9, 128, LineKind::Data)]);
        assert_eq!(dones, vec![103, 109]);
        assert_eq!(f.0, 4);
        f.drain(1_000); // default drain is a no-op
    }

    #[test]
    fn single_mshr_misses_resolve_synchronously() {
        let mut h = hierarchy();
        match h.data_access_nb(0, 0x4000, false) {
            Access::Ready(done) => assert_eq!(done, 107),
            Access::Pending(_) => panic!("one-MSHR misses must block"),
        }
        assert_eq!(h.pending_misses(), 0);
        assert_eq!(h.mshr_stats().get("full_drains"), 1);
    }

    #[test]
    fn deep_mshr_file_keeps_misses_in_flight_until_drained() {
        let mut h = hierarchy_mshrs(4);
        let mut tokens = Vec::new();
        for i in 0..3u64 {
            match h.data_access_nb(i, 0x10_0000 + i * 128, false) {
                Access::Pending(tok) => tokens.push(tok),
                Access::Ready(_) => panic!("miss {i} should stay in flight"),
            }
        }
        assert_eq!(h.pending_misses(), 3);
        assert_eq!(h.backend().traffic().get("line_reads"), 0, "not yet issued");
        h.drain_pending();
        let mut resolved = Vec::new();
        h.take_resolutions(&mut resolved);
        assert_eq!(resolved.len(), 3);
        assert_eq!(h.backend().traffic().get("line_reads"), 3);
        for tok in &tokens {
            assert!(resolved.iter().any(|(t, done)| t == tok && *done >= 107));
        }
    }

    #[test]
    fn filling_the_mshr_file_forces_a_batch_drain() {
        let mut h = hierarchy_mshrs(2);
        let first = h.data_access_nb(0, 0x10_0000, false);
        assert!(matches!(first, Access::Pending(_)));
        // Second miss fills the 2-entry file: both issue as one batch
        // and the second returns ready.
        match h.data_access_nb(5, 0x10_0080, false) {
            Access::Ready(done) => assert!(done >= 112),
            Access::Pending(_) => panic!("filling the file must drain"),
        }
        assert_eq!(h.pending_misses(), 0);
        assert_eq!(h.backend().traffic().get("line_reads"), 2);
        // The first miss's resolution is waiting for collection.
        let mut resolved = Vec::new();
        h.take_resolutions(&mut resolved);
        assert_eq!(resolved.len(), 1);
    }

    #[test]
    fn secondary_miss_to_inflight_line_merges() {
        let mut h = hierarchy_mshrs(4);
        let a = h.data_access_nb(0, 0x10_0000, false);
        // Same 128B L2 line, different 32B L1 line: L2 "hits" on the
        // eagerly allocated line but must wait for the in-flight fill.
        let b = h.data_access_nb(1, 0x10_0040, false);
        assert!(matches!(a, Access::Pending(_)));
        let Access::Pending(tok_b) = b else {
            panic!("merged access must be pending");
        };
        assert_eq!(h.pending_misses(), 1, "one line, one MSHR");
        assert_eq!(h.mshr_stats().get("merges"), 1);
        let done_b = h.resolve(tok_b);
        assert!(done_b >= 107);
        // Only one fill reached memory.
        assert_eq!(h.backend().traffic().get("line_reads"), 1);
    }

    #[test]
    fn l1_hit_on_inflight_line_waits_for_the_fill() {
        let mut h = hierarchy_mshrs(4);
        let Access::Pending(tok_a) = h.data_access_nb(0, 0x10_0000, false) else {
            panic!("cold miss pends");
        };
        // Same L1 line: hits L1 but the fill is still in flight.
        let Access::Pending(tok_b) = h.data_access_nb(2, 0x10_0008, false) else {
            panic!("hit-under-miss must wait for the fill");
        };
        let done_a = h.resolve(tok_a);
        let done_b = h.resolve(tok_b);
        assert_eq!(done_a, 107);
        assert_eq!(done_b, done_a, "merged hit completes with the fill");
    }

    #[test]
    fn blocking_wrapper_resolves_pending_accesses() {
        let mut deep = hierarchy_mshrs(8);
        let mut blocking = hierarchy();
        // Uncontended (zero-occupancy reference uses latency 100, 0):
        // completions agree because each miss is charged from its own
        // arrival regardless of when the batch drains.
        let mut one = Hierarchy::new(
            HierarchyConfig::paper_default().with_l2_mshrs(8),
            InsecureBackend::new(100, 0),
        );
        let mut two = Hierarchy::new(
            HierarchyConfig::paper_default(),
            InsecureBackend::new(100, 0),
        );
        for i in 0..20u64 {
            let addr = 0x20_0000 + i * 256;
            assert_eq!(
                one.data_access(i * 3, addr, false),
                two.data_access(i * 3, addr, false)
            );
        }
        // And the deep file still answers through the blocking API.
        assert_eq!(deep.data_access(0, 0x4000, false), 107);
        assert_eq!(blocking.data_access(0, 0x4000, false), 107);
    }

    #[test]
    fn drain_on_idle_defaults_off() {
        assert!(!HierarchyConfig::paper_default().drain_on_idle);
        assert!(!HierarchyConfig::default().drain_on_idle);
        // With the knob off, a miss into a non-full file stays pending
        // even though the fabric below is completely idle — the seed
        // batching behaviour the differentials lock down.
        let mut h = hierarchy_mshrs(4);
        assert!(matches!(
            h.data_access_nb(0, 0x10_0000, false),
            Access::Pending(_)
        ));
        assert_eq!(h.pending_misses(), 1);
        assert_eq!(h.mshr_stats().get("idle_drains"), 0);
    }

    #[test]
    fn drain_on_idle_issues_eagerly_when_fabric_quiescent() {
        let mut h = Hierarchy::new(
            HierarchyConfig::paper_default()
                .with_l2_mshrs(4)
                .with_drain_on_idle(true),
            InsecureBackend::new(100, 8),
        );
        // Miss A arrives with the fabric idle: it drains immediately and
        // resolves synchronously instead of waiting for the file.
        match h.data_access_nb(0, 0x10_0000, false) {
            Access::Ready(done) => assert_eq!(done, 107),
            Access::Pending(_) => panic!("idle fabric must drain eagerly"),
        }
        assert_eq!(h.pending_misses(), 0);
        assert_eq!(h.mshr_stats().get("idle_drains"), 1);
        // Miss B arrives while A still occupies the channel (bus busy
        // until cycle 15): the file holds it for batching as before.
        assert!(matches!(
            h.data_access_nb(3, 0x10_0080, false),
            Access::Pending(_)
        ));
        assert_eq!(h.pending_misses(), 1);
        assert_eq!(h.mshr_stats().get("idle_drains"), 1, "busy fabric defers");
        h.drain_pending();
        let mut resolved = Vec::new();
        h.take_resolutions(&mut resolved);
        assert_eq!(resolved.len(), 1);
        assert_eq!(h.backend().traffic().get("line_reads"), 2);
    }

    #[test]
    fn default_is_idle_makes_drain_on_idle_behave_blocking() {
        // A backend that does not implement `is_idle` inherits `true`,
        // so drain-on-idle degrades to drain-always — the blocking
        // machine.
        #[derive(Debug)]
        struct Fixed;
        impl MemoryBackend for Fixed {
            fn line_read(&mut self, now: u64, _a: u64, _k: LineKind) -> u64 {
                now + 100
            }
            fn line_writeback(&mut self, _now: u64, _a: u64) {}
            fn traffic(&self) -> CounterSet {
                CounterSet::new("fixed")
            }
            fn reset_stats(&mut self) {}
            fn label(&self) -> String {
                "fixed".into()
            }
        }
        assert!(Fixed.is_idle(u64::MAX));
        let mut h = Hierarchy::new(
            HierarchyConfig::paper_default()
                .with_l2_mshrs(8)
                .with_drain_on_idle(true),
            Fixed,
        );
        for i in 0..4u64 {
            match h.data_access_nb(i * 10, 0x10_0000 + i * 128, false) {
                Access::Ready(done) => assert_eq!(done, i * 10 + 7 + 100),
                Access::Pending(_) => panic!("trivially idle backend must drain"),
            }
        }
        assert_eq!(h.mshr_stats().get("idle_drains"), 4);
    }

    #[test]
    fn insecure_label() {
        assert_eq!(InsecureBackend::new(100, 8).label(), "baseline");
    }

    fn hierarchy_eager(n: usize) -> Hierarchy<InsecureBackend> {
        Hierarchy::new(
            HierarchyConfig::paper_default()
                .with_l2_mshrs(n)
                .with_eager_completions(true),
            InsecureBackend::new(100, 8),
        )
    }

    #[test]
    fn eager_completions_schedule_misses_at_allocation() {
        let mut h = hierarchy_eager(4);
        // The miss issues immediately with a real completion cycle —
        // no parked Pending access, no batch drain needed.
        match h.data_access_nb(0, 0x10_0000, false) {
            Access::Ready(done) => assert_eq!(done, 107),
            Access::Pending(_) => panic!("eager miss must resolve at allocation"),
        }
        assert_eq!(h.backend().traffic().get("line_reads"), 1);
        assert_eq!(h.mshr_stats().get("eager_issues"), 1);
        assert_eq!(h.mshr_stats().get("full_drains"), 0);
        // The entry lingers as a merge target, but it is not a pending
        // (un-issued) miss: nothing forces a stall-on-use drain.
        assert_eq!(h.pending_misses(), 0);
        assert_eq!(h.next_completion(), Some(107));
        // Time passes the completion: the entry retires and the line is
        // plain L2 state (the fill landed).
        h.retire_completed(200);
        assert_eq!(h.next_completion(), None);
    }

    #[test]
    fn eager_merge_window_stays_open_until_the_fill_lands() {
        let mut h = hierarchy_eager(4);
        let Access::Ready(done_a) = h.data_access_nb(0, 0x10_0000, false) else {
            panic!("eager miss resolves at allocation");
        };
        // Same L2 line while the fill is in flight: merges against the
        // scheduled entry, resolving immediately to the fill's cycle.
        let Access::Pending(tok) = h.data_access_nb(1, 0x10_0040, false) else {
            panic!("merged access resolves through a token");
        };
        let mut resolved = Vec::new();
        h.take_resolutions(&mut resolved);
        assert_eq!(resolved, vec![(tok, done_a)]);
        assert_eq!(h.mshr_stats().get("merges"), 1);
        assert_eq!(h.backend().traffic().get("line_reads"), 1, "one fill");
        // After the fill lands, the same line is an ordinary L2 hit.
        let t = h.data_access(done_a + 10, 0x10_0040, false);
        assert_eq!(t, done_a + 10 + 1);
        assert_eq!(h.backend().traffic().get("line_reads"), 1);
    }

    #[test]
    fn eager_mode_matches_batched_completions_per_miss() {
        // Distinct lines, uncontended fabric: eager singleton issue and
        // accumulate-then-drain charge identical per-miss completions
        // (each from its own arrival).
        let mut eager = Hierarchy::new(
            HierarchyConfig::paper_default()
                .with_l2_mshrs(8)
                .with_eager_completions(true),
            InsecureBackend::new(100, 0),
        );
        let mut batched = Hierarchy::new(
            HierarchyConfig::paper_default().with_l2_mshrs(8),
            InsecureBackend::new(100, 0),
        );
        for i in 0..6u64 {
            let addr = 0x30_0000 + i * 256;
            let Access::Ready(done_e) = eager.data_access_nb(i * 5, addr, false) else {
                panic!("eager miss resolves at allocation");
            };
            let done_b = match batched.data_access_nb(i * 5, addr, false) {
                Access::Ready(done) => done,
                Access::Pending(tok) => batched.resolve(tok),
            };
            assert_eq!(done_e, done_b, "miss {i}");
        }
        assert_eq!(
            eager.backend().traffic().get("line_reads"),
            batched.backend().traffic().get("line_reads")
        );
    }

    #[test]
    fn eager_capacity_evicts_the_soonest_fill() {
        let mut h = hierarchy_eager(2);
        // Fill the 2-entry file with scheduled completions.
        let _ = h.data_access_nb(0, 0x10_0000, false);
        let _ = h.data_access_nb(0, 0x10_0080, false);
        assert_eq!(h.mshr_stats().get("eager_issues"), 2);
        // A third miss at the same cycle: capacity forces the entry with
        // the earliest completion out of the file.
        let _ = h.data_access_nb(0, 0x10_0100, false);
        assert_eq!(h.mshr_stats().get("eager_evictions"), 1);
        assert_eq!(h.mshr_stats().get("eager_issues"), 3);
    }

    #[test]
    fn eager_requires_backend_safety() {
        // FR-FCFS reorders within a batch, so the backend vetoes eager
        // issue and misses park exactly as in batching mode.
        let mut h = Hierarchy::new(
            HierarchyConfig::paper_default()
                .with_l2_mshrs(4)
                .with_eager_completions(true),
            InsecureBackend::new(100, 8)
                .with_banks(2)
                .with_drain_order(padlock_mem::DrainOrder::RowFirst),
        );
        assert!(!h.backend().eager_issue_safe());
        assert!(matches!(
            h.data_access_nb(0, 0x10_0000, false),
            Access::Pending(_)
        ));
        assert_eq!(h.pending_misses(), 1);
        assert_eq!(h.mshr_stats().get("eager_issues"), 0);
        assert_eq!(h.next_completion(), None, "parked misses are unscheduled");
        h.drain_pending();
        assert!(h.next_completion().is_some(), "drain schedules resolutions");
    }

    #[test]
    #[should_panic(expected = "l2_mshrs must be positive")]
    fn zero_mshrs_rejected() {
        let _ = Hierarchy::new(
            HierarchyConfig::paper_default().with_l2_mshrs(0),
            InsecureBackend::new(100, 8),
        );
    }

    /// A backend whose `eager_issue_safe` answer flips mid-run,
    /// exposing MSHR files that mix scheduled and parked entries (a
    /// real backend only changes its answer at construction, so the
    /// mix needs a test double).
    #[derive(Debug)]
    struct Flip {
        inner: InsecureBackend,
        safe: bool,
    }
    impl MemoryBackend for Flip {
        fn line_read(&mut self, now: u64, a: u64, k: LineKind) -> u64 {
            self.inner.line_read(now, a, k)
        }
        fn line_read_batch_at(&mut self, reqs: &[(u64, u64, LineKind)]) -> Vec<u64> {
            self.inner.line_read_batch_at(reqs)
        }
        fn line_writeback(&mut self, now: u64, a: u64) {
            self.inner.line_writeback(now, a)
        }
        fn eager_issue_safe(&self) -> bool {
            self.safe
        }
        fn traffic(&self) -> CounterSet {
            self.inner.traffic()
        }
        fn reset_stats(&mut self) {
            self.inner.reset_stats()
        }
        fn label(&self) -> String {
            "flip".into()
        }
    }

    #[test]
    fn eager_eviction_keeps_parked_waiters_attached_to_their_entries() {
        let mut h = Hierarchy::new(
            HierarchyConfig::paper_default()
                .with_l2_mshrs(3)
                .with_eager_completions(true),
            Flip {
                inner: InsecureBackend::new(100, 0),
                safe: true,
            },
        );
        // Entry 0: scheduled eagerly (completion recorded).
        let Access::Ready(_) = h.data_access_nb(0, 0x10_0000, false) else {
            panic!("eager miss resolves at allocation");
        };
        // Entry 1: the backend turns unsafe, so this miss parks with a
        // waiter attached (2 < 3 entries: no synchronous full drain).
        h.backend_mut().safe = false;
        let Access::Pending(tok) = h.data_access_nb(5, 0x20_0000, false) else {
            panic!("unsafe backend must park the miss");
        };
        // Entries 2 and 3: safe again. The second eager allocation
        // finds the file full and evicts the scheduled entry at index
        // 0 — shifting the parked entry's position under its waiter.
        h.backend_mut().safe = true;
        let Access::Ready(_) = h.data_access_nb(10, 0x30_0000, false) else {
            panic!("eager miss resolves at allocation");
        };
        let Access::Ready(_) = h.data_access_nb(15, 0x40_0000, false) else {
            panic!("eager miss resolves at allocation");
        };
        assert_eq!(h.mshr_stats().get("eager_evictions"), 1);
        // The parked miss must still resolve to its own completion —
        // its read issues at the drain, behind eager entry 3's cycle-22
        // bus grant (FCFS in issue order), so 22 + 100. The broken
        // index-based waiter instead picked up a shifted entry's
        // re-issued completion.
        assert_eq!(h.resolve(tok), 15 + 7 + 100);
        // Exactly four fills reached memory — the drain must not
        // re-issue the already-scheduled entries.
        assert_eq!(h.backend().traffic().get("line_reads"), 4);
    }

    fn frfcfs_backend() -> InsecureBackend {
        InsecureBackend::new(100, 8)
            .with_channels(2)
            .with_banks(2)
            .with_drain_order(padlock_mem::DrainOrder::RowFirst)
    }

    fn spec_hierarchy(n: usize) -> Hierarchy<InsecureBackend> {
        Hierarchy::new(
            HierarchyConfig::paper_default()
                .with_l2_mshrs(n)
                .with_speculative_completions(true),
            frfcfs_backend(),
        )
    }

    fn parked_hierarchy(n: usize) -> Hierarchy<InsecureBackend> {
        Hierarchy::new(
            HierarchyConfig::paper_default().with_l2_mshrs(n),
            frfcfs_backend(),
        )
    }

    #[test]
    fn eager_precedes_speculative_precedes_parked() {
        // Both knobs on with an eager-safe backend: eager wins and no
        // speculative window ever opens.
        let mut h = Hierarchy::new(
            HierarchyConfig::paper_default()
                .with_l2_mshrs(4)
                .with_eager_completions(true)
                .with_speculative_completions(true),
            InsecureBackend::new(100, 8),
        );
        assert!(matches!(
            h.data_access_nb(0, 0x10_0000, false),
            Access::Ready(_)
        ));
        assert_eq!(h.mshr_stats().get("eager_issues"), 1);
        assert_eq!(h.mshr_stats().get("speculative_issues"), 0);
        // Same knobs on a non-eager-safe backend: speculation engages,
        // and the access stays Pending (trigger-faithful).
        let mut h = Hierarchy::new(
            HierarchyConfig::paper_default()
                .with_l2_mshrs(4)
                .with_eager_completions(true)
                .with_speculative_completions(true),
            frfcfs_backend(),
        );
        assert!(matches!(
            h.data_access_nb(0, 0x10_0000, false),
            Access::Pending(_)
        ));
        assert_eq!(h.mshr_stats().get("eager_issues"), 0);
        assert_eq!(h.mshr_stats().get("speculative_issues"), 1);
    }

    #[test]
    fn idle_drain_takes_precedence_over_speculation() {
        // drain_on_idle + speculation: an allocation the parked machine
        // would idle-drain takes that identical path (no window opens),
        // keeping the two machines bit-exact.
        let mut h = Hierarchy::new(
            HierarchyConfig::paper_default()
                .with_l2_mshrs(4)
                .with_drain_on_idle(true)
                .with_speculative_completions(true),
            frfcfs_backend(),
        );
        match h.data_access_nb(0, 0x10_0000, false) {
            Access::Ready(done) => assert!(done >= 107),
            Access::Pending(_) => panic!("idle fabric must drain eagerly"),
        }
        assert_eq!(h.mshr_stats().get("idle_drains"), 1);
        assert_eq!(h.mshr_stats().get("speculative_issues"), 0);
        // While the fabric is busy the next miss speculates instead.
        let Access::Pending(tok) = h.data_access_nb(1, 0x10_0080, false) else {
            panic!("busy fabric parks the miss");
        };
        assert_eq!(h.mshr_stats().get("speculative_issues"), 1);
        let _ = h.resolve(tok);
        assert_eq!(h.mshr_stats().get("window_replays"), 0);
    }

    #[test]
    fn speculative_singleton_confirms_without_replay() {
        let mut spec = spec_hierarchy(4);
        let mut parked = parked_hierarchy(4);
        // The speculated miss stays trigger-faithful: Pending, counted
        // as a pending miss, and invisible to next_completion().
        let Access::Pending(tok_s) = spec.data_access_nb(0, 0x10_0000, false) else {
            panic!("speculated miss stays pending");
        };
        let Access::Pending(tok_p) = parked.data_access_nb(0, 0x10_0000, false) else {
            panic!("parked miss pends");
        };
        assert_eq!(spec.pending_misses(), 1);
        assert_eq!(spec.next_completion(), None, "speculative cycles stay hidden");
        // But the read already went to memory.
        assert_eq!(spec.backend().traffic().get("line_reads"), 1);
        assert_eq!(parked.backend().traffic().get("line_reads"), 0);
        // A singleton drain confirms the speculation: no second issue,
        // identical completion to the parked machine.
        assert_eq!(spec.resolve(tok_s), parked.resolve(tok_p));
        assert_eq!(spec.backend().traffic().get("line_reads"), 1);
        assert_eq!(spec.mshr_stats().get("speculative_issues"), 1);
        assert_eq!(spec.mshr_stats().get("window_replays"), 0);
    }

    #[test]
    fn coupled_window_replays_bit_exact_with_parked() {
        let mut spec = spec_hierarchy(4);
        let mut parked = parked_hierarchy(4);
        // Two rows on the same channel and bank: FR-FCFS would reorder
        // them inside one batch, so the speculated singleton cannot
        // stand once the second request lands in the window.
        let row = 128 * padlock_mem::ROW_LINES;
        let addrs = [0u64, 4 * row];
        let mut toks_s = Vec::new();
        let mut toks_p = Vec::new();
        for (i, &a) in addrs.iter().enumerate() {
            let t = i as u64 * 3;
            let Access::Pending(ts) = spec.data_access_nb(t, a, false) else {
                panic!("spec miss pends");
            };
            let Access::Pending(tp) = parked.data_access_nb(t, a, false) else {
                panic!("parked miss pends");
            };
            toks_s.push(ts);
            toks_p.push(tp);
        }
        // The second allocation coupled the window: the backend rolled
        // the speculated read back and the drain below replays both.
        assert_eq!(spec.mshr_stats().get("speculative_issues"), 1);
        for (ts, tp) in toks_s.into_iter().zip(toks_p) {
            assert_eq!(spec.resolve(ts), parked.resolve(tp));
        }
        assert_eq!(spec.mshr_stats().get("window_replays"), 1);
        assert_eq!(spec.mshr_stats().get("replay_patched_completions"), 1);
        // The replay left no trace: same traffic as the parked machine.
        for (name, v) in parked.backend().traffic().iter() {
            assert_eq!(spec.backend().traffic().get(name), v, "{name}");
        }
    }

    #[test]
    fn writeback_into_open_window_rolls_back_the_speculated_read() {
        let mut spec = frfcfs_backend();
        let mut parked = frfcfs_backend();
        assert!(spec.speculative_issue_at(10, 0x0, LineKind::Data).is_some());
        // The writeback aborts the window: the speculated read is
        // un-issued, and the machines evolve identically from here.
        spec.line_writeback(12, 0x80);
        parked.line_writeback(12, 0x80);
        assert!(
            spec.speculative_issue_at(15, 0x200, LineKind::Data).is_none(),
            "a poisoned window declines further speculation"
        );
        assert!(!spec.speculative_confirm(), "window was poisoned");
        let reqs = [(10, 0x0, LineKind::Data), (20, 0x100, LineKind::Data)];
        assert_eq!(
            spec.line_read_batch_at(&reqs),
            parked.line_read_batch_at(&reqs)
        );
        for (name, v) in parked.traffic().iter() {
            assert_eq!(spec.traffic().get(name), v, "{name}");
        }
    }

    #[test]
    fn speculative_machine_matches_parked_across_mixed_traffic() {
        let mut spec = spec_hierarchy(4);
        let mut parked = parked_hierarchy(4);
        let mut toks_s = Vec::new();
        let mut toks_p = Vec::new();
        let mut x = 0x12345u64;
        for i in 0..400u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = (x >> 16) % (1 << 22);
            let is_store = x.is_multiple_of(3);
            let now = i * 7;
            match (
                spec.data_access_nb(now, addr, is_store),
                parked.data_access_nb(now, addr, is_store),
            ) {
                (Access::Ready(a), Access::Ready(b)) => assert_eq!(a, b, "access {i}"),
                (Access::Pending(ts), Access::Pending(tp)) => {
                    toks_s.push(ts);
                    toks_p.push(tp);
                }
                _ => panic!("machines disagree on pending-ness at access {i}"),
            }
            // Uneven drain points build multi-entry windows: coupled
            // replays and confirmed singletons both occur below.
            if i % 5 == 4 {
                for (ts, tp) in toks_s.drain(..).zip(toks_p.drain(..)) {
                    assert_eq!(spec.resolve(ts), parked.resolve(tp), "access {i}");
                }
            }
        }
        spec.drain_pending();
        parked.drain_pending();
        assert!(spec.mshr_stats().get("speculative_issues") > 0);
        assert!(spec.mshr_stats().get("window_replays") > 0);
        for (name, v) in parked.backend().traffic().iter() {
            assert_eq!(spec.backend().traffic().get(name), v, "{name}");
        }
        assert_eq!(
            spec.l2_stats().get("misses"),
            parked.l2_stats().get("misses")
        );
    }
}
