//! Main-memory models for the `padlock` secure-processor simulator.
//!
//! Five independent pieces:
//!
//! * [`MemTimingModel`] — the flat-latency DRAM + shared-channel occupancy
//!   model the paper assumes (100-cycle reads), with traffic accounting by
//!   class so Fig. 9 (SNC-induced traffic) can be reproduced;
//! * [`BankSet`] — per-channel DRAM banks with open-row registers, so an
//!   access is charged the row-hit or row-conflict (precharge + activate)
//!   latency and locality inside a channel matters; a [`PagePolicy`]
//!   knob chooses between open-page rows and closed-page auto-precharge;
//! * [`DrainOrder`] — the drain-order knob backends thread through
//!   their configuration; the FR-FCFS algorithm it selects lives on
//!   the fabric ([`ChannelSet::row_first_order`]), which owns the
//!   open-row state it consults;
//! * [`MemoryChannel`] / [`ChannelSet`] — one write-buffered DRAM channel,
//!   and the line-address-interleaved multi-channel fabric that lets a
//!   transaction engine spread independent misses over `N` controllers;
//! * [`SparseMemory`] — a functional, page-sparse byte store holding real
//!   (cipher)text for the functional security layer and the tiny-ISA VM;
//! * [`RegionMap`] — an address-range → attribute map used to mark
//!   plaintext regions (shared libraries, program inputs; paper §4.3) and
//!   protected segments.
//!
//! # Examples
//!
//! ```
//! use padlock_mem::{MemTimingModel, TrafficClass};
//!
//! let mut mem = MemTimingModel::paper_default();
//! let done = mem.read(0, TrafficClass::LineRead, 128);
//! assert_eq!(done, 100); // the paper's flat 100-cycle read
//! ```

#![warn(missing_docs)]

mod bank;
mod channel;
mod region;
mod sched;
mod sparse;
mod timing;

pub use bank::{
    BankConfig, BankGrant, BankSet, PagePolicy, DEFAULT_ROW_CLOSED_CYCLES,
    DEFAULT_ROW_CONFLICT_CYCLES, DEFAULT_ROW_HIT_CYCLES, ROW_LINES,
};
pub use channel::{ChannelSet, ChannelSnapshot, MemoryChannel};
pub use sched::DrainOrder;
pub use region::{RegionMap, RegionOverlap};
pub use sparse::SparseMemory;
pub use timing::{MemTimingModel, TrafficClass, TrafficTotals};
