//! Drain-order policy for window-batched memory transactions.
//!
//! A transaction engine that drains a window of outstanding misses in
//! strict arrival order leaves row-buffer locality on the table: two
//! misses to the same DRAM row, separated in the window by a miss to a
//! different row of the same bank, pay two precharge + activate
//! conflicts where one would do. Memory controllers solve this with
//! FR-FCFS (first-ready, first-come-first-served) scheduling: among
//! ready requests, row hits issue before row misses, and ties break by
//! age.
//!
//! [`DrainOrder`] is the knob backends thread through their
//! configuration; the scheduling algorithm itself lives on the fabric
//! ([`crate::ChannelSet::row_first_order`]), which owns the per-bank
//! open-row state the policy consults. `Fifo` (the default) preserves
//! the arrival-order drain bit-exactly.

/// The order a drain scheduler issues a window's memory accesses in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrainOrder {
    /// Strict arrival order (the paper's controller, and the default).
    #[default]
    Fifo,
    /// FR-FCFS: first-ready, row-hit-first, oldest-first
    /// ([`crate::ChannelSet::row_first_order`]), so same-row accesses
    /// issue back-to-back and row-mates become open-row hits.
    RowFirst,
}

impl std::fmt::Display for DrainOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DrainOrder::Fifo => write!(f, "fifo"),
            DrainOrder::RowFirst => write!(f, "row-first"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_order_defaults_and_prints() {
        assert_eq!(DrainOrder::default(), DrainOrder::Fifo);
        assert_eq!(DrainOrder::Fifo.to_string(), "fifo");
        assert_eq!(DrainOrder::RowFirst.to_string(), "row-first");
    }
}
