//! Address-range → attribute maps.
//!
//! The paper exempts shared-library code and program inputs from
//! encryption (§4.3: "those library codes should be provided in plaintext
//! ... memory spaces taken by them do not need sequence numbers in SNC").
//! The secure memory controller consults a `RegionMap` to decide how each
//! line is protected.

use std::fmt;

/// One named, half-open address range carrying an attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Region<T> {
    name: String,
    start: u64,
    end: u64, // exclusive
    attr: T,
}

/// An ordered map from half-open address ranges to attributes.
///
/// Lookups fall back to a default attribute outside all regions. Regions
/// may not overlap.
///
/// # Examples
///
/// ```
/// use padlock_mem::RegionMap;
///
/// #[derive(Clone, Copy, PartialEq, Debug)]
/// enum Prot { Plain, Encrypted }
///
/// let mut map = RegionMap::new(Prot::Encrypted);
/// map.insert("libc", 0x7000_0000, 0x7100_0000, Prot::Plain).unwrap();
/// assert_eq!(*map.attr_at(0x7000_1234), Prot::Plain);
/// assert_eq!(*map.attr_at(0x1000), Prot::Encrypted);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMap<T> {
    default: T,
    /// Sorted by `start`, non-overlapping.
    regions: Vec<Region<T>>,
}

/// Error returned when inserting an invalid or overlapping region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionOverlap {
    /// Name of the offending insertion.
    pub name: String,
    /// Name of the existing region it collides with, if any
    /// (`None` means the range itself was empty/inverted).
    pub conflicts_with: Option<String>,
}

impl fmt::Display for RegionOverlap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.conflicts_with {
            Some(other) => write!(f, "region {} overlaps existing region {}", self.name, other),
            None => write!(f, "region {} has an empty or inverted range", self.name),
        }
    }
}

impl std::error::Error for RegionOverlap {}

impl<T> RegionMap<T> {
    /// Creates a map whose lookups return `default` outside all regions.
    pub fn new(default: T) -> Self {
        Self {
            default,
            regions: Vec::new(),
        }
    }

    /// Inserts a non-overlapping region `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`RegionOverlap`] when `start >= end` or the range
    /// intersects an existing region.
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        start: u64,
        end: u64,
        attr: T,
    ) -> Result<(), RegionOverlap> {
        let name = name.into();
        if start >= end {
            return Err(RegionOverlap {
                name,
                conflicts_with: None,
            });
        }
        for r in &self.regions {
            if start < r.end && r.start < end {
                return Err(RegionOverlap {
                    name,
                    conflicts_with: Some(r.name.clone()),
                });
            }
        }
        let pos = self
            .regions
            .partition_point(|r| r.start < start);
        self.regions.insert(
            pos,
            Region {
                name,
                start,
                end,
                attr,
            },
        );
        Ok(())
    }

    fn find(&self, addr: u64) -> Option<&Region<T>> {
        let idx = self.regions.partition_point(|r| r.start <= addr);
        if idx == 0 {
            return None;
        }
        let r = &self.regions[idx - 1];
        (addr < r.end).then_some(r)
    }

    /// The attribute governing `addr` (a region's, or the default).
    pub fn attr_at(&self, addr: u64) -> &T {
        self.find(addr).map_or(&self.default, |r| &r.attr)
    }

    /// The name of the region containing `addr`, if any.
    pub fn region_name_at(&self, addr: u64) -> Option<&str> {
        self.find(addr).map(|r| r.name.as_str())
    }

    /// The default attribute.
    pub fn default_attr(&self) -> &T {
        &self.default
    }

    /// Number of explicit regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no explicit regions exist.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Iterates `(name, start, end, attr)` in address order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64, u64, &T)> {
        self.regions
            .iter()
            .map(|r| (r.name.as_str(), r.start, r.end, &r.attr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_outside_all_regions() {
        let map: RegionMap<u8> = RegionMap::new(9);
        assert_eq!(*map.attr_at(0), 9);
        assert!(map.is_empty());
    }

    #[test]
    fn lookup_respects_half_open_bounds() {
        let mut map = RegionMap::new(0u8);
        map.insert("r", 0x100, 0x200, 1).unwrap();
        assert_eq!(*map.attr_at(0xFF), 0);
        assert_eq!(*map.attr_at(0x100), 1);
        assert_eq!(*map.attr_at(0x1FF), 1);
        assert_eq!(*map.attr_at(0x200), 0);
    }

    #[test]
    fn overlap_is_rejected_with_names() {
        let mut map = RegionMap::new(0u8);
        map.insert("code", 0x100, 0x200, 1).unwrap();
        let err = map.insert("data", 0x1FF, 0x300, 2).unwrap_err();
        assert_eq!(err.conflicts_with.as_deref(), Some("code"));
        assert!(err.to_string().contains("overlaps"));
        // Adjacent is fine.
        map.insert("data", 0x200, 0x300, 2).unwrap();
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn inverted_range_is_rejected() {
        let mut map = RegionMap::new(0u8);
        let err = map.insert("bad", 5, 5, 1).unwrap_err();
        assert!(err.conflicts_with.is_none());
        assert!(err.to_string().contains("empty or inverted"));
    }

    #[test]
    fn regions_keep_address_order_regardless_of_insertion_order() {
        let mut map = RegionMap::new(0u8);
        map.insert("high", 0x1000, 0x2000, 2).unwrap();
        map.insert("low", 0x0, 0x100, 1).unwrap();
        let names: Vec<&str> = map.iter().map(|(n, _, _, _)| n).collect();
        assert_eq!(names, vec!["low", "high"]);
        assert_eq!(map.region_name_at(0x1800), Some("high"));
        assert_eq!(map.region_name_at(0x800), None);
    }

    #[test]
    fn binary_search_handles_many_regions() {
        let mut map = RegionMap::new(u32::MAX);
        for i in 0..1000u64 {
            map.insert(format!("r{i}"), i * 0x1000, i * 0x1000 + 0x800, i as u32)
                .unwrap();
        }
        assert_eq!(*map.attr_at(500 * 0x1000 + 0x7FF), 500);
        assert_eq!(*map.attr_at(500 * 0x1000 + 0x800), u32::MAX);
    }
}
