//! Flat-latency DRAM timing with per-class traffic accounting.

use padlock_stats::CounterSet;
use std::fmt;

/// Classifies a memory transaction for traffic accounting.
///
/// The paper's Fig. 9 reports SNC-induced traffic (sequence-number reads
/// and spills) as a percentage of baseline L2↔memory traffic, so the model
/// tags every transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// A demand line fill (L2 read miss).
    LineRead,
    /// A dirty-line writeback from the write buffer.
    LineWrite,
    /// A sequence-number fetch on an SNC miss (LRU policy).
    SeqRead,
    /// A sequence-number spill of an evicted SNC entry.
    SeqWrite,
    /// A MAC fetch/store (integrity extension; off by default like the
    /// paper).
    Mac,
}

impl TrafficClass {
    /// The event-counter name this class records under (`line_reads`,
    /// `seq_writes`, ...), shared by every timing model so aggregated
    /// and per-channel statistics stay comparable.
    pub fn counter(self) -> &'static str {
        match self {
            TrafficClass::LineRead => "line_reads",
            TrafficClass::LineWrite => "line_writes",
            TrafficClass::SeqRead => "seq_reads",
            TrafficClass::SeqWrite => "seq_writes",
            TrafficClass::Mac => "mac",
        }
    }

    /// The byte-counter name this class records under
    /// (`line_read_bytes`, ...).
    pub fn bytes_counter(self) -> &'static str {
        match self {
            TrafficClass::LineRead => "line_read_bytes",
            TrafficClass::LineWrite => "line_write_bytes",
            TrafficClass::SeqRead => "seq_read_bytes",
            TrafficClass::SeqWrite => "seq_write_bytes",
            TrafficClass::Mac => "mac_bytes",
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.counter())
    }
}

/// Fixed-slot traffic accounting: one count/byte pair per
/// [`TrafficClass`] plus the row-buffer outcomes, bumped as plain
/// integer fields on the hot path and rendered as a [`CounterSet`]
/// only when a caller asks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct TrafficStats {
    counts: [u64; 5],
    bytes: [u64; 5],
    row_hits: u64,
    row_conflicts: u64,
}

impl TrafficStats {
    fn record(&mut self, class: TrafficClass, bytes: u32) {
        self.counts[class as usize] += 1;
        self.bytes[class as usize] += u64::from(bytes);
    }

    fn to_counters(self, prefix: &str) -> CounterSet {
        // Only touched counters appear, matching the shape the
        // incrementally-built `CounterSet` had before the fixed-slot
        // rewrite (readers use `get`, which defaults absent names to 0).
        let mut set = CounterSet::new(prefix);
        let classes = [
            TrafficClass::LineRead,
            TrafficClass::LineWrite,
            TrafficClass::SeqRead,
            TrafficClass::SeqWrite,
            TrafficClass::Mac,
        ];
        let mut txns = 0;
        let mut total = 0;
        for class in classes {
            let (n, b) = (self.counts[class as usize], self.bytes[class as usize]);
            if n > 0 {
                set.add(class.counter(), n);
                set.add(class.bytes_counter(), b);
            }
            txns += n;
            total += b;
        }
        if txns > 0 {
            set.add("transactions", txns);
            set.add("total_bytes", total);
        }
        if self.row_hits > 0 {
            set.add("row_hits", self.row_hits);
        }
        if self.row_conflicts > 0 {
            set.add("row_conflicts", self.row_conflicts);
        }
        set
    }
}

/// A point-in-time snapshot of one timing model's fixed-slot traffic
/// totals: one count/byte pair per [`TrafficClass`] (indexed by the
/// class discriminant) plus the row-buffer outcomes.
///
/// Unlike [`MemTimingModel::stats`], which allocates a rendered
/// [`CounterSet`], a snapshot is a plain `Copy` struct — cheap enough
/// to take before and after every scheduling step, which is how the
/// multi-compartment server attributes shared-fabric traffic to the
/// compartment that generated it (delta = after [`minus`] before; the
/// deltas partition the aggregate exactly because every counter is
/// monotone).
///
/// [`minus`]: TrafficTotals::minus
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficTotals {
    /// Transactions per [`TrafficClass`] discriminant.
    pub counts: [u64; 5],
    /// Bytes per [`TrafficClass`] discriminant.
    pub bytes: [u64; 5],
    /// Row-buffer hits (banked channels only).
    pub row_hits: u64,
    /// Row-buffer conflicts (banked channels only).
    pub row_conflicts: u64,
}

impl TrafficTotals {
    /// The element-wise difference `self - earlier`; `earlier` must be
    /// an older snapshot of the same monotone counters.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, via underflow) if `earlier` is not an
    /// older snapshot of the same counters.
    pub fn minus(self, earlier: Self) -> Self {
        let mut out = self;
        for i in 0..out.counts.len() {
            out.counts[i] -= earlier.counts[i];
            out.bytes[i] -= earlier.bytes[i];
        }
        out.row_hits -= earlier.row_hits;
        out.row_conflicts -= earlier.row_conflicts;
        out
    }

    /// The element-wise sum `self + other` (reassembling compartment
    /// deltas back into the fabric aggregate).
    pub fn plus(self, other: Self) -> Self {
        let mut out = self;
        for i in 0..out.counts.len() {
            out.counts[i] += other.counts[i];
            out.bytes[i] += other.bytes[i];
        }
        out.row_hits += other.row_hits;
        out.row_conflicts += other.row_conflicts;
        out
    }

    /// The transaction count of one class.
    pub fn count(&self, class: TrafficClass) -> u64 {
        self.counts[class as usize]
    }

    /// All transactions across classes.
    pub fn transactions(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// All bytes across classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }
}

/// The DRAM + channel timing model.
///
/// Reads complete `access_latency` cycles after they start; every
/// transaction occupies the shared channel for `occupancy` cycles, so a
/// burst of writebacks can delay a following demand read (the paper's
/// §4.1 concern that SNC replacements "compete with other memory requests
/// that are critical").
///
/// # Examples
///
/// ```
/// use padlock_mem::{MemTimingModel, TrafficClass};
///
/// let mut mem = MemTimingModel::new(100, 8);
/// // A write at cycle 0 occupies the channel until cycle 8,
/// let wdone = mem.write(0, TrafficClass::LineWrite, 128);
/// assert_eq!(wdone, 8);
/// // ...so a read issued at cycle 0 starts at 8 and completes at 108.
/// let rdone = mem.read(0, TrafficClass::LineRead, 128);
/// assert_eq!(rdone, 108);
/// ```
#[derive(Debug, Clone)]
pub struct MemTimingModel {
    access_latency: u64,
    occupancy: u64,
    busy_until: u64,
    stats: TrafficStats,
}

impl MemTimingModel {
    /// The paper's configuration: 100-cycle access latency. Channel
    /// occupancy of 8 cycles per transaction keeps writeback bursts
    /// mildly visible without distorting the flat read latency.
    pub fn paper_default() -> Self {
        Self::new(100, 8)
    }

    /// Creates a model with the given access latency and per-transaction
    /// channel occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `access_latency` is zero.
    pub fn new(access_latency: u64, occupancy: u64) -> Self {
        assert!(access_latency > 0, "memory latency must be positive");
        Self {
            access_latency,
            occupancy,
            busy_until: 0,
            stats: TrafficStats::default(),
        }
    }

    /// The configured access latency.
    pub fn access_latency(&self) -> u64 {
        self.access_latency
    }

    /// The configured per-transaction channel occupancy.
    pub fn occupancy(&self) -> u64 {
        self.occupancy
    }

    /// Cycle until which the channel is busy.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Whether the channel is idle at `now` (used by the write buffer to
    /// "steal idle bus cycles", §3.4).
    pub fn is_idle(&self, now: u64) -> bool {
        self.busy_until <= now
    }

    /// Traffic statistics (`line_reads`, `seq_writes`, `*_bytes`, ...),
    /// rendered on demand from the fixed-slot fields.
    pub fn stats(&self) -> CounterSet {
        self.stats.to_counters("mem")
    }

    /// The fixed-slot traffic totals as a `Copy` snapshot — the cheap
    /// counterpart of [`MemTimingModel::stats`] for per-step delta
    /// accounting.
    pub fn totals(&self) -> TrafficTotals {
        TrafficTotals {
            counts: self.stats.counts,
            bytes: self.stats.bytes,
            row_hits: self.stats.row_hits,
            row_conflicts: self.stats.row_conflicts,
        }
    }

    /// Resets statistics (not channel state).
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::default();
    }

    /// Issues a read at `now`; returns its completion cycle.
    pub fn read(&mut self, now: u64, class: TrafficClass, bytes: u32) -> u64 {
        let start = now.max(self.busy_until);
        self.busy_until = start + self.occupancy;
        self.record(class, bytes);
        start + self.access_latency
    }

    /// Issues a read at `now` whose data arrives `latency` cycles after
    /// it starts, instead of the flat access latency — the entry point
    /// the bank layer uses to charge row-hit or row-conflict timing
    /// while keeping channel-occupancy accounting identical.
    pub fn read_with_latency(
        &mut self,
        now: u64,
        class: TrafficClass,
        bytes: u32,
        latency: u64,
    ) -> u64 {
        let start = now.max(self.busy_until);
        self.busy_until = start + self.occupancy;
        self.record(class, bytes);
        start + latency
    }

    /// Records a row-buffer outcome (`row_hits` / `row_conflicts`) in
    /// this channel's statistics; only banked channels call this.
    pub fn record_row(&mut self, hit: bool) {
        if hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_conflicts += 1;
        }
    }

    /// Issues `count` back-to-back reads wanted at `now`; returns each
    /// read's completion cycle.
    ///
    /// The burst claims consecutive occupancy slots, so the i-th read
    /// completes `i * occupancy` cycles after the first — the
    /// multi-request scheduling a transaction engine leans on: with
    /// `occupancy` far below `access_latency`, a burst's reads overlap
    /// almost entirely instead of serialising their full latencies.
    pub fn read_burst(
        &mut self,
        now: u64,
        class: TrafficClass,
        bytes: u32,
        count: usize,
    ) -> Vec<u64> {
        (0..count).map(|_| self.read(now, class, bytes)).collect()
    }

    /// Issues a write at `now`; returns the cycle the channel is released
    /// (writes are posted — no one waits for DRAM commit).
    pub fn write(&mut self, now: u64, class: TrafficClass, bytes: u32) -> u64 {
        let start = now.max(self.busy_until);
        self.busy_until = start + self.occupancy;
        self.record(class, bytes);
        self.busy_until
    }

    fn record(&mut self, class: TrafficClass, bytes: u32) {
        self.stats.record(class, bytes);
    }

    /// Total demand transactions (line reads + writes), the denominator of
    /// the paper's Fig. 9.
    pub fn line_transactions(&self) -> u64 {
        self.stats.counts[TrafficClass::LineRead as usize]
            + self.stats.counts[TrafficClass::LineWrite as usize]
    }

    /// Total SNC-induced transactions (sequence-number reads + spills),
    /// the numerator of the paper's Fig. 9.
    pub fn seq_transactions(&self) -> u64 {
        self.stats.counts[TrafficClass::SeqRead as usize]
            + self.stats.counts[TrafficClass::SeqWrite as usize]
    }
}

impl Default for MemTimingModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_read_takes_access_latency() {
        let mut m = MemTimingModel::new(100, 8);
        assert_eq!(m.read(10, TrafficClass::LineRead, 128), 110);
    }

    #[test]
    fn channel_occupancy_queues_transactions() {
        let mut m = MemTimingModel::new(100, 8);
        assert_eq!(m.read(0, TrafficClass::LineRead, 128), 100);
        // Second read queues behind the first transfer slot.
        assert_eq!(m.read(0, TrafficClass::LineRead, 128), 108);
        assert_eq!(m.read(0, TrafficClass::LineRead, 128), 116);
    }

    #[test]
    fn read_burst_overlaps_latencies_on_occupancy_slots() {
        let mut m = MemTimingModel::new(100, 8);
        let dones = m.read_burst(0, TrafficClass::LineRead, 128, 4);
        assert_eq!(dones, vec![100, 108, 116, 124]);
        assert_eq!(m.stats().get("line_reads"), 4);
        // A burst of one behaves exactly like a single read.
        let mut single = MemTimingModel::new(100, 8);
        assert_eq!(
            single.read_burst(5, TrafficClass::SeqRead, 128, 1),
            vec![105]
        );
    }

    #[test]
    fn writes_are_posted() {
        let mut m = MemTimingModel::new(100, 8);
        let done = m.write(5, TrafficClass::LineWrite, 128);
        assert_eq!(done, 13);
        assert!(m.is_idle(13));
        assert!(!m.is_idle(12));
    }

    #[test]
    fn zero_occupancy_disables_contention() {
        let mut m = MemTimingModel::new(100, 0);
        assert_eq!(m.read(0, TrafficClass::LineRead, 128), 100);
        assert_eq!(m.read(0, TrafficClass::LineRead, 128), 100);
    }

    #[test]
    fn traffic_classes_are_tracked_separately() {
        let mut m = MemTimingModel::paper_default();
        m.read(0, TrafficClass::LineRead, 128);
        m.write(0, TrafficClass::LineWrite, 128);
        m.read(0, TrafficClass::SeqRead, 128);
        m.write(0, TrafficClass::SeqWrite, 2);
        assert_eq!(m.stats().get("line_reads"), 1);
        assert_eq!(m.stats().get("line_writes"), 1);
        assert_eq!(m.stats().get("seq_reads"), 1);
        assert_eq!(m.stats().get("seq_writes"), 1);
        assert_eq!(m.stats().get("seq_write_bytes"), 2);
        assert_eq!(m.line_transactions(), 2);
        assert_eq!(m.seq_transactions(), 2);
        assert_eq!(m.stats().get("transactions"), 4);
    }

    #[test]
    fn reset_stats_preserves_channel_state() {
        let mut m = MemTimingModel::new(100, 8);
        m.read(0, TrafficClass::LineRead, 128);
        let busy = m.busy_until();
        m.reset_stats();
        assert_eq!(m.busy_until(), busy);
        assert_eq!(m.stats().get("line_reads"), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_latency_rejected() {
        let _ = MemTimingModel::new(0, 8);
    }
}
