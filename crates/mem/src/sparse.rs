//! A functional, page-sparse byte-addressable memory.
//!
//! Holds the actual bytes (ciphertext, MACs, spilled sequence numbers) for
//! the functional security layer and the tiny-ISA VM. Pages materialise on
//! first touch, so a 48-bit address space costs only what is used.

use std::collections::BTreeMap;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// A sparse byte-addressable memory over the full `u64` address space.
///
/// Unwritten bytes read as zero.
///
/// # Examples
///
/// ```
/// use padlock_mem::SparseMemory;
///
/// let mut mem = SparseMemory::new();
/// mem.write_bytes(0xFFFF_0000, b"hello");
/// let mut buf = [0u8; 5];
/// mem.read_bytes(0xFFFF_0000, &mut buf);
/// assert_eq!(&buf, b"hello");
/// assert_eq!(mem.read_u32(0x1234), 0); // untouched memory is zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    // BTreeMap, not HashMap: padlock-lint rule D1 — page iteration
    // order must be deterministic for the parallel sweep executor.
    pages: BTreeMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of materialised pages (for capacity assertions in tests).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The page size in bytes.
    pub const fn page_size() -> usize {
        PAGE_SIZE
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads `buf.len()` bytes starting at `addr` (zero-filled where
    /// memory was never written). Wraps around at the top of the address
    /// space like real hardware would not — callers stay below `u64::MAX`.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            let a = addr + i as u64;
            *b = match self.pages.get(&(a >> PAGE_BITS)) {
                Some(page) => page[(a as usize) & (PAGE_SIZE - 1)],
                None => 0,
            };
        }
    }

    /// Writes `data` starting at `addr`, materialising pages as needed.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            let a = addr + i as u64;
            self.page_mut(a)[(a as usize) & (PAGE_SIZE - 1)] = b;
        }
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut buf = [0u8; 4];
        self.read_bytes(addr, &mut buf);
        u32::from_le_bytes(buf)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Returns an owned copy of `len` bytes at `addr`.
    pub fn read_vec(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.read_bytes(addr, &mut buf);
        buf
    }

    /// Zeroes a byte range (releases nothing; pages stay materialised).
    pub fn zero_range(&mut self, addr: u64, len: usize) {
        for i in 0..len {
            let a = addr + i as u64;
            if let Some(page) = self.pages.get_mut(&(a >> PAGE_BITS)) {
                page[(a as usize) & (PAGE_SIZE - 1)] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = SparseMemory::new();
        assert_eq!(mem.read_u64(0xDEAD_BEEF_0000), 0);
        assert_eq!(mem.page_count(), 0);
    }

    #[test]
    fn write_read_roundtrip_within_page() {
        let mut mem = SparseMemory::new();
        mem.write_u32(0x100, 0xCAFE_BABE);
        assert_eq!(mem.read_u32(0x100), 0xCAFE_BABE);
        assert_eq!(mem.page_count(), 1);
    }

    #[test]
    fn writes_spanning_page_boundary() {
        let mut mem = SparseMemory::new();
        let addr = (SparseMemory::page_size() - 2) as u64;
        mem.write_bytes(addr, &[1, 2, 3, 4]);
        assert_eq!(mem.read_vec(addr, 4), vec![1, 2, 3, 4]);
        assert_eq!(mem.page_count(), 2);
    }

    #[test]
    fn distinct_pages_are_independent() {
        let mut mem = SparseMemory::new();
        mem.write_u64(0x0000, u64::MAX);
        mem.write_u64(0x10_0000, 7);
        assert_eq!(mem.read_u64(0x0000), u64::MAX);
        assert_eq!(mem.read_u64(0x10_0000), 7);
    }

    #[test]
    fn endianness_is_little() {
        let mut mem = SparseMemory::new();
        mem.write_u32(0, 0x0102_0304);
        assert_eq!(mem.read_vec(0, 4), vec![4, 3, 2, 1]);
    }

    #[test]
    fn zero_range_clears_bytes() {
        let mut mem = SparseMemory::new();
        mem.write_bytes(0x40, &[0xFF; 16]);
        mem.zero_range(0x44, 8);
        assert_eq!(mem.read_vec(0x40, 4), vec![0xFF; 4]);
        assert_eq!(mem.read_vec(0x44, 8), vec![0; 8]);
        assert_eq!(mem.read_vec(0x4C, 4), vec![0xFF; 4]);
    }

    #[test]
    fn sparse_footprint_stays_small() {
        let mut mem = SparseMemory::new();
        // Touch 100 widely scattered addresses.
        for i in 0..100u64 {
            mem.write_u32(i * 0x1000_0000, i as u32);
        }
        assert_eq!(mem.page_count(), 100);
    }
}
