//! DRAM channels: a single write-buffered channel and the
//! line-interleaved multi-channel fabric.
//!
//! [`MemoryChannel`] couples one [`MemTimingModel`] occupancy timeline
//! with one [`WriteBuffer`], encapsulating the paper's write-buffer
//! behaviour (§3.4: writes "steal idle bus cycles") so every backend
//! models contention identically, and optionally a [`BankSet`] so
//! row-buffer locality inside the channel matters. [`ChannelSet`]
//! generalises it into `N` independent channels interleaved by line
//! address — the multi-controller memory fabric: transactions to
//! different lines spread across channels and only same-channel traffic
//! queues.
//!
//! Every demand path takes the transaction's address: with banks
//! disabled (`BankConfig::flat()`, the paper default) the address is
//! only used for routing and the timing is bit-identical to the
//! pre-bank flat occupancy model; with `banks > 1` the address also
//! selects a `(bank, row)` coordinate and the access is charged
//! `row_hit_cycles` or `row_conflict_cycles` against that bank's busy
//! timeline.

use crate::bank::{BankConfig, BankSet, PagePolicy};
use crate::timing::{MemTimingModel, TrafficClass};
use padlock_cache::WriteBuffer;
use padlock_stats::CounterSet;

/// A memory channel shared by demand reads and buffered writebacks.
///
/// Pending writebacks drain at their natural ready times, demand reads
/// queue behind whatever the channel is doing.
///
/// # Examples
///
/// ```
/// use padlock_mem::{MemoryChannel, TrafficClass};
///
/// let mut ch = MemoryChannel::new(100, 8, 8);
/// ch.enqueue_write(0, 50, 0x80, TrafficClass::LineWrite, 128);
/// // A read at cycle 60 sees the drained write occupy the channel first.
/// let done = ch.demand_read(60, 0x100, TrafficClass::LineRead, 128);
/// assert!(done >= 160);
/// ```
#[derive(Debug)]
pub struct MemoryChannel {
    mem: MemTimingModel,
    write_buffer: WriteBuffer,
    banks: Option<BankSet>,
}

impl Clone for MemoryChannel {
    fn clone(&self) -> Self {
        Self {
            mem: self.mem.clone(),
            write_buffer: self.write_buffer.clone(),
            banks: self.banks.clone(),
        }
    }

    // Hand-written so the per-issue channel snapshot under speculative
    // window issue reuses the destination's buffers instead of
    // reallocating them (`derive` would fall back to clone-and-drop).
    fn clone_from(&mut self, source: &Self) {
        self.mem = source.mem.clone();
        self.write_buffer.clone_from(&source.write_buffer);
        match (&mut self.banks, &source.banks) {
            (Some(dst), Some(src)) => dst.clone_from(src),
            (dst, src) => *dst = src.clone(),
        }
    }
}

impl MemoryChannel {
    /// Creates a flat (bankless) channel with the given DRAM latency,
    /// per-transaction occupancy, and write-buffer depth.
    pub fn new(mem_latency: u64, occupancy: u64, write_buffer_entries: usize) -> Self {
        Self {
            mem: MemTimingModel::new(mem_latency, occupancy),
            write_buffer: WriteBuffer::new(write_buffer_entries),
            banks: None,
        }
    }

    /// Builder: adds DRAM banks with row-buffer timing beneath the
    /// channel. A flat config (`banks = 1`) leaves the channel exactly
    /// as built — the paper's uniform-latency model.
    pub fn with_banks(mut self, config: BankConfig) -> Self {
        self.banks = if config.is_flat() {
            None
        } else {
            Some(BankSet::new(config))
        };
        self
    }

    /// The underlying DRAM timing model (traffic statistics).
    pub fn mem(&self) -> &MemTimingModel {
        &self.mem
    }

    /// The bank set, when row-buffer modeling is enabled.
    pub fn banks(&self) -> Option<&BankSet> {
        self.banks.as_ref()
    }

    /// Resets traffic statistics; buffered writes survive.
    pub fn reset_stats(&mut self) {
        self.mem.reset_stats();
        self.write_buffer.reset_stats();
    }

    /// Latest cycle the channel (bus or any bank) is busy until.
    ///
    /// This is the frontier of *issued* work — buffered-but-unflushed
    /// writebacks have not claimed the bus yet and do not move it. Use
    /// [`MemoryChannel::is_idle`] for the drain-trigger signal, which
    /// does count them.
    pub fn busy_until(&self) -> u64 {
        let bus = self.mem.busy_until();
        match &self.banks {
            Some(banks) => bus.max(banks.busy_until()),
            None => bus,
        }
    }

    /// Whether the channel is quiescent at `now`: the bus and every
    /// bank have gone idle *and* no writeback sits buffered awaiting a
    /// drain. A freshly enqueued write makes the channel non-idle even
    /// though it has not touched the bus — an adaptive drain policy
    /// keyed on channel idleness must not treat committed-but-unflushed
    /// work as a free window.
    pub fn is_idle(&self, now: u64) -> bool {
        self.busy_until() <= now && self.write_buffer.is_empty()
    }

    /// Issues one read against the bus (and, when banked, `addr`'s
    /// bank); returns the data-ready cycle.
    fn issue_read(&mut self, want: u64, addr: u64, class: TrafficClass, bytes: u32) -> u64 {
        match &mut self.banks {
            None => self.mem.read(want, class, bytes),
            Some(banks) => {
                let grant = banks.access(want.max(self.mem.busy_until()), addr);
                self.mem.record_row(grant.hit);
                self.mem
                    .read_with_latency(grant.start, class, bytes, grant.done - grant.start)
            }
        }
    }

    /// Issues one posted write against the bus (and, when banked,
    /// `addr`'s bank); returns the channel-release cycle.
    fn issue_write(&mut self, want: u64, addr: u64, class: TrafficClass, bytes: u32) -> u64 {
        match &mut self.banks {
            None => self.mem.write(want, class, bytes),
            Some(banks) => {
                let grant = banks.access(want.max(self.mem.busy_until()), addr);
                self.mem.record_row(grant.hit);
                self.mem.write(grant.start, class, bytes)
            }
        }
    }

    /// Drains writes whose data became ready by `now` (they used idle
    /// channel slots at their natural times).
    fn drain_ready(&mut self, now: u64) {
        while let Some(entry) = self.write_buffer.pop_ready(now) {
            self.issue_write(entry.ready_at, entry.addr, TrafficClass::LineWrite, entry.bytes);
        }
    }

    /// Issues a demand read of `addr`; returns its completion cycle.
    ///
    /// Demand reads have priority: the read claims the channel first,
    /// and ready writebacks drain *behind* it (they only delay later
    /// transactions, the way a read-priority memory scheduler behaves).
    pub fn demand_read(&mut self, now: u64, addr: u64, class: TrafficClass, bytes: u32) -> u64 {
        let done = self.issue_read(now, addr, class, bytes);
        self.drain_ready(now);
        done
    }

    /// Issues a burst of `count` same-class demand reads of `addr` at
    /// `now`; returns each read's completion cycle.
    ///
    /// The reads claim consecutive occupancy slots ahead of any pending
    /// writebacks (read-priority scheduling); ready writebacks then
    /// backfill behind the whole burst. On a banked channel the first
    /// read of the burst opens the row and the rest stream out of it as
    /// row hits. A burst of one is exactly [`MemoryChannel::demand_read`].
    pub fn demand_read_burst(
        &mut self,
        now: u64,
        addr: u64,
        class: TrafficClass,
        bytes: u32,
        count: usize,
    ) -> Vec<u64> {
        let done = match &self.banks {
            None => self.mem.read_burst(now, class, bytes, count),
            Some(_) => (0..count)
                .map(|_| self.issue_read(now, addr, class, bytes))
                .collect(),
        };
        self.drain_ready(now);
        done
    }

    /// Issues a demand (blocking) write of `addr`, e.g. a forced
    /// sequence-number spill; returns the channel-release cycle.
    pub fn demand_write(&mut self, now: u64, addr: u64, class: TrafficClass, bytes: u32) -> u64 {
        self.drain_ready(now);
        self.issue_write(now, addr, class, bytes)
    }

    /// Enqueues a buffered writeback whose data (e.g. ciphertext) is
    /// ready at `ready_at`. A full buffer force-drains its head, which is
    /// the stall the paper attributes to bursts of replacements.
    pub fn enqueue_write(
        &mut self,
        now: u64,
        ready_at: u64,
        addr: u64,
        class: TrafficClass,
        bytes: u32,
    ) {
        if self.write_buffer.is_full() {
            if let Some(head) = self.write_buffer.pop_ready(u64::MAX) {
                let start = head.ready_at.max(now);
                self.issue_write(start, head.addr, TrafficClass::LineWrite, head.bytes);
            }
        }
        // The entry's own class is recorded when it drains; to keep
        // per-class accounting exact we record non-default classes here
        // instead of at drain time.
        if class != TrafficClass::LineWrite {
            // Count now; drain as generic traffic with zero extra bytes.
            self.issue_write(now.max(ready_at), addr, class, bytes);
        } else {
            let pushed = self.write_buffer.push(addr, ready_at, bytes);
            debug_assert!(pushed, "buffer cannot be full after force-drain");
        }
    }

    /// Force-drains every buffered write at measurement wrap-up
    /// (mirroring the SNC's `flush_spills`), so `LineWrite` traffic is
    /// not undercounted by entries still sitting in the buffer when a
    /// window closes. Entries not yet ready start at their ready time;
    /// ready entries start no earlier than `now`. Returns the number of
    /// entries drained.
    pub fn flush_writes(&mut self, now: u64) -> usize {
        let mut drained = 0;
        while let Some(entry) = self.write_buffer.pop_ready(u64::MAX) {
            let start = entry.ready_at.max(now);
            self.issue_write(start, entry.addr, TrafficClass::LineWrite, entry.bytes);
            drained += 1;
        }
        drained
    }

    /// Writebacks currently buffered (not yet drained to DRAM).
    pub fn buffered_writes(&self) -> usize {
        self.write_buffer.len()
    }
}

/// `N` independent, line-address-interleaved DRAM channels.
///
/// Each channel owns its own [`MemTimingModel`] occupancy timeline and
/// write buffer (and, when configured, its own [`BankSet`]), so
/// transactions to lines on different channels proceed in parallel and
/// only same-channel traffic queues. Line `i` (at
/// `addr / interleave_bytes`) lives on channel `i % N`, the same
/// interleaving `padlock_core`'s `SncShards` uses — pairing shard `k`
/// with channel `k` in an `N = N` configuration makes each
/// (shard, channel) pair an independent lock-step memory controller.
///
/// With `N = 1` every operation forwards to the single channel
/// untouched, so a one-channel set is bit-identical to a bare
/// [`MemoryChannel`].
///
/// # Examples
///
/// ```
/// use padlock_mem::{ChannelSet, TrafficClass};
///
/// let mut fabric = ChannelSet::new(4, 100, 8, 8, 128);
/// // Four consecutive lines land on four different channels and all
/// // complete at the uncontended latency.
/// for line in 0..4u64 {
///     let done = fabric.demand_read(0, line * 128, TrafficClass::LineRead, 128);
///     assert_eq!(done, 100);
/// }
/// assert_eq!(fabric.stats().get("line_reads"), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ChannelSet {
    channels: Vec<MemoryChannel>,
    interleave_bytes: u64,
    bank_config: BankConfig,
}

/// A saved copy of one channel's complete timing state — bus and bank
/// timelines, row-buffer contents, traffic statistics, and buffered
/// writebacks — taken by [`ChannelSet::snapshot_channel`] and applied
/// back by [`ChannelSet::restore_channel`].
///
/// This is the timeline checkpoint under speculative window issue: a
/// controller that speculatively issues a singleton drain window
/// snapshots the one channel the read touches, and restores it if a
/// later request couples into the window and forces a replay. The
/// snapshot is reusable — repeated saves into the same value reuse its
/// allocations (`clone_from`), keeping the hot path allocation-free
/// after warm-up.
#[derive(Debug, Clone, Default)]
pub struct ChannelSnapshot {
    saved: Option<MemoryChannel>,
}

impl ChannelSnapshot {
    /// Creates an empty snapshot (nothing saved yet).
    pub fn new() -> Self {
        Self::default()
    }
}

impl ChannelSet {
    /// Creates `channels` idle flat channels interleaved every
    /// `interleave_bytes` (normally the L2 line size).
    ///
    /// # Panics
    ///
    /// Panics if `channels` or `interleave_bytes` is zero.
    pub fn new(
        channels: usize,
        mem_latency: u64,
        occupancy: u64,
        write_buffer_entries: usize,
        interleave_bytes: u64,
    ) -> Self {
        assert!(channels > 0, "fabric must have at least one channel");
        assert!(interleave_bytes > 0, "interleave granularity must be positive");
        Self {
            channels: (0..channels)
                .map(|_| MemoryChannel::new(mem_latency, occupancy, write_buffer_entries))
                .collect(),
            interleave_bytes,
            bank_config: BankConfig::flat(),
        }
    }

    /// Builder: adds DRAM banks with row-buffer timing beneath every
    /// channel. A flat config (`banks = 1`) is a no-op — the paper's
    /// uniform-latency fabric.
    pub fn with_banks(mut self, config: BankConfig) -> Self {
        self.bank_config = config;
        self.channels = self
            .channels
            .into_iter()
            .map(|ch| ch.with_banks(config))
            .collect();
        self
    }

    /// Number of channels in the fabric.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The bank configuration every channel runs (flat by default).
    pub fn bank_config(&self) -> &BankConfig {
        &self.bank_config
    }

    /// The channel index serving `addr` (line-interleaved).
    pub fn channel_of(&self, addr: u64) -> usize {
        ((addr / self.interleave_bytes) % self.channels.len() as u64) as usize
    }

    /// The full `(channel, bank, row)` coordinate serving `addr`: the
    /// line interleave picks the channel, the row interleave picks the
    /// bank within it, and the row index names the bank's row that
    /// holds the address — the grouping key the FR-FCFS drain
    /// scheduler ([`ChannelSet::row_first_order`]) keys a window by.
    /// With banks disabled every address collapses to
    /// `(channel, 0, 0)`, so row-first ordering degenerates to arrival
    /// order per channel.
    pub fn coordinates_of(&self, addr: u64) -> (usize, usize, u64) {
        let channel = self.channel_of(addr);
        match self.channels[channel].banks() {
            Some(banks) => (channel, banks.bank_of(addr), banks.row_of(addr)),
            None => (channel, 0, 0),
        }
    }

    /// The individual channels (diagnostics; per-channel stats).
    pub fn channels(&self) -> &[MemoryChannel] {
        &self.channels
    }

    /// Latest cycle any channel (bus or bank) is busy until — the
    /// makespan frontier of everything issued so far. Buffered
    /// writebacks have not issued; see [`ChannelSet::is_idle`].
    pub fn busy_until(&self) -> u64 {
        self.channels.iter().map(|ch| ch.busy_until()).max().unwrap_or(0)
    }

    /// Whether the whole fabric is quiescent at `now`: every channel's
    /// bus and banks idle and every write buffer empty. The idle signal
    /// an adaptive drain policy keys on.
    pub fn is_idle(&self, now: u64) -> bool {
        self.channels.iter().all(|ch| ch.is_idle(now))
    }

    /// Aggregated traffic statistics summed over every channel.
    pub fn stats(&self) -> CounterSet {
        let mut all = CounterSet::new("mem");
        for ch in &self.channels {
            all.merge(&ch.mem().stats());
        }
        all
    }

    /// The fabric-wide fixed-slot traffic totals summed over every
    /// channel — the cheap `Copy` counterpart of [`ChannelSet::stats`],
    /// taken before and after each scheduling step when shared-fabric
    /// traffic has to be attributed to the compartment that caused it.
    pub fn totals(&self) -> crate::timing::TrafficTotals {
        self.channels
            .iter()
            .fold(crate::timing::TrafficTotals::default(), |acc, ch| {
                acc.plus(ch.mem().totals())
            })
    }

    /// Resets every channel's statistics; buffered writes survive.
    pub fn reset_stats(&mut self) {
        for ch in &mut self.channels {
            ch.reset_stats();
        }
    }

    /// Saves the complete timing state of the channel serving `addr`
    /// into `snap`, reusing the snapshot's allocations when possible.
    pub fn snapshot_channel(&self, addr: u64, snap: &mut ChannelSnapshot) {
        let ch = &self.channels[self.channel_of(addr)];
        match &mut snap.saved {
            Some(saved) => saved.clone_from(ch),
            None => snap.saved = Some(ch.clone()),
        }
    }

    /// Restores the channel serving `addr` from `snap`, discarding every
    /// mutation since the matching [`ChannelSet::snapshot_channel`].
    ///
    /// # Panics
    ///
    /// Panics if `snap` holds nothing.
    pub fn restore_channel(&mut self, addr: u64, snap: &ChannelSnapshot) {
        let ch = self.channel_of(addr);
        self.channels[ch].clone_from(
            snap.saved
                .as_ref()
                .expect("restore_channel needs a prior snapshot"),
        );
    }

    /// Chooses an FR-FCFS issue order for one window of read requests
    /// `(ready, addr)` against the fabric's *current* bank state:
    /// repeatedly pick the request that can start earliest, preferring
    /// an open-row hit over a conflict at equal start, and the oldest
    /// request at equal start and outcome — the classic
    /// first-ready / row-hit-first / oldest-first policy, scoped to the
    /// window. Returns a permutation of `0..reqs.len()`; issuing
    /// `demand_read`s in that order groups same-row requests
    /// back-to-back (the second streams out of the row the first
    /// opened) without ever idling a bank behind a not-yet-ready
    /// row-mate — the failure mode of a static same-row grouping when
    /// arrivals are spread.
    ///
    /// The choice is made against a scratch copy of the bus and bank
    /// timelines (buffered writebacks are ignored — they backfill
    /// behind demand reads anyway), so the fabric is not mutated; on a
    /// flat fabric there are no rows to group and the identity order is
    /// returned, keeping `RowFirst` bit-exact with `Fifo` there.
    pub fn row_first_order(&self, reqs: &[(u64, u64)]) -> Vec<usize> {
        if self.bank_config.is_flat() {
            return (0..reqs.len()).collect();
        }
        #[derive(Clone, Copy)]
        struct ScratchBank {
            open: Option<u64>,
            busy: u64,
        }
        let mut bus: Vec<u64> = Vec::with_capacity(self.channels.len());
        let mut occ: Vec<u64> = Vec::with_capacity(self.channels.len());
        let mut banks: Vec<Vec<ScratchBank>> = Vec::with_capacity(self.channels.len());
        for ch in &self.channels {
            bus.push(ch.mem().busy_until());
            occ.push(ch.mem().occupancy());
            let bs = ch.banks().expect("banked fabric has a bank set");
            banks.push(
                (0..bs.num_banks())
                    .map(|b| ScratchBank {
                        open: bs.open_row(b),
                        busy: bs.bank_busy_until(b),
                    })
                    .collect(),
            );
        }
        let cfg = self.bank_config;
        let coords: Vec<(usize, usize, u64)> = reqs
            .iter()
            .map(|&(_, addr)| self.coordinates_of(addr))
            .collect();
        let mut pending: Vec<usize> = (0..reqs.len()).collect();
        let mut order = Vec::with_capacity(reqs.len());
        while !pending.is_empty() {
            let mut best_pos = 0;
            let mut best_key = (u64::MAX, true, usize::MAX);
            for (pos, &i) in pending.iter().enumerate() {
                let (ch, bk, row) = coords[i];
                let bank = banks[ch][bk];
                let start = reqs[i].0.max(bus[ch]).max(bank.busy);
                let hit = cfg.page_policy == PagePolicy::Open && bank.open == Some(row);
                let key = (start, !hit, i);
                if key < best_key {
                    best_key = key;
                    best_pos = pos;
                }
            }
            let i = pending.swap_remove(best_pos);
            let (ch, bk, row) = coords[i];
            let (start, hit) = (best_key.0, !best_key.1);
            let latency = match cfg.page_policy {
                PagePolicy::Open if hit => cfg.row_hit_cycles,
                PagePolicy::Open => cfg.row_conflict_cycles,
                PagePolicy::Closed => cfg.row_closed_cycles,
            };
            banks[ch][bk].busy = start + latency;
            banks[ch][bk].open = (cfg.page_policy == PagePolicy::Open).then_some(row);
            bus[ch] = start + occ[ch];
            order.push(i);
        }
        order
    }

    /// Issues a demand read of `addr`'s line on its channel; returns
    /// the completion cycle.
    pub fn demand_read(&mut self, now: u64, addr: u64, class: TrafficClass, bytes: u32) -> u64 {
        let ch = self.channel_of(addr);
        self.channels[ch].demand_read(now, addr, class, bytes)
    }

    /// Issues a burst of `count` same-class demand reads of `addr` on
    /// its channel; returns each read's completion cycle.
    pub fn demand_read_burst(
        &mut self,
        now: u64,
        addr: u64,
        class: TrafficClass,
        bytes: u32,
        count: usize,
    ) -> Vec<u64> {
        let ch = self.channel_of(addr);
        self.channels[ch].demand_read_burst(now, addr, class, bytes, count)
    }

    /// Issues a demand (blocking) write on `addr`'s channel; returns
    /// the channel-release cycle.
    pub fn demand_write(&mut self, now: u64, addr: u64, class: TrafficClass, bytes: u32) -> u64 {
        let ch = self.channel_of(addr);
        self.channels[ch].demand_write(now, addr, class, bytes)
    }

    /// Issues a demand write on an *explicit* channel, bypassing the
    /// address interleave — for controller-managed placement such as
    /// channel-striped sequence-number-table spills, where the
    /// controller owns the table layout and stripes packed lines over
    /// the fabric deliberately.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn demand_write_on(
        &mut self,
        channel: usize,
        now: u64,
        addr: u64,
        class: TrafficClass,
        bytes: u32,
    ) -> u64 {
        self.channels[channel].demand_write(now, addr, class, bytes)
    }

    /// Enqueues a buffered writeback in `addr`'s channel's write
    /// buffer.
    pub fn enqueue_write(
        &mut self,
        now: u64,
        ready_at: u64,
        addr: u64,
        class: TrafficClass,
        bytes: u32,
    ) {
        let ch = self.channel_of(addr);
        self.channels[ch].enqueue_write(now, ready_at, addr, class, bytes);
    }

    /// Force-drains every channel's buffered writes at measurement
    /// wrap-up; returns the total number of entries drained.
    pub fn flush_writes(&mut self, now: u64) -> usize {
        self.channels.iter_mut().map(|ch| ch.flush_writes(now)).sum()
    }

    /// Writebacks buffered across all channels.
    pub fn buffered_writes(&self) -> usize {
        self.channels.iter().map(|ch| ch.buffered_writes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::{DEFAULT_ROW_CONFLICT_CYCLES, DEFAULT_ROW_HIT_CYCLES, ROW_LINES};

    #[test]
    fn snapshot_restore_discards_speculative_mutations() {
        // A banked, write-buffered fabric with history: snapshot one
        // channel, mutate it every way a speculated read can (bus, bank
        // rows, stats, write-buffer pops), restore, and check the fabric
        // behaves bit-identically to an untouched twin.
        let bank_cfg = BankConfig::banked(2, 128);
        let mut fabric = ChannelSet::new(2, 100, 8, 8, 128).with_banks(bank_cfg);
        let mut twin = ChannelSet::new(2, 100, 8, 8, 128).with_banks(bank_cfg);
        for set in [&mut fabric, &mut twin] {
            set.demand_read(0, 0x000, TrafficClass::LineRead, 128);
            set.enqueue_write(5, 400, 0x200, TrafficClass::LineWrite, 128);
        }
        let mut snap = ChannelSnapshot::new();
        fabric.snapshot_channel(0x000, &mut snap);
        // Speculate: a read late enough to pop the buffered write.
        fabric.demand_read(500, 0x400, TrafficClass::LineRead, 128);
        assert_ne!(fabric.stats(), twin.stats());
        fabric.restore_channel(0x000, &snap);
        assert_eq!(fabric.stats(), twin.stats());
        assert_eq!(fabric.busy_until(), twin.busy_until());
        assert_eq!(fabric.buffered_writes(), twin.buffered_writes());
        // Same subsequent traffic completes at the same cycles.
        for addr in [0x000u64, 0x200, 0x400, 0x600] {
            assert_eq!(
                fabric.demand_read(600, addr, TrafficClass::LineRead, 128),
                twin.demand_read(600, addr, TrafficClass::LineRead, 128),
            );
        }
    }

    #[test]
    #[should_panic(expected = "prior snapshot")]
    fn restore_without_snapshot_panics() {
        let mut fabric = ChannelSet::new(1, 100, 8, 8, 128);
        fabric.restore_channel(0, &ChannelSnapshot::new());
    }

    #[test]
    fn channel_reads_have_priority_over_pending_writes() {
        let mut ch = MemoryChannel::new(100, 8, 8);
        ch.enqueue_write(0, 90, 0x80, TrafficClass::LineWrite, 128);
        // Read at 92: it claims the channel first (done at 192); the
        // ready write drains behind it and only delays *later* traffic.
        let done = ch.demand_read(92, 0x100, TrafficClass::LineRead, 128);
        assert_eq!(done, 192);
        let next = ch.demand_read(92, 0x100, TrafficClass::LineRead, 128);
        assert!(next > 200, "second read queues behind the drained write");
    }

    #[test]
    fn read_burst_claims_slots_ahead_of_ready_writes() {
        let mut ch = MemoryChannel::new(100, 8, 8);
        ch.enqueue_write(0, 50, 0x80, TrafficClass::LineWrite, 128);
        let dones = ch.demand_read_burst(60, 0x100, TrafficClass::LineRead, 128, 3);
        assert_eq!(dones, vec![160, 168, 176]);
        // The ready write backfilled behind the burst.
        assert_eq!(ch.mem().stats().get("line_writes"), 1);
    }

    #[test]
    fn channel_full_buffer_force_drains() {
        let mut ch = MemoryChannel::new(100, 8, 2);
        ch.enqueue_write(0, 1000, 1, TrafficClass::LineWrite, 128);
        ch.enqueue_write(0, 1000, 2, TrafficClass::LineWrite, 128);
        // Third write forces the head out even though not ready.
        ch.enqueue_write(5, 1000, 3, TrafficClass::LineWrite, 128);
        assert_eq!(ch.mem().stats().get("line_writes"), 1);
    }

    #[test]
    fn flush_writes_drains_everything_counting_traffic() {
        let mut ch = MemoryChannel::new(100, 8, 8);
        ch.enqueue_write(0, 50, 0x00, TrafficClass::LineWrite, 128);
        ch.enqueue_write(0, 5_000, 0x80, TrafficClass::LineWrite, 128);
        assert_eq!(ch.buffered_writes(), 2);
        assert_eq!(ch.mem().stats().get("line_writes"), 0);
        assert_eq!(ch.flush_writes(1_000), 2);
        assert_eq!(ch.buffered_writes(), 0);
        assert_eq!(ch.mem().stats().get("line_writes"), 2);
        // The not-yet-ready entry started at its natural ready time.
        assert!(ch.mem().busy_until() >= 5_000);
        // Idempotent once drained.
        assert_eq!(ch.flush_writes(2_000), 0);
    }

    #[test]
    fn one_channel_set_matches_bare_channel() {
        let mut set = ChannelSet::new(1, 100, 8, 8, 128);
        let mut bare = MemoryChannel::new(100, 8, 8);
        for line in 0..6u64 {
            let addr = line * 128;
            set.enqueue_write(line, line + 60, addr, TrafficClass::LineWrite, 128);
            bare.enqueue_write(line, line + 60, addr, TrafficClass::LineWrite, 128);
            assert_eq!(
                set.demand_read(line * 3, addr, TrafficClass::LineRead, 128),
                bare.demand_read(line * 3, addr, TrafficClass::LineRead, 128)
            );
        }
        let set_stats: Vec<(String, u64)> = set
            .stats()
            .iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let bare_stats: Vec<(String, u64)> = bare
            .mem()
            .stats()
            .iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        assert_eq!(set_stats, bare_stats);
    }

    #[test]
    fn lines_interleave_round_robin() {
        let set = ChannelSet::new(4, 100, 8, 8, 128);
        assert_eq!(set.channel_of(0), 0);
        assert_eq!(set.channel_of(127), 0);
        assert_eq!(set.channel_of(128), 1);
        assert_eq!(set.channel_of(5 * 128), 1);
        assert_eq!(set.channel_of(7 * 128), 3);
        assert_eq!(set.num_channels(), 4);
    }

    #[test]
    fn independent_channels_do_not_contend() {
        let mut set = ChannelSet::new(2, 100, 8, 8, 128);
        // Same channel: second read queues one occupancy slot behind.
        assert_eq!(set.demand_read(0, 0, TrafficClass::LineRead, 128), 100);
        assert_eq!(set.demand_read(0, 2 * 128, TrafficClass::LineRead, 128), 108);
        // Other channel: unaffected by channel 0's queue.
        assert_eq!(set.demand_read(0, 128, TrafficClass::LineRead, 128), 100);
    }

    #[test]
    fn set_flush_writes_covers_every_channel() {
        let mut set = ChannelSet::new(2, 100, 8, 8, 128);
        set.enqueue_write(0, 10_000, 0, TrafficClass::LineWrite, 128);
        set.enqueue_write(0, 10_000, 128, TrafficClass::LineWrite, 128);
        assert_eq!(set.buffered_writes(), 2);
        assert_eq!(set.flush_writes(0), 2);
        assert_eq!(set.stats().get("line_writes"), 2);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = ChannelSet::new(0, 100, 8, 8, 128);
    }

    // ---- bank-aware paths ----

    const ROW: u64 = 128 * ROW_LINES; // 2KB

    fn banked_channel(banks: usize) -> MemoryChannel {
        MemoryChannel::new(100, 8, 8).with_banks(BankConfig::banked(banks, 128))
    }

    #[test]
    fn flat_bank_config_keeps_the_flat_model() {
        let mut flat = MemoryChannel::new(100, 8, 8);
        let mut one_bank = MemoryChannel::new(100, 8, 8).with_banks(BankConfig::flat());
        assert!(one_bank.banks().is_none());
        for line in 0..8u64 {
            assert_eq!(
                flat.demand_read(line, line * 128, TrafficClass::LineRead, 128),
                one_bank.demand_read(line, line * 128, TrafficClass::LineRead, 128)
            );
        }
    }

    #[test]
    fn open_row_reads_are_hits_and_cheaper() {
        let mut ch = banked_channel(4);
        // Cold: conflict.
        let first = ch.demand_read(0, 0, TrafficClass::LineRead, 128);
        assert_eq!(first, DEFAULT_ROW_CONFLICT_CYCLES);
        // Next line of the same row, issued after: row hit streamed
        // behind the bus slot.
        let second = ch.demand_read(first, 128, TrafficClass::LineRead, 128);
        assert_eq!(second, first + DEFAULT_ROW_HIT_CYCLES);
        assert_eq!(ch.mem().stats().get("row_hits"), 1);
        assert_eq!(ch.mem().stats().get("row_conflicts"), 1);
    }

    #[test]
    fn different_banks_overlap_their_activates() {
        let mut ch = banked_channel(4);
        // Rows 0 and 1 live in banks 0 and 1: both conflict cold, but
        // their activates overlap — only the 8-cycle bus slot queues.
        let a = ch.demand_read(0, 0, TrafficClass::LineRead, 128);
        let b = ch.demand_read(0, ROW, TrafficClass::LineRead, 128);
        assert_eq!(a, DEFAULT_ROW_CONFLICT_CYCLES);
        assert_eq!(b, 8 + DEFAULT_ROW_CONFLICT_CYCLES);
        // Same bank, different row (4 banks: row 4 -> bank 0): waits
        // for bank 0's activate, then conflicts again.
        let c = ch.demand_read(0, 4 * ROW, TrafficClass::LineRead, 128);
        assert_eq!(c, a + DEFAULT_ROW_CONFLICT_CYCLES);
    }

    #[test]
    fn banked_writes_touch_rows_too() {
        let mut ch = banked_channel(2);
        ch.demand_write(0, 0, TrafficClass::LineWrite, 128);
        // The write opened row 0; a read of it hits.
        let done = ch.demand_read(500, 128, TrafficClass::LineRead, 128);
        assert_eq!(done, 500 + DEFAULT_ROW_HIT_CYCLES);
        assert_eq!(ch.mem().stats().get("row_hits"), 1);
    }

    #[test]
    fn banked_buffered_writes_drain_through_their_bank() {
        let mut ch = banked_channel(2);
        ch.enqueue_write(0, 50, 0x80, TrafficClass::LineWrite, 128);
        assert_eq!(ch.flush_writes(60), 1);
        // The drained write conflicted cold and opened its row.
        assert_eq!(ch.mem().stats().get("row_conflicts"), 1);
        assert!(ch.busy_until() >= 60 + DEFAULT_ROW_CONFLICT_CYCLES);
    }

    #[test]
    fn set_coordinates_partition_channel_then_bank_then_row() {
        let set = ChannelSet::new(2, 100, 8, 8, 128).with_banks(BankConfig::banked(4, 128));
        assert_eq!(set.bank_config().banks, 4);
        // Line interleave picks the channel; row interleave the bank;
        // the row index names the open-row register at stake.
        assert_eq!(set.coordinates_of(0), (0, 0, 0));
        assert_eq!(set.coordinates_of(128), (1, 0, 0));
        assert_eq!(set.coordinates_of(ROW), (0, 1, 1));
        assert_eq!(set.coordinates_of(4 * ROW + 128), (1, 0, 4));
        // Flat set: bank and row coordinates pinned to 0.
        let flat = ChannelSet::new(2, 100, 8, 8, 128);
        assert_eq!(flat.coordinates_of(3 * ROW + 128), (1, 0, 0));
    }

    #[test]
    fn buffered_writeback_keeps_the_channel_non_idle() {
        let mut ch = MemoryChannel::new(100, 8, 8);
        assert!(ch.is_idle(0));
        // A freshly buffered write has not touched the bus (busy_until
        // is still the issued-work frontier)...
        ch.enqueue_write(0, 500, 0x80, TrafficClass::LineWrite, 128);
        assert_eq!(ch.busy_until(), 0);
        // ...but the channel must not report idle: the write is
        // committed work an adaptive drain would otherwise never see.
        assert!(!ch.is_idle(0));
        assert!(!ch.is_idle(10_000));
        ch.flush_writes(10_000);
        assert!(ch.is_idle(10_000 + 8));
    }

    #[test]
    fn set_idle_requires_every_channel_idle() {
        let mut set = ChannelSet::new(2, 100, 8, 8, 128);
        assert!(set.is_idle(0));
        // Channel 1 gets a buffered write; the fabric is non-idle even
        // though channel 0 never moved.
        set.enqueue_write(0, 50, 128, TrafficClass::LineWrite, 128);
        assert!(!set.is_idle(1_000));
        // A demand read on channel 1 drains the ready write; the
        // fabric goes idle once both bus timelines clear.
        let done = set.demand_read(1_000, 128, TrafficClass::LineRead, 128);
        assert!(!set.is_idle(1_000));
        assert!(set.is_idle(done));
        // Banked fabrics count bank busy timelines too.
        let mut banked =
            ChannelSet::new(1, 100, 8, 8, 128).with_banks(BankConfig::banked(2, 128));
        banked.demand_read(0, 0, TrafficClass::LineRead, 128);
        assert!(!banked.is_idle(0));
        assert!(banked.is_idle(1_000));
    }

    #[test]
    fn demand_write_on_routes_to_the_named_channel() {
        let mut set = ChannelSet::new(4, 100, 8, 8, 128);
        set.demand_write_on(2, 0, 0, TrafficClass::SeqWrite, 128);
        assert_eq!(set.channels()[2].mem().stats().get("seq_writes"), 1);
        assert_eq!(set.channels()[0].mem().stats().get("seq_writes"), 0);
        assert!(set.busy_until() >= 8);
    }
}
