//! DRAM banks and row buffers beneath a memory channel.
//!
//! The flat [`crate::MemTimingModel`] charges every access the same
//! latency, so locality *inside* a channel is invisible: a pointer walk
//! that ricochets across the DRAM array costs the same as a sweep that
//! stays in one open row. Real DRAM is organised as independent banks,
//! each with a row buffer (sense amplifiers) holding the last-activated
//! row: an access to the open row is a **row hit** (column access
//! only), an access to any other row is a **row conflict** (precharge
//! the open row, activate the new one, then the column access).
//!
//! [`BankSet`] models that layer for one channel: `banks` banks, each
//! with an open-row register and its own busy timeline, so
//!
//! * same-row streams pay `row_hit_cycles` per access,
//! * row-hopping streams pay `row_conflict_cycles` per access, and
//! * concurrent accesses to *different* banks overlap their
//!   precharge/activate phases (bank-level parallelism) while accesses
//!   to the same bank serialise on the bank's busy timeline.
//!
//! The address map is derived from the same granularity as the channel
//! fabric's line interleave: [`ROW_LINES`] consecutive lines of the
//! *global* address space form one row (`row = addr / row_bytes`), and
//! rows rotate over banks (`bank = row % banks`). Together with the
//! [`crate::ChannelSet`] line interleave this gives every address
//! exactly one `(channel, bank, row)` coordinate. Because channels
//! interleave at line granularity *within* a row, a row's lines spread
//! over all `N` channels and each channel's open-row register covers
//! its `ROW_LINES / N` slice — exactly the row-reach dilution a real
//! cache-line-interleaved multi-channel system pays, and why wider
//! fabrics trade row-hit rate for channel parallelism.
//!
//! A [`BankConfig`] with `banks = 1` (the paper default) is *flat*:
//! [`crate::MemoryChannel`] bypasses the bank layer entirely and the
//! fabric is bit-identical to the pre-bank occupancy model — the
//! `banks_vs_seed` differential test locks this down.
//!
//! # Examples
//!
//! ```
//! use padlock_mem::{BankConfig, BankSet};
//!
//! let mut banks = BankSet::new(BankConfig::banked(4, 128));
//! // Cold access: row conflict (precharge + activate + CAS).
//! let first = banks.access(0, 0x1000);
//! assert!(!first.hit);
//! // Same row again while it is open: row hit, strictly cheaper.
//! let second = banks.access(first.done, 0x1010);
//! assert!(second.hit);
//! assert!(second.done - second.start < first.done - first.start);
//! ```

/// Lines per DRAM row: with the paper's 128-byte L2 lines this is a
/// 2KB row buffer, the row size of the SDRAM parts contemporary with
/// the paper's machine.
pub const ROW_LINES: u64 = 16;

/// Default row-hit (column access) latency in cycles. Cheaper than the
/// paper's flat 100-cycle access: an open row skips precharge and
/// activate.
pub const DEFAULT_ROW_HIT_CYCLES: u64 = 60;

/// Default row-conflict latency in cycles: precharge the open row,
/// activate the new one, then the column access. Dearer than the flat
/// 100-cycle access the paper averages over.
pub const DEFAULT_ROW_CONFLICT_CYCLES: u64 = 140;

/// Default closed-page access latency in cycles: activate + column
/// access against an already-precharged bank. Exactly the paper's flat
/// 100-cycle access — a closed-page DRAM never tracks row state, which
/// is the uniform-latency idealisation the paper assumes.
pub const DEFAULT_ROW_CLOSED_CYCLES: u64 = 100;

/// What a bank does with its row after an access completes.
///
/// * `Open` (the default) leaves the row latched in the sense
///   amplifiers: the next access to the same row is a cheap hit, the
///   next access to any other row pays precharge + activate.
/// * `Closed` auto-precharges after every access: no access is ever a
///   row hit, but none ever waits on a precharge either — every access
///   costs the flat activate + column latency
///   ([`BankConfig::row_closed_cycles`]). Random traffic with no
///   open-row reuse (the `rstride` walk) trades its nonexistent hits
///   for cheaper conflicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Leave the accessed row open behind every access.
    #[default]
    Open,
    /// Auto-precharge after every access (the row is never left open).
    Closed,
}

impl std::fmt::Display for PagePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PagePolicy::Open => write!(f, "open"),
            PagePolicy::Closed => write!(f, "closed"),
        }
    }
}

/// Configuration of one channel's bank set.
///
/// `banks = 1` means *flat*: the channel keeps the pre-bank model where
/// every access costs the channel's uniform access latency and only bus
/// occupancy queues. `banks > 1` enables row-buffer timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankConfig {
    /// Banks per channel (`1` = flat, the paper's model).
    pub banks: usize,
    /// Latency of an access that finds its row open.
    pub row_hit_cycles: u64,
    /// Latency of an access that must precharge + activate first.
    pub row_conflict_cycles: u64,
    /// Latency of every access under the [`PagePolicy::Closed`] policy
    /// (activate + column access, the bank having auto-precharged).
    pub row_closed_cycles: u64,
    /// Whether rows stay open between accesses or auto-precharge.
    pub page_policy: PagePolicy,
    /// Bytes per row (normally `line_bytes * ROW_LINES`).
    pub row_bytes: u64,
}

impl BankConfig {
    /// The flat (bankless) configuration the paper assumes.
    pub fn flat() -> Self {
        Self {
            banks: 1,
            row_hit_cycles: DEFAULT_ROW_HIT_CYCLES,
            row_conflict_cycles: DEFAULT_ROW_CONFLICT_CYCLES,
            row_closed_cycles: DEFAULT_ROW_CLOSED_CYCLES,
            page_policy: PagePolicy::Open,
            row_bytes: 128 * ROW_LINES,
        }
    }

    /// A banked configuration with the default row timings and the row
    /// size implied by `line_bytes`.
    pub fn banked(banks: usize, line_bytes: u32) -> Self {
        Self {
            banks,
            row_hit_cycles: DEFAULT_ROW_HIT_CYCLES,
            row_conflict_cycles: DEFAULT_ROW_CONFLICT_CYCLES,
            row_closed_cycles: DEFAULT_ROW_CLOSED_CYCLES,
            page_policy: PagePolicy::Open,
            row_bytes: u64::from(line_bytes) * ROW_LINES,
        }
    }

    /// Builder: override the row hit/conflict latencies. The
    /// closed-page latency is clamped into the new `[hit, conflict]`
    /// band (it models a strict subset of the conflict's work and a
    /// strict superset of the hit's).
    pub fn with_row_cycles(mut self, hit: u64, conflict: u64) -> Self {
        self.row_hit_cycles = hit;
        self.row_conflict_cycles = conflict;
        if hit <= conflict {
            self.row_closed_cycles = self.row_closed_cycles.clamp(hit, conflict);
        }
        self
    }

    /// Builder: set the page policy.
    pub fn with_page_policy(mut self, policy: PagePolicy) -> Self {
        self.page_policy = policy;
        self
    }

    /// Builder: override the closed-page access latency.
    pub fn with_closed_cycles(mut self, closed: u64) -> Self {
        self.row_closed_cycles = closed;
        self
    }

    /// Whether this configuration degenerates to the flat occupancy
    /// model (no bank state at all).
    pub fn is_flat(&self) -> bool {
        self.banks <= 1
    }
}

impl Default for BankConfig {
    fn default() -> Self {
        Self::flat()
    }
}

/// One bank's row buffer and busy timeline.
#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// The scheduling grant for one bank access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankGrant {
    /// Cycle the access actually starts (bank free and request ready).
    pub start: u64,
    /// Cycle the data is at the pins.
    pub done: u64,
    /// Whether the access hit the open row.
    pub hit: bool,
    /// The bank that served it.
    pub bank: usize,
}

/// One channel's banks with open-row registers and busy timelines.
#[derive(Debug)]
pub struct BankSet {
    config: BankConfig,
    banks: Vec<Bank>,
}

impl Clone for BankSet {
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            banks: self.banks.clone(),
        }
    }

    // Hand-written so the per-issue channel snapshot under speculative
    // window issue reuses the destination's bank vector instead of
    // reallocating it (`derive` would fall back to clone-and-drop).
    fn clone_from(&mut self, source: &Self) {
        self.config = source.config;
        self.banks.clone_from(&source.banks);
    }
}

impl BankSet {
    /// Creates idle banks with every row closed.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `row_bytes` is zero, or if the latencies
    /// are not ordered `hit <= closed <= conflict` (a hit skips the
    /// activate a closed-page access pays, which in turn skips the
    /// precharge a conflict pays — each is a strict subset of the
    /// next's work).
    pub fn new(config: BankConfig) -> Self {
        assert!(config.banks > 0, "a channel needs at least one bank");
        assert!(config.row_bytes > 0, "row size must be positive");
        assert!(
            config.row_hit_cycles <= config.row_conflict_cycles,
            "a row hit cannot cost more than a conflict"
        );
        assert!(
            config.row_hit_cycles <= config.row_closed_cycles
                && config.row_closed_cycles <= config.row_conflict_cycles,
            "closed-page access must cost between a hit and a conflict"
        );
        Self {
            banks: vec![
                Bank {
                    open_row: None,
                    busy_until: 0,
                };
                config.banks
            ],
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BankConfig {
        &self.config
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// The global row index holding `addr`.
    pub fn row_of(&self, addr: u64) -> u64 {
        addr / self.config.row_bytes
    }

    /// The bank serving `addr` (rows rotate over banks).
    pub fn bank_of(&self, addr: u64) -> usize {
        (self.row_of(addr) % self.banks.len() as u64) as usize
    }

    /// Latest cycle any bank is busy until.
    pub fn busy_until(&self) -> u64 {
        self.banks.iter().map(|b| b.busy_until).max().unwrap_or(0)
    }

    /// Cycle until which bank `index` is busy.
    pub fn bank_busy_until(&self, index: usize) -> u64 {
        self.banks[index].busy_until
    }

    /// The row bank `index` currently holds open (`None` when
    /// precharged — always `None` under [`PagePolicy::Closed`]).
    pub fn open_row(&self, index: usize) -> Option<u64> {
        self.banks[index].open_row
    }

    /// Schedules one access wanted at `ready`: waits for the bank,
    /// charges the row-hit or row-conflict latency, and leaves the row
    /// open behind it — or, under [`PagePolicy::Closed`], charges the
    /// flat activate + column latency and auto-precharges, so no access
    /// is ever a hit and none ever waits on a precharge.
    pub fn access(&mut self, ready: u64, addr: u64) -> BankGrant {
        let row = self.row_of(addr);
        let index = (row % self.banks.len() as u64) as usize;
        let bank = &mut self.banks[index];
        let start = ready.max(bank.busy_until);
        let (hit, latency, leave_open) = match self.config.page_policy {
            PagePolicy::Open => {
                let hit = bank.open_row == Some(row);
                let latency = if hit {
                    self.config.row_hit_cycles
                } else {
                    self.config.row_conflict_cycles
                };
                (hit, latency, true)
            }
            PagePolicy::Closed => (false, self.config.row_closed_cycles, false),
        };
        bank.busy_until = start + latency;
        bank.open_row = leave_open.then_some(row);
        BankGrant {
            start,
            done: start + latency,
            hit,
            bank: index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(banks: usize) -> BankConfig {
        BankConfig::banked(banks, 128)
    }

    #[test]
    fn first_touch_conflicts_then_hits_in_the_open_row() {
        let mut b = BankSet::new(cfg(4));
        let first = b.access(0, 0);
        assert!(!first.hit);
        assert_eq!(first.done - first.start, DEFAULT_ROW_CONFLICT_CYCLES);
        // Another line of the same 2KB row: hit.
        let second = b.access(first.done, 15 * 128);
        assert!(second.hit);
        assert_eq!(second.done - second.start, DEFAULT_ROW_HIT_CYCLES);
        // The next row lives in the next bank — and conflicts cold.
        let third = b.access(0, 16 * 128);
        assert_eq!(third.bank, 1);
        assert!(!third.hit);
    }

    #[test]
    fn same_bank_serialises_other_banks_overlap() {
        let mut b = BankSet::new(cfg(2));
        let a = b.access(0, 0); // bank 0
        // Same bank, different row (row 2 -> bank 0): waits, conflicts.
        let c = b.access(0, 2 * 16 * 128);
        assert_eq!(c.bank, 0);
        assert_eq!(c.start, a.done);
        // Other bank: starts immediately in parallel.
        let d = b.access(0, 16 * 128);
        assert_eq!(d.bank, 1);
        assert_eq!(d.start, 0);
    }

    #[test]
    fn row_conflict_closes_the_previous_row() {
        let mut b = BankSet::new(cfg(1));
        b.access(0, 0); // opens row 0
        let conflict = b.access(1_000, 16 * 128); // row 1, same bank
        assert!(!conflict.hit);
        // Row 0 is no longer open.
        let back = b.access(2_000, 0);
        assert!(!back.hit);
    }

    #[test]
    fn map_is_a_function_of_the_row() {
        let b = BankSet::new(cfg(4));
        for addr in [0u64, 127, 2047] {
            assert_eq!(b.bank_of(addr), 0);
            assert_eq!(b.row_of(addr), 0);
        }
        assert_eq!(b.bank_of(2048), 1);
        assert_eq!(b.bank_of(4 * 2048), 0);
        assert_eq!(b.row_of(9 * 2048 + 5), 9);
    }

    #[test]
    fn flat_config_is_marked_flat() {
        assert!(BankConfig::flat().is_flat());
        assert!(!cfg(2).is_flat());
        assert!(BankConfig::default().is_flat());
    }

    #[test]
    fn closed_page_never_hits_and_charges_the_flat_latency() {
        let mut b = BankSet::new(cfg(2).with_page_policy(PagePolicy::Closed));
        // Even an immediate same-row repeat is not a hit: the bank
        // auto-precharged behind the first access.
        let first = b.access(0, 0);
        assert!(!first.hit);
        assert_eq!(first.done - first.start, DEFAULT_ROW_CLOSED_CYCLES);
        let again = b.access(first.done, 64);
        assert!(!again.hit);
        assert_eq!(again.done - again.start, DEFAULT_ROW_CLOSED_CYCLES);
        // Same-bank serialisation is unchanged by the policy.
        let queued = b.access(0, 2 * 16 * 128);
        assert_eq!(queued.bank, 0);
        assert_eq!(queued.start, again.done);
    }

    #[test]
    fn closed_page_beats_open_page_on_row_hopping_traffic() {
        // A single-bank row-hop stream: open-page pays the conflict
        // latency every access, closed-page the cheaper flat latency.
        let mut open = BankSet::new(cfg(1));
        let mut closed = BankSet::new(cfg(1).with_page_policy(PagePolicy::Closed));
        let mut open_done = 0;
        let mut closed_done = 0;
        for row in 0..8u64 {
            open_done = open.access(open_done, row * 16 * 128).done;
            closed_done = closed.access(closed_done, row * 16 * 128).done;
        }
        assert_eq!(open_done, 8 * DEFAULT_ROW_CONFLICT_CYCLES);
        assert_eq!(closed_done, 8 * DEFAULT_ROW_CLOSED_CYCLES);
    }

    #[test]
    #[should_panic(expected = "cannot cost more")]
    fn hit_dearer_than_conflict_rejected() {
        let _ = BankSet::new(cfg(2).with_row_cycles(100, 50));
    }

    #[test]
    #[should_panic(expected = "between a hit and a conflict")]
    fn closed_latency_outside_hit_conflict_band_rejected() {
        let _ = BankSet::new(cfg(2).with_closed_cycles(150));
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let mut c = cfg(2);
        c.banks = 0;
        let _ = BankSet::new(c);
    }
}
