//! Interleaving properties of the multi-channel DRAM fabric.
//!
//! The load-bearing claim: line-address interleaving across `N`
//! channels is a **partition** of the address space — every address
//! maps to exactly one channel, every channel is reachable, and a
//! transaction stream split across the channels reassembles to exactly
//! the monolithic stream's per-class transaction and byte counts
//! (nothing is lost, duplicated, or re-classed by the routing).

use padlock_mem::{ChannelSet, TrafficClass};
use proptest::prelude::*;

const LINE: u64 = 128;

/// One logical fabric operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u64, bool),     // (line index, seq-read?)
    Write(u64, bool),    // (line index, seq-write?)
    Buffered(u64, u64),  // (line index, ready delay)
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u64..512, 0u32..5, 0u64..300).prop_map(|(line, kind, delay)| match kind {
            0 | 1 => Op::Read(line, kind == 1),
            2 | 3 => Op::Write(line, kind == 3),
            _ => Op::Buffered(line, delay),
        }),
        1..300,
    )
}

fn apply(fabric: &mut ChannelSet, now: u64, op: Op) {
    match op {
        Op::Read(line, seq) => {
            let class = if seq {
                TrafficClass::SeqRead
            } else {
                TrafficClass::LineRead
            };
            fabric.demand_read(now, line * LINE, class, 128);
        }
        Op::Write(line, seq) => {
            let class = if seq {
                TrafficClass::SeqWrite
            } else {
                TrafficClass::LineWrite
            };
            fabric.demand_write(now, line * LINE, class, 128);
        }
        Op::Buffered(line, delay) => {
            fabric.enqueue_write(now, now + delay, line * LINE, TrafficClass::LineWrite, 128);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every address maps to exactly one channel, the mapping depends
    /// only on the line index, and consecutive lines rotate channels so
    /// all `N` channels are used.
    #[test]
    fn interleaving_is_a_partition(
        channels in prop::sample::select(vec![1usize, 2, 3, 4, 8]),
        addrs in proptest::collection::vec(0u64..(1 << 24), 1..200),
    ) {
        let fabric = ChannelSet::new(channels, 100, 8, 8, LINE);
        let mut seen = vec![false; channels];
        for &addr in &addrs {
            let ch = fabric.channel_of(addr);
            prop_assert!(ch < channels, "{addr:#x} -> out-of-range channel {ch}");
            // The map is a function of the line index alone: every
            // byte of the line agrees, so no address serves two
            // channels.
            let line_base = addr / LINE * LINE;
            for probe in [line_base, line_base + 1, line_base + LINE - 1, addr] {
                prop_assert_eq!(fabric.channel_of(probe), ch);
            }
            prop_assert_eq!(ch, ((addr / LINE) % channels as u64) as usize);
            seen[ch] = true;
        }
        // Consecutive lines cover every channel.
        let covering = ChannelSet::new(channels, 100, 8, 8, LINE);
        for line in 0..channels as u64 {
            seen[covering.channel_of(line * LINE)] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "some channel unreachable");
    }

    /// Splitting one transaction stream across N channels preserves the
    /// monolithic stream's per-class transaction and byte counts: the
    /// per-channel streams reassemble exactly.
    #[test]
    fn split_streams_reassemble_to_monolithic_counts(
        ops in ops_strategy(),
        channels in prop::sample::select(vec![2usize, 3, 4, 8]),
    ) {
        let mut mono = ChannelSet::new(1, 100, 8, 8, LINE);
        let mut split = ChannelSet::new(channels, 100, 8, 8, LINE);
        let mut now = 0u64;
        for &op in &ops {
            now += 13;
            apply(&mut mono, now, op);
            apply(&mut split, now, op);
        }
        // Flush buffered writebacks on both so counts are complete.
        mono.flush_writes(now + 10_000);
        split.flush_writes(now + 10_000);

        let mono_stats = mono.stats();
        let split_stats = split.stats();
        for class in [
            TrafficClass::LineRead,
            TrafficClass::LineWrite,
            TrafficClass::SeqRead,
            TrafficClass::SeqWrite,
            TrafficClass::Mac,
        ] {
            prop_assert_eq!(
                split_stats.get(class.counter()),
                mono_stats.get(class.counter()),
                "{} diverged", class.counter()
            );
            prop_assert_eq!(
                split_stats.get(class.bytes_counter()),
                mono_stats.get(class.bytes_counter()),
                "{} diverged", class.bytes_counter()
            );
        }
        prop_assert_eq!(split_stats.get("transactions"), mono_stats.get("transactions"));
        prop_assert_eq!(split_stats.get("total_bytes"), mono_stats.get("total_bytes"));

        // And the aggregate is exactly the sum of the per-channel
        // streams (each transaction landed on one channel).
        let sum: u64 = split
            .channels()
            .iter()
            .map(|ch| ch.mem().stats().get("transactions"))
            .sum();
        prop_assert_eq!(sum, mono_stats.get("transactions"));
    }

    /// Routed single-channel operation is bit-identical to a monolithic
    /// channel: timing, not just counts.
    #[test]
    fn one_channel_fabric_is_timing_identical(
        ops in ops_strategy(),
    ) {
        let mut a = ChannelSet::new(1, 100, 8, 8, LINE);
        let mut b = ChannelSet::new(1, 100, 8, 8, LINE);
        let mut now = 0u64;
        for &op in &ops {
            now += 29;
            match op {
                Op::Read(line, _) => {
                    prop_assert_eq!(
                        a.demand_read(now, line * LINE, TrafficClass::LineRead, 128),
                        b.demand_read(now, line * LINE, TrafficClass::LineRead, 128)
                    );
                }
                other => {
                    apply(&mut a, now, other);
                    apply(&mut b, now, other);
                }
            }
        }
    }
}
