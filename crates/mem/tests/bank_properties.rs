//! Properties of the banked DRAM fabric.
//!
//! Three load-bearing claims:
//!
//! * the `(channel, bank)` map is a **partition** of the address space
//!   — every address lands on exactly one coordinate, the coordinate
//!   depends only on the line/row indices, and every coordinate is
//!   reachable;
//! * splitting one transaction stream across channels and banks
//!   **reassembles** to the monolithic stream's per-class transaction
//!   and byte counts (banking changes timing, never accounting), and
//!   on a banked fabric every access is classified as exactly one of
//!   row hit / row conflict;
//! * an open-row **hit never charges more** than a conflict, access by
//!   access.

use padlock_mem::{BankConfig, BankSet, ChannelSet, TrafficClass, ROW_LINES};
use proptest::prelude::*;

const LINE: u64 = 128;
const ROW: u64 = LINE * ROW_LINES;

/// One logical fabric operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u64, bool),    // (line index, seq-read?)
    Write(u64, bool),   // (line index, seq-write?)
    Buffered(u64, u64), // (line index, ready delay)
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u64..512, 0u32..5, 0u64..300).prop_map(|(line, kind, delay)| match kind {
            0 | 1 => Op::Read(line, kind == 1),
            2 | 3 => Op::Write(line, kind == 3),
            _ => Op::Buffered(line, delay),
        }),
        1..300,
    )
}

fn apply(fabric: &mut ChannelSet, now: u64, op: Op) {
    match op {
        Op::Read(line, seq) => {
            let class = if seq {
                TrafficClass::SeqRead
            } else {
                TrafficClass::LineRead
            };
            fabric.demand_read(now, line * LINE, class, 128);
        }
        Op::Write(line, seq) => {
            let class = if seq {
                TrafficClass::SeqWrite
            } else {
                TrafficClass::LineWrite
            };
            fabric.demand_write(now, line * LINE, class, 128);
        }
        Op::Buffered(line, delay) => {
            fabric.enqueue_write(now, now + delay, line * LINE, TrafficClass::LineWrite, 128);
        }
    }
}

fn banked(channels: usize, banks: usize) -> ChannelSet {
    ChannelSet::new(channels, 100, 8, 8, LINE).with_banks(BankConfig::banked(banks, LINE as u32))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every address maps to exactly one `(channel, bank)` coordinate,
    /// the channel depends only on the line index, the bank only on the
    /// row index, and every coordinate is reachable.
    #[test]
    fn channel_bank_map_is_a_partition(
        channels in prop::sample::select(vec![1usize, 2, 3, 4, 8]),
        banks in prop::sample::select(vec![2usize, 3, 4, 8]),
        addrs in proptest::collection::vec(0u64..(1 << 26), 1..200),
    ) {
        let fabric = banked(channels, banks);
        for &addr in &addrs {
            let (ch, bk, row) = fabric.coordinates_of(addr);
            prop_assert!(ch < channels, "{addr:#x} -> out-of-range channel {ch}");
            prop_assert!(bk < banks, "{addr:#x} -> out-of-range bank {bk}");
            // The channel is a function of the line index alone and the
            // bank and row of the row index alone: every byte of the
            // line (and every line of the row, as seen through the same
            // channel) agrees, so no address serves two coordinates.
            let line_base = addr / LINE * LINE;
            for probe in [line_base, line_base + 1, line_base + LINE - 1, addr] {
                prop_assert_eq!(fabric.coordinates_of(probe), (ch, bk, row));
            }
            prop_assert_eq!(ch, ((addr / LINE) % channels as u64) as usize);
            prop_assert_eq!(bk, ((addr / ROW) % banks as u64) as usize);
            prop_assert_eq!(row, addr / ROW);
            // The bank is derived from the row, so the pair never
            // disagrees about which open-row register is at stake.
            prop_assert_eq!(bk, (row % banks as u64) as usize);
        }
        // Sweeping consecutive lines through one full bank rotation
        // reaches every coordinate.
        let mut seen = vec![false; channels * banks];
        for line in 0..(channels * banks) as u64 * ROW_LINES {
            let (ch, bk, _) = fabric.coordinates_of(line * LINE);
            seen[ch * banks + bk] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "some (channel, bank) unreachable");
    }

    /// Splitting one stream across channels and banks preserves the
    /// monolithic stream's per-class transaction and byte counts, and
    /// on the banked fabric every transaction is classified as exactly
    /// one row hit or row conflict.
    #[test]
    fn split_streams_reassemble_to_monolithic_counts(
        ops in ops_strategy(),
        channels in prop::sample::select(vec![2usize, 3, 4, 8]),
        banks in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        let mut mono = ChannelSet::new(1, 100, 8, 8, LINE);
        let mut split = banked(channels, banks);
        let mut now = 0u64;
        for &op in &ops {
            now += 13;
            apply(&mut mono, now, op);
            apply(&mut split, now, op);
        }
        // Flush buffered writebacks on both so counts are complete.
        mono.flush_writes(now + 10_000);
        split.flush_writes(now + 10_000);

        let mono_stats = mono.stats();
        let split_stats = split.stats();
        for class in [
            TrafficClass::LineRead,
            TrafficClass::LineWrite,
            TrafficClass::SeqRead,
            TrafficClass::SeqWrite,
            TrafficClass::Mac,
        ] {
            prop_assert_eq!(
                split_stats.get(class.counter()),
                mono_stats.get(class.counter()),
                "{} diverged", class.counter()
            );
            prop_assert_eq!(
                split_stats.get(class.bytes_counter()),
                mono_stats.get(class.bytes_counter()),
                "{} diverged", class.bytes_counter()
            );
        }
        prop_assert_eq!(split_stats.get("transactions"), mono_stats.get("transactions"));
        prop_assert_eq!(split_stats.get("total_bytes"), mono_stats.get("total_bytes"));

        // Row accounting: every banked transaction is exactly one of
        // hit / conflict; a flat fabric records neither.
        let rows_touched = split_stats.get("row_hits") + split_stats.get("row_conflicts");
        if banks > 1 {
            prop_assert_eq!(rows_touched, split_stats.get("transactions"));
        } else {
            prop_assert_eq!(rows_touched, 0);
        }

        // And the aggregate is exactly the sum of the per-channel
        // streams (each transaction landed on one channel).
        let sum: u64 = split
            .channels()
            .iter()
            .map(|ch| ch.mem().stats().get("transactions"))
            .sum();
        prop_assert_eq!(sum, mono_stats.get("transactions"));
    }

    /// Access by access, an open-row hit never charges more than a
    /// conflict would, and every access charges exactly one of the two
    /// configured latencies.
    #[test]
    fn open_row_hit_never_charges_more_than_a_conflict(
        hit in 1u64..200,
        extra in 0u64..200,
        banks in prop::sample::select(vec![1usize, 2, 4, 8]),
        addrs in proptest::collection::vec((0u64..(1 << 22), 0u64..400), 1..200),
    ) {
        let conflict = hit + extra;
        let config = BankConfig::banked(banks, LINE as u32).with_row_cycles(hit, conflict);
        let mut set = BankSet::new(config);
        let mut now = 0u64;
        for &(addr, gap) in &addrs {
            now += gap;
            let grant = set.access(now, addr);
            let charged = grant.done - grant.start;
            prop_assert!(
                charged == hit || charged == conflict,
                "access charged {charged}, neither hit {hit} nor conflict {conflict}"
            );
            if grant.hit {
                prop_assert!(charged <= conflict, "hit {charged} dearer than conflict");
                prop_assert_eq!(charged, hit);
            } else {
                prop_assert_eq!(charged, conflict);
            }
            prop_assert_eq!(grant.bank, set.bank_of(addr));
            // An immediate repeat of the same address is always an
            // open-row hit at the cheap latency.
            let again = set.access(grant.done, addr);
            prop_assert!(again.hit);
            prop_assert_eq!(again.done - again.start, hit);
        }
    }
}
