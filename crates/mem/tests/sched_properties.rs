//! Properties of the FR-FCFS drain-order scheduler.
//!
//! Three load-bearing claims:
//!
//! * [`ChannelSet::row_first_order`] is a true **permutation** of the
//!   window — every request still issues exactly once — that, when
//!   every request is ready at once, keeps each *bank's* requests
//!   grouped by row in arrival order (different banks interleave
//!   freely: overlapping their activates is the point), and it
//!   degenerates to the identity on a flat fabric (so `RowFirst`
//!   collapses to `Fifo` there);
//! * *replaying the reordered window issues exactly the same
//!   transactions* — per-class counts and bytes match a FIFO replay,
//!   the row-outcome total is conserved, and the reorder never reports
//!   fewer row hits than arrival order when every request is ready at
//!   once;
//! * a [`PagePolicy::Closed`] bank set never grants a row hit and
//!   charges every access the flat closed-page latency, regardless of
//!   the access pattern.

use padlock_mem::{BankConfig, BankSet, ChannelSet, PagePolicy, TrafficClass};
use proptest::prelude::*;

const LINE: u64 = 128;

fn banked(channels: usize, banks: usize, page: PagePolicy) -> ChannelSet {
    ChannelSet::new(channels, 100, 8, 8, LINE)
        .with_banks(BankConfig::banked(banks, LINE as u32).with_page_policy(page))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With every request ready at once on an idle fabric, each bank
    /// serves its requests grouped by row, groups anchored oldest-first
    /// and members in arrival order: once a bank moves off a row it
    /// never returns to it (there was nothing left to hit). Different
    /// banks interleave freely — overlapping activates is the point.
    #[test]
    fn simultaneous_requests_group_by_row_within_each_bank(
        lines in proptest::collection::vec(0u64..128, 0..48),
        channels in prop::sample::select(vec![1usize, 2, 4]),
        banks in prop::sample::select(vec![2usize, 4]),
    ) {
        let reqs: Vec<(u64, u64)> = lines.iter().map(|&l| (0u64, l * LINE)).collect();
        let fabric = banked(channels, banks, PagePolicy::Open);
        let order = fabric.row_first_order(&reqs);
        let coords: Vec<(usize, usize, u64)> = reqs
            .iter()
            .map(|&(_, addr)| fabric.coordinates_of(addr))
            .collect();
        for ch in 0..channels {
            for bk in 0..banks {
                let served: Vec<usize> = order
                    .iter()
                    .copied()
                    .filter(|&i| (coords[i].0, coords[i].1) == (ch, bk))
                    .collect();
                let mut seen_done: Vec<u64> = Vec::new();
                let mut i = 0;
                while i < served.len() {
                    let row = coords[served[i]].2;
                    prop_assert!(
                        !seen_done.contains(&row),
                        "bank ({ch},{bk}) returned to row {row}"
                    );
                    let mut last = served[i];
                    let mut j = i + 1;
                    while j < served.len() && coords[served[j]].2 == row {
                        prop_assert!(served[j] > last, "row group not in arrival order");
                        last = served[j];
                        j += 1;
                    }
                    seen_done.push(row);
                    i = j;
                }
            }
        }
    }

    /// The fabric scheduler is a permutation; on a flat fabric it is
    /// the identity (RowFirst collapses to Fifo there).
    #[test]
    fn fabric_order_is_a_permutation_and_identity_when_flat(
        reqs in proptest::collection::vec((0u64..500, 0u64..2048), 0..48),
        channels in prop::sample::select(vec![1usize, 2, 4]),
        banks in prop::sample::select(vec![1usize, 2, 8]),
    ) {
        let reqs: Vec<(u64, u64)> = reqs.into_iter().map(|(at, l)| (at, l * LINE)).collect();
        let fabric = banked(channels, banks, PagePolicy::Open);
        let order = fabric.row_first_order(&reqs);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..reqs.len()).collect::<Vec<_>>());
        let flat = ChannelSet::new(channels, 100, 8, 8, LINE);
        prop_assert_eq!(
            flat.row_first_order(&reqs),
            (0..reqs.len()).collect::<Vec<_>>(),
            "flat fabric must keep arrival order"
        );
    }

    /// Replaying a window in the scheduler's order issues the same
    /// transactions (counts, bytes, row-outcome total) as arrival
    /// order, and — with every request ready at once — never fewer row
    /// hits.
    #[test]
    fn reordered_replay_conserves_traffic_and_does_not_lose_hits(
        lines in proptest::collection::vec(0u64..96, 1..40),
        channels in prop::sample::select(vec![1usize, 2]),
        banks in prop::sample::select(vec![2usize, 4]),
    ) {
        let reqs: Vec<(u64, u64)> = lines.iter().map(|&l| (0u64, l * LINE)).collect();
        let mut fifo = banked(channels, banks, PagePolicy::Open);
        for &(at, addr) in &reqs {
            fifo.demand_read(at, addr, TrafficClass::LineRead, 128);
        }
        let mut rowf = banked(channels, banks, PagePolicy::Open);
        let order = rowf.row_first_order(&reqs);
        for &i in &order {
            let (at, addr) = reqs[i];
            rowf.demand_read(at, addr, TrafficClass::LineRead, 128);
        }
        let sf = fifo.stats();
        let sr = rowf.stats();
        prop_assert_eq!(sf.get("line_reads"), sr.get("line_reads"));
        prop_assert_eq!(sf.get("line_read_bytes"), sr.get("line_read_bytes"));
        prop_assert_eq!(sf.get("transactions"), sr.get("transactions"));
        prop_assert_eq!(
            sf.get("row_hits") + sf.get("row_conflicts"),
            sr.get("row_hits") + sr.get("row_conflicts"),
            "row-outcome total changed"
        );
        prop_assert!(
            sr.get("row_hits") >= sf.get("row_hits"),
            "reorder lost hits: {} vs {}", sr.get("row_hits"), sf.get("row_hits")
        );
    }

    /// Closed-page banks never hit and always charge the closed-page
    /// latency.
    #[test]
    fn closed_page_bank_set_never_grants_a_hit(
        accesses in proptest::collection::vec((0u64..(1 << 22), 0u64..300), 1..150),
        banks in prop::sample::select(vec![1usize, 2, 4, 8]),
        closed in 60u64..140,
    ) {
        let config = BankConfig::banked(banks, LINE as u32)
            .with_page_policy(PagePolicy::Closed)
            .with_closed_cycles(closed);
        let mut set = BankSet::new(config);
        let mut now = 0u64;
        for &(addr, gap) in &accesses {
            now += gap;
            let grant = set.access(now, addr);
            prop_assert!(!grant.hit, "closed-page access hit at {addr:#x}");
            prop_assert_eq!(grant.done - grant.start, closed);
            prop_assert_eq!(set.open_row(grant.bank), None, "row left open");
        }
    }
}
