//! Fixture-based rule tests: every `bad_*` fixture must fire exactly
//! its rule, every `good_*` fixture must lint clean. The fixtures are
//! real `.rs` sources checked in under `crates/lint/fixtures/` (a
//! directory the workspace walk skips, so they never poison the CI
//! gate).

use padlock_lint::rules::{lint_source, Rules};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} must exist: {e}", path.display()))
}

/// Lints a fixture as if it lived at `rel_path` inside the workspace.
fn lint_as(name: &str, rel_path: &str) -> padlock_lint::FileReport {
    lint_source(&Rules::default(), rel_path, &fixture(name))
}

fn fired_rules(report: &padlock_lint::FileReport) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn bad_d1_fires_on_every_hash_collection_mention() {
    let report = lint_as("bad_d1_hashmap.rs", "crates/mem/src/fixture.rs");
    assert_eq!(fired_rules(&report), vec!["D1", "D1", "D1"]);
    assert!(report.findings[0].message.contains("BTreeMap"));
}

#[test]
fn bad_d1_is_scoped_to_simulation_crates() {
    let report = lint_as("bad_d1_hashmap.rs", "crates/workloads/src/fixture.rs");
    assert!(report.findings.is_empty(), "D1 only guards sim crates");
}

#[test]
fn good_d1_btreemap_and_sorted_annotation_pass() {
    let report = lint_as("good_d1_btreemap.rs", "crates/mem/src/fixture.rs");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn bad_d2_fires_on_wallclock_and_entropy() {
    // Three sites: the `use ...Instant`, `Instant::now`, `thread_rng`.
    let report = lint_as("bad_d2_wallclock.rs", "crates/cpu/src/fixture.rs");
    assert_eq!(fired_rules(&report), vec!["D2", "D2", "D2"]);
    // ...in any non-allowed crate, not just sim crates.
    let report = lint_as("bad_d2_wallclock.rs", "crates/stats/src/fixture.rs");
    assert_eq!(fired_rules(&report), vec!["D2", "D2", "D2"]);
}

#[test]
fn bad_d2_is_allowed_in_bench() {
    let report = lint_as("bad_d2_wallclock.rs", "crates/bench/src/fixture.rs");
    assert!(report.findings.is_empty(), "bench times real host execution");
}

#[test]
fn good_d2_seeded_rng_and_test_entropy_pass() {
    let report = lint_as("good_d2_seeded.rs", "crates/cpu/src/fixture.rs");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn bad_t1_fires_on_unsafe_static_mut_and_refcell() {
    let report = lint_as("bad_t1_unsafe.rs", "crates/core/src/fixture.rs");
    // Four sites: the `use ...RefCell`, the static mut, the RefCell
    // field, and the unsafe block.
    assert_eq!(fired_rules(&report), vec!["T1", "T1", "T1", "T1"]);
    let whats: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(whats.iter().any(|m| m.contains("static mut")));
    assert!(whats.iter().any(|m| m.contains("RefCell")));
    assert!(whats.iter().any(|m| m.contains("`unsafe`")));
    assert!(report.audit.is_empty(), "unjustified sites are findings, not audit rows");
}

#[test]
fn good_t1_justified_sites_feed_the_audit_table() {
    let report = lint_as("good_t1_justified.rs", "crates/core/src/fixture.rs");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    let whats: Vec<&str> = report.audit.iter().map(|a| a.what.as_str()).collect();
    assert_eq!(whats, vec!["RefCell", "static mut", "RefCell", "unsafe"]);
    assert!(report
        .audit
        .iter()
        .all(|a| !a.justification.is_empty()), "every audit row carries its why");
}

#[test]
fn bad_t1_pool_fires_on_every_unsafe_sync_site() {
    // The sweep executor's result-slot idiom: an `UnsafeCell` buffer
    // (use + field), the `unsafe impl Sync`, the `unsafe fn`
    // declaration, and the raw write — five unjustified sites.
    let report = lint_as("bad_t1_pool_unsafe.rs", "crates/exec/src/fixture.rs");
    assert_eq!(fired_rules(&report), vec!["T1", "T1", "T1", "T1", "T1"]);
    let whats: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(whats.iter().any(|m| m.contains("UnsafeCell")));
    assert!(whats.iter().any(|m| m.contains("`unsafe`")));
    assert!(report.audit.is_empty());
}

#[test]
fn good_t1_pool_justified_sites_feed_the_audit_table() {
    let report = lint_as("good_t1_pool_justified.rs", "crates/exec/src/fixture.rs");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    let whats: Vec<&str> = report.audit.iter().map(|a| a.what.as_str()).collect();
    assert_eq!(whats, vec!["UnsafeCell", "UnsafeCell", "unsafe", "unsafe", "unsafe"]);
    assert!(
        report.audit.iter().all(|a| !a.justification.is_empty()),
        "every audit row carries its why"
    );
}

#[test]
fn bad_c1_fires_on_cycle_narrowing() {
    let report = lint_as("bad_c1_narrowing.rs", "crates/mem/src/fixture.rs");
    assert_eq!(fired_rules(&report), vec!["C1", "C1"]);
    assert!(report.findings[0].message.contains("total_cycles"));
    assert!(report.findings[1].message.contains("busy_until"));
}

#[test]
fn good_c1_checked_widening_bounded_pass() {
    let report = lint_as("good_c1_checked.rs", "crates/mem/src/fixture.rs");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn bad_u1_fires_under_src_only() {
    let report = lint_as("bad_u1_unwrap.rs", "crates/mem/src/fixture.rs");
    assert_eq!(fired_rules(&report), vec!["U1"]);
    // The same code in a tests/ or examples/ tree is exempt.
    assert!(lint_as("bad_u1_unwrap.rs", "crates/mem/tests/fixture.rs").findings.is_empty());
    assert!(lint_as("bad_u1_unwrap.rs", "examples/fixture.rs").findings.is_empty());
}

#[test]
fn good_u1_expect_and_friends_pass() {
    let report = lint_as("good_u1_expect.rs", "crates/mem/src/fixture.rs");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn every_fixture_has_a_verdict() {
    // Guard against a fixture being added without a test: each bad_*
    // file must produce findings when linted as a sim-crate source, and
    // each good_* file must not.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut saw = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixtures dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().expect("file name").to_string_lossy().into_owned();
        if !name.ends_with(".rs") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("fixture readable");
        let report = lint_source(&Rules::default(), "crates/mem/src/fixture.rs", &src);
        if name.starts_with("bad_") {
            assert!(!report.findings.is_empty(), "{name} must fire");
        } else if name.starts_with("good_") {
            assert!(report.findings.is_empty(), "{name} must pass: {:?}", report.findings);
        } else {
            panic!("fixture {name} must be named bad_* or good_*");
        }
        saw += 1;
    }
    assert!(saw >= 10, "expected the full fixture set, found {saw}");
}
