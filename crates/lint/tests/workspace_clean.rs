//! The meta-test: the workspace must lint clean with its own checked-in
//! `lint.toml`. This is the tier-1 enforcement of the determinism &
//! thread-safety audit — `cargo test` fails the moment anyone
//! reintroduces a HashMap into a simulation crate, reads a wall clock,
//! or lands an unjustified `unsafe`.

use std::path::Path;

fn workspace_root() -> &'static Path {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    assert!(root.join("lint.toml").is_file(), "lint.toml at the workspace root");
    root
}

#[test]
fn workspace_lints_clean() {
    let root = workspace_root();
    let cfg = padlock_lint::load_config(root).expect("lint.toml parses");
    let report = padlock_lint::lint_workspace(root, &cfg).expect("workspace walk succeeds");
    assert!(
        report.is_clean(),
        "padlock-lint found {} violation(s):\n{}",
        report.findings.len(),
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the walk actually visited the workspace (sim crates,
    // tests, examples), not an empty or wrong directory.
    assert!(report.files > 60, "walked only {} files", report.files);
}

#[test]
fn workspace_walk_skips_vendor_and_fixtures() {
    let root = workspace_root();
    let cfg = padlock_lint::load_config(root).expect("lint.toml parses");
    let skip = cfg.list_or_empty("lint", "skip_dirs");
    let files = padlock_lint::walk::rust_sources(root, &skip).expect("walk");
    for f in &files {
        let rel = f.strip_prefix(root).expect("under root").to_string_lossy().into_owned();
        assert!(!rel.starts_with("vendor/"), "vendor shims must not be linted: {rel}");
        assert!(!rel.contains("/fixtures/"), "fixtures must not be linted: {rel}");
        assert!(!rel.starts_with("target/"), "build artifacts must not be linted: {rel}");
    }
}

#[test]
fn audit_table_renders_deterministically() {
    let root = workspace_root();
    let cfg = padlock_lint::load_config(root).expect("lint.toml parses");
    let a = padlock_lint::lint_workspace(root, &cfg).expect("walk");
    let b = padlock_lint::lint_workspace(root, &cfg).expect("walk");
    assert_eq!(a.audit_table(), b.audit_table());
    assert_eq!(
        a.findings, b.findings,
        "the lint must hold itself to the determinism bar it enforces"
    );
}
