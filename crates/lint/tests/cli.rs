//! End-to-end CLI tests: the acceptance gate is the *binary*'s exit
//! code (0 on the clean workspace, nonzero on every bad fixture), so
//! exercise the compiled `padlock-lint` itself rather than the library.

use std::path::Path;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_padlock-lint"))
}

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

#[test]
fn exits_zero_on_the_workspace() {
    let out = bin()
        .arg(workspace_root())
        .output()
        .expect("padlock-lint binary runs");
    assert!(
        out.status.success(),
        "workspace must lint clean; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 finding(s)"), "summary line present: {stdout}");
}

#[test]
fn exits_nonzero_on_each_bad_fixture() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut saw = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&fixtures)
        .expect("fixtures dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().expect("file name").to_string_lossy().into_owned();
        if !name.starts_with("bad_") || !name.ends_with(".rs") {
            continue;
        }
        // `--as` makes the fixture pose as sim-crate library code so the
        // crate-scoped rules (D1, U1) apply to it.
        let out = bin()
            .arg("--file")
            .arg(&path)
            .args(["--as", "crates/mem/src/fixture.rs"])
            .output()
            .expect("padlock-lint binary runs");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{name} must exit 1; stdout:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
        saw += 1;
    }
    assert!(saw >= 5, "expected one bad fixture per rule, found {saw}");
}

#[test]
fn exits_zero_on_good_fixtures() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut entries: Vec<_> = std::fs::read_dir(&fixtures)
        .expect("fixtures dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().expect("file name").to_string_lossy().into_owned();
        if !name.starts_with("good_") || !name.ends_with(".rs") {
            continue;
        }
        let out = bin()
            .arg("--file")
            .arg(&path)
            .args(["--as", "crates/mem/src/fixture.rs"])
            .output()
            .expect("padlock-lint binary runs");
        assert!(
            out.status.success(),
            "{name} must exit 0; stdout:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn exits_two_on_usage_errors() {
    let out = bin().arg("--no-such-flag").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args(["--as", "crates/mem/src/x.rs"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "--as without --file is a usage error");
}
