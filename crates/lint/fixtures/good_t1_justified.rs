// Fixture: T1 must stay silent and emit three audit entries — every
// site carries a `// lint: safety:` justification.
// lint: safety: single-threaded scratch; never crosses the executor boundary
use std::cell::RefCell;

// lint: safety: written only before threads start, read-only afterwards
static mut GLOBAL_CYCLES: u64 = 0;

pub struct Scratch {
    // lint: safety: per-worker scratch buffer, one owner per thread
    buf: RefCell<Vec<u8>>,
}

pub fn read_raw(p: *const u8) -> u8 {
    // lint: safety: caller contract guarantees p is valid and aligned
    unsafe { *p }
}
