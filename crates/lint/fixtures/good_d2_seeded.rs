// Fixture: D2 must stay silent — seeded randomness in library code,
// entropy only inside test code, wall clocks only in prose.
use rand::{rngs::StdRng, SeedableRng};

/// Instant::now() would be wrong here; the simulated clock is `now`.
pub fn roll(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    #[test]
    fn entropy_is_fine_in_tests() {
        let mut rng = rand::thread_rng();
        let _ = rng.next_u64();
    }
}
