// Fixture: T1 must fire three times — unjustified unsafe, static mut,
// and interior mutability.
use std::cell::RefCell;

static mut GLOBAL_CYCLES: u64 = 0;

pub struct Scratch {
    buf: RefCell<Vec<u8>>,
}

pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}
