// Fixture: T1 must fire on the sweep-pool idiom — an `UnsafeCell`
// result slot, the `unsafe impl Sync` that shares it across workers,
// and the raw writes — when none of the sites carry a justification.
use std::cell::UnsafeCell;

pub struct Slots<R> {
    cells: Vec<UnsafeCell<Option<R>>>,
}

unsafe impl<R: Send> Sync for Slots<R> {}

impl<R> Slots<R> {
    pub unsafe fn put(&self, idx: usize, value: R) {
        unsafe { *self.cells[idx].get() = Some(value) }
    }
}
