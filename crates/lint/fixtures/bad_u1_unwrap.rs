// Fixture: U1 must fire — a bare unwrap in library non-test code.
// (Linted as crates/mem/src/...)
pub fn head(v: &[u64]) -> u64 {
    *v.first().unwrap()
}
