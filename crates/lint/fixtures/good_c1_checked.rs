// Fixture: C1 must stay silent — checked conversion, widening,
// non-counter narrowing, and a justified bounded cast.
pub fn checked(total_cycles: u64) -> u32 {
    total_cycles.try_into().expect("window fits in u32 by construction")
}

pub fn widen(hit_cycles: u32) -> u64 {
    hit_cycles as u64
}

pub fn index(slot: u64) -> usize {
    slot as usize
}

pub fn bounded(ready_at: u64, rob_size: usize) -> usize {
    // lint: bounded rob slot offset is < rob_size (checked by caller)
    (ready_at % rob_size as u64) as usize
}
