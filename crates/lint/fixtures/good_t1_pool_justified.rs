// Fixture: the sweep-pool idiom with every site justified — T1 stays
// silent and each site lands in the audit table with its why.
// lint: safety: disjoint-index single-writer slots; read only after join
use std::cell::UnsafeCell;

pub struct Slots<R> {
    // lint: safety: each index written by exactly one worker, once
    cells: Vec<UnsafeCell<Option<R>>>,
}

// lint: safety: workers write disjoint indices; no cell is shared
unsafe impl<R: Send> Sync for Slots<R> {}

impl<R> Slots<R> {
    // lint: safety: contract: callers pass a uniquely claimed idx
    pub unsafe fn put(&self, idx: usize, value: R) {
        // lint: safety: idx uniquely claimed from the deques, in bounds
        unsafe { *self.cells[idx].get() = Some(value) }
    }
}
