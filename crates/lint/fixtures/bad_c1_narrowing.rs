// Fixture: C1 must fire twice — lossy `as` narrowing of cycle-typed
// expressions.
pub fn wraps(total_cycles: u64, busy_until: u64) -> (u32, usize) {
    let a = total_cycles as u32;
    let b = (busy_until + 7) as usize;
    (a, b)
}
