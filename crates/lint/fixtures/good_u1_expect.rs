// Fixture: U1 must stay silent — expect with an invariant message,
// unwrap_or family, a justified unwrap, and unwraps in test code.
pub fn head(v: &[u64]) -> u64 {
    *v.first().expect("caller guarantees a non-empty batch")
}

pub fn head_or_zero(v: &[u64]) -> u64 {
    v.first().copied().unwrap_or(0)
}

pub fn parse(s: &str) -> u64 {
    // lint: unwrap the literal below is statically valid
    "42".parse().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        Some(1u64).unwrap();
    }
}
