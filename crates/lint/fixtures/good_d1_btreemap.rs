// Fixture: D1 must stay silent — deterministic collections, plus a
// justified HashSet whose contents are sorted before iteration.
use std::collections::{BTreeMap, BTreeSet};

pub struct RowTable {
    open_rows: BTreeMap<u64, u64>,
    touched: BTreeSet<u64>,
}

pub fn dedupe(addrs: &[u64]) -> Vec<u64> {
    // lint: sorted keys are collected into a Vec and sorted before any iteration
    let set: std::collections::HashSet<u64> = addrs.iter().copied().collect();
    let mut v: Vec<u64> = set.into_iter().collect();
    v.sort_unstable();
    v
}

// Mentions in prose and strings never count: HashMap, HashSet.
pub const DOC: &str = "HashMap iteration order is nondeterministic";
