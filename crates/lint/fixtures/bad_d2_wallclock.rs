// Fixture: D2 must fire twice — wall-clock and ambient entropy in
// non-test simulation code.
use std::time::Instant;

pub fn measure() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
