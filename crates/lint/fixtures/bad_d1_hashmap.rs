// Fixture: D1 must fire — HashMap in a simulation crate without a
// `// lint: sorted` justification. (Linted as crates/mem/src/...)
use std::collections::HashMap;

pub struct RowTable {
    open_rows: HashMap<u64, u64>,
}

pub fn sum(rows: &HashMap<u64, u64>) -> u64 {
    // Iteration-order dependence: accumulation order varies run to run
    // under a randomized hasher even though the sum itself does not —
    // and the next edit that formats or truncates this loop diverges.
    rows.values().sum()
}
