//! A hand-rolled Rust lexer, just deep enough for lint rules.
//!
//! The rules only need to tell *code* apart from comments and string
//! literals, keep identifiers and punctuation with line numbers, and
//! preserve comment text (that is where `// lint:` annotations live).
//! No keyword table, no spans beyond line numbers, no macro expansion:
//! the rules pattern-match on the raw token stream.
//!
//! Handled faithfully because getting them wrong produces false
//! positives inside literals: line comments, nested block comments,
//! (raw/byte) string literals, char literals vs. lifetimes, and raw
//! identifiers.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`HashMap`, `unsafe`, `as`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `:`, `(`, ...).
    Punct(char),
    /// A string literal (content preserved for pattern rules).
    Str(String),
    /// A char literal (`'a'`, `'\n'`).
    CharLit,
    /// A numeric literal (value irrelevant to every rule).
    Num,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A `//` comment; text excludes the slashes (doc comments too).
    LineComment(String),
    /// A `/* */` comment; text excludes the delimiters.
    BlockComment(String),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Lexes a whole source file. Unknown bytes become `Punct` so the
/// stream never loses sync; the lexer cannot fail.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.push(Token { tok, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'r' | 'b' => self.raw_or_ident(line),
                '\'' => self.char_or_lifetime(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ if is_ident_start(c) => self.ident(line),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // consume //
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Tok::LineComment(text), line);
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // consume /*
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break, // unterminated: tolerate
            }
        }
        self.push(Tok::BlockComment(text), line);
    }

    /// A plain `"..."` string with `\` escapes.
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    text.push(c);
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                _ => text.push(c),
            }
        }
        self.push(Tok::Str(text), line);
    }

    /// `r"..."` / `r#"..."#` / `b"..."` / `br##"..."##` or just an
    /// identifier starting with `r`/`b` (including raw idents `r#if`).
    fn raw_or_ident(&mut self, line: u32) {
        let mut ahead = 1; // past the leading r/b
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        let is_raw_str = self.peek(ahead + hashes) == Some('"')
            && (hashes > 0 || matches!(self.peek(0), Some('r') | Some('b')));
        // `b"..."` has ahead==1, hashes==0 and is a byte string; a raw
        // identifier `r#if` has hashes==1 but no quote.
        if is_raw_str {
            for _ in 0..ahead + hashes + 1 {
                self.bump(); // prefix, hashes, opening quote
            }
            let mut text = String::new();
            'scan: while let Some(c) = self.bump() {
                if c == '"' {
                    // A raw string closes on `"` followed by `hashes` #s.
                    for i in 0..hashes {
                        if self.peek(i) != Some('#') {
                            text.push('"');
                            continue 'scan;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                text.push(c);
            }
            self.push(Tok::Str(text), line);
        } else if hashes > 0 && self.peek(ahead + hashes).is_some_and(is_ident_start) {
            // Raw identifier: consume prefix + hashes, then the ident.
            for _ in 0..ahead + hashes {
                self.bump();
            }
            self.ident(line);
        } else {
            self.ident(line);
        }
    }

    /// `'a'` vs `'a` — a lifetime has no closing quote right after its
    /// (single) identifier-ish character run.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // opening '
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume to closing quote.
                self.bump();
                self.bump(); // escape head (enough for \n, \', \u{..} handled below)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::CharLit, line);
            }
            Some(c) if is_ident_start(c) => {
                // Could be 'x' (char) or 'x / 'static (lifetime).
                let mut len = 1;
                while self.peek(len).is_some_and(is_ident_continue) {
                    len += 1;
                }
                if self.peek(len) == Some('\'') {
                    for _ in 0..=len {
                        self.bump();
                    }
                    self.push(Tok::CharLit, line);
                } else {
                    for _ in 0..len {
                        self.bump();
                    }
                    self.push(Tok::Lifetime, line);
                }
            }
            Some(_) => {
                // Non-alphabetic char literal like ' ' or '}'.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(Tok::CharLit, line);
            }
            None => self.push(Tok::Punct('\''), line),
        }
    }

    fn number(&mut self, line: u32) {
        // Consume the alphanumeric run (covers 0x1F, 1_000u64, 1e9).
        // `.` is deliberately left out: `0..n` must not swallow the
        // range operator, and no rule cares about float values.
        while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            self.bump();
        }
        self.push(Tok::Num, line);
    }

    fn ident(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if name.is_empty() {
            // Defensive: never loop forever on an unexpected byte.
            if let Some(c) = self.bump() {
                self.push(Tok::Punct(c), line);
            }
            return;
        }
        self.push(Tok::Ident(name), line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn idents_and_puncts_with_lines() {
        let toks = lex("let x = y;\nfoo(x)");
        assert_eq!(toks[0], Token { tok: Tok::Ident("let".into()), line: 1 });
        assert_eq!(toks[4].tok, Tok::Punct(';'));
        assert_eq!(toks[5], Token { tok: Tok::Ident("foo".into()), line: 2 });
    }

    #[test]
    fn comments_are_preserved_not_code() {
        let toks = lex("// lint: sorted\nx /* HashMap */ y");
        assert_eq!(toks[0].tok, Tok::LineComment(" lint: sorted".into()));
        assert_eq!(toks[2].tok, Tok::BlockComment(" HashMap ".into()));
        assert_eq!(idents("// HashMap\n/* HashMap */"), Vec::<String>::new());
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* a /* b */ c */ x");
        assert_eq!(toks[0].tok, Tok::BlockComment(" a /* b */ c ".into()));
        assert_eq!(toks[1].tok, Tok::Ident("x".into()));
    }

    #[test]
    fn strings_do_not_leak_idents() {
        assert_eq!(idents(r#"let s = "HashMap::new() // not a comment";"#), vec!["let", "s"]);
        // Escaped quote stays inside the literal.
        assert_eq!(idents(r#"f("a\"HashMap", x)"#), vec!["f", "x"]);
    }

    #[test]
    fn raw_and_byte_strings() {
        assert_eq!(idents(r###"let s = r#"unsafe "quoted" inside"#; t"###), vec!["let", "s", "t"]);
        assert_eq!(idents(r#"let b = b"unsafe"; t"#), vec!["let", "b", "t"]);
        assert_eq!(idents(r###"let b = br#"thread_rng"#; t"###), vec!["let", "b", "t"]);
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        assert_eq!(idents("let r#as = 1;"), vec!["let", "as"]);
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = lex("'a' 'x &'a str '\\n' ' '");
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(matches!(kinds[0], Tok::CharLit));
        assert!(matches!(kinds[1], Tok::Lifetime));
        assert!(matches!(kinds[3], Tok::Lifetime));
        assert!(matches!(kinds[5], Tok::CharLit)); // '\n'
        assert!(matches!(kinds[6], Tok::CharLit)); // ' '
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = lex("for i in 0..16u64 {}");
        let dots = toks.iter().filter(|t| t.tok == Tok::Punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let toks = lex("/* a\nb\nc */ x\ny");
        assert_eq!(toks[1], Token { tok: Tok::Ident("x".into()), line: 3 });
        assert_eq!(toks[2], Token { tok: Tok::Ident("y".into()), line: 4 });
    }
}
