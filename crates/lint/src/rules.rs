//! The rule engine: D1/D2/T1/C1/U1 over a lexed token stream.
//!
//! Every rule pattern-matches on significant (non-comment) tokens, so
//! mentions inside strings, doc comments, and `//` comments never fire.
//! Escape hatches are `// lint:` annotations on the offending line or
//! the line directly above it:
//!
//! - `// lint: sorted <why>`  — D1: this hash collection is never
//!   iterated order-dependently (e.g. collected and sorted first).
//! - `// lint: safety: <why>` — T1: why this `unsafe`/interior-mutability
//!   site is sound, and what guards it for the future `Sync` audit.
//! - `// lint: bounded <why>` — C1: why this narrowing cast cannot
//!   truncate (value bounded by construction).
//! - `// lint: unwrap <why>`  — U1: why this `unwrap()` cannot panic
//!   (prefer `expect("…invariant…")`; reserve this for generated or
//!   perf-critical code).

use crate::lexer::{lex, Tok, Token};
use std::collections::BTreeMap;
use std::fmt;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`D1`, `D2`, `T1`, `C1`, `U1`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// One *justified* thread-safety-relevant site (T1), for the audit
/// table the parallel-executor work will consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    pub path: String,
    pub line: u32,
    /// What was found (`unsafe`, `static mut`, `RefCell`, ...).
    pub what: String,
    /// The `// lint: safety:` justification text.
    pub justification: String,
}

/// Rule parameters resolved from `lint.toml` (with built-in defaults).
#[derive(Debug, Clone)]
pub struct Rules {
    /// Crates whose results must be bit-reproducible (D1 scope).
    pub sim_crates: Vec<String>,
    /// Crates allowed to read wall clocks / ambient entropy (D2).
    pub d2_allow_crates: Vec<String>,
    /// Identifiers that mark an expression as cycle/counter-typed (C1).
    pub c1_exact: Vec<String>,
    /// Identifier suffixes that mark cycle/counter-typed values (C1).
    pub c1_suffixes: Vec<String>,
    /// Workspace-relative path prefixes exempt from U1.
    pub u1_allow_paths: Vec<String>,
}

impl Default for Rules {
    fn default() -> Self {
        Self {
            sim_crates: ["mem", "cpu", "core", "cache", "crypto", "exec"]
                .map(String::from)
                .to_vec(),
            d2_allow_crates: vec!["bench".to_string()],
            c1_exact: ["cycles", "busy_until", "now", "latency"].map(String::from).to_vec(),
            c1_suffixes: ["_cycles", "_until", "_at", "_latency"].map(String::from).to_vec(),
            u1_allow_paths: Vec::new(),
        }
    }
}

impl Rules {
    /// Overrides defaults with any keys present in the config.
    pub fn from_config(cfg: &crate::config::Config) -> Self {
        let mut rules = Self::default();
        if let Some(v) = cfg.list("lint", "sim_crates") {
            rules.sim_crates = v.to_vec();
        }
        if let Some(v) = cfg.list("d2", "allow_crates") {
            rules.d2_allow_crates = v.to_vec();
        }
        if let Some(v) = cfg.list("c1", "exact") {
            rules.c1_exact = v.to_vec();
        }
        if let Some(v) = cfg.list("c1", "suffixes") {
            rules.c1_suffixes = v.to_vec();
        }
        if let Some(v) = cfg.list("u1", "allow_paths") {
            rules.u1_allow_paths = v.to_vec();
        }
        rules
    }
}

/// The outcome of linting one file.
#[derive(Debug, Clone, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub audit: Vec<AuditEntry>,
}

/// Lints one source file given its workspace-relative path.
pub fn lint_source(rules: &Rules, rel_path: &str, src: &str) -> FileReport {
    let tokens = lex(src);
    let annotations = Annotations::collect(&tokens);
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.tok, Tok::LineComment(_) | Tok::BlockComment(_)))
        .collect();
    let in_test = test_mask(&sig);
    let crate_name = crate::walk::crate_of(rel_path);

    let mut report = FileReport::default();
    let ctx = Ctx {
        rules,
        rel_path,
        crate_name,
        sig: &sig,
        in_test: &in_test,
        annotations: &annotations,
    };
    rule_d1(&ctx, &mut report);
    rule_d2(&ctx, &mut report);
    rule_t1(&ctx, &mut report);
    rule_c1(&ctx, &mut report);
    rule_u1(&ctx, &mut report);
    report
}

struct Ctx<'a> {
    rules: &'a Rules,
    rel_path: &'a str,
    crate_name: &'a str,
    sig: &'a [&'a Token],
    in_test: &'a [bool],
    annotations: &'a Annotations,
}

impl Ctx<'_> {
    fn finding(&self, rule: &'static str, line: u32, message: String) -> Finding {
        Finding { rule, path: self.rel_path.to_string(), line, message }
    }

    fn ident(&self, i: usize) -> Option<&str> {
        match &self.sig.get(i)?.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    fn punct(&self, i: usize) -> Option<char> {
        match self.sig.get(i)?.tok {
            Tok::Punct(c) => Some(c),
            _ => None,
        }
    }
}

/// `// lint:` annotations by line.
struct Annotations {
    by_line: BTreeMap<u32, Vec<String>>,
}

impl Annotations {
    fn collect(tokens: &[Token]) -> Self {
        let mut by_line: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        for t in tokens {
            if let Tok::LineComment(text) = &t.tok {
                let trimmed = text.trim_start();
                if let Some(rest) = trimmed.strip_prefix("lint:") {
                    by_line.entry(t.line).or_default().push(rest.trim().to_string());
                }
            }
        }
        Self { by_line }
    }

    /// An annotation whose text starts with `tag`, on `line` or the
    /// line directly above it.
    fn get(&self, line: u32, tag: &str) -> Option<&str> {
        for l in [line, line.saturating_sub(1)] {
            if let Some(anns) = self.by_line.get(&l) {
                if let Some(a) = anns.iter().find(|a| a.starts_with(tag)) {
                    return Some(a);
                }
            }
        }
        None
    }
}

/// Marks tokens inside `#[test]` / `#[cfg(test)]` items (attribute
/// through the matching close brace of the item body).
fn test_mask(sig: &[&Token]) -> Vec<bool> {
    let mut mask = vec![false; sig.len()];
    let mut i = 0;
    while i < sig.len() {
        if !is_punct(sig, i, '#') || !is_punct(sig, i + 1, '[') {
            i += 1;
            continue;
        }
        let Some(close) = matching(sig, i + 1, '[', ']') else {
            break;
        };
        if is_test_attribute(&sig[i + 2..close]) {
            if let Some(body_open) = item_body_open(sig, close + 1) {
                if let Some(body_close) = matching(sig, body_open, '{', '}') {
                    for m in mask.iter_mut().take(body_close + 1).skip(i) {
                        *m = true;
                    }
                }
            }
        }
        i = close + 1;
    }
    mask
}

fn is_punct(sig: &[&Token], i: usize, c: char) -> bool {
    matches!(sig.get(i), Some(t) if t.tok == Tok::Punct(c))
}

/// `test` or `cfg(test)` — but not `cfg(not(test))`.
fn is_test_attribute(attr: &[&Token]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .map(|t| match &t.tok {
            Tok::Ident(s) => s.as_str(),
            Tok::Punct(c) => match c {
                '(' => "(",
                ')' => ")",
                _ => "",
            },
            _ => "",
        })
        .filter(|s| !s.is_empty())
        .collect();
    idents == ["test"] || idents.starts_with(&["cfg", "(", "test", ")"])
}

/// The `{` opening the item body after an attribute, skipping further
/// attributes; `None` if a `;` ends the item first (e.g. `mod tests;`).
fn item_body_open(sig: &[&Token], mut i: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while i < sig.len() {
        // Skip chained attributes wholesale.
        if paren == 0 && bracket == 0 && is_punct(sig, i, '#') && is_punct(sig, i + 1, '[') {
            i = matching(sig, i + 1, '[', ']')? + 1;
            continue;
        }
        match sig[i].tok {
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren -= 1,
            Tok::Punct('[') => bracket += 1,
            Tok::Punct(']') => bracket -= 1,
            Tok::Punct('{') if paren == 0 && bracket == 0 => return Some(i),
            Tok::Punct(';') if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Index of the delimiter closing the one at `open`.
fn matching(sig: &[&Token], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in sig.iter().enumerate().skip(open) {
        if t.tok == Tok::Punct(open_c) {
            depth += 1;
        } else if t.tok == Tok::Punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// D1 — hash-order determinism: no `HashMap`/`HashSet` in simulation
/// crates without a `// lint: sorted` justification. Applies to test
/// code too: a test asserting on hash iteration order is flaky.
fn rule_d1(ctx: &Ctx, report: &mut FileReport) {
    if !ctx.rules.sim_crates.iter().any(|c| c == ctx.crate_name) {
        return;
    }
    for i in 0..ctx.sig.len() {
        let Some(name) = ctx.ident(i) else { continue };
        if name != "HashMap" && name != "HashSet" {
            continue;
        }
        let line = ctx.sig[i].line;
        if ctx.annotations.get(line, "sorted").is_some() {
            continue;
        }
        report.findings.push(ctx.finding(
            "D1",
            line,
            format!(
                "{name} in simulation crate `{}`: iteration order is \
                 nondeterministic; use BTreeMap/BTreeSet, or sort before \
                 iterating and justify with `// lint: sorted <why>`",
                ctx.crate_name
            ),
        ));
    }
}

/// D2 — no wall clocks or ambient randomness outside bench/vendor
/// (non-test code only; tests may seed from entropy).
fn rule_d2(ctx: &Ctx, report: &mut FileReport) {
    if ctx.rules.d2_allow_crates.iter().any(|c| c == ctx.crate_name) {
        return;
    }
    const BANNED: [&str; 4] = ["Instant", "SystemTime", "thread_rng", "from_entropy"];
    for i in 0..ctx.sig.len() {
        if ctx.in_test[i] {
            continue;
        }
        let Some(name) = ctx.ident(i) else { continue };
        if !BANNED.contains(&name) {
            continue;
        }
        report.findings.push(ctx.finding(
            "D2",
            ctx.sig[i].line,
            format!(
                "`{name}` is wall-clock/ambient-entropy state: simulation \
                 results must be a pure function of config + seed; inject a \
                 seeded Rng or take cycles from the simulated clock"
            ),
        ));
    }
}

/// T1 — `Sync` audit: every `unsafe`, `static mut`, or
/// interior-mutability/non-`Sync` type in non-test code must carry a
/// `// lint: safety:` justification; justified sites feed the audit
/// table.
fn rule_t1(ctx: &Ctx, report: &mut FileReport) {
    const NON_SYNC: [&str; 6] = ["RefCell", "Cell", "UnsafeCell", "OnceCell", "LazyCell", "Rc"];
    let mut i = 0;
    while i < ctx.sig.len() {
        if ctx.in_test[i] {
            i += 1;
            continue;
        }
        let what = match ctx.ident(i) {
            Some("unsafe") => Some("unsafe".to_string()),
            Some("static") if ctx.ident(i + 1) == Some("mut") => Some("static mut".to_string()),
            Some(name) if NON_SYNC.contains(&name) => Some(name.to_string()),
            _ => None,
        };
        let Some(what) = what else {
            i += 1;
            continue;
        };
        let line = ctx.sig[i].line;
        match ctx.annotations.get(line, "safety:") {
            Some(ann) => report.audit.push(AuditEntry {
                path: ctx.rel_path.to_string(),
                line,
                what: what.clone(),
                justification: ann["safety:".len()..].trim().to_string(),
            }),
            None => report.findings.push(ctx.finding(
                "T1",
                line,
                format!(
                    "`{what}` without a `// lint: safety: <why>` justification: \
                     the parallel executor needs every non-Sync / unsafe site \
                     accounted for"
                ),
            )),
        }
        i += if what == "static mut" { 2 } else { 1 };
    }
}

/// C1 — no lossy `as` narrowing of cycle/counter-typed expressions:
/// `u64` cycle math squeezed into `u32`/`usize`/... silently wraps on
/// long runs. Require `try_into()` or `// lint: bounded`.
fn rule_c1(ctx: &Ctx, report: &mut FileReport) {
    const NARROW: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "isize", "usize"];
    for i in 0..ctx.sig.len() {
        if ctx.in_test[i] {
            continue;
        }
        if ctx.ident(i) != Some("as") {
            continue;
        }
        let Some(target) = ctx.ident(i + 1) else { continue };
        if !NARROW.contains(&target) {
            continue;
        }
        let Some(needle) = counter_needle_before(ctx, i) else {
            continue;
        };
        let line = ctx.sig[i].line;
        if ctx.annotations.get(line, "bounded").is_some() {
            continue;
        }
        report.findings.push(ctx.finding(
            "C1",
            line,
            format!(
                "`as {target}` narrows a cycle/counter-typed expression \
                 (`{needle}`): silently wraps on long simulations; use \
                 `try_into()` or justify with `// lint: bounded <why>`"
            ),
        ));
    }
}

/// Scans the expression tail preceding `as` for a cycle/counter-typed
/// identifier. Walks backwards at most 24 tokens, balancing closers and
/// stopping at an expression boundary.
fn counter_needle_before(ctx: &Ctx, as_idx: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut j = as_idx;
    for _ in 0..24 {
        if j == 0 {
            break;
        }
        j -= 1;
        match &ctx.sig[j].tok {
            Tok::Punct(')') | Tok::Punct(']') => depth += 1,
            Tok::Punct('(') | Tok::Punct('[') => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') | Tok::Punct('=')
            | Tok::Punct(',')
                if depth == 0 =>
            {
                break;
            }
            Tok::Ident(name)
                if ctx.rules.c1_exact.iter().any(|e| e == name)
                    || ctx.rules.c1_suffixes.iter().any(|s| name.ends_with(s.as_str())) =>
            {
                return Some(name.clone());
            }
            _ => {}
        }
    }
    None
}

/// U1 — no bare `.unwrap()` in library (under `src/`) non-test code:
/// a panic must name the violated invariant (`expect`), or justify
/// itself with `// lint: unwrap <why>`.
fn rule_u1(ctx: &Ctx, report: &mut FileReport) {
    let in_src = ctx.rel_path.starts_with("src/") || ctx.rel_path.contains("/src/");
    if !in_src {
        return;
    }
    if ctx
        .rules
        .u1_allow_paths
        .iter()
        .any(|p| ctx.rel_path.starts_with(p.as_str()))
    {
        return;
    }
    for i in 0..ctx.sig.len() {
        if ctx.in_test[i] {
            continue;
        }
        if ctx.punct(i) != Some('.')
            || ctx.ident(i + 1) != Some("unwrap")
            || ctx.punct(i + 2) != Some('(')
            || ctx.punct(i + 3) != Some(')')
        {
            continue;
        }
        let line = ctx.sig[i].line;
        if ctx.annotations.get(line, "unwrap").is_some() {
            continue;
        }
        report.findings.push(ctx.finding(
            "U1",
            line,
            "bare `.unwrap()` in library code: replace with \
             `expect(\"…invariant…\")` naming the invariant that makes the \
             value present, or justify with `// lint: unwrap <why>`"
                .to_string(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> FileReport {
        lint_source(&Rules::default(), path, src)
    }

    fn rules_of(report: &FileReport) -> Vec<&'static str> {
        report.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d1_fires_in_sim_crates_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_of(&lint("crates/mem/src/x.rs", src)), vec!["D1"]);
        assert!(rules_of(&lint("crates/workloads/src/x.rs", src)).is_empty());
    }

    #[test]
    fn d1_accepts_sorted_annotation() {
        let src = "// lint: sorted keys collected and sorted before iteration\n\
                   use std::collections::HashMap;\n";
        assert!(rules_of(&lint("crates/core/src/x.rs", src)).is_empty());
    }

    #[test]
    fn d1_ignores_comments_and_strings() {
        let src = "// HashMap in prose\nconst S: &str = \"HashMap\";\n";
        assert!(rules_of(&lint("crates/mem/src/x.rs", src)).is_empty());
    }

    #[test]
    fn d2_fires_outside_tests_and_bench() {
        let src = "fn t() { let x = Instant::now(); }\n";
        assert_eq!(rules_of(&lint("crates/cpu/src/x.rs", src)), vec!["D2"]);
        assert!(rules_of(&lint("crates/bench/src/x.rs", src)).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n fn t() { let r = thread_rng(); }\n}\n";
        assert!(rules_of(&lint("crates/crypto/src/x.rs", test_src)).is_empty());
    }

    #[test]
    fn d2_is_not_fooled_by_cfg_not_test() {
        let src = "#[cfg(not(test))]\nfn t() { let x = SystemTime::now(); }\n";
        assert_eq!(rules_of(&lint("crates/mem/src/x.rs", src)), vec!["D2"]);
    }

    #[test]
    fn t1_requires_safety_annotation() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert_eq!(rules_of(&lint("crates/mem/src/x.rs", bad)), vec!["T1"]);
        let good = "fn f(p: *const u8) -> u8 {\n    // lint: safety: caller upholds validity; single-threaded\n    unsafe { *p }\n}\n";
        let report = lint("crates/mem/src/x.rs", good);
        assert!(report.findings.is_empty());
        assert_eq!(report.audit.len(), 1);
        assert_eq!(report.audit[0].what, "unsafe");
        assert!(report.audit[0].justification.contains("caller upholds"));
    }

    #[test]
    fn t1_covers_static_mut_and_interior_mutability() {
        let src = "static mut COUNTER: u64 = 0;\nstruct S { c: RefCell<u32> }\n";
        let report = lint("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&report), vec!["T1", "T1"]);
        assert!(report.findings[0].message.contains("static mut"));
        assert!(report.findings[1].message.contains("RefCell"));
    }

    #[test]
    fn c1_fires_on_cycle_narrowing() {
        let src = "fn f(busy_until: u64) -> u32 { (busy_until - 1) as u32 }\n";
        assert_eq!(rules_of(&lint("crates/mem/src/x.rs", src)), vec!["C1"]);
        let src = "fn f(total_cycles: u64) -> usize { total_cycles as usize }\n";
        assert_eq!(rules_of(&lint("crates/mem/src/x.rs", src)), vec!["C1"]);
    }

    #[test]
    fn c1_allows_widening_bounded_and_unrelated() {
        // Widening u32 -> u64 is fine.
        let src = "fn f(hit_cycles: u32) -> u64 { hit_cycles as u64 }\n";
        assert!(rules_of(&lint("crates/mem/src/x.rs", src)).is_empty());
        // Non-counter expressions narrow freely.
        let src = "fn f(idx: u64) -> usize { idx as usize }\n";
        assert!(rules_of(&lint("crates/mem/src/x.rs", src)).is_empty());
        // Annotated sites pass.
        let src = "fn f(ready_at: u64) -> usize {\n    // lint: bounded rob slot index < rob_size\n    (ready_at % 8) as usize\n}\n";
        assert!(rules_of(&lint("crates/cpu/src/x.rs", src)).is_empty());
    }

    #[test]
    fn c1_expression_boundary_stops_backscan() {
        // The counter ident is in a *previous* statement.
        let src = "fn f(cycles: u64, n: u64) -> usize { let c = cycles; n as usize }\n";
        assert!(rules_of(&lint("crates/mem/src/x.rs", src)).is_empty());
    }

    #[test]
    fn u1_fires_only_under_src_non_test() {
        let src = "fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
        assert_eq!(rules_of(&lint("crates/mem/src/x.rs", src)), vec!["U1"]);
        assert!(rules_of(&lint("crates/mem/tests/t.rs", src)).is_empty());
        assert!(rules_of(&lint("examples/e.rs", src)).is_empty());
        let test_src = "#[test]\nfn t() { Some(1).unwrap(); }\n";
        assert!(rules_of(&lint("crates/mem/src/x.rs", test_src)).is_empty());
    }

    #[test]
    fn u1_ignores_unwrap_or_family_and_expect() {
        let src = "fn f(v: Option<u8>) -> u8 { v.unwrap_or(0) + v.unwrap_or_default() }\n\
                   fn g(v: Option<u8>) -> u8 { v.expect(\"set at init\") }\n";
        assert!(rules_of(&lint("crates/mem/src/x.rs", src)).is_empty());
    }

    #[test]
    fn annotations_attach_to_same_or_previous_line() {
        let same = "fn f(v: Option<u8>) -> u8 { v.unwrap() } // lint: unwrap checked above\n";
        assert!(rules_of(&lint("crates/mem/src/x.rs", same)).is_empty());
        let prev = "fn f(v: Option<u8>) -> u8 {\n    // lint: unwrap checked above\n    v.unwrap()\n}\n";
        assert!(rules_of(&lint("crates/mem/src/x.rs", prev)).is_empty());
        let far = "fn f(v: Option<u8>) -> u8 {\n    // lint: unwrap checked above\n\n\n    v.unwrap()\n}\n";
        assert_eq!(rules_of(&lint("crates/mem/src/x.rs", far)), vec!["U1"]);
    }

    #[test]
    fn findings_carry_path_line_and_render() {
        let report = lint("crates/mem/src/x.rs", "\n\nuse std::collections::HashSet;\n");
        assert_eq!(report.findings[0].line, 3);
        let rendered = report.findings[0].to_string();
        assert!(rendered.starts_with("crates/mem/src/x.rs:3: [D1]"), "{rendered}");
    }
}
