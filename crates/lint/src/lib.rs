//! `padlock-lint` — workspace determinism & thread-safety analysis.
//!
//! A vendored, dependency-free static-analysis pass over the workspace
//! sources, enforcing the repo-specific invariants that make the
//! bit-exact differential methodology (`engine_vs_seed` …
//! `frfcfs_vs_seed`) survive the planned parallel sweep executor:
//!
//! | Rule | Enforces |
//! |------|----------|
//! | `D1` | no `HashMap`/`HashSet` iteration-order dependence in simulation crates |
//! | `D2` | no wall clocks / ambient randomness outside `bench`/`vendor` |
//! | `T1` | every `unsafe`/`static mut`/interior-mutability site carries `// lint: safety:` |
//! | `C1` | no lossy `as` narrowing of cycle/counter-typed expressions |
//! | `U1` | no bare `.unwrap()` in library non-test code |
//!
//! Run it with `cargo run -p padlock-lint` from anywhere in the
//! workspace; configuration lives in the root `lint.toml`.

pub mod config;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use config::Config;
pub use rules::{AuditEntry, FileReport, Finding, Rules};

use std::path::Path;

/// Directories never descended into when no config overrides them.
pub const DEFAULT_SKIP_DIRS: [&str; 4] = ["target", "vendor", "fixtures", ".git"];

/// The result of linting a whole workspace.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All rule violations, sorted by path then line.
    pub findings: Vec<Finding>,
    /// All justified T1 sites, sorted by path then line.
    pub audit: Vec<AuditEntry>,
    /// Number of files linted.
    pub files: usize,
}

impl Report {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the T1 audit table (the `Sync`-readiness worklist for
    /// the parallel executor). Deterministic ordering.
    pub fn audit_table(&self) -> String {
        if self.audit.is_empty() {
            return "T1 audit: no unsafe / static mut / interior-mutability sites — \
                    every simulation structure is plain owned data.\n"
                .to_string();
        }
        let mut out = String::from("T1 audit (justified non-Sync / unsafe sites):\n");
        for e in &self.audit {
            out.push_str(&format!(
                "  {}:{}: {} — {}\n",
                e.path, e.line, e.what, e.justification
            ));
        }
        out
    }
}

/// Lints every `.rs` file under `root` with the given config.
///
/// `root` should be the workspace root (the directory holding
/// `lint.toml`); paths in findings are reported relative to it.
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let rules = Rules::from_config(cfg);
    let mut skip = cfg.list_or_empty("lint", "skip_dirs");
    if skip.is_empty() {
        skip = DEFAULT_SKIP_DIRS.map(String::from).to_vec();
    }
    let mut report = Report::default();
    for path in walk::rust_sources(root, &skip)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        let file = rules::lint_source(&rules, &rel, &src);
        report.findings.extend(file.findings);
        report.audit.extend(file.audit);
        report.files += 1;
    }
    report.findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    report.audit.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

/// Loads `lint.toml` from `root`, falling back to built-in defaults
/// when the file is absent.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text).map_err(|e| e.to_string()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Searches upward from `start` for a directory containing `lint.toml`
/// (the workspace root).
pub fn find_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
