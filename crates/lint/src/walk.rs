//! Deterministic workspace traversal.
//!
//! Collects every `.rs` file under a root, skipping configured
//! directory names (`target`, `vendor`, the lint's own `fixtures`).
//! Entries are visited in sorted order so findings, exit codes, and
//! audit tables are byte-identical run to run — the lint holds itself
//! to the determinism bar it enforces.

use std::path::{Path, PathBuf};

/// Recursively collects `.rs` files under `root`, in sorted relative
/// order, skipping any directory whose *name* is in `skip_dirs`.
pub fn rust_sources(root: &Path, skip_dirs: &[String]) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect(root, skip_dirs, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, skip_dirs: &[String], out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if skip_dirs.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect(&path, skip_dirs, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The crate a workspace-relative path belongs to: `crates/mem/...` is
/// `mem`, `vendor/rand/...` is `rand`, anything else (root `src/`,
/// `tests/`, `examples/`) is the facade crate `padlock`.
pub fn crate_of(rel_path: &str) -> &str {
    for prefix in ["crates/", "vendor/"] {
        if let Some(rest) = rel_path.strip_prefix(prefix) {
            if let Some((name, _)) = rest.split_once('/') {
                return name;
            }
        }
    }
    "padlock"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/mem/src/sparse.rs"), "mem");
        assert_eq!(crate_of("crates/core/tests/engine_vs_seed.rs"), "core");
        assert_eq!(crate_of("vendor/rand/src/lib.rs"), "rand");
        assert_eq!(crate_of("src/lib.rs"), "padlock");
        assert_eq!(crate_of("tests/security_model.rs"), "padlock");
        assert_eq!(crate_of("examples/quickstart.rs"), "padlock");
    }
}
