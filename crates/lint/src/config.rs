//! `lint.toml` parsing — a deliberately tiny TOML subset.
//!
//! Supported: `[section]` headers, `key = "string"`, `key = true/false`,
//! and `key = ["a", "b"]` string arrays (single-line). Comments (`#`)
//! and blank lines are ignored. That is everything the lint config
//! needs, and hand-rolling it keeps the tool dependency-free like the
//! `vendor/` shims.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed configuration value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Str(String),
    Bool(bool),
    List(Vec<String>),
}

/// Parsed `lint.toml`: `section.key -> value`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    entries: BTreeMap<(String, String), Value>,
}

/// A syntax error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl Config {
    /// Parses configuration text.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut entries = BTreeMap::new();
        let mut section = String::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = (i + 1) as u32;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(err(line_no, "unterminated section header"));
                };
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(line_no, "expected `key = value`"));
            };
            let key = key.trim().to_string();
            let value = parse_value(value.trim(), line_no)?;
            entries.insert((section.clone(), key), value);
        }
        Ok(Self { entries })
    }

    /// A string-list entry; `None` when absent.
    pub fn list(&self, section: &str, key: &str) -> Option<&[String]> {
        match self.entries.get(&(section.to_string(), key.to_string())) {
            Some(Value::List(v)) => Some(v),
            _ => None,
        }
    }

    /// A string-list entry, defaulting to empty.
    pub fn list_or_empty(&self, section: &str, key: &str) -> Vec<String> {
        self.list(section, key).map(<[String]>::to_vec).unwrap_or_default()
    }

    /// A string entry; `None` when absent.
    pub fn str(&self, section: &str, key: &str) -> Option<&str> {
        match self.entries.get(&(section.to_string(), key.to_string())) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// A boolean entry with a default.
    pub fn bool_or(&self, section: &str, key: &str, default: bool) -> bool {
        match self.entries.get(&(section.to_string(), key.to_string())) {
            Some(Value::Bool(b)) => *b,
            _ => default,
        }
    }
}

fn err(line: u32, message: &str) -> ConfigError {
    ConfigError { line, message: message.to_string() }
}

/// Strips a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, line: u32) -> Result<Value, ConfigError> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(s) = parse_str(text) {
        return Ok(Value::Str(s));
    }
    if let Some(body) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let body = body.trim();
        let mut items = Vec::new();
        if !body.is_empty() {
            for item in split_top_level_commas(body) {
                let item = item.trim();
                match parse_str(item) {
                    Some(s) => items.push(s),
                    None => return Err(err(line, "lists may only hold quoted strings")),
                }
            }
        }
        return Ok(Value::List(items));
    }
    Err(err(line, "expected a quoted string, bool, or string list"))
}

fn parse_str(text: &str) -> Option<String> {
    let body = text.strip_prefix('"')?.strip_suffix('"')?;
    // No escapes needed for path/ident config values.
    if body.contains('"') {
        return None;
    }
    Some(body.to_string())
}

fn split_top_level_commas(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&body[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_lists_strings_bools() {
        let cfg = Config::parse(
            "# top comment\n\
             [lint]\n\
             skip_dirs = [\"target\", \"vendor\"] # trailing\n\
             strict = true\n\
             [d2]\n\
             allow_crates = [\"bench\"]\n\
             note = \"wall, clock\"\n",
        )
        .expect("valid config");
        assert_eq!(
            cfg.list("lint", "skip_dirs").expect("list"),
            &["target".to_string(), "vendor".to_string()]
        );
        assert!(cfg.bool_or("lint", "strict", false));
        assert_eq!(cfg.str("d2", "note"), Some("wall, clock"));
        assert_eq!(cfg.list("d2", "allow_crates").expect("list"), &["bench".to_string()]);
    }

    #[test]
    fn empty_list_and_missing_keys() {
        let cfg = Config::parse("[u1]\nallow_paths = []\n").expect("valid");
        assert_eq!(cfg.list("u1", "allow_paths").expect("list"), &[] as &[String]);
        assert!(cfg.list("u1", "nope").is_none());
        assert!(cfg.bool_or("u1", "nope", true));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = Config::parse("[lint]\nbroken\n").expect_err("invalid");
        assert_eq!(e.line, 2);
        let e = Config::parse("key = [1, 2]\n").expect_err("invalid");
        assert_eq!(e.line, 1);
        let e = Config::parse("[oops\n").expect_err("invalid");
        assert!(e.to_string().contains("unterminated"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("k = \"a#b\"\n").expect("valid");
        assert_eq!(cfg.str("", "k"), Some("a#b"));
    }
}
