//! The `padlock-lint` CLI.
//!
//! ```text
//! padlock-lint [ROOT] [--audit] [--quiet]
//! padlock-lint --file PATH [--as REL_PATH]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage/config/IO error.
//! With no `ROOT`, the workspace root is found by searching upward from
//! the current directory for `lint.toml` — so `cargo run -p
//! padlock-lint` works from anywhere in the checkout (and is the CI
//! gate). `--file` lints one file; `--as` sets the workspace-relative
//! path the rules see (fixtures use it to pose as sim-crate sources).

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    file: Option<PathBuf>,
    lint_as: Option<String>,
    audit: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { root: None, file: None, lint_as: None, audit: false, quiet: false };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--audit" => args.audit = true,
            "--quiet" => args.quiet = true,
            "--file" => {
                let v = argv.next().ok_or("--file needs a path")?;
                args.file = Some(PathBuf::from(v));
            }
            "--as" => {
                let v = argv.next().ok_or("--as needs a workspace-relative path")?;
                args.lint_as = Some(v);
            }
            "--help" | "-h" => {
                println!(
                    "padlock-lint: workspace determinism & thread-safety analysis\n\n\
                     usage: padlock-lint [ROOT] [--audit] [--quiet]\n       \
                     padlock-lint --file PATH [--as REL_PATH]\n\n\
                     Rules (see lint.toml and the README's Static analysis section):\n  \
                     D1  no HashMap/HashSet iteration-order dependence in sim crates\n  \
                     D2  no wall clocks / ambient randomness outside bench+vendor\n  \
                     T1  unsafe / static mut / interior mutability needs `// lint: safety:`\n  \
                     C1  no lossy `as` narrowing of cycle/counter expressions\n  \
                     U1  no bare .unwrap() in library non-test code\n\n\
                     --audit     also print the justified-T1-site audit table\n\
                     --quiet     suppress the summary line (findings still print)\n\
                     --file P    lint one file instead of the workspace\n\
                     --as REL    workspace-relative path the rules should see for --file"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => {
                if args.root.replace(PathBuf::from(path)).is_some() {
                    return Err("at most one ROOT argument".to_string());
                }
            }
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.root.is_some() && args.file.is_some() {
        return Err("ROOT and --file are mutually exclusive".to_string());
    }
    if args.lint_as.is_some() && args.file.is_none() {
        return Err("--as only makes sense with --file".to_string());
    }

    if let Some(file) = &args.file {
        // Single-file mode: lint one source with the default rules, under
        // the identity `--as` gives it (fixtures pose as sim-crate code).
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        let rel = args
            .lint_as
            .clone()
            .unwrap_or_else(|| file.to_string_lossy().into_owned());
        let rules = padlock_lint::rules::Rules::default();
        let file_report = padlock_lint::rules::lint_source(&rules, &rel, &src);
        let report = padlock_lint::Report {
            findings: file_report.findings,
            audit: file_report.audit,
            files: 1,
        };
        return finish(&args, &report);
    }

    let root = match args.root.clone() {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            padlock_lint::find_root(&cwd)
                .ok_or("no lint.toml found here or in any parent directory")?
        }
    };
    let cfg = padlock_lint::load_config(&root)?;
    let report = padlock_lint::lint_workspace(&root, &cfg)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    finish(&args, &report)
}

fn finish(args: &Args, report: &padlock_lint::Report) -> Result<bool, String> {

    for f in &report.findings {
        println!("{f}");
    }
    if args.audit {
        print!("{}", report.audit_table());
    }
    if !args.quiet {
        println!(
            "padlock-lint: {} file(s), {} finding(s), {} justified T1 site(s)",
            report.files,
            report.findings.len(),
            report.audit.len()
        );
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("padlock-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
