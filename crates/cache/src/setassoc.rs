//! The set-associative cache timing model.

use crate::config::{CacheConfig, ReplacementPolicy};
use crate::stats::CacheStats;
use padlock_stats::CounterSet;

/// Whether an access reads or writes the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load (or instruction fetch).
    Read,
    /// A store; marks the line dirty.
    Write,
}

/// A line pushed out of the cache by an allocation or flush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted<T> {
    /// Line-aligned base address of the victim.
    pub addr: u64,
    /// Whether the victim was dirty (needs a writeback).
    pub dirty: bool,
    /// The per-line payload that was stored with the victim.
    pub payload: T,
}

/// Result of [`SetAssocCache::access`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome<T> {
    /// Whether the line was already present.
    pub hit: bool,
    /// The victim evicted to make room (misses only, and only when the
    /// target set was full).
    pub victim: Option<Evicted<T>>,
}

#[derive(Debug, Clone)]
struct Line<T> {
    /// Line-aligned base address (stores the whole address, not just the
    /// tag, so victims can be reported without reconstructing bits).
    addr: u64,
    valid: bool,
    dirty: bool,
    /// Recency stamp (LRU) or insertion stamp (FIFO).
    stamp: u64,
    payload: T,
}

/// Opaque undo state for one [`SetAssocCache::probe_mut_undoable`]: the
/// pre-probe recency clock and, on an LRU hit, the line's old stamp.
///
/// `probe_mut` ticks the clock unconditionally (hit or miss), so even a
/// missing probe needs its undo applied to restore the exact state.
#[derive(Debug, Clone, Copy)]
pub struct ProbeUndo {
    clock: u64,
    stamped: Option<(usize, usize, u64)>,
}

/// A set-associative, write-back, write-allocate cache with a per-line
/// payload.
///
/// `T` is arbitrary metadata carried with each line: `()` for the CPU
/// caches, the stored virtual address for the L2 (paper §4: the L2 keeps
/// each line's VA to index the SNC on writeback), or a sequence number
/// for a set-associative SNC.
///
/// # Examples
///
/// ```
/// use padlock_cache::{AccessKind, CacheConfig, SetAssocCache};
///
/// let mut c = SetAssocCache::<()>::new(CacheConfig::new("L1", 1024, 64, 2));
/// let miss = c.access(0x80, AccessKind::Write);
/// assert!(!miss.hit);
/// let hit = c.access(0x80, AccessKind::Read);
/// assert!(hit.hit);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<T> {
    config: CacheConfig,
    sets: Vec<Vec<Line<T>>>,
    clock: u64,
    rng_state: u64,
    stats: CacheStats,
}

impl<T: Default> SetAssocCache<T> {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = (0..config.num_sets()).map(|_| Vec::new()).collect();
        Self {
            config,
            sets,
            clock: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
            stats: CacheStats::default(),
        }
    }

    /// Accesses `addr`, allocating on miss with a default payload.
    ///
    /// Returns whether the access hit and, on miss, any victim that was
    /// evicted to make room.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessOutcome<T> {
        self.access_with(addr, kind, T::default)
    }
}

impl<T> SetAssocCache<T> {
    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics rendered as a counter set: `hits`,
    /// `misses`, `evictions`, `writebacks`. The hot path bumps the
    /// fixed-slot [`CacheStats`] fields; this snapshot is built on
    /// demand (see [`SetAssocCache::raw_stats`] for the fields).
    pub fn stats(&self) -> CounterSet {
        self.stats.to_counters(self.config.name())
    }

    /// The fixed-slot statistics fields themselves.
    pub fn raw_stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (e.g. after warm-up), keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// Accesses `addr`, allocating on miss with `make_payload`.
    pub fn access_with(
        &mut self,
        addr: u64,
        kind: AccessKind,
        make_payload: impl FnOnce() -> T,
    ) -> AccessOutcome<T> {
        let line_addr = self.config.line_addr(addr);
        let set_idx = self.config.set_index(addr);
        let stamp = self.tick();
        let update_on_hit = self.config.policy() == ReplacementPolicy::Lru;

        if let Some(line) = self.sets[set_idx]
            .iter_mut()
            .find(|l| l.valid && l.addr == line_addr)
        {
            if update_on_hit {
                line.stamp = stamp;
            }
            if kind == AccessKind::Write {
                line.dirty = true;
            }
            self.stats.hits += 1;
            return AccessOutcome {
                hit: true,
                victim: None,
            };
        }

        self.stats.misses += 1;
        let new_line = Line {
            addr: line_addr,
            valid: true,
            dirty: kind == AccessKind::Write,
            stamp,
            payload: make_payload(),
        };
        let victim = self.install(set_idx, new_line);
        AccessOutcome { hit: false, victim }
    }

    /// Installs a line into its set, returning any evicted victim.
    fn install(&mut self, set_idx: usize, line: Line<T>) -> Option<Evicted<T>> {
        let ways = self.config.ways();
        if self.sets[set_idx].len() < ways {
            self.sets[set_idx].push(line);
            return None;
        }
        let victim_idx = match self.config.policy() {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => self.sets[set_idx]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.stamp)
                .map(|(i, _)| i)
                .expect("set is full"),
            ReplacementPolicy::Random => (self.xorshift() % ways as u64) as usize,
        };
        let old = std::mem::replace(&mut self.sets[set_idx][victim_idx], line);
        self.stats.evictions += 1;
        if old.dirty {
            self.stats.writebacks += 1;
        }
        Some(Evicted {
            addr: old.addr,
            dirty: old.dirty,
            payload: old.payload,
        })
    }

    /// Looks up `addr` without allocating or disturbing recency.
    pub fn probe(&self, addr: u64) -> Option<&T> {
        let line_addr = self.config.line_addr(addr);
        let set_idx = self.config.set_index(addr);
        self.sets[set_idx]
            .iter()
            .find(|l| l.valid && l.addr == line_addr)
            .map(|l| &l.payload)
    }

    /// Mutable payload access without allocating; refreshes LRU recency.
    pub fn probe_mut(&mut self, addr: u64) -> Option<&mut T> {
        let line_addr = self.config.line_addr(addr);
        let set_idx = self.config.set_index(addr);
        let stamp = self.tick();
        let update = self.config.policy() == ReplacementPolicy::Lru;
        self.sets[set_idx]
            .iter_mut()
            .find(|l| l.valid && l.addr == line_addr)
            .map(|l| {
                if update {
                    l.stamp = stamp;
                }
                &mut l.payload
            })
    }

    /// Like [`SetAssocCache::probe_mut`], but also returns the opaque
    /// state [`SetAssocCache::undo_probe`] needs to reverse the probe's
    /// clock tick and recency refresh exactly — the speculative-issue
    /// path of the memory controller uses this to roll back an SNC
    /// query when its drain window turns out to be coupled.
    pub fn probe_mut_undoable(&mut self, addr: u64) -> (Option<&mut T>, ProbeUndo) {
        let clock = self.clock;
        let line_addr = self.config.line_addr(addr);
        let set_idx = self.config.set_index(addr);
        let stamped = if self.config.policy() == ReplacementPolicy::Lru {
            self.sets[set_idx]
                .iter()
                .position(|l| l.valid && l.addr == line_addr)
                .map(|way| (set_idx, way, self.sets[set_idx][way].stamp))
        } else {
            None
        };
        (self.probe_mut(addr), ProbeUndo { clock, stamped })
    }

    /// Reverses the matching [`SetAssocCache::probe_mut_undoable`],
    /// restoring the recency clock and any refreshed line stamp. Must
    /// be applied before any other mutating call — the undo records a
    /// way position, which a later install would invalidate.
    pub fn undo_probe(&mut self, undo: ProbeUndo) {
        self.clock = undo.clock;
        if let Some((set, way, stamp)) = undo.stamped {
            self.sets[set][way].stamp = stamp;
        }
    }

    /// Whether `addr`'s line is present.
    pub fn contains(&self, addr: u64) -> bool {
        self.probe(addr).is_some()
    }

    /// Whether `addr`'s line is present and dirty.
    pub fn is_dirty(&self, addr: u64) -> bool {
        let line_addr = self.config.line_addr(addr);
        let set_idx = self.config.set_index(addr);
        self.sets[set_idx]
            .iter()
            .any(|l| l.valid && l.addr == line_addr && l.dirty)
    }

    /// Inserts (or overwrites) a line with an explicit payload; returns the
    /// victim if the set overflowed.
    pub fn insert(&mut self, addr: u64, payload: T, dirty: bool) -> Option<Evicted<T>> {
        let line_addr = self.config.line_addr(addr);
        let set_idx = self.config.set_index(addr);
        let stamp = self.tick();
        if let Some(line) = self.sets[set_idx]
            .iter_mut()
            .find(|l| l.valid && l.addr == line_addr)
        {
            line.payload = payload;
            line.dirty |= dirty;
            line.stamp = stamp;
            return None;
        }
        let line = Line {
            addr: line_addr,
            valid: true,
            dirty,
            stamp,
            payload,
        };
        self.install(set_idx, line)
    }

    /// Removes `addr`'s line, returning its payload.
    pub fn remove(&mut self, addr: u64) -> Option<Evicted<T>> {
        let line_addr = self.config.line_addr(addr);
        let set_idx = self.config.set_index(addr);
        let pos = self.sets[set_idx]
            .iter()
            .position(|l| l.valid && l.addr == line_addr)?;
        let line = self.sets[set_idx].swap_remove(pos);
        Some(Evicted {
            addr: line.addr,
            dirty: line.dirty,
            payload: line.payload,
        })
    }

    /// Evicts everything, returning the victims in unspecified order
    /// (models the context-switch flush of the paper's §4.3).
    pub fn flush(&mut self) -> Vec<Evicted<T>> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for line in set.drain(..) {
                if line.dirty {
                    self.stats.writebacks += 1;
                }
                self.stats.evictions += 1;
                out.push(Evicted {
                    addr: line.addr,
                    dirty: line.dirty,
                    payload: line.payload,
                });
            }
        }
        out
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Number of valid lines resident in the set that `addr` maps to
    /// (used by the no-replacement SNC to test for a free way).
    pub fn set_occupancy(&self, addr: u64) -> usize {
        self.sets[self.config.set_index(addr)].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache<()> {
        // 2 sets x 2 ways x 64B lines = 256B.
        SetAssocCache::new(CacheConfig::new("t", 256, 64, 2))
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small();
        assert!(!c.access(0x100, AccessKind::Read).hit);
        assert!(c.access(0x100, AccessKind::Read).hit);
        assert_eq!(c.stats().get("hits"), 1);
        assert_eq!(c.stats().get("misses"), 1);
    }

    #[test]
    fn accesses_within_a_line_share_the_line() {
        let mut c = small();
        c.access(0x100, AccessKind::Read);
        assert!(c.access(0x13F, AccessKind::Read).hit);
        assert!(!c.access(0x140, AccessKind::Read).hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small(); // set stride 128: addrs 0x000,0x080 -> sets 0,1
        // Fill set 0 (two ways): line 0x000 and 0x100.
        c.access(0x000, AccessKind::Read);
        c.access(0x100, AccessKind::Read);
        // Touch 0x000 so 0x100 becomes LRU.
        c.access(0x000, AccessKind::Read);
        // Insert third line mapping to set 0: evicts 0x100.
        let out = c.access(0x200, AccessKind::Read);
        let victim = out.victim.expect("eviction expected");
        assert_eq!(victim.addr, 0x100);
        assert!(c.contains(0x000));
        assert!(!c.contains(0x100));
    }

    #[test]
    fn fifo_ignores_recency() {
        let cfg = CacheConfig::new("t", 256, 64, 2).with_policy(ReplacementPolicy::Fifo);
        let mut c = SetAssocCache::<()>::new(cfg);
        c.access(0x000, AccessKind::Read);
        c.access(0x100, AccessKind::Read);
        c.access(0x000, AccessKind::Read); // does not refresh under FIFO
        let out = c.access(0x200, AccessKind::Read);
        assert_eq!(out.victim.expect("eviction").addr, 0x000);
    }

    #[test]
    fn random_policy_evicts_something() {
        let cfg = CacheConfig::new("t", 256, 64, 2).with_policy(ReplacementPolicy::Random);
        let mut c = SetAssocCache::<()>::new(cfg);
        c.access(0x000, AccessKind::Read);
        c.access(0x100, AccessKind::Read);
        let out = c.access(0x200, AccessKind::Read);
        let v = out.victim.expect("eviction").addr;
        assert!(v == 0x000 || v == 0x100);
    }

    #[test]
    fn writes_mark_dirty_and_dirty_victims_report_writebacks() {
        let mut c = small();
        c.access(0x000, AccessKind::Write);
        c.access(0x100, AccessKind::Read);
        c.access(0x100, AccessKind::Read);
        let out = c.access(0x200, AccessKind::Read); // evicts 0x000 (LRU)
        let victim = out.victim.expect("eviction");
        assert_eq!(victim.addr, 0x000);
        assert!(victim.dirty);
        assert_eq!(c.stats().get("writebacks"), 1);
    }

    #[test]
    fn read_after_write_keeps_dirty_bit() {
        let mut c = small();
        c.access(0x000, AccessKind::Write);
        c.access(0x000, AccessKind::Read);
        assert!(c.is_dirty(0x000));
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = small();
        assert!(c.probe(0x300).is_none());
        assert_eq!(c.occupancy(), 0);
        c.access(0x300, AccessKind::Read);
        assert!(c.probe(0x300).is_some());
    }

    #[test]
    fn insert_and_remove_payloads() {
        let mut c: SetAssocCache<u16> = SetAssocCache::new(CacheConfig::new("snc", 256, 64, 2));
        assert!(c.insert(0x000, 7, true).is_none());
        assert_eq!(c.probe(0x000), Some(&7));
        *c.probe_mut(0x000).unwrap() = 9;
        let removed = c.remove(0x000).unwrap();
        assert_eq!(removed.payload, 9);
        assert!(removed.dirty);
        assert!(!c.contains(0x000));
    }

    #[test]
    fn insert_existing_overwrites_without_eviction() {
        let mut c: SetAssocCache<u16> = SetAssocCache::new(CacheConfig::new("snc", 256, 64, 2));
        c.insert(0x000, 1, false);
        assert!(c.insert(0x000, 2, false).is_none());
        assert_eq!(c.probe(0x000), Some(&2));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn flush_returns_all_lines_and_counts_writebacks() {
        let mut c = small();
        c.access(0x000, AccessKind::Write);
        c.access(0x080, AccessKind::Read);
        let victims = c.flush();
        assert_eq!(victims.len(), 2);
        assert_eq!(victims.iter().filter(|v| v.dirty).count(), 1);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn undo_probe_restores_clock_and_stamps() {
        // Two identical caches: one takes a probe+undo detour, then both
        // see the same access stream; eviction choices must agree.
        let mut probed = small();
        let mut clean = small();
        for c in [&mut probed, &mut clean] {
            c.access(0x000, AccessKind::Read);
            c.access(0x100, AccessKind::Read);
        }
        // Refresh the LRU line 0x000 speculatively, then roll it back.
        let (got, undo) = probed.probe_mut_undoable(0x000);
        assert!(got.is_some());
        probed.undo_probe(undo);
        // A probe miss still ticks the clock and must also roll back.
        let (got, undo) = probed.probe_mut_undoable(0x300);
        assert!(got.is_none());
        probed.undo_probe(undo);
        // Same next access: same victim (0x000 stayed LRU).
        let vp = probed.access(0x200, AccessKind::Read).victim.unwrap();
        let vc = clean.access(0x200, AccessKind::Read).victim.unwrap();
        assert_eq!(vp.addr, vc.addr);
        assert_eq!(vp.addr, 0x000);
    }

    #[test]
    fn stats_reset_keeps_contents() {
        let mut c = small();
        c.access(0x000, AccessKind::Read);
        c.reset_stats();
        assert_eq!(c.stats().get("misses"), 0);
        assert!(c.contains(0x000));
    }
}
