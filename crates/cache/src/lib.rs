//! Cache timing models for the `padlock` secure-processor simulator.
//!
//! Provides the set-associative cache used for L1I/L1D/L2 (and the 32-way
//! SNC of the paper's Fig. 7), a hash-map-backed fully associative LRU
//! cache (the paper's default SNC organisation), and the write buffer that
//! sits between L2 and memory (Fig. 2/4).
//!
//! These are *timing* models: they track presence, recency, and dirtiness
//! of line addresses plus an arbitrary per-line payload, not data contents
//! (functional data lives in `padlock-mem`).
//!
//! # Examples
//!
//! ```
//! use padlock_cache::{AccessKind, CacheConfig, SetAssocCache};
//!
//! let config = CacheConfig::new("L2", 256 * 1024, 128, 4);
//! let mut l2 = SetAssocCache::<()>::new(config);
//! assert!(!l2.access(0x4000, AccessKind::Read).hit);
//! assert!(l2.access(0x4000, AccessKind::Read).hit);
//! ```

#![warn(missing_docs)]

mod config;
mod fullassoc;
mod setassoc;
mod stats;
mod write_buffer;

pub use config::{CacheConfig, ReplacementPolicy};
pub use fullassoc::{FullAssocCache, TouchUndo};
pub use setassoc::{AccessKind, AccessOutcome, Evicted, ProbeUndo, SetAssocCache};
pub use stats::CacheStats;
pub use write_buffer::{WriteBuffer, WriteBufferEntry};
