//! Fixed-slot statistics shared by the cache timing models.

use padlock_stats::CounterSet;

/// Fixed-slot access statistics.
///
/// The cache hot paths bump plain `u64` fields — no name lookup and no
/// allocation per event; [`CacheStats::to_counters`] renders the
/// familiar `hits`/`misses`/`evictions`/`writebacks` [`CounterSet`]
/// view on demand (once per measurement, not once per access).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that found the line resident.
    pub hits: u64,
    /// Accesses that had to allocate.
    pub misses: u64,
    /// Lines pushed out to make room.
    pub evictions: u64,
    /// Evicted lines that were dirty (need a writeback).
    pub writebacks: u64,
}

impl CacheStats {
    /// Renders the fields as a named counter set.
    pub fn to_counters(self, prefix: &str) -> CounterSet {
        let mut set = CounterSet::new(prefix);
        set.add("hits", self.hits);
        set.add("misses", self.misses);
        set.add("evictions", self.evictions);
        set.add("writebacks", self.writebacks);
        set
    }

    /// Zeroes every field (e.g. after warm-up).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}
