//! The write buffer between L2 and memory.
//!
//! The paper (Figs. 2 and 4, §3.4) defers all stores through a write
//! buffer: evicted dirty L2 lines (and, with the SNC, evicted sequence
//! numbers) sit here while the crypto unit enciphers them, then drain to
//! memory on idle bus cycles. Writes are therefore off the critical path;
//! what remains observable is bus traffic and the rare full-buffer stall,
//! both of which this model captures.

use padlock_stats::CounterSet;
use std::collections::VecDeque;

/// One pending writeback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteBufferEntry {
    /// Line-aligned target address.
    pub addr: u64,
    /// Cycle at which the entry's data is ready to leave (encryption
    /// complete).
    pub ready_at: u64,
    /// Size of the transfer in bytes (a full line, or a sequence-number
    /// spill).
    pub bytes: u32,
}

/// Fixed-slot buffer event counters, bumped as plain fields on the
/// push/pop hot paths and rendered as a [`CounterSet`] on demand —
/// so cloning a buffer (the per-issue channel snapshot under
/// speculative window issue) never touches the heap for statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct WriteBufferStats {
    pushes: u64,
    drains: u64,
    full_stalls: u64,
}

/// A fixed-capacity FIFO write buffer.
///
/// # Examples
///
/// ```
/// use padlock_cache::WriteBuffer;
///
/// let mut wb = WriteBuffer::new(8);
/// assert!(wb.push(0x1000, /*ready_at=*/ 150, /*bytes=*/ 128));
/// // Nothing drains before the data is ready:
/// assert!(wb.pop_ready(100).is_none());
/// assert_eq!(wb.pop_ready(150).unwrap().addr, 0x1000);
/// ```
#[derive(Debug)]
pub struct WriteBuffer {
    capacity: usize,
    entries: VecDeque<WriteBufferEntry>,
    stats: WriteBufferStats,
}

impl Clone for WriteBuffer {
    fn clone(&self) -> Self {
        Self {
            capacity: self.capacity,
            entries: self.entries.clone(),
            stats: self.stats,
        }
    }

    // Hand-written so the per-issue channel snapshot under speculative
    // window issue reuses the destination's entry deque instead of
    // reallocating it (`derive` would fall back to clone-and-drop).
    fn clone_from(&mut self, source: &Self) {
        self.capacity = source.capacity;
        self.entries.clone_from(&source.entries);
        self.stats = source.stats;
    }
}

impl WriteBuffer {
    /// Creates a buffer holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer capacity must be positive");
        Self {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            stats: WriteBufferStats::default(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the buffer is full (a new writeback would stall).
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Statistics: `pushes`, `drains`, `full_stalls`. Built on demand
    /// from the fixed slots; only touched counters appear.
    pub fn stats(&self) -> CounterSet {
        let mut set = CounterSet::new("write_buffer");
        for (name, n) in [
            ("pushes", self.stats.pushes),
            ("drains", self.stats.drains),
            ("full_stalls", self.stats.full_stalls),
        ] {
            if n > 0 {
                set.add(name, n);
            }
        }
        set
    }

    /// Resets statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = WriteBufferStats::default();
    }

    /// Enqueues a writeback that becomes drainable at `ready_at`.
    ///
    /// Returns `false` (and counts a `full_stalls`) when the buffer is
    /// full; the caller models the stall and retries.
    pub fn push(&mut self, addr: u64, ready_at: u64, bytes: u32) -> bool {
        if self.is_full() {
            self.stats.full_stalls += 1;
            return false;
        }
        self.stats.pushes += 1;
        self.entries.push_back(WriteBufferEntry {
            addr,
            ready_at,
            bytes,
        });
        true
    }

    /// Pops the oldest entry whose data is ready by `now`, if the head
    /// entry qualifies (FIFO order is preserved; a not-ready head blocks
    /// younger ready entries, matching a simple hardware FIFO).
    pub fn pop_ready(&mut self, now: u64) -> Option<WriteBufferEntry> {
        if self.entries.front()?.ready_at <= now {
            self.stats.drains += 1;
            self.entries.pop_front()
        } else {
            None
        }
    }

    /// The earliest cycle at which the head entry becomes drainable.
    pub fn next_ready_at(&self) -> Option<u64> {
        self.entries.front().map(|e| e.ready_at)
    }

    /// Drains everything unconditionally (context-switch flush), returning
    /// entries in FIFO order.
    pub fn drain_all(&mut self) -> Vec<WriteBufferEntry> {
        let out: Vec<_> = self.entries.drain(..).collect();
        self.stats.drains += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut wb = WriteBuffer::new(4);
        wb.push(1, 0, 128);
        wb.push(2, 0, 128);
        assert_eq!(wb.pop_ready(0).unwrap().addr, 1);
        assert_eq!(wb.pop_ready(0).unwrap().addr, 2);
        assert!(wb.pop_ready(0).is_none());
    }

    #[test]
    fn entries_wait_for_encryption() {
        let mut wb = WriteBuffer::new(4);
        wb.push(1, 50, 128);
        assert!(wb.pop_ready(49).is_none());
        assert_eq!(wb.next_ready_at(), Some(50));
        assert!(wb.pop_ready(50).is_some());
    }

    #[test]
    fn head_of_line_blocking_models_hardware_fifo() {
        let mut wb = WriteBuffer::new(4);
        wb.push(1, 100, 128);
        wb.push(2, 0, 128);
        // Entry 2 is ready but behind entry 1.
        assert!(wb.pop_ready(50).is_none());
        assert_eq!(wb.pop_ready(100).unwrap().addr, 1);
        assert_eq!(wb.pop_ready(100).unwrap().addr, 2);
    }

    #[test]
    fn full_buffer_rejects_and_counts_stalls() {
        let mut wb = WriteBuffer::new(2);
        assert!(wb.push(1, 0, 128));
        assert!(wb.push(2, 0, 128));
        assert!(!wb.push(3, 0, 128));
        assert_eq!(wb.stats().get("full_stalls"), 1);
        assert_eq!(wb.len(), 2);
    }

    #[test]
    fn drain_all_empties_buffer() {
        let mut wb = WriteBuffer::new(4);
        wb.push(1, 10, 128);
        wb.push(2, 20, 64);
        let drained = wb.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(wb.is_empty());
        assert_eq!(wb.stats().get("drains"), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = WriteBuffer::new(0);
    }
}
