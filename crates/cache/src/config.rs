//! Cache geometry and policy configuration.

use std::fmt;

/// Replacement policy for a set-associative cache.
///
/// The paper uses LRU everywhere (and argues for it over no-replacement in
/// the SNC, §4.1); FIFO and Random exist for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least recently used (paper default).
    #[default]
    Lru,
    /// First in, first out.
    Fifo,
    /// Pseudo-random (xorshift; deterministic per cache instance).
    Random,
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Fifo => "FIFO",
            ReplacementPolicy::Random => "Random",
        })
    }
}

/// Geometry and policy of one cache.
///
/// # Examples
///
/// ```
/// use padlock_cache::CacheConfig;
///
/// // The paper's L2: 256KB, 4-way, 128-byte lines.
/// let l2 = CacheConfig::new("L2", 256 * 1024, 128, 4);
/// assert_eq!(l2.num_sets(), 512);
/// assert_eq!(l2.num_lines(), 2048);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    name: String,
    size_bytes: usize,
    line_bytes: usize,
    ways: usize,
    policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Creates a configuration with LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two, `size_bytes` is a
    /// multiple of `line_bytes * ways`, the resulting set count is a power
    /// of two, and `ways >= 1`.
    pub fn new(name: impl Into<String>, size_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        assert!(ways >= 1, "cache must have at least one way");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            size_bytes.is_multiple_of(line_bytes * ways),
            "size must divide evenly into sets"
        );
        let sets = size_bytes / (line_bytes * ways);
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two (got {sets})"
        );
        Self {
            name: name.into(),
            size_bytes,
            line_bytes,
            ways,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// Sets the replacement policy (builder style).
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The cache's name (used in stats output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }

    /// Total number of lines.
    pub fn num_lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    /// The line-aligned base address containing `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes as u64 - 1)
    }

    /// The set index for `addr`.
    pub fn set_index(&self, addr: u64) -> usize {
        ((addr / self.line_bytes as u64) % self.num_sets() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l2_geometry() {
        let l2 = CacheConfig::new("L2", 256 * 1024, 128, 4);
        assert_eq!(l2.num_sets(), 512);
        assert_eq!(l2.num_lines(), 2048);
        assert_eq!(l2.ways(), 4);
        assert_eq!(l2.policy(), ReplacementPolicy::Lru);
    }

    #[test]
    fn paper_l1_geometry() {
        let l1 = CacheConfig::new("L1D", 32 * 1024, 32, 4);
        assert_eq!(l1.num_sets(), 256);
    }

    #[test]
    fn line_addr_masks_offset_bits() {
        let c = CacheConfig::new("c", 1024, 64, 2);
        assert_eq!(c.line_addr(0x1234), 0x1200);
        assert_eq!(c.line_addr(0x1240), 0x1240);
    }

    #[test]
    fn set_index_wraps_modulo_sets() {
        let c = CacheConfig::new("c", 1024, 64, 2); // 8 sets
        assert_eq!(c.set_index(0), 0);
        assert_eq!(c.set_index(64), 1);
        assert_eq!(c.set_index(64 * 8), 0);
    }

    #[test]
    fn builder_sets_policy() {
        let c = CacheConfig::new("c", 1024, 64, 2).with_policy(ReplacementPolicy::Fifo);
        assert_eq!(c.policy(), ReplacementPolicy::Fifo);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_rejected() {
        let _ = CacheConfig::new("bad", 1024, 48, 2);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_rejected() {
        let _ = CacheConfig::new("bad", 1024, 64, 0);
    }

    #[test]
    fn policy_display() {
        assert_eq!(ReplacementPolicy::Lru.to_string(), "LRU");
        assert_eq!(ReplacementPolicy::Fifo.to_string(), "FIFO");
        assert_eq!(ReplacementPolicy::Random.to_string(), "Random");
    }
}
