//! A fully associative LRU cache with O(1) lookup/insert/evict.
//!
//! The paper's default SNC is fully associative (§4: "To remove conflict
//! misses as much as possible, a fully associative cache is desired").
//! With 32K entries a linear LRU scan would dominate simulation time, so
//! this implementation pairs an ordered key map with an intrusive doubly
//! linked list over a slab of nodes.

use crate::stats::CacheStats;
use padlock_stats::CounterSet;
use std::collections::BTreeMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<T> {
    key: u64,
    payload: T,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// An entry evicted from a [`FullAssocCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullAssocEvicted<T> {
    /// The evicted key (line address).
    pub addr: u64,
    /// Whether the entry was dirty.
    pub dirty: bool,
    /// The evicted payload.
    pub payload: T,
}

/// Opaque undo state for one [`FullAssocCache::get_undoable`]: the
/// pre-lookup statistics and, when the hit moved a node, where it sat.
#[derive(Debug, Clone, Copy)]
pub struct TouchUndo {
    stats: CacheStats,
    /// `(node, prev)` when the hit detached the node from behind `prev`;
    /// `None` when the lookup missed or the node was already the head
    /// (moving the head to the front is a positional no-op).
    moved: Option<(usize, usize)>,
}

/// A key-addressed, fixed-capacity, fully associative LRU cache.
///
/// Keys are line addresses (any `u64`); the caller performs line
/// alignment. Eviction returns the least recently used entry.
///
/// # Examples
///
/// ```
/// use padlock_cache::FullAssocCache;
///
/// let mut snc = FullAssocCache::new("SNC", 2);
/// snc.insert(0x000, 1u16, false);
/// snc.insert(0x080, 2u16, false);
/// snc.get(0x000); // refresh
/// let victim = snc.insert(0x100, 3u16, false).expect("capacity exceeded");
/// assert_eq!(victim.addr, 0x080);
/// ```
#[derive(Debug, Clone)]
pub struct FullAssocCache<T> {
    capacity: usize,
    // BTreeMap, not HashMap (padlock-lint D1): recency lives in the
    // intrusive list, so the map is only ever point-queried — but a
    // deterministic structure keeps every future iteration safe and
    // Debug output stable across runs.
    map: BTreeMap<u64, usize>,
    /// Slab of nodes; `None` marks a slot on the free list.
    nodes: Vec<Option<Node<T>>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    name: String,
    stats: CacheStats,
}

impl<T> FullAssocCache<T> {
    /// Creates an empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            map: BTreeMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            name: name.into(),
            stats: CacheStats::default(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether the cache is at capacity.
    pub fn is_full(&self) -> bool {
        self.map.len() == self.capacity
    }

    /// Accumulated statistics rendered as a counter set: `hits`,
    /// `misses`, `evictions`, `writebacks`. The hot path bumps the
    /// fixed-slot [`CacheStats`] fields; this snapshot is built on
    /// demand.
    pub fn stats(&self) -> CounterSet {
        self.stats.to_counters(&self.name)
    }

    /// The fixed-slot statistics fields themselves.
    pub fn raw_stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn node(&self, idx: usize) -> &Node<T> {
        self.nodes[idx].as_ref().expect("live node")
    }

    fn node_mut(&mut self, idx: usize) -> &mut Node<T> {
        self.nodes[idx].as_mut().expect("live node")
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = {
            let n = self.node(idx);
            (n.prev, n.next)
        };
        if prev != NIL {
            self.node_mut(prev).next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.node_mut(next).prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let n = self.node_mut(idx);
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.node_mut(old_head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, refreshing its recency. Counts a hit or miss.
    pub fn get(&mut self, key: u64) -> Option<&mut T> {
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.stats.hits += 1;
                self.detach(idx);
                self.push_front(idx);
                Some(&mut self.node_mut(idx).payload)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Like [`FullAssocCache::get`], but also returns the opaque state
    /// [`FullAssocCache::undo_touch`] needs to reverse the lookup's
    /// recency and statistics effects exactly — the speculative-issue
    /// path of the memory controller uses this to roll back an SNC
    /// query when its drain window turns out to be coupled.
    pub fn get_undoable(&mut self, key: u64) -> (Option<&mut T>, TouchUndo) {
        let stats = self.stats;
        let moved = self.map.get(&key).copied().and_then(|idx| {
            let prev = self.node(idx).prev;
            (prev != NIL).then_some((idx, prev))
        });
        (self.get(key), TouchUndo { stats, moved })
    }

    /// Reverses the matching [`FullAssocCache::get_undoable`], restoring
    /// the statistics and the recency order. Must be applied before any
    /// other mutating call — the undo records list positions, which a
    /// later insert or removal would invalidate.
    pub fn undo_touch(&mut self, undo: TouchUndo) {
        self.stats = undo.stats;
        if let Some((idx, prev)) = undo.moved {
            // The hit moved `idx` to the head; splice it back in behind
            // its old predecessor (still live: a get never evicts).
            self.detach(idx);
            let next = self.node(prev).next;
            {
                let n = self.node_mut(idx);
                n.prev = prev;
                n.next = next;
            }
            self.node_mut(prev).next = idx;
            if next != NIL {
                self.node_mut(next).prev = idx;
            } else {
                self.tail = idx;
            }
        }
    }

    /// Looks up `key` without touching recency or stats.
    pub fn peek(&self, key: u64) -> Option<&T> {
        self.map.get(&key).map(|&idx| &self.node(idx).payload)
    }

    /// Whether `key` is resident (no recency/stats side effects).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Marks `key` dirty if resident; returns whether it was found.
    pub fn mark_dirty(&mut self, key: u64) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.node_mut(idx).dirty = true;
            true
        } else {
            false
        }
    }

    /// Inserts or updates `key`, returning the evicted LRU entry when the
    /// cache was full and `key` was absent.
    pub fn insert(&mut self, key: u64, payload: T, dirty: bool) -> Option<FullAssocEvicted<T>> {
        if let Some(&idx) = self.map.get(&key) {
            let n = self.node_mut(idx);
            n.payload = payload;
            n.dirty |= dirty;
            self.detach(idx);
            self.push_front(idx);
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            evicted = self.evict_lru();
        }
        let node = Node {
            key,
            payload,
            dirty,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Some(node);
                i
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Evicts the least recently used entry, if any.
    pub fn evict_lru(&mut self) -> Option<FullAssocEvicted<T>> {
        if self.tail == NIL {
            return None;
        }
        let key = self.node(self.tail).key;
        self.remove(key)
    }

    /// Removes `key`, returning its entry.
    pub fn remove(&mut self, key: u64) -> Option<FullAssocEvicted<T>> {
        let idx = self.map.remove(&key)?;
        self.detach(idx);
        let node = self.nodes[idx].take().expect("live node");
        self.free.push(idx);
        self.stats.evictions += 1;
        if node.dirty {
            self.stats.writebacks += 1;
        }
        Some(FullAssocEvicted {
            addr: node.key,
            dirty: node.dirty,
            payload: node.payload,
        })
    }

    /// Evicts everything, returning entries in LRU-to-MRU order
    /// (models the context-switch SNC flush of the paper's §4.3).
    pub fn flush(&mut self) -> Vec<FullAssocEvicted<T>> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(entry) = self.evict_lru() {
            out.push(entry);
        }
        out
    }

    /// Iterates over `(key, payload)` pairs in MRU-to-LRU order.
    pub fn iter(&self) -> FullAssocIter<'_, T> {
        FullAssocIter {
            cache: self,
            cursor: self.head,
        }
    }
}

/// Iterator over a [`FullAssocCache`] in MRU-to-LRU order.
#[derive(Debug)]
pub struct FullAssocIter<'a, T> {
    cache: &'a FullAssocCache<T>,
    cursor: usize,
}

impl<'a, T> Iterator for FullAssocIter<'a, T> {
    type Item = (u64, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let node = self.cache.node(self.cursor);
        self.cursor = node.next;
        Some((node.key, &node.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get_hits() {
        let mut c = FullAssocCache::new("snc", 4);
        c.insert(1, "a", false);
        assert_eq!(c.get(1), Some(&mut "a"));
        assert_eq!(c.stats().get("hits"), 1);
        assert_eq!(c.get(2), None);
        assert_eq!(c.stats().get("misses"), 1);
    }

    #[test]
    fn lru_order_is_respected() {
        let mut c = FullAssocCache::new("snc", 3);
        c.insert(1, (), false);
        c.insert(2, (), false);
        c.insert(3, (), false);
        c.get(1); // order now (MRU) 1,3,2 (LRU)
        let v = c.insert(4, (), false).expect("eviction");
        assert_eq!(v.addr, 2);
        let v = c.insert(5, (), false).expect("eviction");
        assert_eq!(v.addr, 3);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c = FullAssocCache::new("snc", 2);
        c.insert(1, 10u32, false);
        c.insert(2, 20, false);
        assert!(c.insert(1, 11, false).is_none()); // update, refresh
        let v = c.insert(3, 30, false).expect("eviction");
        assert_eq!(v.addr, 2);
        assert_eq!(c.peek(1), Some(&11));
    }

    #[test]
    fn dirty_entries_report_writebacks() {
        let mut c = FullAssocCache::new("snc", 1);
        c.insert(1, (), true);
        let v = c.insert(2, (), false).expect("eviction");
        assert!(v.dirty);
        assert_eq!(c.stats().get("writebacks"), 1);
    }

    #[test]
    fn mark_dirty_after_insert() {
        let mut c = FullAssocCache::new("snc", 2);
        c.insert(1, (), false);
        assert!(c.mark_dirty(1));
        assert!(!c.mark_dirty(9));
        let v = c.remove(1).unwrap();
        assert!(v.dirty);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = FullAssocCache::new("snc", 8);
        for k in 0..100u64 {
            c.insert(k, k, false);
            assert!(c.len() <= 8);
        }
        assert!(c.is_full());
        // The survivors are the 8 most recent keys.
        for k in 92..100 {
            assert!(c.contains(k), "key {k}");
        }
    }

    #[test]
    fn remove_frees_slots_for_reuse() {
        let mut c = FullAssocCache::new("snc", 2);
        c.insert(1, "x", false);
        assert_eq!(c.remove(1).unwrap().payload, "x");
        assert!(c.is_empty());
        c.insert(2, "y", false);
        c.insert(3, "z", false);
        assert_eq!(c.len(), 2);
        assert!(c.remove(99).is_none());
    }

    #[test]
    fn flush_drains_in_lru_order() {
        let mut c = FullAssocCache::new("snc", 3);
        c.insert(1, (), false);
        c.insert(2, (), true);
        c.insert(3, (), false);
        c.get(1);
        let drained = c.flush();
        let keys: Vec<u64> = drained.iter().map(|e| e.addr).collect();
        assert_eq!(keys, vec![2, 3, 1]);
        assert!(c.is_empty());
    }

    #[test]
    fn iter_walks_mru_to_lru() {
        let mut c = FullAssocCache::new("snc", 3);
        c.insert(1, 'a', false);
        c.insert(2, 'b', false);
        c.insert(3, 'c', false);
        let keys: Vec<u64> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![3, 2, 1]);
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut c = FullAssocCache::new("snc", 2);
        c.insert(1, (), false);
        c.insert(2, (), false);
        c.peek(1);
        let v = c.insert(3, (), false).expect("eviction");
        assert_eq!(v.addr, 1, "peek must not refresh recency");
    }

    #[test]
    fn undo_touch_restores_recency_and_stats() {
        let mut c = FullAssocCache::new("snc", 4);
        for k in 1..=4u64 {
            c.insert(k, k, false);
        }
        // Order (MRU) 4,3,2,1 (LRU). Touch the LRU entry, then undo.
        let (got, undo) = c.get_undoable(1);
        assert_eq!(got, Some(&mut 1));
        c.undo_touch(undo);
        assert_eq!(c.stats().get("hits"), 0, "stats rolled back");
        let keys: Vec<u64> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![4, 3, 2, 1], "recency order rolled back");
        // Undoing a touch of a middle node splices it back in place.
        let (_, undo) = c.get_undoable(3);
        c.undo_touch(undo);
        let keys: Vec<u64> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![4, 3, 2, 1]);
        // Touching the head is a positional no-op either way.
        let (_, undo) = c.get_undoable(4);
        c.undo_touch(undo);
        let keys: Vec<u64> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![4, 3, 2, 1]);
        // A miss only needs its stats rolled back.
        let (got, undo) = c.get_undoable(9);
        assert!(got.is_none());
        c.undo_touch(undo);
        assert_eq!(c.stats().get("misses"), 0);
        // The next real insert still evicts the true LRU entry.
        let v = c.insert(5, 5, false).expect("full cache evicts");
        assert_eq!(v.addr, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _: FullAssocCache<()> = FullAssocCache::new("bad", 0);
    }

    #[test]
    fn stress_random_ops_maintain_invariants() {
        // Cross-check against a naive model: map + recency Vec.
        let mut c = FullAssocCache::new("snc", 16);
        let mut model: Vec<(u64, u32)> = Vec::new(); // MRU at end
        let mut state = 0x1234_5678u64;
        let mut rnd = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10_000 {
            let key = rnd() % 40;
            match rnd() % 3 {
                0 => {
                    let val = (rnd() % 1000) as u32;
                    let evicted = c.insert(key, val, false);
                    if let Some(pos) = model.iter().position(|(k, _)| *k == key) {
                        model.remove(pos);
                        assert!(evicted.is_none());
                    } else if model.len() == 16 {
                        let lru = model.remove(0);
                        assert_eq!(evicted.expect("model evicts").addr, lru.0);
                    } else {
                        assert!(evicted.is_none());
                    }
                    model.push((key, val));
                }
                1 => {
                    let got = c.get(key).map(|v| *v);
                    let expect = model.iter().position(|(k, _)| *k == key);
                    match (got, expect) {
                        (Some(v), Some(pos)) => {
                            assert_eq!(v, model[pos].1);
                            let e = model.remove(pos);
                            model.push(e);
                        }
                        (None, None) => {}
                        other => panic!("divergence: {other:?}"),
                    }
                }
                _ => {
                    let got = c.remove(key).map(|e| e.payload);
                    let expect = model.iter().position(|(k, _)| *k == key);
                    match (got, expect) {
                        (Some(v), Some(pos)) => {
                            assert_eq!(v, model[pos].1);
                            model.remove(pos);
                        }
                        (None, None) => {}
                        other => panic!("divergence: {other:?}"),
                    }
                }
            }
            assert_eq!(c.len(), model.len());
        }
    }
}
