//! Per-benchmark behavioural profiles.
//!
//! Every field is a *behavioural* parameter (instruction mix, working-set
//! geometry, locality structure) — the profiles contain no target
//! slowdowns or other results. Figures emerge from simulating these
//! streams through the cache hierarchy and controllers.

/// A benchmark's behavioural profile.
///
/// Address-stream components (all optional by weight):
///
/// * **hot** — a small, cache-friendly region (register-allocated
///   scalars, stack, hot tables);
/// * **stream** — sequential sweeps over a large array (array codes:
///   `art`, `equake`);
/// * **chase** — uniform random lines in a large region, optionally with
///   serialised dependences (pointer codes: `mcf`, `vpr`, `parser`);
/// * **drift** — a sliding window over a very large region, written at
///   the front and re-read while fresh (allocation-heavy codes: `gcc`,
///   `vortex`, `parser`). Under a no-replacement SNC the window's early
///   lines consume every slot and later lines get none — the behaviour
///   the paper observes for `gcc` (§5.1, conclusion 2).
#[derive(Debug, Clone)]
pub struct SpecProfile {
    /// Display name (the paper's row label).
    pub name: &'static str,
    /// Fraction of ops that are loads.
    pub load_frac: f64,
    /// Fraction of ops that are stores.
    pub store_frac: f64,
    /// Fraction of ops that are conditional branches.
    pub branch_frac: f64,
    /// Fraction of non-memory, non-branch ops that are floating point.
    pub fp_frac: f64,
    /// Hot-region size in bytes.
    pub hot_bytes: u64,
    /// Streaming-region size in bytes.
    pub stream_bytes: u64,
    /// Pointer-chase region size in bytes.
    pub chase_bytes: u64,
    /// Drift region size in bytes (total footprint).
    pub drift_region_bytes: u64,
    /// Drift window size in bytes (freshly-written, actively-reused part).
    pub drift_window_bytes: u64,
    /// Window advance rate: one line per this many drift writes.
    pub drift_advance_every: u32,
    /// Spacing between consecutive drift lines, in lines (1 = dense).
    /// Power-of-two strides concentrate the footprint in a subset of a
    /// set-associative SNC's sets, modelling `ammp`'s Fig. 7 behaviour.
    pub drift_line_stride: u64,
    /// Read mix weights over (hot, stream, chase, drift); need not be
    /// normalised.
    pub read_mix: [f64; 4],
    /// Write mix weights over (hot, stream, chase, drift).
    pub write_mix: [f64; 4],
    /// Fraction of drift *reads* that range over the *ancient heap*
    /// (long-dead allocations) instead of the fresh window; these are
    /// the accesses that miss even an LRU SNC.
    pub drift_cold_read_frac: f64,
    /// Lifetime dead-allocation footprint, in lines: how much memory the
    /// process wrote back before the measured window (the paper's 10B
    /// fast-forwarded instructions). Decides whether a no-replacement
    /// SNC is already full when measurement starts.
    pub ancient_lines: u64,
    /// Consecutive lines each chase stream walks before jumping to a
    /// fresh random base (`1` = the classic uniform-random single-line
    /// chase). Models adjacency/neighbour-list runs: a frontier pop
    /// lands at a random vertex, but its edge list is a short
    /// *sequential* run of lines.
    pub chase_run_lines: u64,
    /// Concurrently-walked chase streams, interleaved round-robin
    /// (`1` = one stream). With `chase_run_lines > 1` this is the
    /// number of neighbour lists in flight at once — interleaved
    /// sequential runs are the access pattern that punishes an
    /// arrival-order DRAM drain (each stream keeps reopening its row)
    /// and rewards FR-FCFS row grouping.
    pub chase_streams: usize,
    /// Whether chase loads form a serial dependence chain (no MLP).
    pub serial_chase: bool,
    /// Whether chase loads are data-independent of nearby ops —
    /// index-array / frontier style (BFS, hash probing), where the
    /// addresses were produced long before. Ignored when
    /// `serial_chase` is set; when both are false, chase loads depend
    /// on a producer a few ops back like every other load.
    pub independent_chase: bool,
    /// Instruction footprint in bytes.
    pub code_bytes: u64,
    /// Fraction of branch sites with effectively random outcomes.
    pub branch_flip_frac: f64,
    /// Deterministic seed for the generator.
    pub seed: u64,
}

impl SpecProfile {
    /// A compute-bound default every benchmark derives from.
    pub fn base(name: &'static str, seed: u64) -> Self {
        Self {
            name,
            load_frac: 0.24,
            store_frac: 0.10,
            branch_frac: 0.14,
            fp_frac: 0.0,
            hot_bytes: 64 << 10,
            stream_bytes: 0,
            chase_bytes: 0,
            drift_region_bytes: 0,
            drift_window_bytes: 0,
            drift_advance_every: 8,
            drift_line_stride: 1,
            read_mix: [1.0, 0.0, 0.0, 0.0],
            write_mix: [1.0, 0.0, 0.0, 0.0],
            drift_cold_read_frac: 0.0,
            ancient_lines: 2 * 1024,
            chase_run_lines: 1,
            chase_streams: 1,
            serial_chase: false,
            independent_chase: false,
            code_bytes: 16 << 10,
            branch_flip_frac: 0.05,
            seed,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when a mix references a component with zero size, or when
    /// fractions exceed 1.
    pub fn validate(&self) {
        assert!(
            self.load_frac + self.store_frac + self.branch_frac <= 1.0,
            "{}: op fractions exceed 1",
            self.name
        );
        let sized = [
            self.hot_bytes,
            self.stream_bytes,
            self.chase_bytes,
            self.drift_region_bytes,
        ];
        for (mix, what) in [(&self.read_mix, "read"), (&self.write_mix, "write")] {
            for (i, w) in mix.iter().enumerate() {
                assert!(
                    *w == 0.0 || sized[i] > 0,
                    "{}: {} mix references empty component {}",
                    self.name,
                    what,
                    i
                );
            }
            assert!(
                mix.iter().sum::<f64>() > 0.0,
                "{}: empty {} mix",
                self.name,
                what
            );
        }
        if self.drift_region_bytes > 0 {
            assert!(
                self.drift_window_bytes > 0 && self.drift_window_bytes <= self.drift_region_bytes,
                "{}: drift window must fit the region",
                self.name
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_profile_validates() {
        SpecProfile::base("x", 1).validate();
    }

    #[test]
    #[should_panic(expected = "references empty component")]
    fn mix_into_empty_component_panics() {
        let mut p = SpecProfile::base("x", 1);
        p.read_mix = [0.0, 1.0, 0.0, 0.0]; // stream weight but no stream
        p.validate();
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn overfull_mix_panics() {
        let mut p = SpecProfile::base("x", 1);
        p.load_frac = 0.9;
        p.store_frac = 0.2;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "window must fit")]
    fn oversized_drift_window_panics() {
        let mut p = SpecProfile::base("x", 1);
        p.drift_region_bytes = 1 << 20;
        p.drift_window_bytes = 2 << 20;
        p.validate();
    }
}
