//! Trace record and replay.
//!
//! A [`TraceRecorder`] tees the ops flowing out of any workload into a
//! buffer that can be saved to a compact binary file; a [`TracePlayer`]
//! replays a saved (or captured) trace as a workload. This supports
//! exactly-reproducible cross-configuration comparisons: every machine
//! sees the same dynamic stream, like trace-driven SimpleScalar runs.

use padlock_cpu::{MicroOp, OpClass, Workload};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"PTRC";

fn encode_op(op: &MicroOp, out: &mut Vec<u8>) {
    let (kind, addr, taken): (u8, u64, u8) = match op.class {
        OpClass::IntAlu => (0, 0, 0),
        OpClass::IntMul => (1, 0, 0),
        OpClass::FpAlu => (2, 0, 0),
        OpClass::FpMul => (3, 0, 0),
        OpClass::Load(a) => (4, a, 0),
        OpClass::Store(a) => (5, a, 0),
        OpClass::Branch { taken } => (6, 0, u8::from(taken)),
    };
    out.push(kind);
    out.push(taken);
    out.extend_from_slice(&op.pc.to_le_bytes());
    out.extend_from_slice(&addr.to_le_bytes());
    out.extend_from_slice(&op.dep1.to_le_bytes());
    out.extend_from_slice(&op.dep2.to_le_bytes());
}

fn decode_op(buf: &[u8]) -> MicroOp {
    let kind = buf[0];
    let taken = buf[1] != 0;
    let pc = u64::from_le_bytes(buf[2..10].try_into().expect("pc"));
    let addr = u64::from_le_bytes(buf[10..18].try_into().expect("addr"));
    let dep1 = u16::from_le_bytes(buf[18..20].try_into().expect("dep1"));
    let dep2 = u16::from_le_bytes(buf[20..22].try_into().expect("dep2"));
    let class = match kind {
        0 => OpClass::IntAlu,
        1 => OpClass::IntMul,
        2 => OpClass::FpAlu,
        3 => OpClass::FpMul,
        4 => OpClass::Load(addr),
        5 => OpClass::Store(addr),
        _ => OpClass::Branch { taken },
    };
    MicroOp::new(pc, class).with_deps(dep1, dep2)
}

const OP_BYTES: usize = 22;

/// Records the ops produced by an inner workload.
///
/// # Examples
///
/// ```
/// use padlock_cpu::{StrideWorkload, Workload};
/// use padlock_workloads::{TracePlayer, TraceRecorder};
///
/// let mut rec = TraceRecorder::new(StrideWorkload::new(4096, 64, 0.2));
/// for _ in 0..100 { rec.next_op(); }
/// let trace = rec.into_trace();
/// let mut replay = TracePlayer::new("replay", trace);
/// let _ = replay.next_op();
/// ```
#[derive(Debug)]
pub struct TraceRecorder<W> {
    inner: W,
    ops: Vec<MicroOp>,
}

impl<W: Workload> TraceRecorder<W> {
    /// Wraps `inner`, recording everything it produces.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            ops: Vec::new(),
        }
    }

    /// Ops recorded so far.
    pub fn recorded(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Consumes the recorder, returning the captured trace.
    pub fn into_trace(self) -> Vec<MicroOp> {
        self.ops
    }

    /// Serialises the captured trace to a writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save<Wr: Write>(&self, mut writer: Wr) -> io::Result<()> {
        writer.write_all(MAGIC)?;
        writer.write_all(&(self.ops.len() as u64).to_le_bytes())?;
        let mut buf = Vec::with_capacity(self.ops.len() * OP_BYTES);
        for op in &self.ops {
            encode_op(op, &mut buf);
        }
        writer.write_all(&buf)
    }
}

impl<W: Workload> Workload for TraceRecorder<W> {
    fn next_op(&mut self) -> MicroOp {
        let op = self.inner.next_op();
        self.ops.push(op);
        op
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Replays a captured trace, looping at the end.
#[derive(Debug, Clone)]
pub struct TracePlayer {
    name: String,
    ops: Vec<MicroOp>,
    cursor: usize,
}

impl TracePlayer {
    /// Creates a player over an in-memory trace.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace.
    pub fn new(name: impl Into<String>, ops: Vec<MicroOp>) -> Self {
        assert!(!ops.is_empty(), "trace must not be empty");
        Self {
            name: name.into(),
            ops,
            cursor: 0,
        }
    }

    /// Deserialises a trace from a reader.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for bad magic or truncated payloads, and
    /// propagates reader errors.
    pub fn load<R: Read>(name: impl Into<String>, mut reader: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a padlock trace (bad magic)",
            ));
        }
        let mut count_buf = [0u8; 8];
        reader.read_exact(&mut count_buf)?;
        let count = u64::from_le_bytes(count_buf) as usize;
        if count == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trace contains no ops",
            ));
        }
        let mut payload = vec![0u8; count * OP_BYTES];
        reader.read_exact(&mut payload)?;
        let ops = payload.chunks_exact(OP_BYTES).map(decode_op).collect();
        Ok(Self::new(name, ops))
    }

    /// Number of ops in one pass of the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl Workload for TracePlayer {
    fn next_op(&mut self) -> MicroOp {
        let op = self.ops[self.cursor];
        self.cursor = (self.cursor + 1) % self.ops.len();
        op
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{benchmark_profile, SpecWorkload};

    #[test]
    fn recorder_is_transparent() {
        let mut raw = SpecWorkload::new(benchmark_profile("gzip"));
        let mut rec = TraceRecorder::new(SpecWorkload::new(benchmark_profile("gzip")));
        for _ in 0..1000 {
            assert_eq!(raw.next_op(), rec.next_op());
        }
        assert_eq!(rec.recorded().len(), 1000);
        assert_eq!(rec.name(), "gzip");
    }

    #[test]
    fn save_load_roundtrip_preserves_every_op() {
        let mut rec = TraceRecorder::new(SpecWorkload::new(benchmark_profile("mcf")));
        for _ in 0..500 {
            rec.next_op();
        }
        let original = rec.recorded().to_vec();
        let mut bytes = Vec::new();
        rec.save(&mut bytes).unwrap();
        let mut player = TracePlayer::load("mcf-trace", &bytes[..]).unwrap();
        for op in &original {
            assert_eq!(player.next_op(), *op);
        }
    }

    #[test]
    fn player_loops_at_the_end() {
        let ops = vec![
            MicroOp::new(4, OpClass::IntAlu),
            MicroOp::new(8, OpClass::Load(0x40)),
        ];
        let mut p = TracePlayer::new("t", ops.clone());
        assert_eq!(p.next_op(), ops[0]);
        assert_eq!(p.next_op(), ops[1]);
        assert_eq!(p.next_op(), ops[0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = TracePlayer::load("x", &b"NOPE\x00\x00\x00\x00\x00\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let mut rec = TraceRecorder::new(SpecWorkload::new(benchmark_profile("art")));
        for _ in 0..10 {
            rec.next_op();
        }
        let mut bytes = Vec::new();
        rec.save(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 3);
        assert!(TracePlayer::load("x", &bytes[..]).is_err());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_trace_panics() {
        let _ = TracePlayer::new("x", Vec::new());
    }

    #[test]
    fn every_op_class_roundtrips() {
        let ops = vec![
            MicroOp::new(4, OpClass::IntAlu).with_deps(1, 2),
            MicroOp::new(8, OpClass::IntMul),
            MicroOp::new(12, OpClass::FpAlu),
            MicroOp::new(16, OpClass::FpMul),
            MicroOp::new(20, OpClass::Load(0xABCD)).with_deps(3, 0),
            MicroOp::new(24, OpClass::Store(0x1234)),
            MicroOp::new(28, OpClass::Branch { taken: true }),
            MicroOp::new(32, OpClass::Branch { taken: false }),
        ];
        let mut buf = Vec::new();
        for op in &ops {
            encode_op(op, &mut buf);
        }
        for (i, chunk) in buf.chunks_exact(OP_BYTES).enumerate() {
            assert_eq!(decode_op(chunk), ops[i]);
        }
    }
}
