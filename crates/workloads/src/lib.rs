//! Synthetic SPEC2000-like workloads for the `padlock` simulator.
//!
//! The paper evaluates on 11 SPEC CPU2000 benchmarks run under
//! SimpleScalar. Shipping (or running) SPEC is impossible here, so this
//! crate provides deterministic generators whose *memory behaviour* is
//! calibrated per benchmark: working-set sizes, streaming vs
//! pointer-chasing mixes, write footprints and their temporal locality,
//! code footprint, and branch predictability. The evaluation never
//! depends on program semantics — only on the dynamic address/dependence
//! stream — so matching those statistics exercises exactly the same
//! secure-memory controller paths (see DESIGN.md §3 for the substitution
//! argument).
//!
//! Each benchmark is a [`SpecWorkload`] built from a [`SpecProfile`];
//! [`spec2000_suite`] returns the paper's 11-benchmark lineup in its
//! figure order.
//!
//! # Examples
//!
//! ```
//! use padlock_workloads::{spec2000_suite, SpecWorkload};
//! use padlock_cpu::Workload;
//!
//! let mut suite = spec2000_suite();
//! assert_eq!(suite.len(), 11);
//! assert_eq!(suite[6].name(), "mcf");
//! let op = suite[6].next_op();
//! let _ = op.class;
//! ```

#![warn(missing_docs)]

mod profile;
mod spec;
mod trace;

pub use profile::SpecProfile;
pub use spec::{
    benchmark_profile, compartment_assignment, spec2000_suite, SpecWorkload, ANCIENT_BASE,
    BENCHMARK_NAMES, CHASE_BASE, CODE_BASE, DRIFT_BASE, HOT_BASE, STREAM_BASE, STRESS_NAMES,
};
pub use trace::{TracePlayer, TraceRecorder};

// Sweep workers each own a workload generator; keeping these `Send`
// (checked at compile time, per the T1 audit) is what lets the sweep
// executor hand a freshly built workload to any worker thread.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SpecProfile>();
    assert_send::<SpecWorkload>();
    assert_send::<TracePlayer>();
    assert_send::<TraceRecorder<SpecWorkload>>();
};
