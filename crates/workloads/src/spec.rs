//! The workload generator and the 11-benchmark SPEC2000-like suite.

use crate::profile::SpecProfile;
use padlock_cpu::{MicroOp, OpClass, Workload};

/// Base virtual address of the code segment.
pub const CODE_BASE: u64 = 0x0001_0000;
/// Base virtual address of the hot (cache-friendly) data region.
pub const HOT_BASE: u64 = 0x0100_0000;
/// Base virtual address of the streaming region.
pub const STREAM_BASE: u64 = 0x1000_0000;
/// Base virtual address of the pointer-chase region.
pub const CHASE_BASE: u64 = 0x2000_0000;
/// Base virtual address of the drifting-allocation region.
pub const DRIFT_BASE: u64 = 0x4000_0000;
/// Base virtual address of the *ancient heap*: memory the process wrote
/// long before the measured window (the paper fast-forwards 10 billion
/// instructions). Cold reads of long-dead allocations land here.
pub const ANCIENT_BASE: u64 = 0x7000_0000;
const LINE: u64 = 128;

/// Fast deterministic generator (xorshift64*).
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

/// A deterministic synthetic benchmark built from a [`SpecProfile`].
///
/// # Examples
///
/// ```
/// use padlock_workloads::{SpecProfile, SpecWorkload};
/// use padlock_cpu::Workload;
///
/// let mut w = SpecWorkload::new(SpecProfile::base("toy", 42));
/// assert_eq!(w.name(), "toy");
/// let _first = w.next_op();
/// ```
#[derive(Debug, Clone)]
pub struct SpecWorkload {
    profile: SpecProfile,
    rng: Rng,
    read_cdf: [f64; 4],
    write_cdf: [f64; 4],
    // program counter state
    pc: u64,
    code_window: u64,
    // stream state
    stream_cursor: u64,
    // drift state
    drift_window_base: u64, // frontier, in line units within the region
    drift_write_off: u64,   // byte offset of the bump pointer in its line
    drift_writes: u32,
    // chase-run state: per-stream (base line, lines consumed) of the
    // neighbour-list run currently being walked
    chase_runs: Vec<(u64, u64)>,
    chase_cursor: usize,
    // dependence state
    ops_since_chase_load: u16,
    op_index: u64,
}

impl SpecWorkload {
    /// Builds the workload, validating the profile.
    pub fn new(profile: SpecProfile) -> Self {
        profile.validate();
        let norm = |mix: &[f64; 4]| -> [f64; 4] {
            let total: f64 = mix.iter().sum();
            let mut acc = 0.0;
            let mut out = [0.0; 4];
            for i in 0..4 {
                acc += mix[i] / total;
                out[i] = acc;
            }
            out
        };
        let read_cdf = norm(&profile.read_mix);
        let write_cdf = norm(&profile.write_mix);
        let rng = Rng::new(profile.seed);
        let stride = profile.drift_line_stride.max(1);
        let initial_frontier = (profile.drift_window_bytes / LINE).max(1)
            % (profile.drift_region_bytes / LINE / stride).max(1);
        Self {
            profile,
            rng,
            read_cdf,
            write_cdf,
            pc: CODE_BASE,
            code_window: 0,
            stream_cursor: 0,
            drift_window_base: initial_frontier,
            drift_write_off: 0,
            drift_writes: 0,
            chase_runs: Vec::new(),
            chase_cursor: 0,
            ops_since_chase_load: 0,
            op_index: 0,
        }
    }

    /// The profile driving this workload.
    pub fn profile(&self) -> &SpecProfile {
        &self.profile
    }

    fn pick(cdf: &[f64; 4], u: f64) -> usize {
        cdf.iter().position(|&c| u < c).unwrap_or(3)
    }

    /// Hot accesses are tiered like real scalar/stack traffic: most go
    /// to an L1-resident core, some to an L2-resident middle, and a
    /// trickle ranges over the whole declared region.
    fn hot_addr(&mut self) -> u64 {
        let bytes = self.profile.hot_bytes;
        let u = self.rng.below(100);
        let span = if u < 80 {
            (bytes / 16).max(8)
        } else if u < 98 {
            (bytes / 2).max(8)
        } else {
            bytes
        };
        HOT_BASE + self.rng.below(span / 8) * 8
    }

    fn stream_addr(&mut self) -> u64 {
        self.stream_cursor = (self.stream_cursor + 8) % self.profile.stream_bytes.max(8);
        STREAM_BASE + self.stream_cursor
    }

    /// The chase region: uniform random lines when `chase_run_lines`
    /// is 1 (the classic pointer chase), otherwise `chase_streams`
    /// concurrently-walked neighbour-list runs — each stream walks
    /// `chase_run_lines` consecutive lines from a random base before
    /// popping the next (random) vertex, and successive chase loads
    /// rotate round-robin over the streams, interleaving the runs the
    /// way a BFS inner loop interleaves the frontier's edge lists.
    fn chase_addr(&mut self) -> u64 {
        let lines = (self.profile.chase_bytes / LINE).max(1);
        let run = self.profile.chase_run_lines.max(1);
        let streams = self.profile.chase_streams.max(1);
        if run == 1 && streams == 1 {
            return CHASE_BASE + self.rng.below(lines) * LINE + self.rng.below(16) * 8;
        }
        while self.chase_runs.len() < streams {
            let base = self.rng.below(lines);
            self.chase_runs.push((base, 0));
        }
        self.chase_cursor = (self.chase_cursor + 1) % streams;
        let (base, consumed) = &mut self.chase_runs[self.chase_cursor];
        if *consumed >= run {
            *base = self.rng.below(lines);
            *consumed = 0;
        }
        let line = (*base + *consumed) % lines;
        *consumed += 1;
        CHASE_BASE + line * LINE + self.rng.below(16) * 8
    }

    /// The drift region models an allocation front: writes fill memory
    /// sequentially at the frontier (8 bytes per `drift_advance_every`
    /// stores, i.e. each line absorbs `16 * drift_advance_every` stores
    /// before the frontier moves on, like a real allocator's bump
    /// pointer), and reads revisit the *trailing window* of recently
    /// written lines, plus an optional cold fraction over the whole
    /// region.
    fn drift_addr(&mut self, is_write: bool) -> u64 {
        let stride = self.profile.drift_line_stride.max(1);
        let region_slots = (self.profile.drift_region_bytes / LINE / stride).max(1);
        let window_slots = (self.profile.drift_window_bytes / LINE).max(1);
        let to_addr = |slot: u64, off: u64| DRIFT_BASE + slot * stride * LINE + off;
        if is_write {
            self.drift_writes += 1;
            let addr = to_addr(self.drift_window_base % region_slots, self.drift_write_off);
            if self.drift_writes >= self.profile.drift_advance_every {
                self.drift_writes = 0;
                self.drift_write_off += 8;
                if self.drift_write_off >= LINE {
                    self.drift_write_off = 0;
                    self.drift_window_base = (self.drift_window_base + 1) % region_slots;
                }
            }
            return addr;
        }
        if !is_write && self.rng.unit() < self.profile.drift_cold_read_frac {
            // A read of a long-dead allocation in the ancient heap.
            let lines = self.profile.ancient_lines.max(1);
            return ANCIENT_BASE + self.rng.below(lines) * LINE + self.rng.below(16) * 8;
        }
        let slot = {
            // Trailing window: the last `window_slots` written.
            let back = 1 + self.rng.below(window_slots);
            (self.drift_window_base + region_slots - back) % region_slots
        };
        to_addr(slot, self.rng.below(16) * 8)
    }

    /// Whether the drift region is *rewrite-style* (the window spans the
    /// whole region, as in `equake`'s in-place array updates) rather
    /// than *allocation-style* (a frontier over fresh memory).
    fn rewrite_style(&self) -> bool {
        self.profile.drift_region_bytes > 0
            && self.profile.drift_window_bytes == self.profile.drift_region_bytes
    }

    /// Lines of the ancient heap, oldest-allocated first.
    pub fn ancient_line_addrs(&self) -> impl Iterator<Item = u64> {
        (0..self.profile.ancient_lines).map(|l| ANCIENT_BASE + l * LINE)
    }

    /// Lines the process actively rewrites in place (empty for
    /// allocation-style benchmarks, whose frontier touches only fresh
    /// memory).
    pub fn active_line_addrs(&self) -> Box<dyn Iterator<Item = u64> + '_> {
        if self.rewrite_style() {
            let stride = self.profile.drift_line_stride.max(1);
            let region_slots = self.profile.drift_region_bytes / LINE / stride;
            Box::new((0..region_slots).map(move |slot| DRIFT_BASE + slot * stride * LINE))
        } else {
            Box::new(std::iter::empty())
        }
    }

    /// All pre-age feeds combined (ancient heap + actively rewritten
    /// region); prefer `padlock_core::SecureBackend::pre_age` with the
    /// two feeds separated so each SNC policy retains the right one.
    pub fn preage_line_addrs(&self) -> impl Iterator<Item = u64> + '_ {
        self.ancient_line_addrs().chain(self.active_line_addrs())
    }

    fn mem_addr(&mut self, is_write: bool) -> (u64, bool) {
        let cdf = if is_write {
            self.write_cdf
        } else {
            self.read_cdf
        };
        let u = self.rng.unit();
        match Self::pick(&cdf, u) {
            0 => (self.hot_addr(), false),
            1 => (self.stream_addr(), false),
            2 => (self.chase_addr(), true),
            _ => (self.drift_addr(is_write), false),
        }
    }

    fn advance_pc(&mut self, taken_jump: bool) -> u64 {
        let code = self.profile.code_bytes.max(64);
        if taken_jump {
            // Function-level locality: jumps stay inside a 4KB window,
            // occasionally (2%) moving to a new window.
            if self.rng.below(50) == 0 || self.code_window == 0 {
                self.code_window = self.rng.below(code.div_ceil(4096).max(1)) * 4096;
            }
            self.pc = CODE_BASE + self.code_window + self.rng.below(1024) * 4;
        } else {
            self.pc += 4;
            if self.pc >= CODE_BASE + code {
                self.pc = CODE_BASE;
            }
        }
        self.pc
    }

    /// Deterministic per-site hash in [0, 1).
    fn site_hash(pc: u64) -> f64 {
        let mut x = pc.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        x ^= x >> 33;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Workload for SpecWorkload {
    fn next_op(&mut self) -> MicroOp {
        self.op_index += 1;
        self.ops_since_chase_load = self.ops_since_chase_load.saturating_add(1);
        let u = self.rng.unit();
        let (load_frac, store_frac, branch_frac, fp_frac, serial, flip_frac) = (
            self.profile.load_frac,
            self.profile.store_frac,
            self.profile.branch_frac,
            self.profile.fp_frac,
            self.profile.serial_chase,
            self.profile.branch_flip_frac,
        );
        let pc = self.advance_pc(false);

        if u < load_frac {
            let (addr, is_chase) = self.mem_addr(false);
            let dep = if is_chase && serial {
                let d = self.ops_since_chase_load;
                self.ops_since_chase_load = 0;
                d
            } else if is_chase && self.profile.independent_chase {
                // Frontier/index-array traversal: the address came from
                // a queue filled long ago — no nearby producer.
                self.ops_since_chase_load = 0;
                0
            } else {
                if is_chase {
                    self.ops_since_chase_load = 0;
                }
                1 + (self.rng.below(3) as u16)
            };
            MicroOp::new(pc, OpClass::Load(addr)).with_deps(dep, 0)
        } else if u < load_frac + store_frac {
            let (addr, _) = self.mem_addr(true);
            MicroOp::new(pc, OpClass::Store(addr)).with_deps(1, 0)
        } else if u < load_frac + store_frac + branch_frac {
            // Branch site: a handful of sites per code window.
            let site = pc & !0xFF;
            let flip = Self::site_hash(site) < flip_frac;
            let taken = if flip {
                self.rng.below(2) == 0
            } else {
                // Heavily biased (predictable) branch.
                self.rng.unit() < 0.92
            };
            if taken {
                self.advance_pc(true);
            }
            MicroOp::new(pc, OpClass::Branch { taken }).with_deps(1, 0)
        } else {
            let fp = self.rng.unit() < fp_frac;
            let class = if fp {
                if self.rng.below(3) == 0 {
                    OpClass::FpMul
                } else {
                    OpClass::FpAlu
                }
            } else if self.rng.below(24) == 0 {
                OpClass::IntMul
            } else {
                OpClass::IntAlu
            };
            let dep1 = 1 + (self.rng.below(4) as u16);
            let dep2 = if self.rng.below(2) == 0 {
                2 + (self.rng.below(6) as u16)
            } else {
                0
            };
            MicroOp::new(pc, class).with_deps(dep1, dep2)
        }
    }

    fn name(&self) -> &str {
        self.profile.name
    }
}

/// The 11 benchmarks of the paper's figures, in figure order.
pub const BENCHMARK_NAMES: [&str; 11] = [
    "ammp", "art", "bzip2", "equake", "gcc", "gzip", "mcf", "mesa", "parser", "vortex", "vpr",
];

/// Profiles [`benchmark_profile`] knows beyond the 11 figure
/// benchmarks: stress workloads for the MLP and bank sweeps — `bfs`
/// (independent random reads, deep MLP for banks to overlap) and
/// `rstride` (a serial random-stride walk that row-conflicts on every
/// access).
pub const STRESS_NAMES: [&str; 2] = ["bfs", "rstride"];

/// Builds the full 11-benchmark suite in the paper's figure order.
///
/// The behavioural parameters are calibrated so the *baseline* miss
/// profile of each generator lands in the regime the paper's numbers
/// imply (memory-boundness ordering, written-working-set sizes relative
/// to SNC coverage, code footprints). See `DESIGN.md` §3.
pub fn spec2000_suite() -> Vec<SpecWorkload> {
    BENCHMARK_NAMES
        .iter()
        .map(|n| SpecWorkload::new(benchmark_profile(n)))
        .collect()
}

/// Assigns a workload generator to each compartment of an `cores`-core
/// secure server: round-robin over the figure-order benchmark suite
/// (compartment `c` runs the `c mod 11`-th profile), or — when `pinned`
/// names a benchmark — that one generator for every compartment, so a
/// contention sweep can isolate fabric effects from workload mix.
/// Generators are fresh (independent RNG state per compartment);
/// callers offset their addresses into the compartment's stripe.
pub fn compartment_assignment(cores: usize, pinned: Option<&str>) -> Vec<SpecWorkload> {
    (0..cores)
        .map(|c| {
            let name = pinned.unwrap_or(BENCHMARK_NAMES[c % BENCHMARK_NAMES.len()]);
            SpecWorkload::new(benchmark_profile(name))
        })
        .collect()
}

/// The calibrated profile for one named benchmark.
///
/// # Panics
///
/// Panics for names outside [`BENCHMARK_NAMES`].
pub fn benchmark_profile(name: &str) -> SpecProfile {
    let p = match name {
        // FP molecular dynamics: pointer-ish reads plus a written region just
        // above SNC coverage (associativity-sensitive, Fig. 7).
        "ammp" => SpecProfile {
            name: "ammp",
            load_frac: 0.26,
            store_frac: 0.09,
            branch_frac: 0.12,
            fp_frac: 0.3,
            hot_bytes: 80 << 10,
            stream_bytes: 0,
            chase_bytes: 4 << 20,
            drift_region_bytes: 32 << 20,
            drift_window_bytes: 1280 << 10,
            drift_advance_every: 2,
            drift_line_stride: 4,
            read_mix: [0.9705, 0.0, 0.023, 0.0065],
            write_mix: [0.55, 0.0, 0.0, 0.45],
            ancient_lines: 96 * 1024,
            drift_cold_read_frac: 0.25,
            chase_run_lines: 1,
            chase_streams: 1,
            serial_chase: false,
            independent_chase: false,
            code_bytes: 32 << 10,
            branch_flip_frac: 0.06,
            seed: 0xa301,
        },
        // FP image recognition: pure streaming over big read-only arrays,
        // tiny write set.
        "art" => SpecProfile {
            name: "art",
            load_frac: 0.32,
            store_frac: 0.06,
            branch_frac: 0.1,
            fp_frac: 0.35,
            hot_bytes: 64 << 10,
            stream_bytes: 8 << 20,
            chase_bytes: 0,
            drift_region_bytes: 0,
            drift_window_bytes: 0,
            drift_advance_every: 8,
            drift_line_stride: 1,
            read_mix: [0.02, 0.98, 0.0, 0.0],
            write_mix: [1.0, 0.0, 0.0, 0.0],
            ancient_lines: 2 * 1024,
            drift_cold_read_frac: 0.0,
            chase_run_lines: 1,
            chase_streams: 1,
            serial_chase: false,
            independent_chase: false,
            code_bytes: 16 << 10,
            branch_flip_frac: 0.03,
            seed: 0xa302,
        },
        // Compression: moderate streaming, written set well inside SNC
        // coverage.
        "bzip2" => SpecProfile {
            name: "bzip2",
            load_frac: 0.26,
            store_frac: 0.11,
            branch_frac: 0.13,
            fp_frac: 0.0,
            hot_bytes: 128 << 10,
            stream_bytes: 4 << 20,
            chase_bytes: 0,
            drift_region_bytes: 1792 << 10,
            drift_window_bytes: 1792 << 10,
            drift_advance_every: 1,
            drift_line_stride: 1,
            read_mix: [0.928, 0.06, 0.0, 0.012],
            write_mix: [0.5, 0.0, 0.0, 0.5],
            ancient_lines: 4 * 1024,
            drift_cold_read_frac: 0.1,
            chase_run_lines: 1,
            chase_streams: 1,
            serial_chase: false,
            independent_chase: false,
            code_bytes: 32 << 10,
            branch_flip_frac: 0.1,
            seed: 0xa303,
        },
        // FP earthquake simulation: streaming reads; ~3MB written set that a
        // 64KB SNC covers but a 32KB one thrashes (Fig. 6).
        "equake" => SpecProfile {
            name: "equake",
            load_frac: 0.28,
            store_frac: 0.1,
            branch_frac: 0.12,
            fp_frac: 0.35,
            hot_bytes: 64 << 10,
            stream_bytes: 8 << 20,
            chase_bytes: 0,
            drift_region_bytes: 2560 << 10,
            drift_window_bytes: 2560 << 10,
            drift_advance_every: 1,
            drift_line_stride: 1,
            read_mix: [0.9085, 0.085, 0.0, 0.0065],
            write_mix: [0.3, 0.0, 0.0, 0.7],
            ancient_lines: 4 * 1024,
            drift_cold_read_frac: 0.0,
            chase_run_lines: 1,
            chase_streams: 1,
            serial_chase: false,
            independent_chase: false,
            code_bytes: 32 << 10,
            branch_flip_frac: 0.04,
            seed: 0xa304,
        },
        // Compiler: a drifting allocation front over a huge footprint - early
        // lines hog a no-replacement SNC (the paper's gcc observation)
        // while LRU tracks the fresh window.
        "gcc" => SpecProfile {
            name: "gcc",
            load_frac: 0.25,
            store_frac: 0.13,
            branch_frac: 0.16,
            fp_frac: 0.0,
            hot_bytes: 160 << 10,
            stream_bytes: 0,
            chase_bytes: 0,
            drift_region_bytes: 24 << 20,
            drift_window_bytes: 512 << 10,
            drift_advance_every: 1,
            drift_line_stride: 1,
            read_mix: [0.973, 0.0, 0.0, 0.027],
            write_mix: [0.15, 0.0, 0.0, 0.85],
            ancient_lines: 96 * 1024,
            drift_cold_read_frac: 0.025,
            chase_run_lines: 1,
            chase_streams: 1,
            serial_chase: false,
            independent_chase: false,
            code_bytes: 64 << 10,
            branch_flip_frac: 0.12,
            seed: 0xa305,
        },
        // Compression with a small dictionary: nearly cache-resident.
        "gzip" => SpecProfile {
            name: "gzip",
            load_frac: 0.22,
            store_frac: 0.1,
            branch_frac: 0.14,
            fp_frac: 0.0,
            hot_bytes: 96 << 10,
            stream_bytes: 512 << 10,
            chase_bytes: 0,
            drift_region_bytes: 8 << 20,
            drift_window_bytes: 512 << 10,
            drift_advance_every: 4,
            drift_line_stride: 1,
            read_mix: [0.9915, 0.008, 0.0, 0.0005],
            write_mix: [0.65, 0.0, 0.0, 0.35],
            ancient_lines: 96 * 1024,
            drift_cold_read_frac: 0.15,
            chase_run_lines: 1,
            chase_streams: 1,
            serial_chase: false,
            independent_chase: false,
            code_bytes: 16 << 10,
            branch_flip_frac: 0.08,
            seed: 0xa306,
        },
        // Network-flow solver: serial pointer chasing over a huge read-mostly
        // graph plus writes far beyond SNC coverage.
        "mcf" => SpecProfile {
            name: "mcf",
            load_frac: 0.32,
            store_frac: 0.08,
            branch_frac: 0.15,
            fp_frac: 0.0,
            hot_bytes: 64 << 10,
            stream_bytes: 0,
            chase_bytes: 20 << 20,
            drift_region_bytes: 16 << 20,
            drift_window_bytes: 2 << 20,
            drift_advance_every: 2,
            drift_line_stride: 1,
            read_mix: [0.926, 0.0, 0.041, 0.033],
            write_mix: [0.2, 0.0, 0.0, 0.8],
            ancient_lines: 96 * 1024,
            drift_cold_read_frac: 0.1,
            chase_run_lines: 1,
            chase_streams: 1,
            serial_chase: true,
            independent_chase: false,
            code_bytes: 16 << 10,
            branch_flip_frac: 0.15,
            seed: 0xa307,
        },
        // FP graphics: compute-bound, cache-resident.
        "mesa" => SpecProfile {
            name: "mesa",
            load_frac: 0.2,
            store_frac: 0.09,
            branch_frac: 0.12,
            fp_frac: 0.4,
            hot_bytes: 200 << 10,
            stream_bytes: 0,
            chase_bytes: 0,
            drift_region_bytes: 0,
            drift_window_bytes: 0,
            drift_advance_every: 8,
            drift_line_stride: 1,
            read_mix: [1.0, 0.0, 0.0, 0.0],
            write_mix: [1.0, 0.0, 0.0, 0.0],
            ancient_lines: 2 * 1024,
            drift_cold_read_frac: 0.0,
            chase_run_lines: 1,
            chase_streams: 1,
            serial_chase: false,
            independent_chase: false,
            code_bytes: 32 << 10,
            branch_flip_frac: 0.04,
            seed: 0xa308,
        },
        // NLP parser: pointer chasing plus a drifting allocation front far
        // beyond SNC coverage.
        "parser" => SpecProfile {
            name: "parser",
            load_frac: 0.27,
            store_frac: 0.11,
            branch_frac: 0.16,
            fp_frac: 0.0,
            hot_bytes: 128 << 10,
            stream_bytes: 0,
            chase_bytes: 4 << 20,
            drift_region_bytes: 16 << 20,
            drift_window_bytes: 768 << 10,
            drift_advance_every: 1,
            drift_line_stride: 1,
            read_mix: [0.99, 0.0, 0.003, 0.007],
            write_mix: [0.3, 0.0, 0.0, 0.7],
            ancient_lines: 96 * 1024,
            drift_cold_read_frac: 0.02,
            chase_run_lines: 1,
            chase_streams: 1,
            serial_chase: false,
            independent_chase: false,
            code_bytes: 64 << 10,
            branch_flip_frac: 0.12,
            seed: 0xa309,
        },
        // OO database: big hot set (gains from the Fig. 8 larger L2), steady
        // writes over a drifting region, large code.
        "vortex" => SpecProfile {
            name: "vortex",
            load_frac: 0.26,
            store_frac: 0.13,
            branch_frac: 0.14,
            fp_frac: 0.0,
            hot_bytes: 144 << 10,
            stream_bytes: 0,
            chase_bytes: 0,
            drift_region_bytes: 16 << 20,
            drift_window_bytes: 320 << 10,
            drift_advance_every: 1,
            drift_line_stride: 1,
            read_mix: [0.994, 0.0, 0.0, 0.006],
            write_mix: [0.5, 0.0, 0.0, 0.5],
            ancient_lines: 96 * 1024,
            drift_cold_read_frac: 0.05,
            chase_run_lines: 1,
            chase_streams: 1,
            serial_chase: false,
            independent_chase: false,
            code_bytes: 64 << 10,
            branch_flip_frac: 0.08,
            seed: 0xa30a,
        },
        // FPGA place & route: random reads over a large netlist, tiny write
        // set.
        "vpr" => SpecProfile {
            name: "vpr",
            load_frac: 0.28,
            store_frac: 0.09,
            branch_frac: 0.14,
            fp_frac: 0.15,
            hot_bytes: 96 << 10,
            stream_bytes: 0,
            chase_bytes: 8 << 20,
            drift_region_bytes: 0,
            drift_window_bytes: 0,
            drift_advance_every: 8,
            drift_line_stride: 1,
            read_mix: [0.979, 0.0, 0.021, 0.0],
            write_mix: [1.0, 0.0, 0.0, 0.0],
            ancient_lines: 2 * 1024,
            drift_cold_read_frac: 0.0,
            chase_run_lines: 1,
            chase_streams: 1,
            serial_chase: false,
            independent_chase: false,
            code_bytes: 32 << 10,
            branch_flip_frac: 0.1,
            seed: 0xa30b,
        },
        // Graph traversal (breadth-first over a large out-of-core
        // adjacency structure): dense *independent* reads — frontier
        // vertices were queued long before their neighbour lists are
        // fetched — plus a store front writing visit marks. Each
        // frontier pop lands at a random vertex whose *edge list* is a
        // sequential run of lines, and several lists are walked
        // concurrently (interleaved streams): the access shape that
        // keeps reopening DRAM rows under an arrival-order drain and
        // that FR-FCFS row grouping converts back into open-row hits.
        // Not one of the paper's 11 figure benchmarks; this is the
        // memory-level-parallelism stress workload the `repro --mlp`
        // end-to-end sweep records its trace from.
        "bfs" => SpecProfile {
            name: "bfs",
            load_frac: 0.44,
            store_frac: 0.12,
            branch_frac: 0.12,
            fp_frac: 0.0,
            hot_bytes: 48 << 10,
            stream_bytes: 0,
            chase_bytes: 32 << 20,
            drift_region_bytes: 16 << 20,
            drift_window_bytes: 1 << 20,
            drift_advance_every: 1,
            drift_line_stride: 1,
            read_mix: [0.17, 0.0, 0.73, 0.1],
            write_mix: [0.2, 0.0, 0.0, 0.8],
            ancient_lines: 96 * 1024,
            drift_cold_read_frac: 0.3,
            chase_run_lines: 16,
            chase_streams: 2,
            serial_chase: false,
            independent_chase: true,
            code_bytes: 16 << 10,
            branch_flip_frac: 0.08,
            seed: 0xa30c,
        },
        // Random-stride pointer walk: every chase load's target comes
        // out of the previous load (serial dependence chain), and
        // consecutive targets land in uniformly random lines of a
        // 32MB region — the adversarial traffic for a row-buffer
        // memory. There is no memory-level parallelism for banks to
        // overlap and essentially no open-row reuse, so on a banked
        // fabric every DRAM access pays the precharge + activate
        // conflict path: the row-conflict-bound counterpart to `bfs`'s
        // bank-parallel independent chase.
        "rstride" => SpecProfile {
            name: "rstride",
            load_frac: 0.40,
            store_frac: 0.06,
            branch_frac: 0.10,
            fp_frac: 0.0,
            hot_bytes: 32 << 10,
            stream_bytes: 0,
            chase_bytes: 32 << 20,
            drift_region_bytes: 0,
            drift_window_bytes: 0,
            drift_advance_every: 8,
            drift_line_stride: 1,
            read_mix: [0.15, 0.0, 0.85, 0.0],
            write_mix: [1.0, 0.0, 0.0, 0.0],
            ancient_lines: 96 * 1024,
            drift_cold_read_frac: 0.0,
            chase_run_lines: 1,
            chase_streams: 1,
            serial_chase: true,
            independent_chase: false,
            code_bytes: 8 << 10,
            branch_flip_frac: 0.05,
            seed: 0x57f1,
        },
        other => panic!("unknown benchmark {other:?}"),
    };
    p.validate();
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_papers_eleven_benchmarks() {
        let suite = spec2000_suite();
        let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(names, BENCHMARK_NAMES.to_vec());
    }

    #[test]
    fn compartment_assignment_round_robins_and_pins() {
        let mixed = compartment_assignment(13, None);
        let names: Vec<&str> = mixed.iter().map(|w| w.name()).collect();
        assert_eq!(names[0], "ammp");
        assert_eq!(names[10], "vpr");
        assert_eq!(names[11], "ammp", "the 12th compartment wraps around");
        let pinned = compartment_assignment(3, Some("bfs"));
        assert!(pinned.iter().all(|w| w.name() == "bfs"));
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = SpecWorkload::new(benchmark_profile("mcf"));
        let mut b = SpecWorkload::new(benchmark_profile("mcf"));
        for _ in 0..10_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SpecWorkload::new(benchmark_profile("gcc"));
        let mut b = SpecWorkload::new(benchmark_profile("vpr"));
        let same = (0..1000).filter(|_| a.next_op() == b.next_op()).count();
        assert!(same < 100);
    }

    #[test]
    fn instruction_mix_matches_profile() {
        let profile = benchmark_profile("bzip2");
        let (lf, sf, bf) = (profile.load_frac, profile.store_frac, profile.branch_frac);
        let mut w = SpecWorkload::new(profile);
        let n = 200_000;
        let mut loads = 0.0;
        let mut stores = 0.0;
        let mut branches = 0.0;
        for _ in 0..n {
            match w.next_op().class {
                OpClass::Load(_) => loads += 1.0,
                OpClass::Store(_) => stores += 1.0,
                OpClass::Branch { .. } => branches += 1.0,
                _ => {}
            }
        }
        let n = n as f64;
        assert!((loads / n - lf).abs() < 0.01, "loads {}", loads / n);
        assert!((stores / n - sf).abs() < 0.01, "stores {}", stores / n);
        assert!(
            (branches / n - bf).abs() < 0.01,
            "branches {}",
            branches / n
        );
    }

    #[test]
    fn chase_runs_walk_consecutive_lines_per_stream() {
        // bfs walks neighbour lists: per stream, chase lines advance by
        // exactly one line `chase_run_lines` times before jumping to a
        // fresh random base, and successive chase loads alternate over
        // `chase_streams` interleaved lists.
        let profile = benchmark_profile("bfs");
        let (run, streams) = (profile.chase_run_lines, profile.chase_streams);
        assert!(run > 1 && streams > 1, "bfs should walk interleaved runs");
        let mut w = SpecWorkload::new(profile);
        let mut chase_lines = Vec::new();
        for _ in 0..200_000u64 {
            if let OpClass::Load(addr) = w.next_op().class {
                if (CHASE_BASE..DRIFT_BASE).contains(&addr) {
                    chase_lines.push((addr - CHASE_BASE) / 128);
                }
            }
        }
        assert!(chase_lines.len() > 10_000);
        // De-interleave by stream and count single-line advances.
        let mut sequential = 0usize;
        let mut total = 0usize;
        for s in 0..streams {
            let stream: Vec<u64> = chase_lines
                .iter()
                .skip(s)
                .step_by(streams)
                .copied()
                .collect();
            for pair in stream.windows(2) {
                total += 1;
                if pair[1] == pair[0] + 1 {
                    sequential += 1;
                }
            }
        }
        // Each run contributes run-1 sequential steps and one jump.
        let expect = (run - 1) as f64 / run as f64;
        let got = sequential as f64 / total as f64;
        assert!(
            (got - expect).abs() < 0.03,
            "sequential fraction {got:.3}, expected ~{expect:.3}"
        );
        // The de-interleaving above only lines up if chase loads really
        // rotate streams round-robin; a shuffled assignment would make
        // almost no pair sequential.
        assert!(got > 0.5);
    }

    #[test]
    fn single_stream_profiles_keep_the_uniform_random_chase() {
        // rstride (and every figure benchmark) declares run = stream =
        // 1 and must keep the classic uniform-random chase: almost no
        // consecutive-line pairs.
        let mut w = SpecWorkload::new(benchmark_profile("rstride"));
        let mut chase_lines = Vec::new();
        for _ in 0..100_000u64 {
            if let OpClass::Load(addr) = w.next_op().class {
                if (CHASE_BASE..DRIFT_BASE).contains(&addr) {
                    chase_lines.push((addr - CHASE_BASE) / 128);
                }
            }
        }
        let sequential = chase_lines
            .windows(2)
            .filter(|p| p[1] == p[0] + 1)
            .count();
        assert!(
            (sequential as f64) < chase_lines.len() as f64 * 0.01,
            "{sequential} of {} pairs sequential",
            chase_lines.len()
        );
    }

    #[test]
    fn serial_chase_builds_dependence_chains() {
        let mut w = SpecWorkload::new(benchmark_profile("mcf"));
        let mut chase_deps = Vec::new();
        let mut last_chase_at: Option<u64> = None;
        for i in 0..50_000u64 {
            let op = w.next_op();
            if let OpClass::Load(addr) = op.class {
                if (CHASE_BASE..DRIFT_BASE).contains(&addr) {
                    if let Some(prev) = last_chase_at {
                        // The dependence distance should point at (or
                        // before) the previous chase load.
                        chase_deps.push((i - prev, u64::from(op.dep1)));
                    }
                    last_chase_at = Some(i);
                }
            }
        }
        assert!(!chase_deps.is_empty());
        let matching = chase_deps.iter().filter(|(gap, dep)| dep == gap).count();
        assert!(
            matching as f64 / chase_deps.len() as f64 > 0.9,
            "{matching}/{}",
            chase_deps.len()
        );
    }

    #[test]
    fn streams_sweep_sequentially() {
        let mut w = SpecWorkload::new(benchmark_profile("art"));
        let mut prev: Option<u64> = None;
        let mut deltas = Vec::new();
        for _ in 0..20_000 {
            if let OpClass::Load(addr) = w.next_op().class {
                if (STREAM_BASE..CHASE_BASE).contains(&addr) {
                    if let Some(p) = prev {
                        deltas.push(addr.wrapping_sub(p));
                    }
                    prev = Some(addr);
                }
            }
        }
        let sequential = deltas.iter().filter(|&&d| d == 8).count();
        assert!(
            sequential as f64 / deltas.len() as f64 > 0.95,
            "{sequential}/{}",
            deltas.len()
        );
    }

    #[test]
    fn drift_writes_advance_through_the_region() {
        let mut w = SpecWorkload::new(benchmark_profile("gcc"));
        let mut first_lines = std::collections::HashSet::new();
        let mut later_lines = std::collections::HashSet::new();
        for i in 0..600_000u64 {
            if let OpClass::Store(addr) = w.next_op().class {
                if addr >= DRIFT_BASE {
                    let line = (addr - DRIFT_BASE) / LINE;
                    if i < 200_000 {
                        first_lines.insert(line);
                    } else if i >= 400_000 {
                        later_lines.insert(line);
                    }
                }
            }
        }
        // The window slides: later writes touch lines the early phase
        // never wrote.
        let fresh = later_lines.difference(&first_lines).count();
        assert!(
            fresh as f64 / later_lines.len() as f64 > 0.2,
            "fresh {fresh}/{}",
            later_lines.len()
        );
    }

    #[test]
    fn code_footprint_bounds_program_counters() {
        let profile = benchmark_profile("gcc");
        let code = profile.code_bytes;
        let mut w = SpecWorkload::new(profile);
        for _ in 0..100_000 {
            let op = w.next_op();
            assert!(op.pc >= CODE_BASE && op.pc < CODE_BASE + code + 4096);
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = benchmark_profile("quake3");
    }
}
