//! Properties of the work-stealing sweep executor.
//!
//! The load-bearing claim behind every byte-identical parallel sweep:
//! whatever the worker count and however adversarially the per-point
//! runtimes are skewed, [`SweepPool::sweep`] returns exactly one result
//! per submitted point, in submission order, and runs each point
//! exactly once.

use padlock_exec::SweepPool;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Results come back in submission order with nothing lost or
    /// duplicated, even when point runtimes are skewed so stealing
    /// rebalances mid-sweep and workers finish out of order.
    #[test]
    fn sweep_preserves_submission_order_and_loses_nothing(
        delays_us in proptest::collection::vec(0u64..400, 0..64),
        jobs in prop::sample::select(vec![1usize, 2, 3, 8]),
    ) {
        let pool = SweepPool::new(jobs);
        let runs = AtomicUsize::new(0);
        let points: Vec<(usize, u64)> = delays_us.iter().copied().enumerate().collect();
        let results = pool.sweep(&points, |&(i, delay_us)| {
            runs.fetch_add(1, Ordering::Relaxed);
            if delay_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
            }
            i * 10 + 7
        });
        prop_assert_eq!(runs.load(Ordering::Relaxed), points.len(), "each point runs exactly once");
        prop_assert_eq!(results.len(), points.len());
        for (i, r) in results.into_iter().enumerate() {
            prop_assert_eq!(r, i * 10 + 7, "slot {} out of submission order", i);
        }
    }

    /// The executor is a deterministic function of its inputs: two
    /// sweeps of the same points agree element-wise regardless of the
    /// (different) worker counts that produced them.
    #[test]
    fn sweeps_at_different_widths_agree(
        values in proptest::collection::vec(any::<u32>(), 0..128),
        jobs in prop::sample::select(vec![2usize, 4, 7]),
    ) {
        let serial = SweepPool::serial().sweep(&values, |&v| u64::from(v) * 3 + 1);
        let pooled = SweepPool::new(jobs).sweep(&values, |&v| u64::from(v) * 3 + 1);
        prop_assert_eq!(serial, pooled);
    }
}
