//! `padlock_exec` — a work-stealing sweep executor for embarrassingly
//! parallel grids of independent simulations.
//!
//! Every sweep in this workspace (`repro --mlp` grids, `channel_sweep`,
//! figure regeneration, baseline capture) is a list of independent
//! `Machine` runs: each grid point is a pure function of its config, a
//! property enforced lexically by `padlock-lint` (rules D1/D2/T1).
//! That purity is what makes the fan-out here sound *and* lets the
//! parallel path promise byte-identical output: points execute in any
//! order across workers, but results are reassembled in submission
//! order, so every table and JSON line downstream is independent of
//! `--jobs`.
//!
//! The pool is a dependency-free shim over `std::thread` (the build
//! environment is offline, in the same spirit as `vendor/rand`):
//! per-worker deques seeded with contiguous index blocks, idle workers
//! stealing the back half of a victim's deque.
//!
//! ```
//! use padlock_exec::SweepPool;
//!
//! let pool = SweepPool::new(4);
//! let points: Vec<u64> = (0..100).collect();
//! let squares = pool.sweep(&points, |p| p * p);
//! assert_eq!(squares[7], 49); // submission order, regardless of jobs
//! ```

#![warn(missing_docs)]

mod pool;

pub use pool::SweepPool;
