//! The work-stealing pool: per-worker index deques, steal-half victims,
//! and a submission-order result buffer.
//!
//! Concurrency design, in full, because `padlock-lint --audit` points
//! here:
//!
//! * Work items are *indices* into the caller's point slice. Each index
//!   lives in exactly one deque at a time; removal (own pop or steal)
//!   happens under that deque's mutex, so every index is claimed by
//!   exactly one worker.
//! * Thieves move the back half of a victim's deque into their *own*
//!   deque. A worker therefore only ever exits once its own deque is
//!   empty and a full victim scan found nothing — and since only the
//!   owner pushes into a deque, an exited worker's deque stays empty.
//!   Together: when the scope joins, every index was claimed, and every
//!   claimed index has run.
//! * Results land in [`Slots`], a fixed-size buffer indexed by
//!   submission order. Writes are disjoint by construction (one claim
//!   per index), and reads happen only after the thread scope joins,
//!   so the buffer needs no per-cell locking.

// lint: safety: interior mutability confined to Slots below; disjoint-index writes, reads after join
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::thread;

/// A fixed-width pool that fans a slice of grid points across up to
/// `jobs` worker threads and returns results in submission order.
///
/// `jobs = 1` (or a single point) short-circuits to a plain serial
/// loop on the calling thread — the bit-exact escape hatch, though the
/// parallel path produces byte-identical results anyway.
#[derive(Debug, Clone)]
pub struct SweepPool {
    jobs: usize,
}

impl SweepPool {
    /// A pool running at most `jobs` workers per sweep (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// The serial pool: `jobs = 1`, every sweep runs inline.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Resolves the job count from the environment: `PADLOCK_JOBS` if
    /// set to a positive integer, else the host's available
    /// parallelism, else 1.
    pub fn from_env() -> Self {
        let jobs = std::env::var("PADLOCK_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&j| j >= 1)
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()));
        Self::new(jobs)
    }

    /// The configured worker ceiling.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `run` over every point and returns the results **in
    /// submission order** (`result[i]` corresponds to `points[i]`),
    /// regardless of which worker executed which point or in what
    /// order. Spawns `min(jobs, points.len())` scoped workers; panics
    /// in `run` propagate to the caller.
    pub fn sweep<P, R, F>(&self, points: &[P], run: F) -> Vec<R>
    where
        P: Sync,
        R: Send,
        F: Fn(&P) -> R + Sync,
    {
        let workers = self.jobs.min(points.len());
        if workers <= 1 {
            return points.iter().map(run).collect();
        }

        let deques: Vec<Mutex<VecDeque<usize>>> =
            seed_blocks(points.len(), workers).into_iter().map(Mutex::new).collect();
        let slots = Slots::new(points.len());

        thread::scope(|scope| {
            for id in 0..workers {
                let deques = &deques;
                let slots = &slots;
                let run = &run;
                scope.spawn(move || {
                    while let Some(idx) = claim(deques, id) {
                        // lint: safety: idx was claimed under a deque mutex by exactly this worker, so this write is the sole access to cell idx until the scope joins
                        unsafe { slots.put(idx, run(&points[idx])) };
                    }
                });
            }
        });

        slots.into_results()
    }
}

/// Contiguous index blocks seeding each worker's deque: worker `i`
/// starts with `points[start_i .. start_i + len_i]`, sized within one
/// of each other. Contiguity keeps the common no-steal case touching
/// each point slice region from a single thread.
fn seed_blocks(n: usize, workers: usize) -> Vec<VecDeque<usize>> {
    let base = n / workers;
    let extra = n % workers;
    let mut blocks = Vec::with_capacity(workers);
    let mut next = 0;
    for i in 0..workers {
        let len = base + usize::from(i < extra);
        blocks.push((next..next + len).collect());
        next += len;
    }
    blocks
}

/// Claims the next index for worker `id`: front of its own deque, else
/// the back half of the first non-empty victim (scanned round-robin
/// from `id + 1`), else `None` — at which point no deque held work
/// during a full scan, and since only owners push, the worker can
/// retire.
fn claim(deques: &[Mutex<VecDeque<usize>>], id: usize) -> Option<usize> {
    if let Some(idx) = lock(deques, id).pop_front() {
        return Some(idx);
    }
    for offset in 1..deques.len() {
        let victim = (id + offset) % deques.len();
        let mut stolen = {
            let mut v = lock(deques, victim);
            let n = v.len();
            if n == 0 {
                continue;
            }
            v.split_off(n - (n - n / 2)) // back half, rounded up
        };
        let first = stolen.pop_front();
        if !stolen.is_empty() {
            lock(deques, id).append(&mut stolen);
        }
        return first;
    }
    None
}

fn lock<'a>(
    deques: &'a [Mutex<VecDeque<usize>>],
    i: usize,
) -> std::sync::MutexGuard<'a, VecDeque<usize>> {
    deques[i]
        .lock()
        .expect("sweep deque mutex poisoned: a worker panicked while (re)queueing indices")
}

/// Submission-order result buffer: one cell per point, written lock-free
/// by whichever worker claimed that index.
struct Slots<R> {
    // lint: safety: cells are written at disjoint indices (one claim per index, see claim()) and read only after thread::scope joins
    cells: Vec<UnsafeCell<Option<R>>>,
}

// lint: safety: sharing &Slots across workers is sound because each cell has exactly one writer (the claiming worker) and no reader until the scope joins; R: Send moves each result across exactly one thread boundary
unsafe impl<R: Send> Sync for Slots<R> {}

impl<R> Slots<R> {
    fn new(n: usize) -> Self {
        // lint: safety: empty cells; all cross-thread access is governed by the claim protocol documented on the field
        Self { cells: (0..n).map(|_| UnsafeCell::new(None)).collect() }
    }

    /// # Safety
    ///
    /// `idx` must be claimed by the calling worker (sole writer), and
    /// no reads may occur until the thread scope joins.
    // lint: safety: contract stated above; the single caller holds a mutex-claimed idx inside the scope
    unsafe fn put(&self, idx: usize, value: R) {
        *self.cells[idx].get() = Some(value);
    }

    /// Consumes the buffer after the scope joined; every cell is full
    /// because every index was claimed and every claimed index ran.
    fn into_results(self) -> Vec<R> {
        self.cells
            .into_iter()
            .map(|c| {
                c.into_inner()
                    .expect("sweep invariant violated: a submitted point produced no result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn serial_pool_maps_in_order() {
        let points: Vec<u32> = (0..17).collect();
        let out = SweepPool::serial().sweep(&points, |p| p * 2);
        assert_eq!(out, (0..17).map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_results_arrive_in_submission_order() {
        let points: Vec<usize> = (0..257).collect();
        let out = SweepPool::new(8).sweep(&points, |&p| {
            // Skew per-point latency so late indices finish first.
            thread::sleep(Duration::from_micros((257 - p as u64) % 13));
            p * 3
        });
        assert_eq!(out, (0..257).map(|p| p * 3).collect::<Vec<_>>());
    }

    #[test]
    fn every_point_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let points: Vec<usize> = (0..100).collect();
        let out = SweepPool::new(4).sweep(&points, |&p| {
            ran.fetch_add(1, Ordering::Relaxed);
            p
        });
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn stealing_drains_a_skewed_grid() {
        // One pathological point at the front: worker 0 gets stuck on it
        // while the others must steal its remaining block to finish.
        let points: Vec<usize> = (0..64).collect();
        let out = SweepPool::new(4).sweep(&points, |&p| {
            if p == 0 {
                thread::sleep(Duration::from_millis(20));
            }
            p + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn more_jobs_than_points_is_fine() {
        let points = [5u8, 6, 7];
        assert_eq!(SweepPool::new(64).sweep(&points, |&p| p), vec![5, 6, 7]);
    }

    #[test]
    fn empty_and_singleton_sweeps() {
        let none: Vec<u8> = Vec::new();
        assert!(SweepPool::new(4).sweep(&none, |&p| p).is_empty());
        assert_eq!(SweepPool::new(4).sweep(&[9u8], |&p| p), vec![9]);
    }

    #[test]
    fn jobs_clamp_and_env_fallback() {
        assert_eq!(SweepPool::new(0).jobs(), 1);
        assert_eq!(SweepPool::new(3).jobs(), 3);
        assert!(SweepPool::from_env().jobs() >= 1);
    }

    #[test]
    fn seed_blocks_partition_the_index_space() {
        for n in [0usize, 1, 7, 8, 9, 100] {
            for workers in [1usize, 2, 3, 8] {
                let blocks = seed_blocks(n, workers);
                let all: Vec<usize> = blocks.iter().flatten().copied().collect();
                assert_eq!(all, (0..n).collect::<Vec<_>>(), "n={n} workers={workers}");
                let (min, max) = blocks
                    .iter()
                    .map(VecDeque::len)
                    .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
                assert!(max - min <= 1, "uneven blocks: n={n} workers={workers}");
            }
        }
    }
}
