//! DES and two-key 3DES (EDE), implemented from FIPS 46-2.
//!
//! DES is the cipher the paper's vendor uses to encrypt the shipped
//! software (§3.4.1) and the one assumed by its 50-cycle hardware unit.
//! The implementation here is a straightforward, table-driven Feistel
//! network validated against published test vectors; it favours clarity
//! over speed (the timing model never executes it on the simulated
//! critical path — hardware latency is modeled separately).

use crate::block::BlockCipher;

/// Initial permutation (IP).
const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4, 62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8, 57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];

/// Final permutation (IP⁻¹).
const FP: [u8; 64] = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31, 38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29, 36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
];

/// Expansion E (32 → 48 bits).
const E: [u8; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17, 16, 17,
    18, 19, 20, 21, 20, 21, 22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

/// Permutation P applied to the S-box output.
const P: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, 2, 8, 24, 14, 32, 27, 3, 9, 19,
    13, 30, 6, 22, 11, 4, 25,
];

/// Permuted choice 1 (64 → 56 bits, drops parity).
const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18, 10, 2, 59, 51, 43, 35, 27, 19, 11, 3,
    60, 52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22, 14, 6, 61, 53, 45, 37,
    29, 21, 13, 5, 28, 20, 12, 4,
];

/// Permuted choice 2 (56 → 48 bits).
const PC2: [u8; 48] = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10, 23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2, 41,
    52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

/// Per-round left-rotation amounts for the key halves.
const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// The eight S-boxes, each 4 rows × 16 columns.
const SBOX: [[u8; 64]; 8] = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, 0, 15, 7, 4, 14, 2, 13, 1, 10, 6,
        12, 11, 9, 5, 3, 8, 4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, 15, 12, 8, 2,
        4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, 3, 13, 4, 7, 15, 2, 8, 14, 12, 0,
        1, 10, 6, 9, 11, 5, 0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, 13, 8, 10, 1,
        3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, 13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5,
        14, 12, 11, 15, 1, 13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, 1, 10, 13, 0, 6,
        9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, 13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2,
        12, 1, 10, 14, 9, 10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, 3, 15, 0, 6, 10,
        1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, 14, 11, 2, 12, 4, 7, 13, 1, 5, 0,
        15, 10, 3, 9, 8, 6, 4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, 11, 8, 12, 7,
        1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, 10, 15, 4, 2, 7, 12, 9, 5, 6, 1,
        13, 14, 0, 11, 3, 8, 9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, 4, 3, 2, 12,
        9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, 13, 0, 11, 7, 4, 9, 1, 10, 14, 3,
        5, 12, 2, 15, 8, 6, 1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, 6, 11, 13, 8,
        1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, 1, 15, 13, 8, 10, 3, 7, 4, 12, 5,
        6, 11, 0, 14, 9, 2, 7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, 2, 1, 14, 7,
        4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
];

/// Applies a 1-based bit permutation table to `input`.
///
/// Bit 1 is the most significant bit of the `in_bits`-wide input, matching
/// the FIPS numbering convention. The output is `table.len()` bits wide,
/// left-aligned at bit `table.len() - 1`.
fn permute(input: u64, table: &[u8], in_bits: u32) -> u64 {
    let mut out = 0u64;
    for &src in table {
        out <<= 1;
        out |= (input >> (in_bits - u32::from(src))) & 1;
    }
    out
}

/// The Feistel function f(R, K).
fn feistel(r: u32, subkey: u64) -> u32 {
    let expanded = permute(u64::from(r), &E, 32) ^ subkey;
    let mut sout = 0u32;
    for (i, sbox) in SBOX.iter().enumerate() {
        let six = ((expanded >> (42 - 6 * i)) & 0x3F) as usize;
        // Row = outer two bits, column = inner four; the flat tables above
        // are stored row-major, so row*16 + col indexes directly.
        let row = ((six & 0x20) >> 4) | (six & 1);
        let col = (six >> 1) & 0xF;
        sout = (sout << 4) | u32::from(sbox[row * 16 + col]);
    }
    permute(u64::from(sout), &P, 32) as u32
}

/// Derives the sixteen 48-bit round subkeys from a 64-bit key.
fn key_schedule(key: u64) -> [u64; 16] {
    let pc1 = permute(key, &PC1, 64);
    let mut c = ((pc1 >> 28) & 0x0FFF_FFFF) as u32;
    let mut d = (pc1 & 0x0FFF_FFFF) as u32;
    let mut subkeys = [0u64; 16];
    for (round, &shift) in SHIFTS.iter().enumerate() {
        c = ((c << shift) | (c >> (28 - shift))) & 0x0FFF_FFFF;
        d = ((d << shift) | (d >> (28 - shift))) & 0x0FFF_FFFF;
        let cd = (u64::from(c) << 28) | u64::from(d);
        subkeys[round] = permute(cd, &PC2, 56);
    }
    subkeys
}

/// The Data Encryption Standard with a 64-bit key (56 effective bits).
///
/// # Examples
///
/// ```
/// use padlock_crypto::Des;
///
/// let des = Des::new(0x1334_5779_9BBC_DFF1);
/// let ct = des.encrypt_u64(0x0123_4567_89AB_CDEF);
/// assert_eq!(ct, 0x85E8_1354_0F0A_B405); // classic published vector
/// assert_eq!(des.decrypt_u64(ct), 0x0123_4567_89AB_CDEF);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Des {
    subkeys: [u64; 16],
}

impl Des {
    /// Creates a DES instance from a 64-bit key (parity bits ignored,
    /// per the standard).
    pub fn new(key: u64) -> Self {
        Self {
            subkeys: key_schedule(key),
        }
    }

    fn crypt(&self, block: u64, decrypt: bool) -> u64 {
        let permuted = permute(block, &IP, 64);
        let mut l = (permuted >> 32) as u32;
        let mut r = permuted as u32;
        for round in 0..16 {
            let k = if decrypt {
                self.subkeys[15 - round]
            } else {
                self.subkeys[round]
            };
            let next_r = l ^ feistel(r, k);
            l = r;
            r = next_r;
        }
        // Final swap: pre-output is R16 || L16.
        let preout = (u64::from(r) << 32) | u64::from(l);
        permute(preout, &FP, 64)
    }

    /// Encrypts a 64-bit block.
    pub fn encrypt_u64(&self, block: u64) -> u64 {
        self.crypt(block, false)
    }

    /// Decrypts a 64-bit block.
    pub fn decrypt_u64(&self, block: u64) -> u64 {
        self.crypt(block, true)
    }
}

impl BlockCipher for Des {
    fn block_size(&self) -> usize {
        8
    }

    fn encrypt_block(&self, block: &mut [u8]) {
        let b = u64::from_be_bytes(block.try_into().expect("8-byte DES block"));
        block.copy_from_slice(&self.encrypt_u64(b).to_be_bytes());
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        let b = u64::from_be_bytes(block.try_into().expect("8-byte DES block"));
        block.copy_from_slice(&self.decrypt_u64(b).to_be_bytes());
    }

    fn name(&self) -> &'static str {
        "DES"
    }
}

/// Two-key triple DES in EDE configuration: `E_{k1}(D_{k2}(E_{k1}(x)))`.
///
/// Mentioned by the paper (§3.3) as a stream-cipher-quality pseudorandom
/// generator alternative to DES.
///
/// # Examples
///
/// ```
/// use padlock_crypto::{BlockCipher, TripleDes};
///
/// let tdes = TripleDes::new(0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210);
/// let mut block = *b"8 bytes!";
/// let original = block;
/// tdes.encrypt_block(&mut block);
/// tdes.decrypt_block(&mut block);
/// assert_eq!(block, original);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TripleDes {
    k1: Des,
    k2: Des,
}

impl TripleDes {
    /// Creates a two-key 3DES instance.
    pub fn new(key1: u64, key2: u64) -> Self {
        Self {
            k1: Des::new(key1),
            k2: Des::new(key2),
        }
    }

    /// Encrypts a 64-bit block (EDE).
    pub fn encrypt_u64(&self, block: u64) -> u64 {
        self.k1
            .encrypt_u64(self.k2.decrypt_u64(self.k1.encrypt_u64(block)))
    }

    /// Decrypts a 64-bit block (DED).
    pub fn decrypt_u64(&self, block: u64) -> u64 {
        self.k1
            .decrypt_u64(self.k2.encrypt_u64(self.k1.decrypt_u64(block)))
    }
}

impl BlockCipher for TripleDes {
    fn block_size(&self) -> usize {
        8
    }

    fn encrypt_block(&self, block: &mut [u8]) {
        let b = u64::from_be_bytes(block.try_into().expect("8-byte 3DES block"));
        block.copy_from_slice(&self.encrypt_u64(b).to_be_bytes());
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        let b = u64::from_be_bytes(block.try_into().expect("8-byte 3DES block"));
        block.copy_from_slice(&self.decrypt_u64(b).to_be_bytes());
    }

    fn name(&self) -> &'static str {
        "3DES"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from FIPS 46 tutorial material.
    #[test]
    fn classic_vector_133457799bbcdff1() {
        let des = Des::new(0x1334_5779_9BBC_DFF1);
        assert_eq!(
            des.encrypt_u64(0x0123_4567_89AB_CDEF),
            0x85E8_1354_0F0A_B405
        );
    }

    /// Weak-key vector: all-ones parity key over the zero block.
    #[test]
    fn vector_weak_parity_key() {
        let des = Des::new(0x0101_0101_0101_0101);
        assert_eq!(des.encrypt_u64(0), 0x8CA6_4DE9_C1B1_23A7);
    }

    /// "Now is t" under key 0123456789ABCDEF (Stallings' textbook vector).
    #[test]
    fn vector_now_is_t() {
        let des = Des::new(0x0123_4567_89AB_CDEF);
        assert_eq!(
            des.encrypt_u64(0x4E6F_7720_6973_2074),
            0x3FA4_0E8A_984D_4815
        );
    }

    #[test]
    fn decrypt_inverts_encrypt_for_many_blocks() {
        let des = Des::new(0xDEAD_BEEF_0BAD_F00D);
        let mut x = 0x0123_4567_89AB_CDEFu64;
        for _ in 0..64 {
            let c = des.encrypt_u64(x);
            assert_eq!(des.decrypt_u64(c), x);
            x = x.rotate_left(7).wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[test]
    fn parity_bits_do_not_affect_the_key_schedule() {
        // PC-1 drops bits 8,16,...,64; flipping them must not change output.
        let a = Des::new(0x1334_5779_9BBC_DFF1);
        let b = Des::new(0x1334_5779_9BBC_DFF1 ^ 0x0101_0101_0101_0101);
        assert_eq!(a.encrypt_u64(12345), b.encrypt_u64(12345));
    }

    #[test]
    fn des_complementation_property() {
        // DES(~k, ~p) == ~DES(k, p) — a classic structural property that
        // exercises every table in the implementation.
        let k = 0x0123_4567_89AB_CDEFu64;
        let p = 0x4E6F_7720_6973_2074u64;
        let c = Des::new(k).encrypt_u64(p);
        let c_comp = Des::new(!k).encrypt_u64(!p);
        assert_eq!(c_comp, !c);
    }

    #[test]
    fn triple_des_degenerates_to_single_des_with_equal_keys() {
        let k = 0x0123_4567_89AB_CDEFu64;
        let tdes = TripleDes::new(k, k);
        let des = Des::new(k);
        let p = 0x1122_3344_5566_7788u64;
        assert_eq!(tdes.encrypt_u64(p), des.encrypt_u64(p));
    }

    #[test]
    fn triple_des_roundtrip_with_distinct_keys() {
        let tdes = TripleDes::new(0xAAAA_BBBB_CCCC_DDDD, 0x1111_2222_3333_4444);
        let p = 0x0F0F_0F0F_F0F0_F0F0u64;
        assert_eq!(tdes.decrypt_u64(tdes.encrypt_u64(p)), p);
    }

    #[test]
    fn byte_api_matches_u64_api() {
        let des = Des::new(0x1334_5779_9BBC_DFF1);
        let mut bytes = 0x0123_4567_89AB_CDEFu64.to_be_bytes();
        des.encrypt_block(&mut bytes);
        assert_eq!(u64::from_be_bytes(bytes), 0x85E8_1354_0F0A_B405);
    }

    #[test]
    fn permute_identity_table() {
        let table: Vec<u8> = (1..=64).collect();
        assert_eq!(permute(0x0123_4567_89AB_CDEF, &table, 64), 0x0123_4567_89AB_CDEF);
    }
}
