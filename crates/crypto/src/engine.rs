//! Timing model of the on-chip crypto unit.
//!
//! The paper assumes a fully pipelined hardware engine with a fixed
//! end-to-end latency: 50 cycles in the main experiments (a DES ASIC,
//! §3.1), 102 cycles in the sensitivity study (Fig. 10). Because the unit
//! is fully pipelined, enciphering all blocks of one L2 line costs the
//! pipeline latency once, plus one issue slot per block.

/// Latency/throughput model of a pipelined block-cipher unit.
///
/// # Examples
///
/// ```
/// use padlock_crypto::CryptoUnitModel;
///
/// let unit = CryptoUnitModel::paper_default(); // 50-cycle pipeline
/// // A 128-byte line of 8-byte blocks: 50 + 15 issue slots.
/// assert_eq!(unit.line_latency(128, 8), 65);
/// // The paper's abstraction charges the pipeline latency alone:
/// assert_eq!(unit.pipeline_latency(), 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CryptoUnitModel {
    latency: u64,
    blocks_per_cycle: u64,
    pipelined: bool,
}

impl CryptoUnitModel {
    /// The paper's main configuration: 50-cycle fully pipelined unit,
    /// one block issued per cycle.
    pub fn paper_default() -> Self {
        Self::new(50, true, 1)
    }

    /// The paper's Fig. 10 sensitivity configuration: 102-cycle unit.
    pub fn paper_slow() -> Self {
        Self::new(102, true, 1)
    }

    /// Creates a custom unit model.
    ///
    /// * `latency` — end-to-end cycles for one block through the engine;
    /// * `pipelined` — whether a new block can issue every
    ///   `1/blocks_per_cycle` cycles (otherwise blocks serialise);
    /// * `blocks_per_cycle` — issue width when pipelined.
    ///
    /// # Panics
    ///
    /// Panics if `latency` or `blocks_per_cycle` is zero.
    pub fn new(latency: u64, pipelined: bool, blocks_per_cycle: u64) -> Self {
        assert!(latency > 0, "crypto latency must be positive");
        assert!(blocks_per_cycle > 0, "issue width must be positive");
        Self {
            latency,
            blocks_per_cycle,
            pipelined,
        }
    }

    /// End-to-end latency of one block through the engine.
    pub fn pipeline_latency(&self) -> u64 {
        self.latency
    }

    /// Whether the engine is pipelined.
    pub fn is_pipelined(&self) -> bool {
        self.pipelined
    }

    /// Cycles to encipher/decipher a whole line of `line_bytes` using
    /// `block_bytes` blocks.
    ///
    /// Pipelined: `latency + ceil(blocks-1 / width)`. Unpipelined:
    /// `latency * blocks`.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a positive multiple of `block_bytes`.
    pub fn line_latency(&self, line_bytes: usize, block_bytes: usize) -> u64 {
        assert!(block_bytes > 0 && line_bytes > 0, "sizes must be positive");
        assert_eq!(
            line_bytes % block_bytes,
            0,
            "line must be whole cipher blocks"
        );
        let blocks = (line_bytes / block_bytes) as u64;
        if self.pipelined {
            self.latency + (blocks - 1).div_ceil(self.blocks_per_cycle)
        } else {
            self.latency * blocks
        }
    }
}

impl Default for CryptoUnitModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        assert_eq!(CryptoUnitModel::paper_default().pipeline_latency(), 50);
        assert_eq!(CryptoUnitModel::paper_slow().pipeline_latency(), 102);
        assert!(CryptoUnitModel::default().is_pipelined());
    }

    #[test]
    fn single_block_costs_pipeline_latency() {
        let u = CryptoUnitModel::new(50, true, 1);
        assert_eq!(u.line_latency(8, 8), 50);
    }

    #[test]
    fn pipelined_line_adds_issue_slots() {
        let u = CryptoUnitModel::new(50, true, 1);
        assert_eq!(u.line_latency(128, 8), 50 + 15);
        let wide = CryptoUnitModel::new(50, true, 4);
        assert_eq!(wide.line_latency(128, 8), 50 + 4); // ceil(15/4)
    }

    #[test]
    fn unpipelined_serialises_blocks() {
        let u = CryptoUnitModel::new(10, false, 1);
        assert_eq!(u.line_latency(32, 8), 40);
    }

    #[test]
    #[should_panic(expected = "whole cipher blocks")]
    fn ragged_line_panics() {
        CryptoUnitModel::paper_default().line_latency(100, 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_latency_panics() {
        let _ = CryptoUnitModel::new(0, true, 1);
    }
}
