//! Cryptographic substrate for the `padlock` secure processor.
//!
//! The MICRO-36 2003 paper assumes a vendor-side symmetric cipher (DES is
//! its running example, AES/3DES mentioned as stronger options), an
//! asymmetric pair for shipping the symmetric key to the target processor,
//! and a one-time-pad (counter-mode) construction `C = P xor E_K(seed)`.
//! This crate implements all of them from scratch:
//!
//! * [`Des`], [`TripleDes`], [`Aes128`] — block ciphers validated against
//!   published test vectors, behind the object-safe [`BlockCipher`] trait;
//! * [`Sha256`] — used by the optional integrity (Merkle) extension;
//! * [`CbcMac`] — per-line MACs bound to the line address;
//! * [`rsa`] — a toy RSA implementation (own [`bignum`] + Miller–Rabin)
//!   for vendor key wrapping. **Not constant-time; simulation only.**
//! * [`OneTimePad`] — the pad generator/combiner of the paper's §3.2;
//! * [`CryptoUnitModel`] — the fixed-latency, fully pipelined hardware
//!   crypto unit the paper's timing model assumes (50 or 102 cycles).
//!
//! # Examples
//!
//! ```
//! use padlock_crypto::{BlockCipher, Des, OneTimePad};
//!
//! let cipher = Des::new(0x0123_4567_89AB_CDEF);
//! let otp = OneTimePad::new(cipher);
//! let plain = *b"secret instrs 64";
//! let ct = otp.encrypt(0x4000, &plain);
//! assert_ne!(ct, plain.to_vec());
//! assert_eq!(otp.decrypt(0x4000, &ct), plain.to_vec());
//! ```

#![warn(missing_docs)]

mod aes;
pub mod bignum;
mod block;
mod des;
mod engine;
mod mac;
mod otp;
pub mod rsa;
mod sha256;

pub use aes::Aes128;
pub use block::{BlockCipher, CipherKind, XorCipher};
pub use des::{Des, TripleDes};
pub use engine::CryptoUnitModel;
pub use mac::CbcMac;
pub use otp::OneTimePad;
pub use sha256::Sha256;

/// XORs `pad` into `data` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// let mut d = [0xAAu8, 0x55];
/// padlock_crypto::xor_in_place(&mut d, &[0xFF, 0xFF]);
/// assert_eq!(d, [0x55, 0xAA]);
/// ```
pub fn xor_in_place(data: &mut [u8], pad: &[u8]) {
    assert_eq!(data.len(), pad.len(), "xor operands must have equal length");
    for (d, p) in data.iter_mut().zip(pad) {
        *d ^= p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_in_place_is_involutive() {
        let original = [1u8, 2, 3, 4];
        let pad = [9u8, 8, 7, 6];
        let mut data = original;
        xor_in_place(&mut data, &pad);
        xor_in_place(&mut data, &pad);
        assert_eq!(data, original);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn xor_in_place_rejects_length_mismatch() {
        let mut d = [0u8; 2];
        xor_in_place(&mut d, &[0u8; 3]);
    }
}
