//! A toy RSA implementation for vendor key wrapping.
//!
//! The paper's software distribution model (§2.1): the vendor encrypts the
//! program under a symmetric key `Ks`, then wraps `Ks` with the target
//! processor's public key `Kp`; only the processor holding the private key
//! `Kp⁻¹` can unwrap it, so software packaged for processor A will not run
//! on processor B.
//!
//! **This is a simulation artefact, not production cryptography**: no
//! padding-oracle defences, no constant-time arithmetic, small default key
//! sizes to keep tests fast.

use crate::bignum::{random_below, random_prime, BigUint};
use std::fmt;

/// Errors returned by RSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// The message (as an integer) is not smaller than the modulus.
    MessageTooLarge,
    /// The ciphertext (as an integer) is not smaller than the modulus.
    CiphertextTooLarge,
    /// The unwrapped payload had the wrong length for the expected key.
    BadPayloadLength {
        /// Bytes expected.
        expected: usize,
        /// Bytes found after unwrapping.
        found: usize,
    },
}

impl fmt::Display for RsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsaError::MessageTooLarge => write!(f, "message does not fit under the modulus"),
            RsaError::CiphertextTooLarge => write!(f, "ciphertext does not fit under the modulus"),
            RsaError::BadPayloadLength { expected, found } => {
                write!(f, "unwrapped payload was {found} bytes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for RsaError {}

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicKey {
    n: BigUint,
    e: BigUint,
}

/// An RSA private key `(n, d)`.
#[derive(Clone, PartialEq, Eq)]
pub struct PrivateKey {
    n: BigUint,
    d: BigUint,
}

impl fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the private exponent.
        f.debug_struct("PrivateKey").finish_non_exhaustive()
    }
}

/// An RSA key pair.
///
/// # Examples
///
/// ```
/// use padlock_crypto::rsa::KeyPair;
///
/// let mut rng = rand::thread_rng();
/// let pair = KeyPair::generate(256, &mut rng);
/// let ct = pair.public().encrypt(b"Ks", &mut rng).unwrap();
/// assert_eq!(pair.private().decrypt(&ct).unwrap(), b"Ks");
/// ```
#[derive(Debug, Clone)]
pub struct KeyPair {
    public: PublicKey,
    private: PrivateKey,
}

impl KeyPair {
    /// Generates a key pair with a modulus of roughly `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 64` (too small even for a toy).
    pub fn generate(bits: usize, rng: &mut impl rand::Rng) -> Self {
        assert!(bits >= 64, "RSA modulus must be at least 64 bits");
        let e = BigUint::from_u64(65_537);
        loop {
            let p = random_prime(bits / 2, rng);
            let q = random_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let one = BigUint::one();
            let phi = p.sub(&one).mul(&q.sub(&one));
            if let Some(d) = e.mod_inverse(&phi) {
                return Self {
                    public: PublicKey { n: n.clone(), e: e.clone() },
                    private: PrivateKey { n, d },
                };
            }
        }
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// The private half.
    pub fn private(&self) -> &PrivateKey {
        &self.private
    }
}

impl PublicKey {
    /// Encrypts a short message (must fit under the modulus after the
    /// 1-byte sentinel prefix).
    ///
    /// A random even-length nonce is *not* used: the scheme prepends a
    /// constant 0x01 sentinel so leading zero bytes of the payload survive
    /// the integer round-trip. Determinism keeps tests simple; the
    /// simulator wraps high-entropy symmetric keys, where determinism is
    /// harmless.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::MessageTooLarge`] if the padded message does not
    /// fit under the modulus.
    pub fn encrypt(&self, msg: &[u8], _rng: &mut impl rand::Rng) -> Result<Vec<u8>, RsaError> {
        let mut padded = Vec::with_capacity(msg.len() + 1);
        padded.push(0x01);
        padded.extend_from_slice(msg);
        let m = BigUint::from_bytes_be(&padded);
        if m >= self.n {
            return Err(RsaError::MessageTooLarge);
        }
        Ok(m.modpow(&self.e, &self.n).to_bytes_be())
    }

    /// The modulus size in bits.
    pub fn modulus_bits(&self) -> usize {
        self.n.bit_len()
    }
}

impl PrivateKey {
    /// Decrypts a ciphertext produced by [`PublicKey::encrypt`].
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::CiphertextTooLarge`] when the ciphertext does
    /// not fit under the modulus, or [`RsaError::BadPayloadLength`] when
    /// the sentinel byte is missing (wrong key or corrupted ciphertext).
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, RsaError> {
        let c = BigUint::from_bytes_be(ciphertext);
        if c >= self.n {
            return Err(RsaError::CiphertextTooLarge);
        }
        let padded = c.modpow(&self.d, &self.n).to_bytes_be();
        if padded.first() != Some(&0x01) {
            return Err(RsaError::BadPayloadLength {
                expected: 1,
                found: 0,
            });
        }
        Ok(padded[1..].to_vec())
    }
}

/// Wraps symmetric key bytes for a target processor.
///
/// Convenience wrapper matching the paper's vocabulary: the vendor calls
/// this once per package.
///
/// # Errors
///
/// Propagates [`RsaError::MessageTooLarge`] for oversized keys.
pub fn wrap_key(
    key_bytes: &[u8],
    target: &PublicKey,
    rng: &mut impl rand::Rng,
) -> Result<Vec<u8>, RsaError> {
    target.encrypt(key_bytes, rng)
}

/// Unwraps symmetric key bytes on the processor; fails (or yields garbage
/// rejected by the sentinel) under the wrong private key.
///
/// # Errors
///
/// See [`PrivateKey::decrypt`].
pub fn unwrap_key(wrapped: &[u8], private: &PrivateKey) -> Result<Vec<u8>, RsaError> {
    private.decrypt(wrapped)
}

/// Generates a random symmetric key of `len` bytes.
pub fn random_symmetric_key(len: usize, rng: &mut impl rand::Rng) -> Vec<u8> {
    // random_below guarantees uniformity; here plain fill is fine.
    let mut key = vec![0u8; len];
    rng.fill_bytes(&mut key);
    // Avoid the degenerate all-zero key, which some ciphers treat weakly.
    if key.iter().all(|&b| b == 0) {
        key[0] = random_below(&BigUint::from_u64(255), rng)
            .to_u64()
            .unwrap_or(1) as u8
            | 1;
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xFACE_FEED)
    }

    #[test]
    fn roundtrip_small_message() {
        let mut rng = rng();
        let pair = KeyPair::generate(128, &mut rng);
        let ct = pair.public().encrypt(b"hello", &mut rng).unwrap();
        assert_eq!(pair.private().decrypt(&ct).unwrap(), b"hello");
    }

    #[test]
    fn leading_zero_bytes_survive() {
        let mut rng = rng();
        let pair = KeyPair::generate(128, &mut rng);
        let msg = [0u8, 0, 0x42];
        let ct = pair.public().encrypt(&msg, &mut rng).unwrap();
        assert_eq!(pair.private().decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn wrong_key_does_not_recover_plaintext() {
        let mut rng = rng();
        let a = KeyPair::generate(128, &mut rng);
        let b = KeyPair::generate(128, &mut rng);
        let ct = a.public().encrypt(b"Ks16byteSymKey!!", &mut rng);
        // 16-byte message may not fit under a 128-bit modulus; use 8 bytes.
        let ct = match ct {
            Ok(c) => c,
            Err(RsaError::MessageTooLarge) => a.public().encrypt(b"Ks8byte", &mut rng).unwrap(),
            Err(e) => panic!("unexpected: {e}"),
        };
        // Outright rejection is also acceptable, hence no assertion on Err.
        if let Ok(pt) = b.private().decrypt(&ct) {
            assert_ne!(&pt[..], b"Ks8byte");
        }
    }

    #[test]
    fn oversized_message_is_rejected() {
        let mut rng = rng();
        let pair = KeyPair::generate(64, &mut rng);
        let msg = [0xFFu8; 16];
        assert_eq!(
            pair.public().encrypt(&msg, &mut rng),
            Err(RsaError::MessageTooLarge)
        );
    }

    #[test]
    fn oversized_ciphertext_is_rejected() {
        let mut rng = rng();
        let pair = KeyPair::generate(64, &mut rng);
        let huge = [0xFFu8; 32];
        assert_eq!(
            pair.private().decrypt(&huge),
            Err(RsaError::CiphertextTooLarge)
        );
    }

    #[test]
    fn wrap_unwrap_key_roundtrip() {
        let mut rng = rng();
        let pair = KeyPair::generate(256, &mut rng);
        let ks = random_symmetric_key(16, &mut rng);
        let wrapped = wrap_key(&ks, pair.public(), &mut rng).unwrap();
        assert_eq!(unwrap_key(&wrapped, pair.private()).unwrap(), ks);
    }

    #[test]
    fn random_symmetric_key_is_never_all_zero() {
        let mut rng = rng();
        for _ in 0..32 {
            let k = random_symmetric_key(8, &mut rng);
            assert!(k.iter().any(|&b| b != 0));
        }
    }

    #[test]
    fn private_key_debug_hides_exponent() {
        let mut rng = rng();
        let pair = KeyPair::generate(64, &mut rng);
        let s = format!("{:?}", pair.private());
        assert!(s.contains("PrivateKey"));
        assert!(!s.contains("d:"));
    }

    #[test]
    fn modulus_bits_close_to_requested() {
        let mut rng = rng();
        let pair = KeyPair::generate(128, &mut rng);
        let bits = pair.public().modulus_bits();
        assert!((126..=128).contains(&bits), "got {bits}");
    }
}
