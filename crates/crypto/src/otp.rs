//! The one-time-pad (counter-mode) construction of the paper's §3.2.
//!
//! `ciphertext = plaintext xor E_K(seed)`, where the seed is derived from
//! the line's address (plus a per-line sequence number for writable data —
//! that policy lives in `padlock-core`; this module implements the
//! pad-generation mechanics for any 64-bit seed).
//!
//! Multi-block lines use one pad block per cipher block: block `i` of a
//! line seeded with `s` uses `E_K(s + i·blocksize)`, exactly the paper's
//! `E(A0)·E(A0+1)…` instruction-encryption example generalised to any
//! base seed.

use crate::block::BlockCipher;
use crate::xor_in_place;

/// One-time-pad encryptor/decryptor over a block cipher.
///
/// # Examples
///
/// ```
/// use padlock_crypto::{Des, OneTimePad};
///
/// let otp = OneTimePad::new(Des::new(0xDEAD_BEEF_1234_5678));
/// let line = vec![0x11u8; 128];
/// let ct = otp.encrypt(0x8000, &line);
/// assert_eq!(otp.decrypt(0x8000, &ct), line);
/// // A different seed produces an unrelated pad:
/// assert_ne!(otp.decrypt(0x8040, &ct), line);
/// ```
#[derive(Debug, Clone)]
pub struct OneTimePad<C> {
    cipher: C,
}

impl<C: BlockCipher> OneTimePad<C> {
    /// Creates a pad engine over the given cipher.
    pub fn new(cipher: C) -> Self {
        Self { cipher }
    }

    /// Borrows the underlying cipher.
    pub fn cipher(&self) -> &C {
        &self.cipher
    }

    /// Generates `len` pad bytes for the given 64-bit base seed.
    ///
    /// `len` may be any multiple of the cipher block size. Pad block `i`
    /// is `E_K(seed + i·block_size)` with the counter encoded big-endian
    /// in the low 8 bytes of the cipher block (high bytes zero for
    /// 16-byte ciphers).
    ///
    /// # Panics
    ///
    /// Panics if `len` is not a multiple of the block size.
    pub fn pad(&self, seed: u64, len: usize) -> Vec<u8> {
        let bs = self.cipher.block_size();
        assert_eq!(len % bs, 0, "pad length must be whole cipher blocks");
        let mut out = vec![0u8; len];
        for (i, chunk) in out.chunks_exact_mut(bs).enumerate() {
            let counter = seed.wrapping_add((i * bs) as u64);
            chunk[bs - 8..].copy_from_slice(&counter.to_be_bytes());
            self.cipher.encrypt_block(chunk);
        }
        out
    }

    /// Encrypts `plaintext` under the pad for `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the plaintext length is not a multiple of the cipher
    /// block size.
    pub fn encrypt(&self, seed: u64, plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        self.apply_in_place(seed, &mut out);
        out
    }

    /// Decrypts `ciphertext` under the pad for `seed` (identical to
    /// encryption — XOR is an involution).
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext length is not a multiple of the cipher
    /// block size.
    pub fn decrypt(&self, seed: u64, ciphertext: &[u8]) -> Vec<u8> {
        self.encrypt(seed, ciphertext)
    }

    /// XORs the pad for `seed` into `data` in place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of the cipher block size.
    pub fn apply_in_place(&self, seed: u64, data: &mut [u8]) {
        let pad = self.pad(seed, data.len());
        xor_in_place(data, &pad);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aes128, Des, XorCipher};

    #[test]
    fn roundtrip_des_line() {
        let otp = OneTimePad::new(Des::new(42));
        let line: Vec<u8> = (0..128u32).map(|i| i as u8).collect();
        let ct = otp.encrypt(0x1000, &line);
        assert_ne!(ct, line);
        assert_eq!(otp.decrypt(0x1000, &ct), line);
    }

    #[test]
    fn roundtrip_aes_line() {
        let otp = OneTimePad::new(Aes128::new(&[3u8; 16]));
        let line = vec![0xC3u8; 128];
        let ct = otp.encrypt(7, &line);
        assert_eq!(otp.decrypt(7, &ct), line);
    }

    #[test]
    fn pad_blocks_follow_the_paper_counter_layout() {
        // With DES and seed A0, block i of the pad must equal E(A0 + 8i):
        // the paper's E(A0), E(A0+1)... with the +1 scaled to byte
        // addressing of consecutive 64-bit blocks.
        let des = Des::new(0x1334_5779_9BBC_DFF1);
        let otp = OneTimePad::new(des.clone());
        let seed = 0x4000u64;
        let pad = otp.pad(seed, 32);
        for i in 0..4u64 {
            let expected = des.encrypt_u64(seed + 8 * i).to_be_bytes();
            assert_eq!(&pad[(i as usize) * 8..(i as usize) * 8 + 8], &expected);
        }
    }

    #[test]
    fn different_seeds_give_unrelated_pads() {
        let otp = OneTimePad::new(Des::new(99));
        let a = otp.pad(0x4000, 16);
        let b = otp.pad(0x4008, 16);
        // The second block of pad(0x4000) is E(0x4008) which equals the
        // first block of pad(0x4008): counters overlap when seeds are
        // 1 block apart. Neighbouring *lines* use seeds a full line apart,
        // so no overlap occurs there; assert the overlapping structure here
        // to document it.
        assert_eq!(&a[8..16], &b[..8]);
        let c = otp.pad(0x8000, 16);
        assert_ne!(&a[..8], &c[..8]);
    }

    #[test]
    fn same_value_different_location_has_different_ciphertext() {
        // The paper's motivating privacy property (§3.4 Advantage).
        let otp = OneTimePad::new(Des::new(5));
        let value = vec![0u8; 64];
        let c1 = otp.encrypt(0x1000, &value);
        let c2 = otp.encrypt(0x2000, &value);
        assert_ne!(c1, c2);
    }

    #[test]
    fn seed_wraparound_is_well_defined() {
        let otp = OneTimePad::new(Des::new(5));
        let pad = otp.pad(u64::MAX - 7, 16);
        assert_eq!(pad.len(), 16);
    }

    #[test]
    #[should_panic(expected = "whole cipher blocks")]
    fn ragged_length_panics() {
        let otp = OneTimePad::new(XorCipher::new(1, 8));
        let _ = otp.pad(0, 12);
    }

    #[test]
    fn apply_in_place_matches_encrypt() {
        let otp = OneTimePad::new(Des::new(1234));
        let line = vec![0xABu8; 24];
        let mut inplace = line.clone();
        otp.apply_in_place(9, &mut inplace);
        assert_eq!(inplace, otp.encrypt(9, &line));
    }

    #[test]
    fn cipher_accessor_returns_engine() {
        let otp = OneTimePad::new(Des::new(7));
        assert_eq!(otp.cipher().block_size(), 8);
    }
}
