//! AES-128 (FIPS 197), implemented from the specification.
//!
//! The S-box is *derived* (multiplicative inverse in GF(2⁸) followed by the
//! affine transform) rather than transcribed, which removes a whole class
//! of table-typo bugs; the FIPS 197 Appendix C vector in the tests pins the
//! result to the standard.

use crate::block::BlockCipher;

const NB: usize = 4; // columns per state
const NR: usize = 10; // rounds for AES-128

/// Multiplies two elements of GF(2⁸) modulo x⁸+x⁴+x³+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2⁸); 0 maps to 0.
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^(2^8 - 2) = a^254 by square-and-multiply.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

/// Builds the forward and inverse S-boxes from first principles.
fn build_sboxes() -> ([u8; 256], [u8; 256]) {
    let mut sbox = [0u8; 256];
    let mut inv = [0u8; 256];
    for (x, slot) in sbox.iter_mut().enumerate() {
        let b = gf_inv(x as u8);
        // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        let s = b
            ^ b.rotate_left(1)
            ^ b.rotate_left(2)
            ^ b.rotate_left(3)
            ^ b.rotate_left(4)
            ^ 0x63;
        *slot = s;
        inv[s as usize] = x as u8;
    }
    (sbox, inv)
}

/// AES with a 128-bit key.
///
/// # Examples
///
/// ```
/// use padlock_crypto::{Aes128, BlockCipher};
///
/// let key: [u8; 16] = core::array::from_fn(|i| i as u8);
/// let aes = Aes128::new(&key);
/// let mut block: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
/// aes.encrypt_block(&mut block);
/// // FIPS 197 Appendix C.1 vector.
/// assert_eq!(block[..4], [0x69, 0xC4, 0xE0, 0xD8]);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; NR + 1],
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Aes128 {
    /// Creates an AES-128 instance and expands the key schedule.
    pub fn new(key: &[u8; 16]) -> Self {
        let (sbox, inv_sbox) = build_sboxes();
        let mut words = [[0u8; 4]; 4 * (NR + 1)];
        for (i, w) in words.iter_mut().take(4).enumerate() {
            w.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        let mut rcon = 1u8;
        for i in 4..4 * (NR + 1) {
            let mut temp = words[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                words[i][j] = words[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; NR + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&words[4 * r + c]);
            }
        }
        Self {
            round_keys,
            sbox,
            inv_sbox,
        }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk) {
            *s ^= k;
        }
    }

    fn sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.sbox[*b as usize];
        }
    }

    fn inv_sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.inv_sbox[*b as usize];
        }
    }

    /// State layout: column-major, `state[4*c + r]` = row r, column c
    /// (the natural byte order of the FIPS input block).
    fn shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let mut row = [0u8; 4];
            for c in 0..4 {
                row[c] = state[4 * ((c + r) % NB) + r];
            }
            for c in 0..4 {
                state[4 * c + r] = row[c];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let mut row = [0u8; 4];
            for c in 0..4 {
                row[(c + r) % NB] = state[4 * c + r];
            }
            for c in 0..4 {
                state[4 * c + r] = row[c];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().expect("column");
            state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
            state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().expect("column");
            state[4 * c] =
                gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
            state[4 * c + 1] =
                gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
            state[4 * c + 2] =
                gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
            state[4 * c + 3] =
                gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
        }
    }
}

impl BlockCipher for Aes128 {
    fn block_size(&self) -> usize {
        16
    }

    fn encrypt_block(&self, block: &mut [u8]) {
        let state: &mut [u8; 16] = block.try_into().expect("16-byte AES block");
        Self::add_round_key(state, &self.round_keys[0]);
        for round in 1..NR {
            self.sub_bytes(state);
            Self::shift_rows(state);
            Self::mix_columns(state);
            Self::add_round_key(state, &self.round_keys[round]);
        }
        self.sub_bytes(state);
        Self::shift_rows(state);
        Self::add_round_key(state, &self.round_keys[NR]);
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        let state: &mut [u8; 16] = block.try_into().expect("16-byte AES block");
        Self::add_round_key(state, &self.round_keys[NR]);
        for round in (1..NR).rev() {
            Self::inv_shift_rows(state);
            self.inv_sub_bytes(state);
            Self::add_round_key(state, &self.round_keys[round]);
            Self::inv_mix_columns(state);
        }
        Self::inv_shift_rows(state);
        self.inv_sub_bytes(state);
        Self::add_round_key(state, &self.round_keys[0]);
    }

    fn name(&self) -> &'static str {
        "AES-128"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_has_known_anchor_values() {
        let (sbox, inv) = build_sboxes();
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7C);
        assert_eq!(sbox[0x53], 0xED);
        assert_eq!(sbox[0xFF], 0x16);
        assert_eq!(inv[0x63], 0x00);
        for x in 0..256 {
            assert_eq!(inv[sbox[x] as usize] as usize, x);
        }
    }

    #[test]
    fn gf_mul_matches_fips_examples() {
        // {57} • {83} = {c1} from the FIPS 197 spec text.
        assert_eq!(gf_mul(0x57, 0x83), 0xC1);
        assert_eq!(gf_mul(0x57, 0x13), 0xFE);
    }

    #[test]
    fn gf_inv_is_inverse() {
        for x in 1..=255u8 {
            assert_eq!(gf_mul(x, gf_inv(x)), 1, "x = {x}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    /// FIPS 197 Appendix C.1.
    #[test]
    fn fips_appendix_c1_vector() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let aes = Aes128::new(&key);
        let mut block: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        aes.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70,
                0xB4, 0xC5, 0x5A
            ]
        );
    }

    /// NIST SP 800-38A ECB-AES128 first block.
    #[test]
    fn sp800_38a_ecb_vector() {
        let key = [
            0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF,
            0x4F, 0x3C,
        ];
        let aes = Aes128::new(&key);
        let mut block = [
            0x6B, 0xC1, 0xBE, 0xE2, 0x2E, 0x40, 0x9F, 0x96, 0xE9, 0x3D, 0x7E, 0x11, 0x73, 0x93,
            0x17, 0x2A,
        ];
        aes.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x3A, 0xD7, 0x7B, 0xB4, 0x0D, 0x7A, 0x36, 0x60, 0xA8, 0x9E, 0xCA, 0xF3, 0x24,
                0x66, 0xEF, 0x97
            ]
        );
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let aes = Aes128::new(&[0x5Au8; 16]);
        let mut block: [u8; 16] = core::array::from_fn(|i| (i * 13) as u8);
        let original = block;
        aes.encrypt_block(&mut block);
        assert_ne!(block, original);
        aes.decrypt_block(&mut block);
        assert_eq!(block, original);
    }

    #[test]
    fn mix_columns_roundtrip() {
        let mut state: [u8; 16] = core::array::from_fn(|i| (i * 7 + 3) as u8);
        let original = state;
        Aes128::mix_columns(&mut state);
        Aes128::inv_mix_columns(&mut state);
        assert_eq!(state, original);
    }

    #[test]
    fn shift_rows_roundtrip() {
        let mut state: [u8; 16] = core::array::from_fn(|i| i as u8);
        let original = state;
        Aes128::shift_rows(&mut state);
        assert_ne!(state, original);
        Aes128::inv_shift_rows(&mut state);
        assert_eq!(state, original);
    }

    #[test]
    fn debug_does_not_leak_key_material() {
        let aes = Aes128::new(&[9u8; 16]);
        let dbg = format!("{aes:?}");
        assert!(!dbg.contains('9'));
    }
}
