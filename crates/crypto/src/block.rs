//! The object-safe block-cipher abstraction shared by the whole workspace.

use std::fmt;

/// A symmetric block cipher operating on fixed-size blocks in place.
///
/// The trait is object-safe so the secure memory controller can hold a
/// `Box<dyn BlockCipher>` chosen at configuration time (the paper's vendor
/// picks DES; stronger ciphers like AES only change the latency model).
///
/// # Examples
///
/// ```
/// use padlock_crypto::{BlockCipher, Des};
///
/// let c = Des::new(0x1334_5779_9BBC_DFF1);
/// let mut block = [0u8; 8];
/// c.encrypt_block(&mut block);
/// c.decrypt_block(&mut block);
/// assert_eq!(block, [0u8; 8]);
/// ```
pub trait BlockCipher {
    /// The cipher's block size in bytes (8 for DES, 16 for AES-128).
    fn block_size(&self) -> usize;

    /// Encrypts one block in place.
    ///
    /// # Panics
    ///
    /// Implementations panic if `block.len() != self.block_size()`.
    fn encrypt_block(&self, block: &mut [u8]);

    /// Decrypts one block in place.
    ///
    /// # Panics
    ///
    /// Implementations panic if `block.len() != self.block_size()`.
    fn decrypt_block(&self, block: &mut [u8]);

    /// A short human-readable cipher name (for reports).
    fn name(&self) -> &'static str;

    /// Encrypts a buffer of whole blocks in place (ECB layout).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of the block size.
    fn encrypt_blocks(&self, data: &mut [u8]) {
        let bs = self.block_size();
        assert_eq!(data.len() % bs, 0, "data must be whole blocks");
        for chunk in data.chunks_exact_mut(bs) {
            self.encrypt_block(chunk);
        }
    }

    /// Decrypts a buffer of whole blocks in place (ECB layout).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of the block size.
    fn decrypt_blocks(&self, data: &mut [u8]) {
        let bs = self.block_size();
        assert_eq!(data.len() % bs, 0, "data must be whole blocks");
        for chunk in data.chunks_exact_mut(bs) {
            self.decrypt_block(chunk);
        }
    }
}

impl<T: BlockCipher + ?Sized> BlockCipher for &T {
    fn block_size(&self) -> usize {
        (**self).block_size()
    }
    fn encrypt_block(&self, block: &mut [u8]) {
        (**self).encrypt_block(block)
    }
    fn decrypt_block(&self, block: &mut [u8]) {
        (**self).decrypt_block(block)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<T: BlockCipher + ?Sized> BlockCipher for Box<T> {
    fn block_size(&self) -> usize {
        (**self).block_size()
    }
    fn encrypt_block(&self, block: &mut [u8]) {
        (**self).encrypt_block(block)
    }
    fn decrypt_block(&self, block: &mut [u8]) {
        (**self).decrypt_block(block)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Selects a concrete cipher at configuration time.
///
/// # Examples
///
/// ```
/// use padlock_crypto::{BlockCipher, CipherKind};
///
/// let cipher = CipherKind::Aes128.instantiate(&[7u8; 16]);
/// assert_eq!(cipher.block_size(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CipherKind {
    /// DES with a 64-bit key (the paper's running example).
    #[default]
    Des,
    /// Two-key 3DES (EDE) with a 128-bit key.
    TripleDes,
    /// AES-128.
    Aes128,
}

impl CipherKind {
    /// Builds a boxed cipher from key material.
    ///
    /// The key bytes are consumed front-to-back; extra bytes are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `key` is shorter than the cipher requires
    /// (8 bytes for DES, 16 for 3DES/AES-128).
    pub fn instantiate(self, key: &[u8]) -> Box<dyn BlockCipher> {
        match self {
            CipherKind::Des => {
                let k = u64::from_be_bytes(key[..8].try_into().expect("8-byte DES key"));
                Box::new(crate::Des::new(k))
            }
            CipherKind::TripleDes => {
                let k1 = u64::from_be_bytes(key[..8].try_into().expect("16-byte 3DES key"));
                let k2 = u64::from_be_bytes(key[8..16].try_into().expect("16-byte 3DES key"));
                Box::new(crate::TripleDes::new(k1, k2))
            }
            CipherKind::Aes128 => {
                let k: [u8; 16] = key[..16].try_into().expect("16-byte AES key");
                Box::new(crate::Aes128::new(&k))
            }
        }
    }

    /// The block size of the chosen cipher, in bytes.
    pub fn block_size(self) -> usize {
        match self {
            CipherKind::Des | CipherKind::TripleDes => 8,
            CipherKind::Aes128 => 16,
        }
    }

    /// The key size the cipher expects, in bytes.
    pub fn key_size(self) -> usize {
        match self {
            CipherKind::Des => 8,
            CipherKind::TripleDes | CipherKind::Aes128 => 16,
        }
    }
}

impl fmt::Display for CipherKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CipherKind::Des => "DES",
            CipherKind::TripleDes => "3DES",
            CipherKind::Aes128 => "AES-128",
        };
        f.write_str(s)
    }
}

/// A deliberately weak test-double cipher: XORs a repeating key byte.
///
/// Useful in unit tests that need a `BlockCipher` with observable,
/// trivially invertible behaviour. **Provides no security whatsoever.**
///
/// # Examples
///
/// ```
/// use padlock_crypto::{BlockCipher, XorCipher};
///
/// let c = XorCipher::new(0x5A, 8);
/// let mut b = [0u8; 8];
/// c.encrypt_block(&mut b);
/// assert_eq!(b, [0x5A; 8]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorCipher {
    key: u8,
    block_size: usize,
}

impl XorCipher {
    /// Creates an XOR "cipher" with the given key byte and block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(key: u8, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self { key, block_size }
    }
}

impl BlockCipher for XorCipher {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn encrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), self.block_size);
        for b in block {
            *b ^= self.key;
        }
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        self.encrypt_block(block);
    }

    fn name(&self) -> &'static str {
        "xor-test-cipher"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cipher_kind_reports_sizes() {
        assert_eq!(CipherKind::Des.block_size(), 8);
        assert_eq!(CipherKind::Des.key_size(), 8);
        assert_eq!(CipherKind::TripleDes.block_size(), 8);
        assert_eq!(CipherKind::TripleDes.key_size(), 16);
        assert_eq!(CipherKind::Aes128.block_size(), 16);
        assert_eq!(CipherKind::Aes128.key_size(), 16);
    }

    #[test]
    fn instantiate_roundtrips_for_all_kinds() {
        let key = [0x42u8; 16];
        for kind in [CipherKind::Des, CipherKind::TripleDes, CipherKind::Aes128] {
            let c = kind.instantiate(&key);
            let mut block = vec![0xA5u8; c.block_size()];
            let original = block.clone();
            c.encrypt_block(&mut block);
            assert_ne!(block, original, "{kind} encryption must change data");
            c.decrypt_block(&mut block);
            assert_eq!(block, original, "{kind} must round-trip");
        }
    }

    #[test]
    fn blocks_helpers_cover_whole_buffer() {
        let c = XorCipher::new(0xFF, 4);
        let mut data = vec![0u8; 12];
        c.encrypt_blocks(&mut data);
        assert!(data.iter().all(|&b| b == 0xFF));
        c.decrypt_blocks(&mut data);
        assert!(data.iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "whole blocks")]
    fn blocks_helpers_reject_ragged_buffer() {
        let c = XorCipher::new(1, 4);
        let mut data = vec![0u8; 6];
        c.encrypt_blocks(&mut data);
    }

    #[test]
    fn trait_objects_and_references_delegate() {
        let c = XorCipher::new(3, 2);
        let as_ref: &dyn BlockCipher = &c;
        assert_eq!(as_ref.block_size(), 2);
        let boxed: Box<dyn BlockCipher> = Box::new(c);
        assert_eq!(boxed.name(), "xor-test-cipher");
        let mut b = [0u8; 2];
        boxed.encrypt_block(&mut b);
        assert_eq!(b, [3, 3]);
    }

    #[test]
    fn display_names() {
        assert_eq!(CipherKind::Des.to_string(), "DES");
        assert_eq!(CipherKind::TripleDes.to_string(), "3DES");
        assert_eq!(CipherKind::Aes128.to_string(), "AES-128");
    }
}
