//! A minimal arbitrary-precision unsigned integer, sufficient for the toy
//! RSA key-wrapping used in vendor software packaging.
//!
//! Little-endian `u32` limbs; schoolbook multiplication and binary long
//! division. Performance is irrelevant here (keys are wrapped once per
//! package), so the code optimises for being obviously correct and easy
//! to test — including property tests against `u128` arithmetic.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// # Examples
///
/// ```
/// use padlock_crypto::bignum::BigUint;
///
/// let a = BigUint::from_u64(1) << 100;
/// let b = &a + &BigUint::from_u64(5);
/// let (q, r) = b.div_rem(&BigUint::from_u64(7));
/// assert_eq!(&(&q * &BigUint::from_u64(7)) + &r, b);
/// ```
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct BigUint {
    /// Little-endian limbs with no trailing zeros (zero = empty).
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        Self::from_u64(1)
    }

    /// Builds a value from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = vec![v as u32, (v >> 32) as u32];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Self { limbs }
    }

    /// Builds a value from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(4));
        let mut iter = bytes.rchunks(4);
        for chunk in &mut iter {
            let mut limb = 0u32;
            for &b in chunk {
                limb = (limb << 8) | u32::from(b);
            }
            limbs.push(limb);
        }
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Self { limbs }
    }

    /// Serialises to big-endian bytes with no leading zeros (zero → empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u64::from(self.limbs[0])),
            2 => Some(u64::from(self.limbs[0]) | (u64::from(self.limbs[1]) << 32)),
            _ => None,
        }
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (zero → 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => 32 * (self.limbs.len() - 1) + (32 - top.leading_zeros() as usize),
        }
    }

    /// Reads bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 32)) & 1 == 1
    }

    fn trim(mut self) -> Self {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
        self
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.limbs.len().max(other.limbs.len());
        let mut limbs = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = u64::from(*self.limbs.get(i).unwrap_or(&0));
            let b = u64::from(*other.limbs.get(i).unwrap_or(&0));
            let sum = a + b + carry;
            limbs.push(sum as u32);
            carry = sum >> 32;
        }
        if carry != 0 {
            limbs.push(carry as u32);
        }
        Self { limbs }.trim()
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (the type is unsigned).
    pub fn sub(&self, other: &Self) -> Self {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = i64::from(self.limbs[i]);
            let b = i64::from(*other.limbs.get(i).unwrap_or(&0));
            let mut diff = a - b - borrow;
            if diff < 0 {
                diff += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs.push(diff as u32);
        }
        Self { limbs }.trim()
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut limbs = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = u64::from(limbs[i + j]) + u64::from(a) * u64::from(b) + carry;
                limbs[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = u64::from(limbs[k]) + carry;
                limbs[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        Self { limbs }.trim()
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut limbs = vec![0u32; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        Self { limbs }.trim()
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> Self {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = bits % 32;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (32 - bit_shift)
                } else {
                    0
                };
                limbs.push(lo | hi);
            }
        }
        Self { limbs }.trim()
    }

    /// Returns `(self / divisor, self % divisor)` by binary long division.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        if self < divisor {
            return (Self::zero(), self.clone());
        }
        let shift = self.bit_len() - divisor.bit_len();
        let mut remainder = self.clone();
        let mut quotient = Self::zero();
        let mut shifted = divisor.shl(shift);
        for s in (0..=shift).rev() {
            if remainder >= shifted {
                remainder = remainder.sub(&shifted);
                quotient = quotient.set_bit(s);
            }
            shifted = shifted.shr(1);
        }
        (quotient.trim(), remainder.trim())
    }

    fn set_bit(mut self, i: usize) -> Self {
        let limb = i / 32;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 32);
        self
    }

    /// `self % modulus`.
    pub fn rem(&self, modulus: &Self) -> Self {
        self.div_rem(modulus).1
    }

    /// `(self * other) % modulus`.
    pub fn mulmod(&self, other: &Self, modulus: &Self) -> Self {
        self.mul(other).rem(modulus)
    }

    /// `self^exponent mod modulus` by square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn modpow(&self, exponent: &Self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "modpow modulus must be nonzero");
        if modulus == &Self::one() {
            return Self::zero();
        }
        let mut result = Self::one();
        let mut base = self.rem(modulus);
        for i in 0..exponent.bit_len() {
            if exponent.bit(i) {
                result = result.mulmod(&base, modulus);
            }
            base = base.mulmod(&base, modulus);
        }
        result
    }

    /// Modular inverse of `self` mod `modulus` via extended Euclid, or
    /// `None` if `gcd(self, modulus) != 1`.
    pub fn mod_inverse(&self, modulus: &Self) -> Option<Self> {
        if modulus.is_zero() {
            return None;
        }
        // Extended Euclid with explicit sign tracking for the Bézout
        // coefficient of `self`.
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus);
        let mut t0 = (Self::zero(), false); // (magnitude, negative)
        let mut t1 = (Self::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q * t1 in signed arithmetic.
            let qt1 = q.mul(&t1.0);
            let t2 = signed_sub(&t0, &(qt1, t1.1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if r0 != Self::one() {
            return None;
        }
        let (mag, neg) = t0;
        Some(if neg { modulus.sub(&mag.rem(modulus)) } else { mag.rem(modulus) })
    }
}

/// Signed subtraction on `(magnitude, is_negative)` pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative.
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - b = -(a + b)
        (true, false) => (a.0.add(&b.0), true),
        // (-a) - (-b) = b - a
        (true, true) => {
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{self})")
    }
}

impl fmt::Display for BigUint {
    /// Hexadecimal rendering (decimal conversion is not needed anywhere in
    /// the simulator and would only invite bugs).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.limbs.is_empty() {
            return f.write_str("0");
        }
        write!(f, "{:x}", self.limbs.last().expect("limbs checked non-empty above"))?;
        for limb in self.limbs.iter().rev().skip(1) {
            write!(f, "{limb:08x}")?;
        }
        Ok(())
    }
}

impl std::ops::Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        BigUint::add(self, rhs)
    }
}

impl std::ops::Sub for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        BigUint::sub(self, rhs)
    }
}

impl std::ops::Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::mul(self, rhs)
    }
}

impl std::ops::Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        BigUint::shl(&self, bits)
    }
}

impl std::ops::Shr<usize> for BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        BigUint::shr(&self, bits)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// # Examples
///
/// ```
/// use padlock_crypto::bignum::{is_probable_prime, BigUint};
///
/// let mut rng = rand::thread_rng();
/// assert!(is_probable_prime(&BigUint::from_u64(65_537), 16, &mut rng));
/// assert!(!is_probable_prime(&BigUint::from_u64(65_536), 16, &mut rng));
/// ```
pub fn is_probable_prime(n: &BigUint, rounds: u32, rng: &mut impl rand::Rng) -> bool {
    let two = BigUint::from_u64(2);
    let three = BigUint::from_u64(3);
    if n < &two {
        return false;
    }
    if n == &two || n == &three {
        return true;
    }
    if n.is_even() {
        return false;
    }
    // Quick trial division by small primes.
    for p in [3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] {
        let pb = BigUint::from_u64(p);
        if n == &pb {
            return true;
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }
    let one = BigUint::one();
    let n_minus_1 = n.sub(&one);
    // n - 1 = d * 2^s with d odd.
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }
    'witness: for _ in 0..rounds {
        let a = random_below(&n_minus_1, rng).add(&two).rem(n);
        if a < two {
            continue;
        }
        let mut x = a.modpow(&d, n);
        if x == one || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = x.mulmod(&x.clone(), n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Uniform random value in `[0, bound)`.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn random_below(bound: &BigUint, rng: &mut impl rand::Rng) -> BigUint {
    assert!(!bound.is_zero(), "random_below bound must be positive");
    let bytes = bound.bit_len().div_ceil(8);
    loop {
        let mut buf = vec![0u8; bytes];
        rng.fill_bytes(&mut buf);
        // Mask the top byte so the rejection rate stays below 50%.
        let top_bits = bound.bit_len() % 8;
        if top_bits != 0 {
            buf[0] &= (1u8 << top_bits) - 1;
        }
        let candidate = BigUint::from_bytes_be(&buf);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn random_prime(bits: usize, rng: &mut impl rand::Rng) -> BigUint {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let bytes = bits.div_ceil(8);
        let mut buf = vec![0u8; bytes];
        rng.fill_bytes(&mut buf);
        let mut candidate = BigUint::from_bytes_be(&buf);
        // Force exact bit width and oddness.
        candidate = candidate.rem(&BigUint::one().shl(bits));
        candidate = candidate.set_bit(bits - 1).set_bit(0);
        if is_probable_prime(&candidate, 20, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_to_bytes_roundtrip() {
        let v = BigUint::from_bytes_be(&[0x01, 0x02, 0x03, 0x04, 0x05]);
        assert_eq!(v.to_bytes_be(), vec![0x01, 0x02, 0x03, 0x04, 0x05]);
        assert_eq!(BigUint::zero().to_bytes_be(), Vec::<u8>::new());
    }

    #[test]
    fn leading_zero_bytes_are_canonicalised() {
        let v = BigUint::from_bytes_be(&[0, 0, 0x12, 0x34]);
        assert_eq!(v, BigUint::from_u64(0x1234));
    }

    #[test]
    fn bit_len_and_bit_access() {
        let v = BigUint::from_u64(0b1011_0000);
        assert_eq!(v.bit_len(), 8);
        assert!(v.bit(7));
        assert!(!v.bit(6));
        assert!(v.bit(5));
        assert!(!v.bit(100));
        assert_eq!(BigUint::zero().bit_len(), 0);
    }

    #[test]
    fn division_identity_on_fixed_values() {
        let a = BigUint::from_bytes_be(&[0xFF; 20]);
        let b = BigUint::from_bytes_be(&[0x13, 0x37, 0x42]);
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = BigUint::one().sub(&BigUint::from_u64(2));
    }

    #[test]
    fn modpow_matches_small_cases() {
        // 5^13 mod 97 = 26 (check with u64 arithmetic: computed below)
        let expected = {
            let mut r: u64 = 1;
            for _ in 0..13 {
                r = r * 5 % 97;
            }
            r
        };
        let got = BigUint::from_u64(5)
            .modpow(&BigUint::from_u64(13), &BigUint::from_u64(97))
            .to_u64()
            .unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn modpow_fermat_little_theorem() {
        // a^(p-1) = 1 mod p for prime p and gcd(a,p)=1.
        let p = BigUint::from_u64(1_000_000_007);
        let a = BigUint::from_u64(123_456_789);
        let e = p.sub(&BigUint::one());
        assert_eq!(a.modpow(&e, &p), BigUint::one());
    }

    #[test]
    fn mod_inverse_small_cases() {
        let inv = BigUint::from_u64(3)
            .mod_inverse(&BigUint::from_u64(11))
            .unwrap();
        assert_eq!(inv.to_u64().unwrap(), 4); // 3*4 = 12 = 1 mod 11
        assert_eq!(
            BigUint::from_u64(2).mod_inverse(&BigUint::from_u64(4)),
            None
        );
    }

    #[test]
    fn mod_inverse_of_e_for_rsa_style_modulus() {
        let e = BigUint::from_u64(65_537);
        let phi = BigUint::from_u64(3_120_000_004u64); // arbitrary even phi coprime to e
        if let Some(d) = e.mod_inverse(&phi) {
            assert_eq!(e.mulmod(&d, &phi), BigUint::one());
        }
    }

    #[test]
    fn known_primes_and_composites() {
        let mut rng = rand::thread_rng();
        for p in [2u64, 3, 5, 7, 97, 65_537, 1_000_000_007] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 16, &mut rng),
                "{p} should be prime"
            );
        }
        for c in [1u64, 4, 100, 65_535, 1_000_000_008, 561, 41041] {
            // 561 and 41041 are Carmichael numbers.
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn random_prime_has_requested_width() {
        let mut rng = rand::thread_rng();
        let p = random_prime(96, &mut rng);
        assert_eq!(p.bit_len(), 96);
        assert!(!p.is_even());
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(BigUint::from_u64(0xDEADBEEF).to_string(), "deadbeef");
        assert_eq!(BigUint::zero().to_string(), "0");
        let big = BigUint::one().shl(64);
        assert_eq!(big.to_string(), "10000000000000000");
    }

    fn to_u128(v: &BigUint) -> u128 {
        let bytes = v.to_bytes_be();
        let mut out = 0u128;
        for b in bytes {
            out = (out << 8) | u128::from(b);
        }
        out
    }

    proptest! {
        #[test]
        fn add_matches_u128(a in 0u64.., b in 0u64..) {
            let r = BigUint::from_u64(a).add(&BigUint::from_u64(b));
            prop_assert_eq!(to_u128(&r), u128::from(a) + u128::from(b));
        }

        #[test]
        fn mul_matches_u128(a in 0u64.., b in 0u64..) {
            let r = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
            prop_assert_eq!(to_u128(&r), u128::from(a) * u128::from(b));
        }

        #[test]
        fn div_rem_matches_u64(a in 0u64.., b in 1u64..) {
            let (q, r) = BigUint::from_u64(a).div_rem(&BigUint::from_u64(b));
            prop_assert_eq!(q.to_u64().unwrap(), a / b);
            prop_assert_eq!(r.to_u64().unwrap(), a % b);
        }

        #[test]
        fn sub_matches_u64(a in 0u64.., b in 0u64..) {
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            let r = BigUint::from_u64(hi).sub(&BigUint::from_u64(lo));
            prop_assert_eq!(r.to_u64().unwrap(), hi - lo);
        }

        #[test]
        fn shifts_are_inverse(a in 0u64.., s in 0usize..40) {
            let v = BigUint::from_u64(a);
            prop_assert_eq!(v.shl(s).shr(s), v);
        }

        #[test]
        fn bytes_roundtrip(bytes in proptest::collection::vec(0u8.., 0..40)) {
            let v = BigUint::from_bytes_be(&bytes);
            let back = BigUint::from_bytes_be(&v.to_bytes_be());
            prop_assert_eq!(v, back);
        }

        #[test]
        fn modpow_matches_u128(base in 0u64..1000, exp in 0u64..32, m in 2u64..100_000) {
            let expected = {
                let mut r: u128 = 1;
                for _ in 0..exp {
                    r = r * u128::from(base) % u128::from(m);
                }
                r
            };
            let got = BigUint::from_u64(base)
                .modpow(&BigUint::from_u64(exp), &BigUint::from_u64(m));
            prop_assert_eq!(to_u128(&got), expected);
        }

        #[test]
        fn mod_inverse_verifies(a in 1u64..10_000, m in 2u64..10_000) {
            let av = BigUint::from_u64(a);
            let mv = BigUint::from_u64(m);
            if let Some(inv) = av.mod_inverse(&mv) {
                prop_assert_eq!(av.mulmod(&inv, &mv), BigUint::one());
                prop_assert!(inv < mv);
            }
        }
    }
}
