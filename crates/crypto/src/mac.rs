//! CBC-MAC over a block cipher, bound to a memory address.
//!
//! The XOM model (paper §2.2) attaches a MAC to each memory block so
//! spoofing (arbitrary replacement) and splicing (moving valid ciphertext
//! between addresses) are detected. Binding the address into the first
//! MAC block is what defeats splicing.

use crate::block::BlockCipher;

/// A CBC-MAC tag (truncated to 8 bytes, like the paper's per-block hash).
pub type MacTag = [u8; 8];

/// CBC-MAC authenticator.
///
/// The MAC is computed over `len(data) || address || data` with zero IV and
/// zero padding of the final partial block. Length prefixing closes the
/// classic CBC-MAC extension weakness for variable-length inputs; the
/// address binding implements the paper's splicing defence.
///
/// # Examples
///
/// ```
/// use padlock_crypto::{CbcMac, Des};
///
/// let mac = CbcMac::new(Des::new(0xA5A5_5A5A_0101_1010));
/// let tag = mac.tag(0x4000, b"ciphertext line bytes");
/// assert!(mac.verify(0x4000, b"ciphertext line bytes", &tag));
/// assert!(!mac.verify(0x4080, b"ciphertext line bytes", &tag)); // splice
/// ```
#[derive(Debug, Clone)]
pub struct CbcMac<C> {
    cipher: C,
}

impl<C: BlockCipher> CbcMac<C> {
    /// Creates a MAC engine over the given cipher.
    pub fn new(cipher: C) -> Self {
        Self { cipher }
    }

    /// Computes the tag for `data` stored at `address`.
    pub fn tag(&self, address: u64, data: &[u8]) -> MacTag {
        let bs = self.cipher.block_size();
        let mut state = vec![0u8; bs];

        let mut header = Vec::with_capacity(16);
        header.extend_from_slice(&(data.len() as u64).to_be_bytes());
        header.extend_from_slice(&address.to_be_bytes());

        let absorb = |bytes: &[u8], state: &mut Vec<u8>| {
            for chunk in bytes.chunks(bs) {
                for (i, b) in chunk.iter().enumerate() {
                    state[i] ^= b;
                }
                self.cipher.encrypt_block(state);
            }
        };
        absorb(&header, &mut state);
        absorb(data, &mut state);

        let mut tag = [0u8; 8];
        let n = tag.len().min(state.len());
        tag[..n].copy_from_slice(&state[..n]);
        tag
    }

    /// Verifies a tag for `data` stored at `address`.
    pub fn verify(&self, address: u64, data: &[u8], tag: &MacTag) -> bool {
        // Constant-time comparison is irrelevant in a simulator, but cheap.
        let expected = self.tag(address, data);
        expected
            .iter()
            .zip(tag)
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aes128, Des};

    fn mac() -> CbcMac<Des> {
        CbcMac::new(Des::new(0x0123_4567_89AB_CDEF))
    }

    #[test]
    fn tag_is_deterministic() {
        let m = mac();
        assert_eq!(m.tag(16, b"hello line"), m.tag(16, b"hello line"));
    }

    #[test]
    fn detects_data_tampering() {
        let m = mac();
        let tag = m.tag(0x100, b"original data 0123");
        assert!(!m.verify(0x100, b"original data 0124", &tag));
    }

    #[test]
    fn detects_splicing_between_addresses() {
        let m = mac();
        let tag = m.tag(0x100, b"line payload");
        assert!(m.verify(0x100, b"line payload", &tag));
        assert!(!m.verify(0x180, b"line payload", &tag));
    }

    #[test]
    fn length_prefix_separates_padded_inputs() {
        // Without length prefixing, "ab" + zero padding would collide with
        // "ab\0".
        let m = mac();
        assert_ne!(m.tag(0, b"ab"), m.tag(0, b"ab\0"));
    }

    #[test]
    fn empty_data_has_a_tag() {
        let m = mac();
        let tag = m.tag(0x40, b"");
        assert!(m.verify(0x40, b"", &tag));
        assert!(!m.verify(0x41, b"", &tag));
    }

    #[test]
    fn works_over_aes_blocks_too() {
        let m = CbcMac::new(Aes128::new(&[7u8; 16]));
        let data = vec![0x5Au8; 128];
        let tag = m.tag(0x2000, &data);
        assert!(m.verify(0x2000, &data, &tag));
        let mut tampered = data.clone();
        tampered[127] ^= 1;
        assert!(!m.verify(0x2000, &tampered, &tag));
    }

    #[test]
    fn different_keys_produce_different_tags() {
        let a = CbcMac::new(Des::new(1));
        let b = CbcMac::new(Des::new(2));
        assert_ne!(a.tag(0, b"payload"), b.tag(0, b"payload"));
    }
}
