//! Property-based tests over the cryptographic substrate: round-trip
//! laws, avalanche behaviour, and MAC sensitivity for arbitrary inputs.

use padlock_crypto::{
    Aes128, BlockCipher, CbcMac, CipherKind, Des, OneTimePad, Sha256, TripleDes,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn des_roundtrips_any_block_under_any_key(key in any::<u64>(), block in any::<u64>()) {
        let des = Des::new(key);
        prop_assert_eq!(des.decrypt_u64(des.encrypt_u64(block)), block);
    }

    #[test]
    fn triple_des_roundtrips(k1 in any::<u64>(), k2 in any::<u64>(), block in any::<u64>()) {
        let tdes = TripleDes::new(k1, k2);
        prop_assert_eq!(tdes.decrypt_u64(tdes.encrypt_u64(block)), block);
    }

    #[test]
    fn aes_roundtrips(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        let mut buf = block;
        aes.encrypt_block(&mut buf);
        aes.decrypt_block(&mut buf);
        prop_assert_eq!(buf, block);
    }

    /// A single flipped plaintext bit changes roughly half the
    /// ciphertext bits (avalanche); we only assert a conservative floor.
    #[test]
    fn des_avalanche(key in any::<u64>(), block in any::<u64>(), bit in 0u32..64) {
        let des = Des::new(key);
        let a = des.encrypt_u64(block);
        let b = des.encrypt_u64(block ^ (1u64 << bit));
        prop_assert!((a ^ b).count_ones() >= 8, "only {} bits differ", (a ^ b).count_ones());
    }

    /// One-time-pad application is an involution for every seed/payload.
    #[test]
    fn otp_is_an_involution(
        seed in any::<u64>(),
        blocks in 1usize..8,
        fill in any::<u8>(),
    ) {
        let otp = OneTimePad::new(Des::new(0xFEED_FACE_CAFE_BEEF));
        let data = vec![fill; blocks * 8];
        let ct = otp.encrypt(seed, &data);
        prop_assert_eq!(otp.decrypt(seed, &ct), data);
    }

    /// Distinct seeds produce distinct pads (no accidental reuse across
    /// line-aligned seeds).
    #[test]
    fn otp_line_seeds_do_not_collide(a in 0u64..1 << 24, b in 0u64..1 << 24) {
        prop_assume!(a != b);
        let otp = OneTimePad::new(Des::new(3));
        // Line-aligned seeds (128 apart) never share counter blocks.
        prop_assert_ne!(otp.pad(a * 128, 128), otp.pad(b * 128, 128));
    }

    /// Any single byte flip anywhere in the line changes the MAC.
    #[test]
    fn mac_detects_any_single_byte_change(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        idx in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mac = CbcMac::new(CipherKind::Aes128.instantiate(&[9u8; 16]));
        let tag = mac.tag(0x4000, &data);
        let mut tampered = data.clone();
        let i = idx.index(tampered.len());
        tampered[i] ^= flip;
        prop_assert!(!mac.verify(0x4000, &tampered, &tag));
    }

    /// The MAC binds the address: the same data never verifies at a
    /// different line address.
    #[test]
    fn mac_binds_address(
        data in proptest::collection::vec(any::<u8>(), 0..64),
        addr in 0u64..1 << 30,
        delta in 1u64..1 << 20,
    ) {
        let mac = CbcMac::new(CipherKind::Des.instantiate(&[5u8; 8]));
        let tag = mac.tag(addr, &data);
        prop_assert!(mac.verify(addr, &data, &tag));
        prop_assert!(!mac.verify(addr + delta, &data, &tag));
    }

    /// Incremental hashing equals one-shot hashing for any split points.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cut in any::<prop::sample::Index>(),
    ) {
        let split = cut.index(data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }
}
