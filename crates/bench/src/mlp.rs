//! The memory-level-parallelism sweep: read throughput of the
//! transaction engine as `max_inflight` × `snc_shards` grow.
//!
//! The paper's latency model charges each L2 miss in isolation, which
//! leaves all MLP on the table; the engine overlaps outstanding misses
//! on the DRAM channel, batches their pad generations through the
//! crypto pipeline, and spreads their SNC probes over shard ports. This
//! module drives the engine's batch surface directly with a miss-heavy
//! trace (every line previously written back, working set far beyond
//! SNC coverage, so almost every read takes Algorithm 1's
//! sequence-fetch path) and reports simulated cycles per read.
//!
//! The sweep runs with a deliberately CAM-limited SNC port
//! (16 cycles per probe) so the lookup-contention regime that sharding
//! addresses is visible; the default configuration keeps probes cheap.

use padlock_core::{SecureBackend, SecureBackendConfig, SecurityMode, SncConfig};
use padlock_cpu::{LineKind, MemoryBackend};
use padlock_stats::Table;

/// SNC port occupancy used by the sweep: a large fully associative CAM
/// whose probe occupies the port longer than one DRAM burst slot.
pub const SWEEP_SNC_PORT_CYCLES: u64 = 16;

/// One cell of the MLP sweep.
#[derive(Debug, Clone, Copy)]
pub struct MlpPoint {
    /// In-flight transaction bound for this run.
    pub max_inflight: usize,
    /// SNC shard count for this run.
    pub snc_shards: usize,
    /// Reads retired.
    pub reads: usize,
    /// Cycle the last read retired (batch issued at cycle 0).
    pub total_cycles: u64,
}

impl MlpPoint {
    /// Average simulated cycles per retired read.
    pub fn cycles_per_read(&self) -> f64 {
        self.total_cycles as f64 / self.reads.max(1) as f64
    }
}

/// Builds the miss-heavy controller the sweep measures: a 64-entry LRU
/// SNC against `lines` previously written lines, so reads beyond the
/// small resident tail all pay the sequence-fetch path.
pub fn miss_heavy_backend(max_inflight: usize, snc_shards: usize, lines: u64) -> SecureBackend {
    let snc = SncConfig::paper_default().with_capacity(128);
    let cfg = SecureBackendConfig::paper(SecurityMode::Otp { snc })
        .with_max_inflight(max_inflight)
        .with_snc_shards(snc_shards)
        .with_snc_port_cycles(SWEEP_SNC_PORT_CYCLES);
    let mut backend = SecureBackend::new(cfg);
    backend.pre_age((0..lines).map(line_addr), std::iter::empty());
    backend
}

/// Covered line `i`'s address; consecutive lines rotate shards, so the
/// trace is per-shard balanced for every shard count.
fn line_addr(i: u64) -> u64 {
    0x10_0000 + i * 128
}

/// Runs one sweep cell: a batch of `lines` independent reads issued at
/// cycle 0 through the engine's batch surface.
pub fn run_mlp_point(max_inflight: usize, snc_shards: usize, lines: u64) -> MlpPoint {
    let mut backend = miss_heavy_backend(max_inflight, snc_shards, lines);
    let reqs: Vec<(u64, LineKind)> =
        (0..lines).map(|i| (line_addr(i), LineKind::Data)).collect();
    let dones = backend.line_read_batch(0, &reqs);
    MlpPoint {
        max_inflight,
        snc_shards,
        reads: reqs.len(),
        total_cycles: dones.into_iter().max().unwrap_or(0),
    }
}

/// The full sweep as a rendered table: one row per `max_inflight`, one
/// column per shard count, each cell `cycles/read (speedup vs the
/// blocking 1×1 controller)`.
pub fn mlp_table(inflights: &[usize], shard_counts: &[usize], lines: u64) -> Table {
    let mut header = vec!["inflight".to_string()];
    for s in shard_counts {
        header.push(format!("{s} shard{}", if *s == 1 { "" } else { "s" }));
    }
    let mut table = Table::new(header);
    let base_point = run_mlp_point(1, 1, lines);
    let base = base_point.cycles_per_read();
    for &inflight in inflights {
        let mut row = vec![inflight.to_string()];
        for &shards in shard_counts {
            let p = if (inflight, shards) == (1, 1) {
                base_point
            } else {
                run_mlp_point(inflight, shards, lines)
            };
            row.push(format!(
                "{:7.1} cyc/read ({:4.2}x)",
                p.cycles_per_read(),
                base / p.cycles_per_read()
            ));
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_throughput_improves_monotonically_with_inflight() {
        let lines = 512;
        let mut last = u64::MAX;
        for inflight in [1usize, 2, 4, 8, 16] {
            let p = run_mlp_point(inflight, 1, lines);
            assert!(
                p.total_cycles <= last,
                "inflight {inflight}: {} after {last}",
                p.total_cycles
            );
            last = p.total_cycles;
        }
        // And the gain is substantial, not marginal.
        let serial = run_mlp_point(1, 1, lines);
        let deep = run_mlp_point(16, 1, lines);
        assert!(
            serial.total_cycles as f64 / deep.total_cycles as f64 > 2.0,
            "serial {} vs deep {}",
            serial.total_cycles,
            deep.total_cycles
        );
    }

    #[test]
    fn sharding_relieves_port_contention_under_deep_inflight() {
        let lines = 512;
        let one = run_mlp_point(16, 1, lines);
        let four = run_mlp_point(16, 4, lines);
        assert!(
            four.total_cycles <= one.total_cycles,
            "4 shards {} vs 1 shard {}",
            four.total_cycles,
            one.total_cycles
        );
    }

    #[test]
    fn table_has_a_row_per_inflight_level() {
        let t = mlp_table(&[1, 4], &[1, 2], 128);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.col_count(), 3);
        let text = t.render_text();
        assert!(text.contains("cyc/read"), "{text}");
    }
}
