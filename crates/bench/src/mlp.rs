//! The memory-level-parallelism sweeps: engine read throughput as
//! `max_inflight` × `snc_shards` × `mem_channels` grow, and the
//! end-to-end machine speedup on a recorded real-workload trace as the
//! hierarchy's MSHR file and the DRAM channel fabric deepen.
//!
//! The paper's latency model charges each L2 miss in isolation, which
//! leaves all MLP on the table. Two layers recover it:
//!
//! * the **transaction engine** overlaps outstanding misses on the DRAM
//!   fabric, batches their pad generations through the crypto pipeline,
//!   and spreads their SNC probes over shard ports
//!   ([`run_mlp_point`] drives its batch surface directly);
//! * the **hierarchy's L2 MSHR file** is what feeds the engine from a
//!   *real* instruction stream: misses stay in flight while the
//!   out-of-order core runs ahead, then drain in one arrival-preserving
//!   batch ([`run_e2e_point`] measures whole machines on a trace
//!   recorded from a benchmark workload).
//!
//! Every grid cell is an independent pure function of its parameters,
//! so each table builder takes a [`SweepPool`] and fans its cells
//! across worker threads; results come back in submission order, so
//! the rendered tables and JSON lines are byte-identical regardless of
//! the pool's job count.
//!
//! The batch sweep runs with a deliberately CAM-limited SNC port
//! (16 cycles per probe) so the lookup-contention regime that sharding
//! addresses is visible; the default configuration keeps probes cheap.

use padlock_core::{
    Machine, MachineConfig, SecureBackend, SecureBackendConfig, SecurityMode, SncConfig,
};
use padlock_cpu::{LineKind, MemoryBackend, Workload};
use padlock_exec::SweepPool;
use padlock_mem::{DrainOrder, PagePolicy};
use padlock_stats::Table;
use padlock_workloads::{benchmark_profile, SpecWorkload, TracePlayer, TraceRecorder, CHASE_BASE};
use std::collections::BTreeMap;

/// SNC port occupancy used by the batch sweep: a large fully
/// associative CAM whose probe occupies the port longer than one DRAM
/// burst slot.
pub const SWEEP_SNC_PORT_CYCLES: u64 = 16;

/// One cell of the engine-level MLP sweep.
#[derive(Debug, Clone, Copy)]
pub struct MlpPoint {
    /// In-flight transaction bound for this run.
    pub max_inflight: usize,
    /// SNC shard count for this run.
    pub snc_shards: usize,
    /// DRAM channel count for this run.
    pub mem_channels: usize,
    /// DRAM banks per channel for this run (1 = flat).
    pub mem_banks: usize,
    /// Reads retired.
    pub reads: usize,
    /// Cycle the last read retired (batch issued at cycle 0).
    pub total_cycles: u64,
}

impl MlpPoint {
    /// Average simulated cycles per retired read.
    pub fn cycles_per_read(&self) -> f64 {
        self.total_cycles as f64 / self.reads.max(1) as f64
    }

    /// The cell as one JSON line. Every field is a simulated quantity,
    /// so the line is identical for any `--jobs` count.
    pub fn jsonl(&self) -> String {
        format!(
            "{{\"kind\":\"mlp\",\"inflight\":{},\"shards\":{},\"channels\":{},\
             \"banks\":{},\"reads\":{},\"total_cycles\":{}}}",
            self.max_inflight,
            self.snc_shards,
            self.mem_channels,
            self.mem_banks,
            self.reads,
            self.total_cycles
        )
    }
}

/// Builds the miss-heavy controller the batch sweep measures: a
/// 64-entry LRU SNC against `lines` previously written lines, so reads
/// beyond the small resident tail all pay the sequence-fetch path.
pub fn miss_heavy_backend(
    max_inflight: usize,
    snc_shards: usize,
    mem_channels: usize,
    mem_banks: usize,
    order: DrainOrder,
    page: PagePolicy,
    lines: u64,
) -> SecureBackend {
    let snc = SncConfig::paper_default().with_capacity(128);
    let cfg = SecureBackendConfig::paper(SecurityMode::Otp { snc })
        .with_max_inflight(max_inflight)
        .with_snc_shards(snc_shards)
        .with_mem_channels(mem_channels)
        .with_mem_banks(mem_banks)
        .with_drain_order(order)
        .with_page_policy(page)
        .with_snc_port_cycles(SWEEP_SNC_PORT_CYCLES);
    let mut backend = SecureBackend::new(cfg);
    backend.pre_age((0..lines).map(line_addr), std::iter::empty());
    backend
}

/// Covered line `i`'s address; consecutive lines rotate shards and
/// channels, so the trace is balanced for every shard/channel count.
fn line_addr(i: u64) -> u64 {
    0x10_0000 + i * 128
}

/// Runs one batch-sweep cell: `lines` independent reads issued at
/// cycle 0 through the engine's batch surface.
pub fn run_mlp_point(
    max_inflight: usize,
    snc_shards: usize,
    mem_channels: usize,
    mem_banks: usize,
    order: DrainOrder,
    page: PagePolicy,
    lines: u64,
) -> MlpPoint {
    let mut backend = miss_heavy_backend(
        max_inflight,
        snc_shards,
        mem_channels,
        mem_banks,
        order,
        page,
        lines,
    );
    let reqs: Vec<(u64, LineKind)> =
        (0..lines).map(|i| (line_addr(i), LineKind::Data)).collect();
    let dones = backend.line_read_batch(0, &reqs);
    let total_cycles = dones.into_iter().max().unwrap_or(0);
    crate::meter::record_simulated_cycles(total_cycles);
    MlpPoint {
        max_inflight,
        snc_shards,
        mem_channels,
        mem_banks,
        reads: reqs.len(),
        total_cycles,
    }
}

/// The batch sweep as a rendered table: one row per `max_inflight`,
/// one column per (shards × channels) pair, each cell `cycles/read
/// (speedup vs the blocking single-channel 1×1 controller)`. All cells
/// fan across `pool`.
pub fn mlp_table(
    pool: &SweepPool,
    inflights: &[usize],
    shard_counts: &[usize],
    channel_counts: &[usize],
    lines: u64,
) -> Table {
    let mut cells: Vec<(usize, usize, usize)> = vec![(1, 1, 1)];
    for &inflight in inflights {
        for &shards in shard_counts {
            for &channels in channel_counts {
                if (inflight, shards, channels) != (1, 1, 1) {
                    cells.push((inflight, shards, channels));
                }
            }
        }
    }
    let points = pool.sweep(&cells, |&(inflight, shards, channels)| {
        run_mlp_point(
            inflight,
            shards,
            channels,
            1,
            DrainOrder::Fifo,
            PagePolicy::Open,
            lines,
        )
    });
    let by_cell: BTreeMap<(usize, usize, usize), MlpPoint> =
        cells.into_iter().zip(points).collect();
    let base_point = by_cell[&(1, 1, 1)];
    let base = base_point.cycles_per_read();

    let mut header = vec!["inflight".to_string()];
    for &s in shard_counts {
        for &c in channel_counts {
            header.push(format!("{s}sh x {c}ch"));
        }
    }
    let mut table = Table::new(header);
    for &inflight in inflights {
        let mut row = vec![inflight.to_string()];
        for &shards in shard_counts {
            for &channels in channel_counts {
                let p = by_cell[&(inflight, shards, channels)];
                row.push(format!(
                    "{:7.1} cyc/read ({:4.2}x)",
                    p.cycles_per_read(),
                    base / p.cycles_per_read()
                ));
            }
        }
        table.push_row(row);
    }
    table
}

// ---- End-to-end machine sweep over a recorded trace ----

/// A benchmark trace captured once and replayed into every machine
/// configuration, plus the pre-age feeds the workload declares — so
/// every cell of the end-to-end sweep sees the identical dynamic
/// instruction stream (trace-driven SimpleScalar style).
#[derive(Debug, Clone)]
pub struct E2eTrace {
    player: TracePlayer,
    ancient: Vec<u64>,
    active: Vec<u64>,
    warmup: u64,
    measure: u64,
}

impl E2eTrace {
    /// Records `warmup + measure` ops (capped at 1M; the player loops)
    /// from the named benchmark's generator.
    ///
    /// The pre-age feeds treat the pointer-chase region as previously
    /// written back (the structure — graph, netlist, tree — was built
    /// in place by earlier program phases), so its reads take
    /// Algorithm 1's sequence-fetch path rather than the clean-line
    /// bypass: the miss-heavy regime the sweep is about.
    pub fn record(benchmark: &str, warmup: u64, measure: u64) -> Self {
        let profile = benchmark_profile(benchmark);
        let chase_lines = profile.chase_bytes / 128;
        let feeds = SpecWorkload::new(profile.clone());
        let mut ancient: Vec<u64> =
            (0..chase_lines).map(|i| CHASE_BASE + i * 128).collect();
        ancient.extend(feeds.ancient_line_addrs());
        let active: Vec<u64> = feeds.active_line_addrs().collect();
        let mut rec = TraceRecorder::new(SpecWorkload::new(profile));
        let ops = (warmup + measure).min(1_000_000);
        for _ in 0..ops {
            rec.next_op();
        }
        Self {
            player: TracePlayer::new(benchmark.to_string(), rec.into_trace()),
            ancient,
            active,
            warmup,
            measure,
        }
    }

    /// The trace's benchmark name.
    pub fn name(&self) -> &str {
        self.player.name()
    }

    /// A fresh replay cursor over the recorded ops (loops at the end).
    pub fn clone_player(&self) -> TracePlayer {
        self.player.clone()
    }

    /// Pre-aged "written long ago" line addresses for
    /// [`SecureBackend::pre_age`].
    pub fn ancient_lines(&self) -> &[u64] {
        &self.ancient
    }

    /// Recently written line addresses for [`SecureBackend::pre_age`].
    pub fn active_lines(&self) -> &[u64] {
        &self.active
    }

    /// The recorded warm-up window length in ops.
    pub fn warmup_ops(&self) -> u64 {
        self.warmup
    }

    /// The recorded measurement window length in ops.
    pub fn measure_ops(&self) -> u64 {
        self.measure
    }
}

/// One end-to-end grid cell's machine parameters: the structural axes
/// (MSHRs × channels × banks × in-flight bound) plus the scheduling
/// knobs, which default to the paper configuration (arrival-order
/// drains, open-page banks, no idle-keyed drains).
#[derive(Debug, Clone, Copy)]
pub struct E2eParams {
    /// Hierarchy MSHR depth.
    pub l2_mshrs: usize,
    /// DRAM channel (and paired SNC shard) count.
    pub mem_channels: usize,
    /// DRAM banks per channel (1 = flat).
    pub mem_banks: usize,
    /// Engine in-flight bound.
    pub max_inflight: usize,
    /// Drain order (FIFO vs FR-FCFS row-first).
    pub order: DrainOrder,
    /// Bank page policy (open vs closed).
    pub page: PagePolicy,
    /// Idle-keyed MSHR drain trigger (PR 6's scheduler follow-on (a)).
    pub drain_on_idle: bool,
    /// Speculative singleton-window miss issue with replay-on-coupling
    /// (`HierarchyConfig::speculative_completions`); bit-exact in
    /// cycles and shared counters with the parked drains it replaces.
    pub speculative: bool,
}

impl E2eParams {
    /// Structural axes with paper-default scheduling knobs.
    pub fn new(
        l2_mshrs: usize,
        mem_channels: usize,
        mem_banks: usize,
        max_inflight: usize,
    ) -> Self {
        Self {
            l2_mshrs,
            mem_channels,
            mem_banks,
            max_inflight,
            order: DrainOrder::Fifo,
            page: PagePolicy::Open,
            drain_on_idle: false,
            speculative: false,
        }
    }

    /// Sets the drain order.
    pub fn with_order(mut self, order: DrainOrder) -> Self {
        self.order = order;
        self
    }

    /// Sets the page policy.
    pub fn with_page(mut self, page: PagePolicy) -> Self {
        self.page = page;
        self
    }

    /// Sets the idle-keyed drain trigger.
    pub fn with_drain_on_idle(mut self, on: bool) -> Self {
        self.drain_on_idle = on;
        self
    }

    /// Sets speculative singleton-window miss issue.
    pub fn with_speculative(mut self, on: bool) -> Self {
        self.speculative = on;
        self
    }
}

/// One cell of the end-to-end sweep.
#[derive(Debug, Clone, Copy)]
pub struct E2ePoint {
    /// Hierarchy MSHR depth for this run.
    pub l2_mshrs: usize,
    /// DRAM channel (and paired SNC shard) count for this run.
    pub mem_channels: usize,
    /// DRAM banks per channel for this run (1 = flat).
    pub mem_banks: usize,
    /// Engine in-flight bound for this run.
    pub max_inflight: usize,
    /// Cycles of the measured window.
    pub cycles: u64,
    /// Ops committed in the measured window.
    pub instructions: u64,
    /// Row-buffer hits observed in the measured window (banked runs).
    pub row_hits: u64,
    /// Row-buffer conflicts observed in the measured window.
    pub row_conflicts: u64,
    /// Idle-keyed MSHR drains in the measured window (0 unless the run
    /// enabled `drain_on_idle`).
    pub idle_drains: u64,
    /// Misses issued speculatively as singleton windows in the measured
    /// window (0 unless the run enabled `speculative`).
    pub speculative_issues: u64,
    /// Speculated windows that coupled and replayed as parked batches
    /// in the measured window.
    pub window_replays: u64,
}

impl E2ePoint {
    /// Cycles per instruction of the measured window.
    pub fn cpi(&self) -> f64 {
        self.cycles as f64 / self.instructions.max(1) as f64
    }

    /// The cell as one JSON line tagged with its trace name. Every
    /// field is a simulated quantity, so the line is identical for any
    /// `--jobs` count.
    pub fn jsonl(&self, trace: &str) -> String {
        format!(
            "{{\"kind\":\"e2e\",\"trace\":\"{}\",\"mshrs\":{},\"channels\":{},\
             \"banks\":{},\"inflight\":{},\"cycles\":{},\"instructions\":{},\
             \"row_hits\":{},\"row_conflicts\":{},\"idle_drains\":{},\
             \"speculative_issues\":{},\"window_replays\":{}}}",
            trace,
            self.l2_mshrs,
            self.mem_channels,
            self.mem_banks,
            self.max_inflight,
            self.cycles,
            self.instructions,
            self.row_hits,
            self.row_conflicts,
            self.idle_drains,
            self.speculative_issues,
            self.window_replays
        )
    }
}

/// The machine the end-to-end sweep measures: the paper's OTP machine
/// with a deliberately small (64-entry) LRU SNC so a miss-heavy trace
/// keeps taking Algorithm 1's sequence-fetch path, on a deeper
/// (128-entry ROB) out-of-order window so the trace's own MLP is
/// visible to the MSHR file. The SNC shard count is paired with the
/// channel count — each (shard, channel) pair is one independent
/// memory controller.
pub fn e2e_machine_config(params: E2eParams) -> MachineConfig {
    let snc = SncConfig::paper_default().with_capacity(128);
    let mut cfg = MachineConfig::paper(SecurityMode::Otp { snc });
    cfg.pipeline.rob_size = 128;
    cfg.hierarchy.l2_mshrs = params.l2_mshrs;
    cfg.hierarchy.drain_on_idle = params.drain_on_idle;
    cfg.hierarchy.speculative_completions = params.speculative;
    cfg.security = cfg
        .security
        .with_max_inflight(params.max_inflight)
        .with_snc_shards(params.mem_channels)
        .with_mem_channels(params.mem_channels)
        .with_mem_banks(params.mem_banks)
        .with_drain_order(params.order)
        .with_page_policy(params.page);
    cfg
}

/// Runs one end-to-end cell: the recorded trace through a full machine
/// (core + hierarchy + engine) at the given parameters.
pub fn run_e2e_point(trace: &E2eTrace, params: E2eParams) -> E2ePoint {
    let mut machine = Machine::new(e2e_machine_config(params));
    machine
        .core_mut()
        .hierarchy_mut()
        .backend_mut()
        .pre_age(trace.ancient.iter().copied(), trace.active.iter().copied());
    let mut player = trace.player.clone();
    let m = machine.run(&mut player, trace.warmup, trace.measure);
    point_from(params, &m)
}

/// Runs one end-to-end cell through the *seed* run loop — the
/// line-for-line port of the pre-calendar core in [`crate::seed_core`].
/// `repro --mlp --seed-core` routes the end-to-end sweep through this,
/// so CI can diff the two cores' tables byte-for-byte.
pub fn run_e2e_point_seed(trace: &E2eTrace, params: E2eParams) -> E2ePoint {
    let mut machine = crate::seed_core::SeedMachine::new(e2e_machine_config(params));
    machine
        .core_mut()
        .hierarchy_mut()
        .backend_mut()
        .pre_age(trace.ancient.iter().copied(), trace.active.iter().copied());
    let mut player = trace.player.clone();
    let m = machine.run(&mut player, trace.warmup, trace.measure);
    point_from(params, &m)
}

/// Extracts an [`E2ePoint`] from a finished measurement (either core).
fn point_from(params: E2eParams, m: &padlock_core::Measurement) -> E2ePoint {
    crate::meter::record_simulated_cycles(m.stats.cycles);
    E2ePoint {
        l2_mshrs: params.l2_mshrs,
        mem_channels: params.mem_channels,
        mem_banks: params.mem_banks,
        max_inflight: params.max_inflight,
        cycles: m.stats.cycles,
        instructions: m.stats.instructions,
        row_hits: m.traffic.get("row_hits"),
        row_conflicts: m.traffic.get("row_conflicts"),
        idle_drains: m.mshr.get("idle_drains"),
        speculative_issues: m.mshr.get("speculative_issues"),
        window_replays: m.mshr.get("window_replays"),
    }
}

/// The engine depth each MSHR level runs with: four transactions per
/// MSHR, capped at 32 — so the acceptance configuration
/// (`l2_mshrs = 8`) runs `max_inflight = 32`. With one MSHR the
/// hierarchy hands the engine one miss at a time, so that row is the
/// blocking paper machine regardless of the engine bound.
pub fn inflight_for(l2_mshrs: usize) -> usize {
    (4 * l2_mshrs).min(32)
}

/// The full end-to-end sweep as a rendered table: one row per MSHR
/// depth, one column per channel count, each cell
/// `CPI (speedup vs the 1-MSHR 1-channel paper machine)`. The drain
/// order, page policy, idle-drain trigger, and speculative-issue knob
/// apply to every cell (on this flat `mem_banks = 1` grid the bank
/// knobs are inert — the knob is exercised, the numbers match
/// Fifo/Open exactly). All cells fan across `pool`. `seed_core` swaps
/// every cell onto the seed run loop ([`run_e2e_point_seed`]); the
/// `fastforward_vs_seed` differential makes the two tables
/// byte-identical, and the `speculative_vs_parked` differential makes
/// the speculative table byte-identical to both — CI checks each end
/// to end.
#[allow(clippy::too_many_arguments)]
pub fn e2e_table(
    pool: &SweepPool,
    trace: &E2eTrace,
    mshr_counts: &[usize],
    channel_counts: &[usize],
    order: DrainOrder,
    page: PagePolicy,
    drain_on_idle: bool,
    speculative: bool,
    seed_core: bool,
) -> Table {
    let knobs = |p: E2eParams| {
        p.with_order(order)
            .with_page(page)
            .with_drain_on_idle(drain_on_idle)
            .with_speculative(speculative)
    };
    let mut cells = vec![knobs(E2eParams::new(1, 1, 1, 1))];
    for &mshrs in mshr_counts {
        for &channels in channel_counts {
            if (mshrs, channels) != (1, 1) {
                cells.push(knobs(E2eParams::new(mshrs, channels, 1, inflight_for(mshrs))));
            }
        }
    }
    // Label-collision guard: every cell must report under a distinct
    // machine label, or downstream tables and JSON consumers silently
    // merge rows. `MachineConfig::label` threads the MSHR depth (and,
    // one layer up, `ServerConfig::label` threads core count and switch
    // quantum), so a collision here means a new sweep axis was added
    // without a label suffix.
    let labels: std::collections::BTreeSet<String> =
        cells.iter().map(|p| e2e_machine_config(*p).label()).collect();
    assert_eq!(
        labels.len(),
        cells.len(),
        "e2e sweep cells collide on report labels: {labels:?}"
    );
    let run = if seed_core {
        run_e2e_point_seed
    } else {
        run_e2e_point
    };
    let points = pool.sweep(&cells, |p| run(trace, *p));
    let by_cell: BTreeMap<(usize, usize), E2ePoint> = cells
        .iter()
        .map(|p| (p.l2_mshrs, p.mem_channels))
        .zip(points)
        .collect();
    let base = by_cell[&(1, 1)];

    let mut header = vec!["mshrs".to_string()];
    for &c in channel_counts {
        header.push(format!("{c} channel{}", if c == 1 { "" } else { "s" }));
    }
    let mut table = Table::new(header);
    for &mshrs in mshr_counts {
        let mut row = vec![mshrs.to_string()];
        for &channels in channel_counts {
            let p = by_cell[&(mshrs, channels)];
            row.push(format!(
                "{:5.2} CPI ({:4.2}x)",
                p.cpi(),
                base.cycles as f64 / p.cycles as f64
            ));
        }
        table.push_row(row);
    }
    table
}

/// Simulates the deep banked machine (8 MSHRs, 32 in-flight,
/// `channels` channels paired with shards) over the bank axis for
/// every trace: `grid[bank_index][trace_index]`, every cell fanned
/// across `pool`. Both bank-sweep tables render from one of these, so
/// a caller printing several tables of the same machines simulates
/// each cell exactly once.
#[allow(clippy::too_many_arguments)]
pub fn banked_grid(
    pool: &SweepPool,
    traces: &[&E2eTrace],
    bank_counts: &[usize],
    channels: usize,
    order: DrainOrder,
    page: PagePolicy,
    drain_on_idle: bool,
    speculative: bool,
) -> Vec<Vec<E2ePoint>> {
    assert!(!bank_counts.is_empty(), "bank axis cannot be empty");
    let cells: Vec<(usize, usize)> = bank_counts
        .iter()
        .enumerate()
        .flat_map(|(bank_index, _)| (0..traces.len()).map(move |t| (bank_index, t)))
        .collect();
    let flat = pool.sweep(&cells, |&(bank_index, trace_index)| {
        let params = E2eParams::new(8, channels, bank_counts[bank_index], 32)
            .with_order(order)
            .with_page(page)
            .with_drain_on_idle(drain_on_idle)
            .with_speculative(speculative);
        run_e2e_point(traces[trace_index], params)
    });
    let mut rows = flat.into_iter();
    bank_counts
        .iter()
        .map(|_| rows.by_ref().take(traces.len()).collect())
        .collect()
}

/// Serialises a [`banked_grid`] as JSON lines in grid (submission)
/// order, one line per cell tagged with its trace name.
pub fn grid_jsonl(traces: &[&E2eTrace], grid: &[Vec<E2ePoint>]) -> String {
    let mut out = String::new();
    for row in grid {
        for (trace_index, p) in row.iter().enumerate() {
            out.push_str(&p.jsonl(traces[trace_index].name()));
            out.push('\n');
        }
    }
    out
}

/// The bank sweep: one row per bank count, one column per recorded
/// trace — so bank-parallel traffic (`bfs`: independent in-flight
/// reads) and row-conflict-bound traffic (`rstride`: a serial random
/// walk) can be compared end to end. Cells are CPI, the speedup over
/// the same trace at the first bank count on the axis, and the
/// window's row-buffer hit rate. Renders a [`banked_grid`].
pub fn bank_table_from(
    traces: &[&E2eTrace],
    bank_counts: &[usize],
    grid: &[Vec<E2ePoint>],
) -> Table {
    let mut header = vec!["banks".to_string()];
    for t in traces {
        header.push(t.name().to_string());
    }
    let mut table = Table::new(header);
    for (bank_index, &banks) in bank_counts.iter().enumerate() {
        let mut row = vec![banks.to_string()];
        for (trace_index, p) in grid[bank_index].iter().enumerate() {
            row.push(format!(
                "{:5.2} CPI ({:4.2}x, {:3.0}% row hits)",
                p.cpi(),
                grid[0][trace_index].cycles as f64 / p.cycles as f64,
                hit_pct(p)
            ));
        }
        table.push_row(row);
    }
    table
}

/// [`bank_table_from`] over a freshly simulated [`banked_grid`].
pub fn bank_table(
    pool: &SweepPool,
    traces: &[&E2eTrace],
    bank_counts: &[usize],
    channels: usize,
    order: DrainOrder,
    page: PagePolicy,
) -> Table {
    let grid = banked_grid(pool, traces, bank_counts, channels, order, page, false, false);
    bank_table_from(traces, bank_counts, &grid)
}

/// The window's row-buffer hit rate as a percentage.
fn hit_pct(p: &E2ePoint) -> f64 {
    let rows_touched = p.row_hits + p.row_conflicts;
    if rows_touched == 0 {
        0.0
    } else {
        p.row_hits as f64 / rows_touched as f64 * 100.0
    }
}

/// The row-hit-delta table: the same machines drained in arrival order
/// vs FR-FCFS row-first order, one row per bank count, one column per
/// trace. Each cell reports both orders' row-hit rates, the row hits
/// the reorder converted out of conflicts, and the CPI movement — the
/// direct measurement of what bank-aware drain ordering buys, since
/// reordering leaves every traffic counter and the hit + conflict
/// total untouched by construction. `fifo` and `rowf` are
/// [`banked_grid`]s of the two orders over the same traces and axis.
pub fn order_delta_table_from(
    traces: &[&E2eTrace],
    bank_counts: &[usize],
    fifo: &[Vec<E2ePoint>],
    rowf: &[Vec<E2ePoint>],
) -> Table {
    let mut header = vec!["banks".to_string()];
    for t in traces {
        header.push(format!("{} (fifo -> row-first)", t.name()));
    }
    let mut table = Table::new(header);
    for (bank_index, &banks) in bank_counts.iter().enumerate() {
        let mut row = vec![banks.to_string()];
        for trace_index in 0..traces.len() {
            let (f, r) = (&fifo[bank_index][trace_index], &rowf[bank_index][trace_index]);
            row.push(format!(
                "{:3.0}% -> {:3.0}% hits (+{} rows), {:5.2} -> {:5.2} CPI ({:4.2}x)",
                hit_pct(f),
                hit_pct(r),
                r.row_hits.saturating_sub(f.row_hits),
                f.cpi(),
                r.cpi(),
                f.cycles as f64 / r.cycles as f64,
            ));
        }
        table.push_row(row);
    }
    table
}

/// [`order_delta_table_from`] over two freshly simulated grids.
pub fn order_delta_table(
    pool: &SweepPool,
    traces: &[&E2eTrace],
    bank_counts: &[usize],
    channels: usize,
    page: PagePolicy,
) -> Table {
    let fifo =
        banked_grid(pool, traces, bank_counts, channels, DrainOrder::Fifo, page, false, false);
    let rowf = banked_grid(
        pool,
        traces,
        bank_counts,
        channels,
        DrainOrder::RowFirst,
        page,
        false,
        false,
    );
    order_delta_table_from(traces, bank_counts, &fifo, &rowf)
}

/// The idle-drain-delta table: the same machines with the idle-keyed
/// MSHR drain trigger off vs on, one row per bank count, one column
/// per trace. Each cell reports the enabled run's idle-drain count and
/// the CPI movement — the measurement half of scheduler follow-on (a),
/// whose knob (`HierarchyConfig::drain_on_idle`) landed default-off.
/// `off` and `on` are [`banked_grid`]s of the two settings over the
/// same traces and axis.
pub fn idle_delta_table_from(
    traces: &[&E2eTrace],
    bank_counts: &[usize],
    off: &[Vec<E2ePoint>],
    on: &[Vec<E2ePoint>],
) -> Table {
    let mut header = vec!["banks".to_string()];
    for t in traces {
        header.push(format!("{} (idle-drain off -> on)", t.name()));
    }
    let mut table = Table::new(header);
    for (bank_index, &banks) in bank_counts.iter().enumerate() {
        let mut row = vec![banks.to_string()];
        for trace_index in 0..traces.len() {
            let (f, n) = (&off[bank_index][trace_index], &on[bank_index][trace_index]);
            row.push(format!(
                "{} idle drains, {:5.2} -> {:5.2} CPI ({:4.2}x)",
                n.idle_drains,
                f.cpi(),
                n.cpi(),
                f.cycles as f64 / n.cycles as f64,
            ));
        }
        table.push_row(row);
    }
    table
}

/// [`idle_delta_table_from`] over two freshly simulated grids.
pub fn idle_delta_table(
    pool: &SweepPool,
    traces: &[&E2eTrace],
    bank_counts: &[usize],
    channels: usize,
    order: DrainOrder,
    page: PagePolicy,
) -> Table {
    let off = banked_grid(pool, traces, bank_counts, channels, order, page, false, false);
    let on = banked_grid(pool, traces, bank_counts, channels, order, page, true, false);
    idle_delta_table_from(traces, bank_counts, &off, &on)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper-default scheduling knobs every pre-existing sweep ran
    /// with: arrival-order drains over open-page banks.
    fn mlp_point(
        inflight: usize,
        shards: usize,
        channels: usize,
        banks: usize,
        lines: u64,
    ) -> MlpPoint {
        run_mlp_point(
            inflight,
            shards,
            channels,
            banks,
            DrainOrder::Fifo,
            PagePolicy::Open,
            lines,
        )
    }

    fn e2e_point(
        trace: &E2eTrace,
        mshrs: usize,
        channels: usize,
        banks: usize,
        inflight: usize,
    ) -> E2ePoint {
        run_e2e_point(trace, E2eParams::new(mshrs, channels, banks, inflight))
    }

    #[test]
    fn read_throughput_improves_monotonically_with_inflight() {
        let lines = 512;
        let mut last = u64::MAX;
        for inflight in [1usize, 2, 4, 8, 16] {
            let p = mlp_point(inflight, 1, 1, 1, lines);
            assert!(
                p.total_cycles <= last,
                "inflight {inflight}: {} after {last}",
                p.total_cycles
            );
            last = p.total_cycles;
        }
        // And the gain is substantial, not marginal.
        let serial = mlp_point(1, 1, 1, 1, lines);
        let deep = mlp_point(16, 1, 1, 1, lines);
        assert!(
            serial.total_cycles as f64 / deep.total_cycles as f64 > 2.0,
            "serial {} vs deep {}",
            serial.total_cycles,
            deep.total_cycles
        );
    }

    #[test]
    fn sharding_relieves_port_contention_under_deep_inflight() {
        let lines = 512;
        let one = mlp_point(16, 1, 1, 1, lines);
        let four = mlp_point(16, 4, 1, 1, lines);
        assert!(
            four.total_cycles <= one.total_cycles,
            "4 shards {} vs 1 shard {}",
            four.total_cycles,
            one.total_cycles
        );
    }

    #[test]
    fn channels_relieve_dram_contention_under_deep_inflight() {
        let lines = 512;
        let one = mlp_point(32, 4, 1, 1, lines);
        let four = mlp_point(32, 4, 4, 1, lines);
        assert!(
            four.total_cycles < one.total_cycles,
            "4 channels {} vs 1 channel {}",
            four.total_cycles,
            one.total_cycles
        );
    }

    #[test]
    fn table_has_a_row_per_inflight_level_and_channel_columns() {
        let t = mlp_table(&SweepPool::new(2), &[1, 4], &[1], &[1, 2], 128);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.col_count(), 3);
        let text = t.render_text();
        assert!(text.contains("cyc/read"), "{text}");
        assert!(text.contains("2ch"), "channel axis must print: {text}");
    }

    #[test]
    fn e2e_acceptance_deep_machine_doubles_throughput_on_real_trace() {
        // The acceptance configuration of the non-blocking refactor:
        // l2_mshrs = 8, mem_channels = 4, max_inflight = 32 must be at
        // least 2x faster end-to-end than the paper-default blocking
        // machine on a miss-heavy recorded benchmark trace.
        let trace = E2eTrace::record("bfs", 40_000, 120_000);
        let base = e2e_point(&trace, 1, 1, 1, 1);
        let deep = e2e_point(&trace, 8, 4, 1, 32);
        assert_eq!(base.instructions, deep.instructions);
        let speedup = base.cycles as f64 / deep.cycles as f64;
        assert!(
            speedup >= 2.0,
            "expected >= 2x, got {speedup:.2}x (base {} vs deep {})",
            base.cycles,
            deep.cycles
        );
    }

    #[test]
    fn e2e_speedup_is_monotonic_in_mshr_depth() {
        let trace = E2eTrace::record("bfs", 20_000, 60_000);
        let mut last: Option<u64> = None;
        for mshrs in [1usize, 2, 8] {
            let p = e2e_point(&trace, mshrs, 2, 1, inflight_for(mshrs));
            if let Some(best) = last {
                // Deeper files must not lose more than 2% to drain
                // batching (late dependent discovery).
                assert!(
                    p.cycles <= best + best / 50,
                    "mshrs {mshrs}: {} after {best}",
                    p.cycles
                );
            }
            last = Some(last.map_or(p.cycles, |best| best.min(p.cycles)));
        }
    }

    #[test]
    fn e2e_table_prints_channel_axis() {
        let trace = E2eTrace::record("bfs", 5_000, 20_000);
        let t = e2e_table(
            &SweepPool::new(2),
            &trace,
            &[1, 8],
            &[1, 4],
            DrainOrder::Fifo,
            PagePolicy::Open,
            false,
            false,
            false,
        );
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.col_count(), 3);
        let text = t.render_text();
        assert!(text.contains("4 channels"), "{text}");
        assert!(text.contains("CPI"), "{text}");
        // The same grid through the seed run loop renders byte-identically.
        let seed = e2e_table(
            &SweepPool::new(2),
            &trace,
            &[1, 8],
            &[1, 4],
            DrainOrder::Fifo,
            PagePolicy::Open,
            false,
            false,
            true,
        );
        assert_eq!(text, seed.render_text(), "seed-core table diverged");
        // And with speculative issue on: bit-exact cycles mean the
        // rendered CPI table cannot move a byte either.
        let spec = e2e_table(
            &SweepPool::new(2),
            &trace,
            &[1, 8],
            &[1, 4],
            DrainOrder::Fifo,
            PagePolicy::Open,
            false,
            true,
            false,
        );
        assert_eq!(text, spec.render_text(), "speculative table diverged");
    }

    #[test]
    fn inflight_pairing_caps_at_32() {
        assert_eq!(inflight_for(1), 4);
        assert_eq!(inflight_for(8), 32);
        assert_eq!(inflight_for(16), 32);
    }

    #[test]
    fn bfs_gains_measurably_from_bank_parallelism() {
        // The deep machine keeps independent misses in flight, so more
        // banks per channel overlap more precharge/activate phases:
        // banks >= 4 must beat the 2-bank fabric by a clear margin on
        // the bank-parallel bfs trace, and 8 banks must not regress.
        let trace = E2eTrace::record("bfs", 20_000, 60_000);
        let two = e2e_point(&trace, 8, 4, 2, 32);
        let four = e2e_point(&trace, 8, 4, 4, 32);
        let eight = e2e_point(&trace, 8, 4, 8, 32);
        assert_eq!(two.instructions, four.instructions);
        assert!(
            four.cycles * 100 <= two.cycles * 95,
            "expected >= 5% gain at 4 banks: {} vs {}",
            four.cycles,
            two.cycles
        );
        assert!(
            eight.cycles <= four.cycles,
            "8 banks regressed: {} vs {}",
            eight.cycles,
            four.cycles
        );
        // Banked runs actually exercise the row buffer.
        assert!(four.row_hits > 0 && four.row_conflicts > 0);
    }

    #[test]
    fn rstride_is_row_conflict_bound() {
        // The serial random-stride walk has no MLP for banks to
        // overlap and row-hops on every chase load: growing the bank
        // count buys almost nothing, and conflicts stay a large share
        // of all row outcomes.
        let trace = E2eTrace::record("rstride", 20_000, 60_000);
        let two = e2e_point(&trace, 8, 4, 2, 32);
        let eight = e2e_point(&trace, 8, 4, 8, 32);
        let gain = two.cycles as f64 / eight.cycles as f64;
        assert!(
            gain < 1.05,
            "a serial conflict-bound walk should not scale with banks, got {gain:.2}x"
        );
        let rows_touched = eight.row_hits + eight.row_conflicts;
        assert!(
            eight.row_conflicts * 10 >= rows_touched * 4,
            "expected >= 40% conflicts, got {} of {rows_touched}",
            eight.row_conflicts
        );
        // And the flat (banks = 1) idealisation is not slower than the
        // banked fabric on this trace: there is no locality to win
        // back the precharge/activate cost.
        let flat = e2e_point(&trace, 8, 4, 1, 32);
        assert!(
            flat.cycles <= eight.cycles + eight.cycles / 20,
            "flat {} vs banked {}",
            flat.cycles,
            eight.cycles
        );
    }

    #[test]
    fn bank_table_prints_both_traces() {
        let bfs = E2eTrace::record("bfs", 5_000, 20_000);
        let rstride = E2eTrace::record("rstride", 5_000, 20_000);
        let t = bank_table(
            &SweepPool::new(2),
            &[&bfs, &rstride],
            &[1, 4],
            4,
            DrainOrder::Fifo,
            PagePolicy::Open,
        );
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.col_count(), 3);
        let text = t.render_text();
        assert!(text.contains("rstride"), "{text}");
        assert!(text.contains("row hits"), "{text}");
    }

    #[test]
    fn row_first_drain_strictly_increases_bfs_row_hits_and_cpi() {
        // The tentpole acceptance: on the recorded bfs trace through
        // the deep banked machine, FR-FCFS drain ordering must convert
        // conflicts into row hits (strictly more hits, identical
        // hit + conflict total — reordering never changes what is
        // accessed) and the CPI must improve, not just move.
        let trace = E2eTrace::record("bfs", 20_000, 60_000);
        for banks in [4usize, 8] {
            let fifo = run_e2e_point(&trace, E2eParams::new(8, 4, banks, 32));
            let rowf = run_e2e_point(
                &trace,
                E2eParams::new(8, 4, banks, 32).with_order(DrainOrder::RowFirst),
            );
            assert_eq!(fifo.instructions, rowf.instructions);
            assert!(
                rowf.row_hits > fifo.row_hits,
                "{banks} banks: row-first hits {} vs fifo {}",
                rowf.row_hits,
                fifo.row_hits
            );
            assert_eq!(
                rowf.row_hits + rowf.row_conflicts,
                fifo.row_hits + fifo.row_conflicts,
                "{banks} banks: reordering changed the row-outcome total"
            );
            assert!(
                rowf.cycles < fifo.cycles,
                "{banks} banks: row-first CPI {:.3} did not beat fifo {:.3}",
                rowf.cpi(),
                fifo.cpi()
            );
        }
    }

    #[test]
    fn closed_page_never_hits_and_helps_the_conflict_bound_walk() {
        // The page-policy acceptance. Auto-precharge abolishes row hits
        // everywhere by construction; on the rstride walk the only
        // open-page hits were each miss's paired sequence-fetch +
        // line-fetch reopening its own row, so trading them for
        // uniformly cheaper activates must not lose end to end — and
        // does in fact win, because the dearer conflict path sat on the
        // serial chain's critical path.
        let rstride = E2eTrace::record("rstride", 20_000, 60_000);
        let open = run_e2e_point(&rstride, E2eParams::new(8, 4, 8, 32));
        let closed = run_e2e_point(
            &rstride,
            E2eParams::new(8, 4, 8, 32).with_page(PagePolicy::Closed),
        );
        assert_eq!(closed.row_hits, 0, "closed-page run reported a row hit");
        assert!(closed.row_conflicts > 0);
        assert_eq!(
            closed.row_conflicts,
            open.row_hits + open.row_conflicts,
            "page policy changed what was accessed, not just how"
        );
        assert!(
            closed.cycles < open.cycles,
            "closed-page should help rstride: {} vs {}",
            closed.cycles,
            open.cycles
        );
        // The invariant holds on a hit-rich trace too.
        let bfs = E2eTrace::record("bfs", 20_000, 60_000);
        let bfs_closed = run_e2e_point(
            &bfs,
            E2eParams::new(8, 4, 8, 32).with_page(PagePolicy::Closed),
        );
        assert_eq!(bfs_closed.row_hits, 0);
    }

    #[test]
    fn order_delta_table_reports_both_orders() {
        let bfs = E2eTrace::record("bfs", 5_000, 20_000);
        let t = order_delta_table(&SweepPool::serial(), &[&bfs], &[4], 4, PagePolicy::Open);
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.col_count(), 2);
        let text = t.render_text();
        assert!(text.contains("row-first"), "{text}");
        assert!(text.contains("CPI"), "{text}");
        assert!(text.contains("hits"), "{text}");
    }

    #[test]
    fn idle_drain_knob_counts_only_when_enabled() {
        // The counter is windowed with the other stats, and the knob is
        // fully off by default: zero idle drains unless enabled.
        let trace = E2eTrace::record("bfs", 5_000, 20_000);
        let off = run_e2e_point(&trace, E2eParams::new(8, 4, 4, 32));
        let on = run_e2e_point(
            &trace,
            E2eParams::new(8, 4, 4, 32).with_drain_on_idle(true),
        );
        assert_eq!(off.idle_drains, 0, "default-off knob counted idle drains");
        assert_eq!(off.instructions, on.instructions);
    }

    #[test]
    fn idle_delta_table_reports_the_knob() {
        let bfs = E2eTrace::record("bfs", 5_000, 20_000);
        let t = idle_delta_table(
            &SweepPool::new(2),
            &[&bfs],
            &[4],
            4,
            DrainOrder::Fifo,
            PagePolicy::Open,
        );
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.col_count(), 2);
        let text = t.render_text();
        assert!(text.contains("idle-drain off -> on"), "{text}");
        assert!(text.contains("idle drains"), "{text}");
        assert!(text.contains("CPI"), "{text}");
    }

    #[test]
    fn speculative_runs_are_cycle_exact_and_actually_speculate() {
        // The deep FR-FCFS banked point: plenty of multi-miss windows
        // (replays) and singleton windows (confirmed speculations).
        let trace = E2eTrace::record("bfs", 5_000, 20_000);
        let deep = E2eParams::new(8, 4, 2, 32).with_order(DrainOrder::RowFirst);
        let parked = run_e2e_point(&trace, deep);
        let spec = run_e2e_point(&trace, deep.with_speculative(true));
        assert_eq!(parked.cycles, spec.cycles, "speculation moved a cycle");
        assert_eq!(parked.instructions, spec.instructions);
        assert_eq!(parked.row_hits, spec.row_hits);
        assert_eq!(parked.row_conflicts, spec.row_conflicts);
        assert_eq!(parked.speculative_issues, 0, "knob is off by default");
        assert_eq!(parked.window_replays, 0);
        assert!(spec.speculative_issues > 0, "speculation never engaged");
        assert!(spec.window_replays > 0, "no window ever coupled");
        let line = spec.jsonl(trace.name());
        assert!(line.contains("\"speculative_issues\":"), "{line}");
        assert!(line.contains("\"window_replays\":"), "{line}");
    }

    #[test]
    fn jsonl_lines_are_deterministic_json_records() {
        let p = mlp_point(4, 1, 2, 1, 64);
        let line = p.jsonl();
        assert!(line.starts_with("{\"kind\":\"mlp\""), "{line}");
        assert!(line.contains("\"channels\":2"), "{line}");
        let trace = E2eTrace::record("bfs", 2_000, 8_000);
        let e = e2e_point(&trace, 2, 1, 1, 8);
        let eline = e.jsonl(trace.name());
        assert!(eline.contains("\"trace\":\"bfs\""), "{eline}");
        assert!(eline.contains("\"idle_drains\":0"), "{eline}");
        assert_eq!(eline, e2e_point(&trace, 2, 1, 1, 8).jsonl(trace.name()));
    }
}
