//! Regenerates every table/figure of the paper.
//!
//! ```text
//! repro                  # all figures at full scale
//! repro --quick          # smaller measurement windows
//! repro --figure 5       # one figure
//! repro --csv target/repro   # also write CSV files
//! repro --mlp            # engine + end-to-end MLP speedup tables
//! repro --mlp --channels 1,2,4 --mshrs 1,4,8   # custom sweep axes
//! repro --mlp --banks 1,2,4,8   # add the DRAM-bank / row-buffer sweep
//! repro --jobs 8         # fan every sweep across 8 workers
//! ```
//!
//! Every sweep fans across a work-stealing [`SweepPool`]; results are
//! reassembled in submission order, so all tables and JSON lines on
//! stdout are byte-identical for any `--jobs` value (timing
//! diagnostics go to stderr).

use padlock_bench::{E2eTrace, Lab, MachineKind, RunScale};
use padlock_exec::SweepPool;
use padlock_mem::{DrainOrder, PagePolicy, ROW_LINES};
use std::path::PathBuf;
use std::time::Instant;

/// Streams a simulated-throughput line to stderr after each sweep:
/// cycles simulated since the previous lap, wall-time, and the
/// resulting simulated-Mcycles/s rate. Stderr only — stdout tables
/// stay byte-identical with or without the diagnostics.
struct SweepRate {
    cycles: u64,
    started: Instant,
}

impl SweepRate {
    fn start() -> Self {
        Self {
            cycles: padlock_bench::simulated_cycles(),
            started: Instant::now(),
        }
    }

    fn lap(&mut self, label: &str) {
        let cycles = padlock_bench::simulated_cycles();
        let seconds = self.started.elapsed().as_secs_f64();
        let mcycles = (cycles - self.cycles) as f64 / 1e6;
        eprintln!(
            "({label}: {mcycles:.1} simulated Mcycles in {seconds:.2}s — {:.1} Mcyc/s)",
            mcycles / seconds.max(1e-9)
        );
        self.cycles = cycles;
        self.started = Instant::now();
    }
}

struct Args {
    figure: Option<u32>,
    scale: RunScale,
    csv_dir: Option<PathBuf>,
    calibrate: bool,
    snc: bool,
    mlp: bool,
    server: bool,
    cores: Option<Vec<usize>>,
    switches: Option<Vec<u64>>,
    channels: Vec<usize>,
    mshrs: Vec<usize>,
    banks: Option<Vec<usize>>,
    order: DrainOrder,
    page: PagePolicy,
    trace: String,
    jobs: Option<usize>,
    idle_drain: bool,
    speculative: bool,
    jsonl: Option<PathBuf>,
    seed_core: bool,
}

impl Args {
    /// The sweep pool every table builder fans across: `--jobs N` if
    /// given, else `PADLOCK_JOBS`, else the host's available cores.
    fn pool(&self) -> SweepPool {
        self.jobs.map_or_else(SweepPool::from_env, SweepPool::new)
    }
}

fn parse_axis(flag: &str, value: &str) -> Vec<usize> {
    let axis: Vec<usize> = value
        .split(',')
        .map(|v| {
            v.trim()
                .parse()
                .unwrap_or_else(|_| usage_error(&format!("{flag} expects numbers, got {v:?}")))
        })
        .collect();
    if axis.is_empty() || axis.contains(&0) {
        usage_error(&format!("{flag} needs positive counts"));
    }
    axis
}

/// The context-switch axis admits a value the generic parser rejects:
/// `0` means "no switching" (the column every quantum is compared
/// against), so only garbage is an error.
fn parse_switch_axis(value: &str) -> Vec<u64> {
    let axis: Vec<u64> = value
        .split(',')
        .map(|v| {
            v.trim()
                .parse()
                .unwrap_or_else(|_| usage_error(&format!("--switch expects cycle counts, got {v:?}")))
        })
        .collect();
    if axis.is_empty() {
        usage_error("--switch needs at least one quantum (0 = no switching)");
    }
    axis
}

/// The bank axis carries an extra constraint the generic axis parser
/// cannot see: rows are [`ROW_LINES`] lines and rotate over banks, so a
/// bank count that does not divide the row would leave the row-hit
/// tables silently comparing unequal bank populations. Reject it
/// loudly instead of mis-mapping.
fn parse_banks_axis(value: &str) -> Vec<usize> {
    let axis = parse_axis("--banks", value);
    for &banks in &axis {
        if !ROW_LINES.is_multiple_of(banks as u64) {
            usage_error(&format!(
                "--banks values must divide the {ROW_LINES}-line row \
                 (1,2,4,8,16), got {banks}"
            ));
        }
    }
    axis
}

fn usage_error(message: &str) -> ! {
    eprintln!("{message} (try --help)");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        figure: None,
        scale: RunScale::Full,
        csv_dir: None,
        calibrate: false,
        snc: false,
        mlp: false,
        server: false,
        cores: None,
        switches: None,
        channels: vec![1, 2, 4],
        mshrs: vec![1, 2, 4, 8],
        banks: None,
        order: DrainOrder::Fifo,
        page: PagePolicy::Open,
        trace: "bfs".to_string(),
        jobs: None,
        idle_drain: false,
        speculative: false,
        jsonl: None,
        seed_core: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--figure" | "-f" => {
                let v = iter.next().unwrap_or_else(|| usage_error("--figure needs a number"));
                args.figure = Some(
                    v.parse()
                        .unwrap_or_else(|_| usage_error(&format!("--figure expects a number, got {v:?}"))),
                );
            }
            "--quick" => args.scale = RunScale::Quick,
            "--smoke" => args.scale = RunScale::Smoke,
            "--csv" => {
                let v = iter.next().unwrap_or_else(|| usage_error("--csv needs a directory"));
                args.csv_dir = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--figure N] [--quick|--smoke] [--csv DIR] [--jobs N]\n\
                     \x20      [--calibrate [--snc]]\n\
                     \x20      [--mlp [--channels A,B,..] [--mshrs A,B,..] [--banks A,B,..]\n\
                     \x20       [--order fifo|row-first] [--page open|closed] [--idle-drain]\n\
                     \x20       [--speculative] [--trace BENCH] [--jsonl FILE] [--seed-core]]\n\
                     \x20      [--server [--cores A,B,..] [--switch A,B,..]\n\
                     \x20       [--channels A,B,..] [--trace BENCH|mix]]\n\
                     Regenerates the figures of 'Fast Secure Processor for\n\
                     Inhibiting Software Piracy and Tampering' (MICRO-36, 2003).\n\
                     --jobs fans every sweep across N worker threads (default:\n\
                     PADLOCK_JOBS or all cores; results are byte-identical to\n\
                     --jobs 1 — points run in any order but reassemble in\n\
                     submission order).\n\
                     --calibrate prints per-benchmark CPI/miss diagnostics instead;\n\
                     add --snc for SNC hit/miss/spill rates.\n\
                     --mlp sweeps the transaction engine's inflight x shards x channels\n\
                     grid on a miss-heavy batch (cycles/read), then sweeps whole\n\
                     machines — L2 MSHRs x DRAM channels — end to end on a recorded\n\
                     benchmark trace (CPI), each with the speedup over the paper's\n\
                     blocking single-channel machine.\n\
                     --channels / --mshrs set the sweep axes (comma-separated);\n\
                     --banks additionally sweeps DRAM banks per channel with\n\
                     row-buffer timing (values must divide the 16-line row),\n\
                     comparing the chosen trace against the row-conflict-bound\n\
                     rstride walk and printing the fifo vs row-first\n\
                     row-hit-delta table plus the idle-drain on/off delta;\n\
                     --order picks the drain scheduler's issue order (fifo =\n\
                     arrival order, row-first = FR-FCFS grouping of same-row\n\
                     misses); --page picks the bank page policy (open rows vs\n\
                     closed-page auto-precharge); --idle-drain enables the\n\
                     idle-keyed MSHR drain trigger on every sweep cell;\n\
                     --speculative issues each parked miss speculatively as a\n\
                     rollback-able singleton window, replaying coupled windows\n\
                     — bit-exact in cycles and counters with parked drains, so\n\
                     every table is byte-identical with or without the flag;\n\
                     --server sweeps the N-compartment secure server instead:\n\
                     cores x channels x context-switch quanta over one shared\n\
                     fabric (small LRU SNC), printing mean CPI, the slowdown vs\n\
                     the smallest core count, and cross-compartment SNC\n\
                     evictions per cell; --cores sets the compartment axis,\n\
                     --switch the context-switch quanta in cycles (0 = never),\n\
                     and --trace pins every compartment's benchmark (mix =\n\
                     round-robin suite assignment);\n\
                     --trace picks the recorded benchmark (default bfs, the\n\
                     miss-heavy graph-traversal workload); --jsonl streams the\n\
                     bank-sweep grid points as JSON lines to FILE (requires\n\
                     --banks); --seed-core routes the end-to-end sweep through\n\
                     the pre-calendar seed run loop — byte-identical output,\n\
                     which CI diffs against the fast-forward core."
                );
                std::process::exit(0);
            }
            "--calibrate" => args.calibrate = true,
            "--snc" => args.snc = true,
            "--mlp" => args.mlp = true,
            "--server" => args.server = true,
            "--cores" => {
                let v = iter.next().unwrap_or_else(|| usage_error("--cores needs counts"));
                args.cores = Some(parse_axis("--cores", &v));
            }
            "--switch" => {
                let v = iter.next().unwrap_or_else(|| usage_error("--switch needs quanta"));
                args.switches = Some(parse_switch_axis(&v));
            }
            "--channels" => {
                let v = iter.next().unwrap_or_else(|| usage_error("--channels needs counts"));
                args.channels = parse_axis("--channels", &v);
            }
            "--mshrs" => {
                let v = iter.next().unwrap_or_else(|| usage_error("--mshrs needs counts"));
                args.mshrs = parse_axis("--mshrs", &v);
            }
            "--banks" => {
                let v = iter.next().unwrap_or_else(|| usage_error("--banks needs counts"));
                args.banks = Some(parse_banks_axis(&v));
            }
            "--jobs" | "-j" => {
                let v = iter.next().unwrap_or_else(|| usage_error("--jobs needs a worker count"));
                let jobs: usize = v
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("--jobs expects a number, got {v:?}")));
                if jobs == 0 {
                    usage_error("--jobs needs a positive worker count (use 1 for serial)");
                }
                args.jobs = Some(jobs);
            }
            "--idle-drain" => args.idle_drain = true,
            "--speculative" => args.speculative = true,
            "--seed-core" => args.seed_core = true,
            "--jsonl" => {
                let v = iter.next().unwrap_or_else(|| usage_error("--jsonl needs a file path"));
                args.jsonl = Some(PathBuf::from(v));
            }
            "--order" => {
                let v = iter.next().unwrap_or_else(|| usage_error("--order needs a policy"));
                args.order = match v.as_str() {
                    "fifo" => DrainOrder::Fifo,
                    "row-first" => DrainOrder::RowFirst,
                    other => usage_error(&format!(
                        "--order expects fifo or row-first, got {other:?}"
                    )),
                };
            }
            "--page" => {
                let v = iter.next().unwrap_or_else(|| usage_error("--page needs a policy"));
                args.page = match v.as_str() {
                    "open" => PagePolicy::Open,
                    "closed" => PagePolicy::Closed,
                    other => usage_error(&format!(
                        "--page expects open or closed, got {other:?}"
                    )),
                };
            }
            "--trace" => {
                let v = iter.next().unwrap_or_else(|| usage_error("--trace needs a benchmark"));
                let known = padlock_workloads::BENCHMARK_NAMES
                    .iter()
                    .chain(padlock_workloads::STRESS_NAMES.iter())
                    .chain(std::iter::once(&"mix"));
                if !known.clone().any(|&k| k == v) {
                    usage_error(&format!(
                        "--trace expects one of {:?}, got {v:?}",
                        known.collect::<Vec<_>>()
                    ));
                }
                args.trace = v;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if args.snc && !args.calibrate {
        usage_error("--snc requires --calibrate");
    }
    if args.server && args.mlp {
        usage_error("--server and --mlp are separate sweeps; pick one");
    }
    if (args.cores.is_some() || args.switches.is_some()) && !args.server {
        usage_error("--cores / --switch apply to the --server sweep");
    }
    if args.trace == "mix" && !args.server {
        usage_error("--trace mix (round-robin suite assignment) applies to --server");
    }
    if args.jsonl.is_some() && args.banks.is_none() {
        usage_error("--jsonl streams the bank-sweep grid and requires --banks");
    }
    if args.seed_core && (!args.mlp || args.banks.is_some()) {
        usage_error("--seed-core applies to the --mlp end-to-end sweep (without --banks)");
    }
    if args.speculative && !args.mlp {
        usage_error("--speculative applies to the --mlp sweeps");
    }
    args
}

fn calibrate(lab: &mut Lab) {
    println!("bench     cpi    l2miss/ki  wb/ki   mispred%");
    for b in [
        "ammp", "art", "bzip2", "equake", "gcc", "gzip", "mcf", "mesa", "parser", "vortex", "vpr",
    ] {
        let m = lab.measure(b, MachineKind::Baseline);
        let ki = m.stats.instructions as f64 / 1000.0;
        println!(
            "{:8} {:5.2}  {:9.2}  {:5.2}  {:7.2}",
            b,
            m.stats.cpi(),
            m.l2.get("misses") as f64 / ki,
            m.traffic.get("line_writes") as f64 / ki,
            m.stats.mispredicts as f64 / m.stats.branches.max(1) as f64 * 100.0,
        );
    }
}

fn snc_diag(lab: &mut Lab, kind: MachineKind) {
    println!("\nSNC diagnostics for {kind}:");
    println!("bench     qhit/ki  qmiss/ki  uhit/ki  umiss/ki  inst/ki  spill/ki");
    for b in [
        "ammp", "art", "bzip2", "equake", "gcc", "gzip", "mcf", "mesa", "parser", "vortex", "vpr",
    ] {
        let m = lab.measure(b, kind);
        let ki = m.stats.instructions as f64 / 1000.0;
        let g = |k: &str| m.snc.get(k) as f64 / ki;
        println!(
            "{:8} {:8.2} {:9.2} {:8.2} {:9.2} {:8.2} {:9.2}",
            b,
            g("query_hits"),
            g("query_misses"),
            g("update_hits"),
            g("update_misses"),
            g("installs"),
            g("spills"),
        );
    }
}

fn mlp(args: &Args, pool: &SweepPool) {
    let mut rate = SweepRate::start();
    let lines = match args.scale {
        RunScale::Smoke => 1_024,
        RunScale::Quick => 4_096,
        RunScale::Full => 16_384,
    };
    println!(
        "== MLP — transaction-engine read throughput, {lines}-line miss-heavy batch =="
    );
    println!(
        "(64-entry LRU SNC, all lines previously written, CAM-limited {}-cycle SNC port;\n\
         cells are simulated cycles/read and speedup vs the blocking 1-inflight controller)\n",
        padlock_bench::mlp::SWEEP_SNC_PORT_CYCLES
    );
    let table =
        padlock_bench::mlp_table(pool, &[1, 2, 4, 8, 16, 32], &[1, 2, 4], &args.channels, lines);
    println!("{}", table.render_text());
    rate.lap("engine sweep");

    let (warmup, measure) = args.scale.window();
    // The end-to-end sweep runs a full machine per cell; a fraction of
    // the figure window keeps the grid affordable at every scale.
    let (warmup, measure) = (warmup / 4, measure / 4);
    println!(
        "\n== MLP end-to-end — recorded {} trace through the whole machine ==",
        args.trace
    );
    println!(
        "(OTP + 64-entry LRU SNC, 128-entry ROB, shards paired with channels,\n\
         max_inflight = min(4 x mshrs, 32), {} drain order, {}-page banks;\n\
         cells are CPI of a {measure}-op window and speedup vs the blocking\n\
         1-MSHR single-channel paper machine)\n",
        args.order, args.page
    );
    let trace = E2eTrace::record(&args.trace, warmup, measure);
    let table = padlock_bench::e2e_table(
        pool,
        &trace,
        &args.mshrs,
        &args.channels,
        args.order,
        args.page,
        args.idle_drain,
        args.speculative,
        args.seed_core,
    );
    println!("{}", table.render_text());
    rate.lap(if args.seed_core { "e2e sweep (seed core)" } else { "e2e sweep" });

    if let Some(bank_axis) = &args.banks {
        let channels = args.channels.iter().copied().max().unwrap_or(4);
        println!(
            "\n== MLP x banks — row-buffer locality end to end ({channels} channels, 8 MSHRs, 32 in-flight, {} drain, {}-page) ==",
            args.order, args.page
        );
        println!(
            "(each channel gets N banks with open-row registers: hits cost {} cycles,\n\
             precharge+activate conflicts {}, closed-page accesses {};\n\
             banks=1 is the paper's flat 100-cycle DRAM. Traces with independent\n\
             in-flight misses (bfs) let banks overlap their activates; the rstride\n\
             walk is serial and row-hops every access — conflict-bound at any\n\
             width under open-page rows, but cheaper under closed-page)\n",
            padlock_mem::DEFAULT_ROW_HIT_CYCLES,
            padlock_mem::DEFAULT_ROW_CONFLICT_CYCLES,
            padlock_mem::DEFAULT_ROW_CLOSED_CYCLES,
        );
        // The chosen trace is contrasted against the rstride walk —
        // unless it *is* rstride, which then stands alone.
        let traces: Vec<&E2eTrace>;
        let rstride;
        if args.trace == "rstride" {
            traces = vec![&trace];
        } else {
            rstride = E2eTrace::record("rstride", warmup, measure);
            traces = vec![&trace, &rstride];
        }
        // Each (banks, trace, order, idle) machine is simulated exactly
        // once: the grid of the selected knobs feeds the bank table and
        // one side of each delta table; only the other drain order and
        // the flipped idle-drain setting run fresh.
        let selected = padlock_bench::banked_grid(
            pool,
            &traces,
            bank_axis,
            channels,
            args.order,
            args.page,
            args.idle_drain,
            args.speculative,
        );
        let table = padlock_bench::bank_table_from(&traces, bank_axis, &selected);
        println!("{}", table.render_text());
        rate.lap("bank sweep");

        if let Some(path) = &args.jsonl {
            std::fs::write(path, padlock_bench::grid_jsonl(&traces, &selected))
                .expect("write jsonl");
            println!("(jsonl written to {})", path.display());
        }

        println!(
            "\n== FR-FCFS row-hit delta — fifo vs row-first drains on the same machines =="
        );
        println!(
            "(same deep banked machine per cell; the reorder groups same-row misses\n\
             back-to-back, so hits rise and CPI falls while every traffic counter\n\
             and the hit+conflict total stay exact — conversions, not new work)\n"
        );
        let other_order = match args.order {
            DrainOrder::Fifo => DrainOrder::RowFirst,
            DrainOrder::RowFirst => DrainOrder::Fifo,
        };
        let other = padlock_bench::banked_grid(
            pool,
            &traces,
            bank_axis,
            channels,
            other_order,
            args.page,
            args.idle_drain,
            args.speculative,
        );
        let (fifo, rowf) = match args.order {
            DrainOrder::Fifo => (&selected, &other),
            DrainOrder::RowFirst => (&other, &selected),
        };
        let table = padlock_bench::order_delta_table_from(&traces, bank_axis, fifo, rowf);
        println!("{}", table.render_text());
        rate.lap("row-order delta sweep");

        println!(
            "\n== Idle-drain delta — drain_on_idle off vs on on the same machines =="
        );
        println!(
            "(the idle-keyed MSHR drain trigger releases a partial batch as soon as\n\
             the channel fabric goes idle instead of waiting for the file to fill;\n\
             cells are the enabled run's idle-drain count and the CPI movement)\n"
        );
        let flipped = padlock_bench::banked_grid(
            pool,
            &traces,
            bank_axis,
            channels,
            args.order,
            args.page,
            !args.idle_drain,
            args.speculative,
        );
        let (off_grid, on_grid) = if args.idle_drain {
            (&flipped, &selected)
        } else {
            (&selected, &flipped)
        };
        let table =
            padlock_bench::idle_delta_table_from(&traces, bank_axis, off_grid, on_grid);
        println!("{}", table.render_text());
        rate.lap("idle-drain delta sweep");
    }
}

fn server(args: &Args, pool: &SweepPool) {
    let mut rate = SweepRate::start();
    let cores = args.cores.clone().unwrap_or_else(|| vec![1, 2, 4]);
    let switches = args.switches.clone().unwrap_or_else(|| vec![0, 20_000]);
    let (warmup, measure) = args.scale.window();
    // Every cell simulates up to max(cores) full windows; the same
    // fraction the end-to-end MLP sweep uses keeps the grid affordable.
    let (warmup, measure) = (warmup / 4, measure / 4);
    println!(
        "== Secure server — {} compartments time-sharing one fabric ==",
        args.trace
    );
    println!(
        "(shared OTP backend with a small 64-entry LRU SNC, 8 MSHRs, 32 in-flight,\n\
         SNC shards paired with channels; each compartment runs {} in its own\n\
         address stripe over a {measure}-op window; cells are mean CPI, the\n\
         slowdown vs the {}-core row, and SNC entries evicted by *other*\n\
         compartments' installs and context-switch flushes)\n",
        if args.trace == "mix" {
            "the suite round-robin".to_string()
        } else {
            format!("recorded {}", args.trace)
        },
        cores[0],
    );
    let table = padlock_bench::server_table(
        pool,
        &args.trace,
        &cores,
        &args.channels,
        &switches,
        warmup,
        measure,
    );
    println!("{}", table.render_text());
    rate.lap("server sweep");
}

fn main() {
    let args = parse_args();
    let pool = args.pool();
    let started = Instant::now();
    if args.server {
        server(&args, &pool);
        eprintln!(
            "(server sweep wall-clock: {:.2}s at {} jobs)",
            started.elapsed().as_secs_f64(),
            pool.jobs()
        );
        return;
    }
    if args.mlp {
        mlp(&args, &pool);
        eprintln!(
            "(mlp sweep wall-clock: {:.2}s at {} jobs)",
            started.elapsed().as_secs_f64(),
            pool.jobs()
        );
        return;
    }
    let mut lab = Lab::new(args.scale);
    let mut rate = SweepRate::start();
    if args.calibrate {
        lab.prewarm(&pool, &padlock_bench::ORDER, &[MachineKind::Baseline]);
        calibrate(&mut lab);
        rate.lap("calibration sweep");
        if args.snc {
            lab.prewarm(
                &pool,
                &padlock_bench::ORDER,
                &[MachineKind::LruFull(32), MachineKind::LruFull(64)],
            );
            snc_diag(&mut lab, MachineKind::LruFull(32));
            snc_diag(&mut lab, MachineKind::LruFull(64));
            rate.lap("snc diagnostics sweep");
        }
        eprintln!(
            "(calibration wall-clock: {:.2}s at {} jobs)",
            started.elapsed().as_secs_f64(),
            pool.jobs()
        );
        return;
    }
    let wanted: Vec<u32> = match args.figure {
        Some(n) => vec![n],
        None => vec![3, 5, 6, 7, 8, 9, 10],
    };
    if let Some(dir) = &args.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    // Fan every (benchmark, machine) simulation the wanted figures need
    // across the pool up front; rendering below is pure cache recall,
    // so the output is byte-identical to the serial path.
    let mut machines: Vec<MachineKind> = Vec::new();
    for &n in &wanted {
        for m in padlock_bench::figure_machines(n) {
            if !machines.contains(&m) {
                machines.push(m);
            }
        }
    }
    lab.prewarm(&pool, &padlock_bench::ORDER, &machines);
    rate.lap("figure sweep");
    for n in wanted {
        let fig = match n {
            3 => lab.figure3(),
            5 => lab.figure5(),
            6 => lab.figure6(),
            7 => lab.figure7(),
            8 => lab.figure8(),
            9 => lab.figure9(),
            10 => lab.figure10(),
            other => {
                eprintln!("no figure {other} in the paper's evaluation (3,5..10)");
                std::process::exit(2);
            }
        };
        println!("== {} — {} [{}] ==", fig.id, fig.title, fig.unit);
        println!("{}", fig.table().render_text());
        if let Some(dir) = &args.csv_dir {
            let path = dir.join(format!("figure{n}.csv"));
            std::fs::write(&path, fig.table().render_csv()).expect("write csv");
            println!("(csv written to {})", path.display());
        }
    }
    eprintln!(
        "(figure suite wall-clock: {:.2}s at {} jobs)",
        started.elapsed().as_secs_f64(),
        pool.jobs()
    );
}
