//! Compares a freshly captured Criterion baseline against the
//! checked-in reference and fails on regressions beyond a noise
//! threshold.
//!
//! ```text
//! baseline_diff REFERENCE CURRENT [--threshold 0.5]
//! ```
//!
//! Both files are the JSON-lines format the vendored criterion shim
//! emits under `CRITERION_BASELINE`: one
//! `{"id": ..., "median_ns": ..., "samples": ...}` record per bench.
//! A bench regresses when its current median exceeds the reference
//! median by more than `threshold` (a ratio: 0.5 = +50%). Benches
//! missing from the current capture fail the run (a deleted or broken
//! bench is a regression too); benches missing from the reference are
//! reported as new and pass (the reference wants re-capturing).
//!
//! The threshold defaults to 0.5 and can also be set with the
//! `BASELINE_NOISE` environment variable; the flag wins. Shared-runner
//! CI timing is noisy — the threshold guards against step-function
//! regressions (an accidentally quadratic drain, a lost memoisation),
//! not single-digit-percent drift.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

/// One `{"id": ..., "median_ns": ..., "samples": ...}` record.
#[derive(Debug, Clone, PartialEq)]
struct Record {
    id: String,
    median_ns: f64,
}

/// Pulls a JSON string field out of a single-line record.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            other => out.push(other),
        }
    }
    None
}

/// Pulls a JSON numeric field out of a single-line record.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn load(path: &Path) -> Result<BTreeMap<String, Record>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let id = json_str_field(line, "id")
            .ok_or_else(|| format!("{}:{}: no \"id\" field", path.display(), lineno + 1))?;
        let median_ns = json_num_field(line, "median_ns")
            .ok_or_else(|| format!("{}:{}: no \"median_ns\" field", path.display(), lineno + 1))?;
        // Re-runs append; the last record for an id wins.
        out.insert(id.clone(), Record { id, median_ns });
    }
    Ok(out)
}

fn usage() -> ! {
    eprintln!("usage: baseline_diff REFERENCE CURRENT [--threshold RATIO]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = args.next().unwrap_or_else(|| usage());
                threshold = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--help" | "-h" => usage(),
            other => paths.push(other.to_string()),
        }
    }
    let [reference, current] = paths.as_slice() else {
        usage();
    };
    let threshold = threshold
        .or_else(|| {
            std::env::var("BASELINE_NOISE")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0.5);

    let reference_map = match load(Path::new(reference)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("baseline_diff: {e}");
            return ExitCode::from(2);
        }
    };
    let current_map = match load(Path::new(current)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("baseline_diff: {e}");
            return ExitCode::from(2);
        }
    };

    let mut regressions = 0usize;
    let mut missing = 0usize;
    let mut new = 0usize;
    for (id, reference_rec) in &reference_map {
        match current_map.get(id) {
            None => {
                println!("MISSING    {id} (in reference, not captured now)");
                missing += 1;
            }
            Some(current_rec) => {
                let ratio = current_rec.median_ns / reference_rec.median_ns.max(1e-9);
                let delta = (ratio - 1.0) * 100.0;
                if ratio > 1.0 + threshold {
                    println!(
                        "REGRESSED  {id}: {:.2}ms -> {:.2}ms ({delta:+.1}%)",
                        reference_rec.median_ns / 1e6,
                        current_rec.median_ns / 1e6
                    );
                    regressions += 1;
                } else {
                    println!("ok         {id} ({delta:+.1}%)");
                }
            }
        }
    }
    for id in current_map.keys() {
        if !reference_map.contains_key(id) {
            println!("NEW        {id} (not in reference; re-capture baseline.json)");
            new += 1;
        }
    }

    println!(
        "\n{} benches compared, {} regressed (>{:.0}% over reference), {} missing, {} new",
        reference_map.len(),
        regressions,
        threshold * 100.0,
        missing,
        new,
    );
    if regressions > 0 || missing > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
