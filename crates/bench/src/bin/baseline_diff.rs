//! Compares a freshly captured Criterion baseline against the
//! checked-in reference and fails on regressions beyond a noise
//! threshold.
//!
//! ```text
//! baseline_diff REFERENCE CURRENT [--threshold 0.5]
//! ```
//!
//! Both files are the JSON-lines format the vendored criterion shim
//! emits under `CRITERION_BASELINE`: one
//! `{"id": ..., "median_ns": ..., "samples": ...}` record per bench.
//! A bench regresses when its current median exceeds the reference
//! median by more than `threshold` (a ratio: 0.5 = +50%). Benches
//! missing from the current capture fail the run (a deleted or broken
//! bench is a regression too); benches missing from the reference are
//! reported as new and pass (the reference wants re-capturing).
//!
//! The threshold defaults to 0.5 and can also be set with the
//! `BASELINE_NOISE` environment variable; the flag wins. Shared-runner
//! CI timing is noisy — the threshold guards against step-function
//! regressions (an accidentally quadratic drain, a lost memoisation),
//! not single-digit-percent drift.
//!
//! `__walltime__/…` records (one per bench binary, appended by the
//! shim's `criterion_main!`) are not benchmarks: they are excluded from
//! the verdicts and instead summed and printed as each capture's total
//! wall-clock, so the baseline files double as a record of how long a
//! capture takes on their host.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

/// One `{"id": ..., "median_ns": ..., "samples": ...}` record.
#[derive(Debug, Clone, PartialEq)]
struct Record {
    id: String,
    median_ns: f64,
}

/// Pulls a JSON string field out of a single-line record.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            other => out.push(other),
        }
    }
    None
}

/// Pulls a JSON numeric field out of a single-line record.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn load(path: &Path) -> Result<BTreeMap<String, Record>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let id = json_str_field(line, "id")
            .ok_or_else(|| format!("{}:{}: no \"id\" field", path.display(), lineno + 1))?;
        let median_ns = json_num_field(line, "median_ns")
            .ok_or_else(|| format!("{}:{}: no \"median_ns\" field", path.display(), lineno + 1))?;
        // Re-runs append; the last record for an id wins.
        out.insert(id.clone(), Record { id, median_ns });
    }
    Ok(out)
}

/// Ids under this prefix carry per-binary capture wall-clock, not
/// benchmark medians.
const WALLTIME_PREFIX: &str = "__walltime__/";

/// Removes the `__walltime__/…` records from a capture and returns
/// their summed wall-clock in seconds — `None` when the capture
/// predates walltime recording.
fn take_walltime(map: &mut BTreeMap<String, Record>) -> Option<f64> {
    let ids: Vec<String> = map
        .keys()
        .filter(|id| id.starts_with(WALLTIME_PREFIX))
        .cloned()
        .collect();
    if ids.is_empty() {
        return None;
    }
    let mut total_ns = 0.0;
    for id in ids {
        if let Some(rec) = map.remove(&id) {
            total_ns += rec.median_ns;
        }
    }
    Some(total_ns / 1e9)
}

/// How one bench fared against the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// Present in both, within the noise threshold.
    Ok,
    /// Current median exceeds reference by more than the threshold.
    Regressed,
    /// In the reference but not captured now (deleted/broken bench).
    Missing,
    /// Captured now but absent from the reference (wants re-capture).
    New,
}

/// The comparison summary `main` renders and turns into an exit code.
#[derive(Debug, Default)]
struct Comparison {
    /// One `(id, verdict, delta-percent)` row per bench, reference rows
    /// first (sorted by id), then new benches. The delta is 0 for
    /// missing/new rows.
    rows: Vec<(String, Verdict, f64)>,
    regressions: usize,
    missing: usize,
    new: usize,
}

impl Comparison {
    /// Whether the comparison should fail the CI gate: regressions and
    /// missing benches fail, new benches only inform.
    fn failed(&self) -> bool {
        self.regressions > 0 || self.missing > 0
    }
}

/// Compares a current capture against the reference with the given
/// noise threshold (a ratio: 0.5 = +50% over reference regresses).
fn compare(
    reference: &BTreeMap<String, Record>,
    current: &BTreeMap<String, Record>,
    threshold: f64,
) -> Comparison {
    let mut out = Comparison::default();
    for (id, reference_rec) in reference {
        match current.get(id) {
            None => {
                out.rows.push((id.clone(), Verdict::Missing, 0.0));
                out.missing += 1;
            }
            Some(current_rec) => {
                let ratio = current_rec.median_ns / reference_rec.median_ns.max(1e-9);
                let delta = (ratio - 1.0) * 100.0;
                if ratio > 1.0 + threshold {
                    out.rows.push((id.clone(), Verdict::Regressed, delta));
                    out.regressions += 1;
                } else {
                    out.rows.push((id.clone(), Verdict::Ok, delta));
                }
            }
        }
    }
    for id in current.keys() {
        if !reference.contains_key(id) {
            out.rows.push((id.clone(), Verdict::New, 0.0));
            out.new += 1;
        }
    }
    out
}

fn usage() -> ! {
    eprintln!("usage: baseline_diff REFERENCE CURRENT [--threshold RATIO]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = args.next().unwrap_or_else(|| usage());
                threshold = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--help" | "-h" => usage(),
            other => paths.push(other.to_string()),
        }
    }
    let [reference, current] = paths.as_slice() else {
        usage();
    };
    let threshold = threshold
        .or_else(|| {
            std::env::var("BASELINE_NOISE")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0.5);

    let mut reference_map = match load(Path::new(reference)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("baseline_diff: {e}");
            return ExitCode::from(2);
        }
    };
    let mut current_map = match load(Path::new(current)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("baseline_diff: {e}");
            return ExitCode::from(2);
        }
    };
    let reference_walltime = take_walltime(&mut reference_map);
    let current_walltime = take_walltime(&mut current_map);

    let result = compare(&reference_map, &current_map, threshold);
    for (id, verdict, delta) in &result.rows {
        match verdict {
            Verdict::Missing => println!("MISSING    {id} (in reference, not captured now)"),
            Verdict::New => println!("NEW        {id} (not in reference; re-capture baseline.json)"),
            Verdict::Regressed => {
                let reference_rec = &reference_map[id];
                let current_rec = &current_map[id];
                println!(
                    "REGRESSED  {id}: {:.2}ms -> {:.2}ms ({delta:+.1}%)",
                    reference_rec.median_ns / 1e6,
                    current_rec.median_ns / 1e6
                );
            }
            Verdict::Ok => println!("ok         {id} ({delta:+.1}%)"),
        }
    }

    println!(
        "\n{} benches compared, {} regressed (>{:.0}% over reference), {} missing, {} new",
        reference_map.len(),
        result.regressions,
        threshold * 100.0,
        result.missing,
        result.new,
    );
    let walltime = |w: Option<f64>| match w {
        Some(secs) => format!("{secs:.2}s"),
        None => "not recorded".to_string(),
    };
    println!(
        "capture wall-clock: reference {}, current {}",
        walltime(reference_walltime),
        walltime(current_walltime),
    );
    if result.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, median_ns: f64) -> (String, Record) {
        (
            id.to_string(),
            Record {
                id: id.to_string(),
                median_ns,
            },
        )
    }

    fn map(records: &[(String, Record)]) -> BTreeMap<String, Record> {
        records.iter().cloned().collect()
    }

    #[test]
    fn within_noise_passes() {
        let reference = map(&[rec("a", 100.0), rec("b", 200.0)]);
        // +40% and -20%: both inside a 0.5 threshold.
        let current = map(&[rec("a", 140.0), rec("b", 160.0)]);
        let c = compare(&reference, &current, 0.5);
        assert_eq!(c.regressions, 0);
        assert_eq!(c.missing, 0);
        assert_eq!(c.new, 0);
        assert!(!c.failed());
        assert!(c.rows.iter().all(|(_, v, _)| *v == Verdict::Ok));
    }

    #[test]
    fn step_function_regression_fails() {
        let reference = map(&[rec("a", 100.0), rec("b", 200.0)]);
        // a: +60% over a 0.5 threshold -> regressed; b: improvement.
        let current = map(&[rec("a", 160.0), rec("b", 20.0)]);
        let c = compare(&reference, &current, 0.5);
        assert_eq!(c.regressions, 1);
        assert!(c.failed());
        let (id, verdict, delta) = &c.rows[0];
        assert_eq!((id.as_str(), *verdict), ("a", Verdict::Regressed));
        assert!((delta - 60.0).abs() < 1e-9);
        // Exactly at the threshold is still ok (strictly-greater gate).
        let at = map(&[rec("a", 150.0), rec("b", 200.0)]);
        assert_eq!(compare(&reference, &at, 0.5).regressions, 0);
    }

    #[test]
    fn missing_bench_fails_new_bench_passes() {
        let reference = map(&[rec("a", 100.0), rec("gone", 50.0)]);
        let current = map(&[rec("a", 100.0), rec("fresh", 70.0)]);
        let c = compare(&reference, &current, 0.5);
        assert_eq!(c.missing, 1);
        assert_eq!(c.new, 1);
        assert_eq!(c.regressions, 0);
        // A deleted/broken bench is a regression; a new bench is not.
        assert!(c.failed());
        assert!(c
            .rows
            .iter()
            .any(|(id, v, _)| id == "gone" && *v == Verdict::Missing));
        assert!(c
            .rows
            .iter()
            .any(|(id, v, _)| id == "fresh" && *v == Verdict::New));
        let only_new = compare(&map(&[rec("a", 100.0)]), &current, 0.5);
        assert!(!only_new.failed());
    }

    #[test]
    fn walltime_records_are_summed_and_never_compared() {
        let mut capture = map(&[
            rec("a", 100.0),
            rec("__walltime__/channel_sweep", 2.0e9),
            rec("__walltime__/mlp_sweep", 5.0e8),
        ]);
        let secs = take_walltime(&mut capture).expect("walltime present");
        assert!((secs - 2.5).abs() < 1e-9);
        assert_eq!(capture.len(), 1, "only real benches remain");
        // A pre-walltime capture: nothing to strip, nothing to report.
        let mut old = map(&[rec("a", 100.0)]);
        assert_eq!(take_walltime(&mut old), None);
        assert_eq!(old.len(), 1);
        // Stripped maps compare cleanly even when only one side had
        // walltime records — they can never show up MISSING or NEW.
        let c = compare(&old, &capture, 0.5);
        assert!(!c.failed());
        assert_eq!(c.new, 0);
    }

    #[test]
    fn json_fields_parse_escapes_and_numbers() {
        let line = r#"{"id":"mlp_sweep/inflight16\"x\"4shard","median_ns":1234.5,"samples":10}"#;
        assert_eq!(
            json_str_field(line, "id").as_deref(),
            Some("mlp_sweep/inflight16\"x\"4shard")
        );
        assert_eq!(json_num_field(line, "median_ns"), Some(1234.5));
        assert_eq!(json_num_field(line, "samples"), Some(10.0));
        assert_eq!(json_num_field(line, "absent"), None);
        assert_eq!(json_str_field(line, "median_ns"), None);
        assert_eq!(json_num_field(r#"{"median_ns":2.5e3}"#, "median_ns"), Some(2500.0));
    }

    #[test]
    fn load_takes_the_last_record_per_id_and_skips_blanks() {
        let dir = std::env::temp_dir().join("padlock_baseline_diff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(
            &path,
            "{\"id\":\"a\",\"median_ns\":100.0,\"samples\":10}\n\
             \n\
             {\"id\":\"b\",\"median_ns\":50.0,\"samples\":10}\n\
             {\"id\":\"a\",\"median_ns\":300.0,\"samples\":10}\n",
        )
        .unwrap();
        let m = load(&path).unwrap();
        assert_eq!(m.len(), 2);
        // Re-runs append; the last record for an id wins.
        assert_eq!(m["a"].median_ns, 300.0);
        assert_eq!(m["b"].median_ns, 50.0);
        // A record without the fields is an error, not a skip.
        std::fs::write(&path, "{\"median_ns\":1.0}\n").unwrap();
        assert!(load(&path).unwrap_err().contains("no \"id\" field"));
        std::fs::write(&path, "{\"id\":\"a\"}\n").unwrap();
        assert!(load(&path).unwrap_err().contains("no \"median_ns\" field"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
