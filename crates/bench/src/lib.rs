//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§5).
//!
//! Each `figure*` function runs the machines that figure compares across
//! the 11-benchmark suite and returns a [`FigureResult`] holding both our
//! measured series and the paper's published series, rendered side by
//! side by the `repro` binary. Simulation results are memoised per
//! `(benchmark, machine)` pair inside a [`Lab`], because the figures
//! share machine configurations (Fig. 3's XOM column reappears in
//! Figs. 5 and 8).
//!
//! # Examples
//!
//! ```
//! use padlock_bench::{Lab, RunScale};
//!
//! let mut lab = Lab::new(RunScale::Smoke);
//! let fig = lab.figure3();
//! assert_eq!(fig.rows.len(), 11);
//! ```

#![warn(missing_docs)]

mod figures;
mod lab;
mod meter;
pub mod mlp;
mod paper_data;
pub mod seed_core;
pub mod server;

pub use figures::{figure_machines, FigureResult, Series};
pub use lab::{Lab, MachineKind, RunScale};
pub use meter::simulated_cycles;
pub use mlp::{
    bank_table, bank_table_from, banked_grid, e2e_machine_config, e2e_table, grid_jsonl,
    idle_delta_table, idle_delta_table_from, inflight_for, mlp_table, order_delta_table,
    order_delta_table_from, run_e2e_point, run_e2e_point_seed, run_mlp_point, E2eParams, E2ePoint, E2eTrace, MlpPoint,
};
pub use paper_data::{paper_series, ORDER};
pub use server::{run_server_point, server_machine_config, server_table, ServerPoint};
