//! A line-for-line port of the pre-fast-forward pipeline run loop (the
//! PR 7 `Core::run`), kept as the reference half of the
//! `fastforward_vs_seed` differential and the baseline half of the
//! `simrate` criterion benches.
//!
//! This is the repo's signature methodology (PRs 2–5, 7): when a
//! component is rewritten for speed, the old implementation is ported
//! verbatim into the bench crate and driven against the new one over
//! the full parameter grid, asserting bit-exact cycles and counters.
//! The port below preserves the seed loop's observable behaviour
//! exactly:
//!
//! * per-cycle stage order (resolutions → stall-on-use → commit →
//!   oldest-first issue scan → fetch/dispatch → advance);
//! * the O(|ROB|) issue rescan and the O(|ROB|) next-event rescan that
//!   the fast-forward core replaces with incremental readiness tracking
//!   and an event calendar;
//! * every hierarchy call site and drain trigger (stall-on-use,
//!   no-progress, wrap-up), so the backend sees the identical sequence
//!   of `line_read_batch_at` windows and `line_writeback`s.
//!
//! The only deliberate deviation: the seed loop's silent release-mode
//! `now + 1` fallback is reported through the same `forced_steps`
//! counter the new core exposes (it stays 0 in both, and the
//! differential asserts so).

use padlock_core::{MachineConfig, Measurement, SecureBackend};
use padlock_cpu::{
    Access, AccessToken, BimodalPredictor, BranchPredictor, Hierarchy, MemoryBackend, MicroOp,
    OpClass, PipelineConfig, RunStats, Workload,
};
use padlock_stats::CounterSet;
use std::collections::{BTreeMap, VecDeque};

const NO_DEP: u64 = u64::MAX;
const NOT_ISSUED: u64 = u64::MAX;
/// Completion sentinel for a load waiting on an in-flight L2 miss; the
/// real cycle arrives when the hierarchy drains its MSHR file.
const PENDING: u64 = u64::MAX - 1;

#[derive(Debug, Clone, Copy)]
enum SlotKind {
    Fixed(u64),
    Load(u64),
    Store(u64),
    /// A mispredicted branch; resolving it un-blocks the front end.
    BranchRedirect,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    kind: SlotKind,
    /// Absolute sequence numbers of producers (NO_DEP when independent or
    /// already retired at dispatch).
    dep1: u64,
    dep2: u64,
    issued: bool,
    complete_at: u64,
}

/// The seed out-of-order core: the cycle-stepping engine as it stood
/// before the event-calendar rewrite, over the same [`Hierarchy`].
#[derive(Debug)]
pub struct SeedCore<B> {
    config: PipelineConfig,
    hierarchy: Hierarchy<B>,
    bpred: BimodalPredictor,
    now: u64,
}

impl<B: MemoryBackend> SeedCore<B> {
    /// Creates a seed core over an explicit hierarchy.
    pub fn with_hierarchy(config: PipelineConfig, hierarchy: Hierarchy<B>) -> Self {
        let bpred = BimodalPredictor::new(config.bpred_entries);
        Self {
            config,
            hierarchy,
            bpred,
            now: 0,
        }
    }

    /// The cache hierarchy (stats access).
    pub fn hierarchy(&self) -> &Hierarchy<B> {
        &self.hierarchy
    }

    /// Mutable hierarchy access (backend control).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy<B> {
        &mut self.hierarchy
    }

    /// Current simulated cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Resets hierarchy/backend statistics between warm-up and
    /// measurement.
    pub fn reset_stats(&mut self) {
        self.hierarchy.reset_stats();
    }

    /// Runs until `n_ops` ops have committed; returns window statistics.
    ///
    /// Verbatim port of the seed `Core::run` loop (see the module docs
    /// for the exact provenance).
    pub fn run<W: Workload + ?Sized>(&mut self, workload: &mut W, n_ops: u64) -> RunStats {
        let mut stats = RunStats::default();
        let start_cycle = self.now;

        let rob_size = self.config.rob_size;
        let mut rob: VecDeque<Slot> = VecDeque::with_capacity(rob_size);
        let mut base: u64 = 0; // sequence number of rob.front()
        let mut dispatched: u64 = 0;
        let mut committed: u64 = 0;

        // Loads waiting on in-flight L2 misses: MSHR token -> absolute
        // ROB sequence number of the load's slot.
        let mut pending_loads: BTreeMap<AccessToken, u64> = BTreeMap::new();
        let mut resolved_buf: Vec<(AccessToken, u64)> = Vec::new();

        // Front-end state.
        let mut fetch_ready_at: u64 = 0; // I-miss stall
        let mut redirect_pending = false; // mispredict: blocked until resolve
        let mut fetch_resume_at: u64 = 0;
        let mut pending_op: Option<MicroOp> = None;
        let mut last_fetch_line: u64 = u64::MAX;
        let l1i_line = self.hierarchy.config().l1i.line_bytes() as u64;

        while committed < n_ops {
            let now = self.now;
            let mut progress = false;

            // ---- Collect resolved fills ----
            self.hierarchy.take_resolutions(&mut resolved_buf);
            for (token, done) in resolved_buf.drain(..) {
                let Some(seq) = pending_loads.remove(&token) else {
                    continue; // fire-and-forget store fill
                };
                if seq >= base {
                    let idx = (seq - base) as usize;
                    rob[idx].complete_at = done;
                }
            }

            // ---- Stall on use ----
            if self.hierarchy.pending_misses() > 0
                && rob
                    .front()
                    .is_some_and(|s| s.issued && s.complete_at == PENDING)
            {
                self.hierarchy.drain_pending();
                continue;
            }

            // ---- Commit ----
            let mut commits = 0;
            while commits < self.config.commit_width {
                match rob.front() {
                    Some(slot) if slot.issued && slot.complete_at <= now => {
                        rob.pop_front();
                        base += 1;
                        committed += 1;
                        commits += 1;
                        progress = true;
                        if committed >= n_ops {
                            break;
                        }
                    }
                    _ => break,
                }
            }
            if committed >= n_ops {
                break;
            }

            // ---- Issue (oldest first) ----
            let mut issues = 0;
            let mut mem_issues = 0;
            for i in 0..rob.len() {
                if issues >= self.config.issue_width {
                    break;
                }
                let slot = rob[i];
                if slot.issued {
                    continue;
                }
                let dep_done = |dep: u64, rob: &VecDeque<Slot>| -> bool {
                    if dep == NO_DEP || dep < base {
                        return true;
                    }
                    let idx = (dep - base) as usize;
                    let d = &rob[idx];
                    d.issued && d.complete_at <= now
                };
                if !dep_done(slot.dep1, &rob) || !dep_done(slot.dep2, &rob) {
                    continue;
                }
                let is_mem = matches!(slot.kind, SlotKind::Load(_) | SlotKind::Store(_));
                if is_mem && mem_issues >= self.config.mem_ports {
                    continue;
                }
                let complete_at = match slot.kind {
                    SlotKind::Fixed(lat) => now + lat,
                    SlotKind::Load(addr) => match self.hierarchy.data_access_nb(now, addr, false) {
                        Access::Ready(done) => done,
                        Access::Pending(token) => {
                            pending_loads.insert(token, base + i as u64);
                            PENDING
                        }
                    },
                    SlotKind::Store(addr) => {
                        let _ = self.hierarchy.data_access_nb(now, addr, true);
                        now + 1
                    }
                    SlotKind::BranchRedirect => {
                        let done = now + 1;
                        redirect_pending = false;
                        fetch_resume_at = done + self.config.mispredict_penalty;
                        done
                    }
                };
                let s = &mut rob[i];
                s.issued = true;
                s.complete_at = complete_at;
                issues += 1;
                if is_mem {
                    mem_issues += 1;
                }
                progress = true;
            }

            // ---- Fetch / dispatch ----
            let mut fetched = 0;
            while fetched < self.config.fetch_width
                && rob.len() < rob_size
                && !redirect_pending
                && now >= fetch_resume_at
                && now >= fetch_ready_at
                && dispatched < n_ops + rob_size as u64
            {
                let op = match pending_op.take() {
                    Some(op) => op,
                    None => workload.next_op(),
                };
                // I-cache: a new line triggers a fetch access.
                let line = op.pc / l1i_line;
                if line != last_fetch_line {
                    let avail = self.hierarchy.inst_fetch(now, op.pc);
                    last_fetch_line = line;
                    if avail > now + self.hierarchy.config().l1_latency {
                        // I-miss: hold the op until the line arrives.
                        fetch_ready_at = avail;
                        pending_op = Some(op);
                        break;
                    }
                }

                let seq = dispatched;
                let to_abs = |dist: u16| -> u64 {
                    if dist == 0 || u64::from(dist) > seq {
                        NO_DEP
                    } else {
                        seq - u64::from(dist)
                    }
                };
                let kind = match op.class {
                    OpClass::Load(a) => SlotKind::Load(a),
                    OpClass::Store(a) => SlotKind::Store(a),
                    OpClass::Branch { taken } => {
                        stats.branches += 1;
                        let predicted = self.bpred.predict(op.pc);
                        self.bpred.update(op.pc, taken);
                        if predicted != taken {
                            stats.mispredicts += 1;
                            SlotKind::BranchRedirect
                        } else {
                            SlotKind::Fixed(1)
                        }
                    }
                    other => SlotKind::Fixed(other.fixed_latency().expect("non-mem fixed")),
                };
                match op.class {
                    OpClass::Load(_) => stats.loads += 1,
                    OpClass::Store(_) => stats.stores += 1,
                    _ => {}
                }
                let is_redirect = matches!(kind, SlotKind::BranchRedirect);
                if is_redirect {
                    redirect_pending = true;
                    // Fetch stops after this branch until it resolves.
                }
                rob.push_back(Slot {
                    kind,
                    dep1: to_abs(op.dep1),
                    dep2: to_abs(op.dep2),
                    issued: false,
                    complete_at: NOT_ISSUED,
                });
                dispatched += 1;
                fetched += 1;
                progress = true;
                if is_redirect {
                    break;
                }
            }

            // ---- Advance time ----
            if progress {
                self.now += 1;
            } else {
                // Nothing happened: skip to the next event via the seed
                // model's O(|ROB|) rescan.
                let mut next = u64::MAX;
                for s in &rob {
                    if s.issued && s.complete_at != PENDING && s.complete_at > now {
                        next = next.min(s.complete_at);
                    }
                }
                if fetch_ready_at > now {
                    next = next.min(fetch_ready_at);
                }
                if fetch_resume_at > now && !redirect_pending {
                    next = next.min(fetch_resume_at);
                }
                if next == u64::MAX && self.hierarchy.pending_misses() > 0 {
                    self.hierarchy.drain_pending();
                    continue;
                }
                debug_assert!(
                    next != u64::MAX,
                    "stalled with no future event: rob={rob:?}"
                );
                if next == u64::MAX {
                    stats.forced_steps += 1;
                }
                self.now = if next == u64::MAX { now + 1 } else { next };
            }
        }

        // Window wrap-up: issue fills still sitting in the MSHR file.
        self.hierarchy.drain_pending();
        self.hierarchy.take_resolutions(&mut resolved_buf);
        resolved_buf.clear();

        stats.instructions = committed;
        stats.cycles = self.now - start_cycle;
        stats
    }
}

/// A whole seed machine (seed core + hierarchy + secure backend): the
/// reference half of the end-to-end differential, mirroring
/// [`Machine::run`]'s warm-up / reset / measure / wrap-up protocol.
#[derive(Debug)]
pub struct SeedMachine {
    core: SeedCore<SecureBackend>,
    label: String,
}

impl SeedMachine {
    /// Builds the seed machine from the same configuration
    /// [`Machine::new`] takes.
    pub fn new(config: MachineConfig) -> Self {
        let label = config.label();
        let backend = SecureBackend::new(config.security);
        let hierarchy = Hierarchy::new(config.hierarchy, backend);
        let core = SeedCore::with_hierarchy(config.pipeline, hierarchy);
        Self { core, label }
    }

    /// Direct access to the seed core.
    pub fn core_mut(&mut self) -> &mut SeedCore<SecureBackend> {
        &mut self.core
    }

    /// Warm up, reset statistics, measure: the same protocol as
    /// [`Machine::run`], returning the same [`Measurement`].
    pub fn run<W: Workload + ?Sized>(
        &mut self,
        workload: &mut W,
        warmup_ops: u64,
        measure_ops: u64,
    ) -> Measurement {
        if warmup_ops > 0 {
            self.core.run(workload, warmup_ops);
        }
        self.core.reset_stats();
        let stats = self.core.run(workload, measure_ops);
        let now = self.core.now();
        self.core.hierarchy_mut().backend_mut().drain(now);
        let h = self.core.hierarchy();
        Measurement {
            stats,
            l2: h.l2_stats().clone(),
            traffic: h.backend().traffic(),
            controller: h.backend().controller_stats().clone(),
            mshr: h.mshr_stats().clone(),
            snc: h
                .backend()
                .snc()
                .map(|s| s.stats())
                .unwrap_or_else(|| CounterSet::new("snc")),
            label: self.label.clone(),
        }
    }
}
