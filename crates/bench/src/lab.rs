//! Machine configurations and the memoised simulation driver.

use padlock_core::{
    Machine, MachineConfig, Measurement, SecurityMode, SncConfig, SncOrganization,
};
use padlock_exec::SweepPool;
use padlock_workloads::{benchmark_profile, SpecWorkload};
use std::collections::HashMap;
use std::fmt;

/// The distinct machines the paper's figures compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// Insecure baseline, 256KB L2.
    Baseline,
    /// Baseline with the Fig. 8 384KB 6-way L2 (not in the paper, used
    /// for normalisation sanity checks).
    Baseline384,
    /// XOM, 50-cycle crypto.
    Xom,
    /// XOM with the 384KB 6-way L2 (Fig. 8).
    Xom384,
    /// XOM, 102-cycle crypto (Fig. 10).
    XomSlow,
    /// OTP, no-replacement 64KB fully associative SNC.
    Norepl64,
    /// OTP, no-replacement SNC, 102-cycle crypto (Fig. 10).
    Norepl64Slow,
    /// OTP, LRU fully associative SNC of the given capacity in KB
    /// (Figs. 5–6: 32, 64, 128).
    LruFull(u32),
    /// OTP, LRU 64KB 32-way SNC (Figs. 7–8).
    Lru64Way32,
    /// OTP, LRU 64KB fully associative, 102-cycle crypto (Fig. 10).
    Lru64Slow,
}

impl MachineKind {
    /// Builds the machine configuration for this kind.
    pub fn config(self) -> MachineConfig {
        let lru = |kb: u32| SecurityMode::Otp {
            snc: SncConfig::paper_default().with_capacity(kb as usize * 1024),
        };
        match self {
            MachineKind::Baseline => MachineConfig::paper(SecurityMode::Insecure),
            MachineKind::Baseline384 => {
                let mut c = MachineConfig::paper(SecurityMode::Insecure);
                c.hierarchy = padlock_cpu::HierarchyConfig::paper_big_l2();
                c
            }
            MachineKind::Xom => MachineConfig::paper(SecurityMode::Xom),
            MachineKind::Xom384 => MachineConfig::paper_xom_big_l2(),
            MachineKind::XomSlow => {
                let mut c = MachineConfig::paper(SecurityMode::Xom);
                c.security = c.security.with_slow_crypto();
                c
            }
            MachineKind::Norepl64 => MachineConfig::paper(SecurityMode::otp_norepl_64k()),
            MachineKind::Norepl64Slow => {
                let mut c = MachineConfig::paper(SecurityMode::otp_norepl_64k());
                c.security = c.security.with_slow_crypto();
                c
            }
            MachineKind::LruFull(kb) => MachineConfig::paper(lru(kb)),
            MachineKind::Lru64Way32 => {
                let snc = SncConfig::paper_default()
                    .with_organization(SncOrganization::SetAssociative(32));
                MachineConfig::paper(SecurityMode::Otp { snc })
            }
            MachineKind::Lru64Slow => {
                let mut c = MachineConfig::paper(lru(64));
                c.security = c.security.with_slow_crypto();
                c
            }
        }
    }

    /// A stable key for memoisation and CSV column names.
    pub fn key(self) -> String {
        match self {
            MachineKind::Baseline => "base".into(),
            MachineKind::Baseline384 => "base384".into(),
            MachineKind::Xom => "xom".into(),
            MachineKind::Xom384 => "xom384".into(),
            MachineKind::XomSlow => "xom102".into(),
            MachineKind::Norepl64 => "norepl64".into(),
            MachineKind::Norepl64Slow => "norepl64s".into(),
            MachineKind::LruFull(kb) => format!("lru{kb}"),
            MachineKind::Lru64Way32 => "lru64w32".into(),
            MachineKind::Lru64Slow => "lru64s".into(),
        }
    }
}

impl fmt::Display for MachineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key())
    }
}

/// How large a window each simulation runs (all figures share it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Tiny windows for unit tests and Criterion benches.
    Smoke,
    /// Small windows for quick iteration (`repro --quick`).
    Quick,
    /// The default reproduction scale.
    Full,
}

impl RunScale {
    /// `(warmup_ops, measure_ops)` per simulation.
    ///
    /// The `PADLOCK_WARMUP` / `PADLOCK_MEASURE` environment variables
    /// override the scale (useful for calibration experiments).
    pub fn window(self) -> (u64, u64) {
        let (w, m) = match self {
            RunScale::Smoke => (80_000, 200_000),
            RunScale::Quick => (500_000, 1_500_000),
            RunScale::Full => (2_000_000, 6_000_000),
        };
        let env = |key: &str, dflt: u64| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(dflt)
        };
        (env("PADLOCK_WARMUP", w), env("PADLOCK_MEASURE", m))
    }
}

/// The memoising simulation driver shared by all figures.
#[derive(Debug)]
pub struct Lab {
    scale: RunScale,
    cache: HashMap<(String, String), Measurement>,
}

impl Lab {
    /// Creates a lab at the given run scale.
    pub fn new(scale: RunScale) -> Self {
        Self {
            scale,
            cache: HashMap::new(),
        }
    }

    /// The lab's run scale.
    pub fn scale(&self) -> RunScale {
        self.scale
    }

    /// Runs (or recalls) `benchmark` on `machine`.
    pub fn measure(&mut self, benchmark: &str, machine: MachineKind) -> Measurement {
        let key = (benchmark.to_string(), machine.key());
        if let Some(m) = self.cache.get(&key) {
            return m.clone();
        }
        let result = Self::simulate(self.scale, benchmark, machine);
        self.cache.insert(key, result.clone());
        result
    }

    /// One uncached simulation — a pure function of (scale, benchmark,
    /// machine), which is what lets [`Lab::prewarm`] fan these across
    /// threads.
    fn simulate(scale: RunScale, benchmark: &str, machine: MachineKind) -> Measurement {
        let (warmup, measure) = scale.window();
        let mut workload = SpecWorkload::new(benchmark_profile(benchmark));
        let mut m = Machine::new(machine.config());
        // Model the paper's 10-billion-instruction fast-forward: an
        // ancient heap written long ago, plus (for rewrite-style
        // benchmarks) the live region the program updates in place.
        let ancient: Vec<u64> = workload.ancient_line_addrs().collect();
        let active: Vec<u64> = workload.active_line_addrs().collect();
        m.core_mut().hierarchy_mut().backend_mut().pre_age(ancient, active);
        let measurement = m.run(&mut workload, warmup, measure);
        crate::meter::record_simulated_cycles(measurement.stats.cycles);
        measurement
    }

    /// Fills the memoisation cache for every `benchmark × machine`
    /// pair by fanning the uncached simulations across `pool`. Figure
    /// rendering afterwards is pure cache recall, so prewarming
    /// parallelises the figure suite without touching its output:
    /// every cell is the same pure function of (scale, benchmark,
    /// machine) whichever thread ran it.
    pub fn prewarm(&mut self, pool: &SweepPool, benchmarks: &[&str], machines: &[MachineKind]) {
        let mut todo: Vec<(String, MachineKind)> = Vec::new();
        let mut queued: std::collections::HashSet<(String, String)> = std::collections::HashSet::new();
        for &b in benchmarks {
            for &machine in machines {
                let key = (b.to_string(), machine.key());
                if !self.cache.contains_key(&key) && queued.insert(key) {
                    todo.push((b.to_string(), machine));
                }
            }
        }
        let scale = self.scale;
        let results = pool.sweep(&todo, |(b, machine)| Self::simulate(scale, b, *machine));
        for ((benchmark, machine), m) in todo.into_iter().zip(results) {
            self.cache.insert((benchmark, machine.key()), m);
        }
    }

    /// Slowdown [%] of `machine` relative to the 256KB baseline.
    pub fn slowdown(&mut self, benchmark: &str, machine: MachineKind) -> f64 {
        let base = self.measure(benchmark, MachineKind::Baseline).stats.cycles;
        let secure = self.measure(benchmark, machine).stats.cycles;
        (secure as f64 / base as f64 - 1.0) * 100.0
    }

    /// Normalised execution time of `machine` relative to the 256KB
    /// baseline (Fig. 8's metric).
    pub fn normalized_time(&mut self, benchmark: &str, machine: MachineKind) -> f64 {
        let base = self.measure(benchmark, MachineKind::Baseline).stats.cycles;
        let secure = self.measure(benchmark, machine).stats.cycles;
        secure as f64 / base as f64
    }

    /// Number of memoised simulations (for tests).
    pub fn cached_runs(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_keys_are_unique() {
        let kinds = [
            MachineKind::Baseline,
            MachineKind::Baseline384,
            MachineKind::Xom,
            MachineKind::Xom384,
            MachineKind::XomSlow,
            MachineKind::Norepl64,
            MachineKind::Norepl64Slow,
            MachineKind::LruFull(32),
            MachineKind::LruFull(64),
            MachineKind::LruFull(128),
            MachineKind::Lru64Way32,
            MachineKind::Lru64Slow,
        ];
        let keys: std::collections::HashSet<String> = kinds.iter().map(|k| k.key()).collect();
        assert_eq!(keys.len(), kinds.len());
    }

    #[test]
    fn configs_differ_where_they_should() {
        let xom = MachineKind::Xom.config();
        let slow = MachineKind::XomSlow.config();
        assert_eq!(xom.security.crypto.pipeline_latency(), 50);
        assert_eq!(slow.security.crypto.pipeline_latency(), 102);
        let big = MachineKind::Xom384.config();
        assert_eq!(big.hierarchy.l2.size_bytes(), 384 * 1024);
        assert_eq!(big.hierarchy.l2.ways(), 6);
    }

    #[test]
    fn measurements_are_memoised() {
        let mut lab = Lab::new(RunScale::Smoke);
        let a = lab.measure("gzip", MachineKind::Baseline);
        let b = lab.measure("gzip", MachineKind::Baseline);
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(lab.cached_runs(), 1);
    }

    #[test]
    fn prewarm_matches_serial_measurements_and_fills_the_cache() {
        let mut serial = Lab::new(RunScale::Smoke);
        let a = serial.measure("gzip", MachineKind::Xom);
        let mut pre = Lab::new(RunScale::Smoke);
        pre.prewarm(
            &SweepPool::new(4),
            &["gzip"],
            &[MachineKind::Baseline, MachineKind::Xom, MachineKind::Xom],
        );
        assert_eq!(pre.cached_runs(), 2, "duplicate machine must be queued once");
        let b = pre.measure("gzip", MachineKind::Xom);
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.instructions, b.stats.instructions);
        assert_eq!(pre.cached_runs(), 2, "measure after prewarm must be pure recall");
    }

    #[test]
    fn slowdown_is_zero_against_itself() {
        let mut lab = Lab::new(RunScale::Smoke);
        assert_eq!(lab.slowdown("gzip", MachineKind::Baseline), 0.0);
    }
}
