//! One function per figure of the paper's §5.

use crate::lab::{Lab, MachineKind};
use crate::paper_data::{paper_series, ORDER};
use padlock_stats::{arith_mean, Align, Table};

/// One measured-vs-paper series of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Series label (the figure's legend entry).
    pub label: String,
    /// Our measured values, one per benchmark in figure order.
    pub measured: Vec<f64>,
    /// The paper's published values.
    pub paper: Vec<f64>,
}

impl Series {
    /// Arithmetic mean of the measured values.
    pub fn measured_avg(&self) -> f64 {
        arith_mean(&self.measured).unwrap_or(0.0)
    }

    /// Arithmetic mean of the paper's values.
    pub fn paper_avg(&self) -> f64 {
        arith_mean(&self.paper).unwrap_or(0.0)
    }
}

/// A fully evaluated figure.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Figure identifier (e.g. `"Figure 5"`).
    pub id: String,
    /// What the figure shows.
    pub title: String,
    /// Benchmark row labels, in figure order.
    pub rows: Vec<String>,
    /// The measured/paper series.
    pub series: Vec<Series>,
    /// Unit suffix for rendering (e.g. `"%"`).
    pub unit: String,
}

impl FigureResult {
    /// Renders the figure as a side-by-side `measured | paper` table
    /// with the average row the paper prints on each figure.
    pub fn table(&self) -> Table {
        let mut header = vec!["bench".to_string()];
        for s in &self.series {
            header.push(format!("{} (ours)", s.label));
            header.push(format!("{} (paper)", s.label));
        }
        let mut table = Table::new(header);
        for c in 1..table.col_count() {
            table.set_align(c, Align::Right);
        }
        for (i, row) in self.rows.iter().enumerate() {
            let mut cells = vec![row.clone()];
            for s in &self.series {
                cells.push(format!("{:.2}", s.measured[i]));
                cells.push(format!("{:.2}", s.paper[i]));
            }
            table.push_row(cells);
        }
        let mut avg = vec!["avg".to_string()];
        for s in &self.series {
            avg.push(format!("{:.2}", s.measured_avg()));
            avg.push(format!("{:.2}", s.paper_avg()));
        }
        table.push_row(avg);
        table
    }
}

fn figure(
    id: &str,
    title: &str,
    unit: &str,
    series: Vec<Series>,
) -> FigureResult {
    FigureResult {
        id: id.to_string(),
        title: title.to_string(),
        rows: ORDER.iter().map(|s| s.to_string()).collect(),
        series,
        unit: unit.to_string(),
    }
}

impl Lab {
    fn slowdown_series(&mut self, label: &str, machine: MachineKind, paper_key: &str) -> Series {
        let measured = ORDER
            .iter()
            .map(|b| self.slowdown(b, machine))
            .collect();
        Series {
            label: label.to_string(),
            measured,
            paper: paper_series(paper_key).to_vec(),
        }
    }

    /// Fig. 3: performance loss of XOM over the insecure baseline.
    pub fn figure3(&mut self) -> FigureResult {
        let s = self.slowdown_series("XOM", MachineKind::Xom, "fig3.xom");
        figure(
            "Figure 3",
            "Performance loss due to serial encryption/decryption (XOM)",
            "%",
            vec![s],
        )
    }

    /// Fig. 5: XOM vs no-replacement SNC vs LRU SNC (64KB).
    pub fn figure5(&mut self) -> FigureResult {
        let series = vec![
            self.slowdown_series("XOM", MachineKind::Xom, "fig5.xom"),
            self.slowdown_series("SNC-NoRepl", MachineKind::Norepl64, "fig5.norepl"),
            self.slowdown_series("SNC-LRU", MachineKind::LruFull(64), "fig5.lru"),
        ];
        figure(
            "Figure 5",
            "XOM vs one-time-pad with 64KB SNC (no-replacement and LRU)",
            "%",
            series,
        )
    }

    /// Fig. 6: SNC capacity sweep (32/64/128KB, LRU).
    pub fn figure6(&mut self) -> FigureResult {
        let series = vec![
            self.slowdown_series("32KB", MachineKind::LruFull(32), "fig6.32k"),
            self.slowdown_series("64KB", MachineKind::LruFull(64), "fig6.64k"),
            self.slowdown_series("128KB", MachineKind::LruFull(128), "fig6.128k"),
        ];
        figure("Figure 6", "Slowdown for different SNC sizes (LRU)", "%", series)
    }

    /// Fig. 7: fully associative vs 32-way set associative 64KB SNC.
    pub fn figure7(&mut self) -> FigureResult {
        let series = vec![
            self.slowdown_series("fully-assoc", MachineKind::LruFull(64), "fig7.full"),
            self.slowdown_series("32-way", MachineKind::Lru64Way32, "fig7.32way"),
        ];
        figure(
            "Figure 7",
            "SNC associativity: fully associative vs 32-way (64KB, LRU)",
            "%",
            series,
        )
    }

    /// Fig. 8: equal-area comparison — XOM-256K, XOM-384K(6-way),
    /// SNC-32way+256K — as normalised execution time.
    pub fn figure8(&mut self) -> FigureResult {
        let norm = |lab: &mut Lab, label: &str, machine: MachineKind, key: &str| Series {
            label: label.to_string(),
            measured: ORDER.iter().map(|b| lab.normalized_time(b, machine)).collect(),
            paper: paper_series(key).to_vec(),
        };
        let series = vec![
            norm(self, "XOM-256KL2", MachineKind::Xom, "fig8.xom256"),
            norm(self, "XOM-384KL2", MachineKind::Xom384, "fig8.xom384"),
            norm(self, "SNC-32way-LRU", MachineKind::Lru64Way32, "fig8.snc"),
        ];
        figure(
            "Figure 8",
            "Equal-area comparison: larger L2 vs L2 + SNC (normalised time)",
            "x",
            series,
        )
    }

    /// Fig. 9: SNC-induced memory traffic as % of L2↔memory traffic.
    pub fn figure9(&mut self) -> FigureResult {
        let measured = ORDER
            .iter()
            .map(|b| self.measure(b, MachineKind::LruFull(64)).snc_traffic_percent())
            .collect();
        let series = vec![Series {
            label: "SNC traffic".to_string(),
            measured,
            paper: paper_series("fig9.traffic").to_vec(),
        }];
        figure(
            "Figure 9",
            "SNC-induced additional memory traffic (64KB LRU SNC)",
            "%",
            series,
        )
    }

    /// Fig. 10: sensitivity to a 102-cycle crypto unit.
    pub fn figure10(&mut self) -> FigureResult {
        let series = vec![
            self.slowdown_series("XOM", MachineKind::XomSlow, "fig10.xom"),
            self.slowdown_series("SNC-NoRepl", MachineKind::Norepl64Slow, "fig10.norepl"),
            self.slowdown_series("SNC-LRU", MachineKind::Lru64Slow, "fig10.lru"),
        ];
        figure(
            "Figure 10",
            "Slowdown with a 102-cycle encryption/decryption unit",
            "%",
            series,
        )
    }

    /// Every figure, in paper order.
    pub fn all_figures(&mut self) -> Vec<FigureResult> {
        vec![
            self.figure3(),
            self.figure5(),
            self.figure6(),
            self.figure7(),
            self.figure8(),
            self.figure9(),
            self.figure10(),
        ]
    }
}

/// The machines figure `n` measures — including the insecure baseline
/// every slowdown/normalisation divides by. This is [`Lab::prewarm`]'s
/// worklist: prewarming `figure_machines(n) × ORDER` makes the figure
/// render from pure cache recall.
pub fn figure_machines(figure: u32) -> Vec<MachineKind> {
    match figure {
        3 => vec![MachineKind::Baseline, MachineKind::Xom],
        5 => vec![
            MachineKind::Baseline,
            MachineKind::Xom,
            MachineKind::Norepl64,
            MachineKind::LruFull(64),
        ],
        6 => vec![
            MachineKind::Baseline,
            MachineKind::LruFull(32),
            MachineKind::LruFull(64),
            MachineKind::LruFull(128),
        ],
        7 => vec![
            MachineKind::Baseline,
            MachineKind::LruFull(64),
            MachineKind::Lru64Way32,
        ],
        8 => vec![
            MachineKind::Baseline,
            MachineKind::Xom,
            MachineKind::Xom384,
            MachineKind::Lru64Way32,
        ],
        9 => vec![MachineKind::LruFull(64)],
        10 => vec![
            MachineKind::Baseline,
            MachineKind::XomSlow,
            MachineKind::Norepl64Slow,
            MachineKind::Lru64Slow,
        ],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::RunScale;

    #[test]
    fn figure3_has_eleven_rows_and_average() {
        let mut lab = Lab::new(RunScale::Smoke);
        let fig = lab.figure3();
        assert_eq!(fig.rows.len(), 11);
        let t = fig.table();
        assert_eq!(t.row_count(), 12); // 11 benchmarks + avg
        assert!(t.render_text().contains("avg"));
    }

    #[test]
    fn figure5_reuses_memoised_runs() {
        let mut lab = Lab::new(RunScale::Smoke);
        lab.figure3();
        let runs_after_fig3 = lab.cached_runs();
        lab.figure5();
        // Fig. 5 adds only the two SNC machines (11 benchmarks each).
        assert_eq!(lab.cached_runs(), runs_after_fig3 + 22);
    }

    #[test]
    fn prewarming_figure_machines_makes_figures_pure_recall() {
        use padlock_exec::SweepPool;
        let mut lab = Lab::new(RunScale::Smoke);
        lab.prewarm(&SweepPool::new(2), &crate::paper_data::ORDER, &figure_machines(3));
        let runs = lab.cached_runs();
        assert_eq!(runs, 22); // 11 benchmarks x {baseline, xom}
        lab.figure3();
        assert_eq!(lab.cached_runs(), runs, "figure3 had to simulate after prewarm");
    }

    #[test]
    fn series_averages_are_consistent() {
        let s = Series {
            label: "x".into(),
            measured: vec![1.0, 3.0],
            paper: vec![2.0, 4.0],
        };
        assert_eq!(s.measured_avg(), 2.0);
        assert_eq!(s.paper_avg(), 3.0);
    }
}
