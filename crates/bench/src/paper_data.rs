//! The paper's published per-benchmark numbers, transcribed from the
//! figures of §5, used only for side-by-side comparison columns and for
//! `EXPERIMENTS.md` — never as simulation inputs.

/// Benchmark order shared by every figure (the paper's row order).
pub const ORDER: [&str; 11] = [
    "ammp", "art", "bzip2", "equake", "gcc", "gzip", "mcf", "mesa", "parser", "vortex", "vpr",
];

/// Returns the paper's series for a figure/series key, in [`ORDER`],
/// without the average.
///
/// Keys: `fig3.xom`, `fig5.norepl`, `fig5.lru`, `fig6.32k`, `fig6.64k`,
/// `fig6.128k`, `fig7.full`, `fig7.32way`, `fig8.xom256`, `fig8.xom384`,
/// `fig8.snc`, `fig9.traffic`, `fig10.xom`, `fig10.norepl`, `fig10.lru`.
///
/// # Panics
///
/// Panics on an unknown key.
pub fn paper_series(key: &str) -> [f64; 11] {
    match key {
        // Fig. 3 / Fig. 5 XOM slowdown [%], 50-cycle crypto.
        "fig3.xom" | "fig5.xom" => [
            23.02, 34.91, 15.82, 14.27, 18.30, 1.08, 34.76, 0.63, 13.39, 7.05, 21.16,
        ],
        // Fig. 5: SNC without replacement [%].
        "fig5.norepl" => [
            4.57, 0.23, 1.04, 0.06, 18.07, 0.51, 13.51, 0.24, 6.94, 5.02, 0.24,
        ],
        // Fig. 5 / Fig. 6 64KB / Fig. 7 fully associative: SNC LRU [%].
        "fig5.lru" | "fig6.64k" | "fig7.full" => [
            2.76, 0.23, 0.56, 0.06, 1.40, 0.31, 6.44, 0.07, 0.95, 1.03, 0.24,
        ],
        // Fig. 6: 32KB LRU SNC [%].
        "fig6.32k" => [
            4.36, 0.23, 1.61, 7.58, 1.44, 0.33, 15.23, 0.14, 2.70, 1.86, 0.24,
        ],
        // Fig. 6: 128KB LRU SNC [%].
        "fig6.128k" => [
            0.41, 0.23, 0.34, 0.06, 1.29, 0.30, 1.45, 0.01, 0.57, 0.70, 0.24,
        ],
        // Fig. 7: 32-way 64KB LRU SNC [%].
        "fig7.32way" => [
            9.62, 0.23, 0.55, 0.18, 1.38, 0.31, 6.34, 0.07, 0.94, 1.03, 0.24,
        ],
        // Fig. 8: normalised execution time vs the 256KB-L2 baseline.
        "fig8.xom256" => [
            1.23, 1.35, 1.16, 1.14, 1.18, 1.01, 1.35, 1.01, 1.13, 1.07, 1.21,
        ],
        "fig8.xom384" => [
            1.20, 1.35, 1.03, 1.14, 0.96, 1.00, 1.32, 0.99, 1.02, 0.93, 1.04,
        ],
        "fig8.snc" => [
            1.10, 1.00, 1.01, 1.00, 1.01, 1.00, 1.06, 1.00, 1.01, 1.01, 1.00,
        ],
        // Fig. 9: SNC-induced traffic as % of L2↔memory traffic.
        "fig9.traffic" => [
            0.32, 0.00, 0.09, 0.00, 0.05, 1.03, 0.47, 0.90, 0.18, 0.39, 0.00,
        ],
        // Fig. 10: 102-cycle crypto unit [%].
        "fig10.xom" => [
            46.95, 71.21, 32.27, 29.10, 37.36, 2.21, 70.91, 1.28, 27.32, 14.42, 43.16,
        ],
        "fig10.norepl" => [
            8.95, 0.23, 1.82, 0.06, 36.89, 1.04, 27.30, 0.48, 14.02, 10.23, 0.24,
        ],
        "fig10.lru" => [
            2.72, 0.23, 0.56, 0.06, 1.38, 0.30, 6.32, 0.07, 0.94, 1.01, 0.24,
        ],
        other => panic!("unknown paper series {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padlock_stats::arith_mean;

    #[test]
    fn averages_match_the_papers_reported_averages() {
        // The paper prints these averages on the figures.
        let cases = [
            ("fig3.xom", 16.76),
            ("fig5.norepl", 4.59),
            ("fig5.lru", 1.28),
            ("fig6.32k", 3.25),
            ("fig6.128k", 0.51),
            ("fig7.32way", 1.90),
            ("fig9.traffic", 0.31),
            ("fig10.xom", 34.20),
            ("fig10.norepl", 9.21),
            ("fig10.lru", 1.26),
        ];
        for (key, avg) in cases {
            let got = arith_mean(&paper_series(key)).unwrap();
            assert!(
                (got - avg).abs() < 0.06,
                "{key}: transcribed avg {got:.3} vs paper {avg}"
            );
        }
    }

    #[test]
    fn fig8_averages() {
        for (key, avg) in [("fig8.xom256", 1.17), ("fig8.xom384", 1.09), ("fig8.snc", 1.02)] {
            let got = arith_mean(&paper_series(key)).unwrap();
            assert!((got - avg).abs() < 0.01, "{key}: {got:.3}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown paper series")]
    fn unknown_key_panics() {
        let _ = paper_series("fig99.z");
    }
}
