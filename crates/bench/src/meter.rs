//! Process-wide simulated-cycle meter.
//!
//! Every leaf simulation in this crate — an engine-sweep batch, an
//! end-to-end trace point, a figure measurement — adds its simulated
//! cycle count here, so drivers like `repro` can report a
//! simulated-Mcycles-per-wall-second rate after each sweep. The meter
//! is diagnostic only: it feeds stderr lines, never stdout, so table
//! output stays byte-identical whether or not anyone reads it. The
//! counter is monotone and process-wide (sweep-pool workers add from
//! their own threads); callers snapshot it before and after a sweep
//! and difference the two readings.

use std::sync::atomic::{AtomicU64, Ordering};

static SIMULATED_CYCLES: AtomicU64 = AtomicU64::new(0);

/// Adds one simulation's cycle count to the process-wide meter.
pub(crate) fn record_simulated_cycles(cycles: u64) {
    SIMULATED_CYCLES.fetch_add(cycles, Ordering::Relaxed);
}

/// Total simulated cycles accumulated by every simulation this process
/// has run so far. Monotone; memoised (cached) results are counted
/// once, when they were actually simulated.
pub fn simulated_cycles() -> u64 {
    SIMULATED_CYCLES.load(Ordering::Relaxed)
}
