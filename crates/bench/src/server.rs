//! The secure-server contention sweep: N compartments time-sharing one
//! secure memory fabric, measured as a cores × channels ×
//! switch-quantum grid.
//!
//! Each cell builds a [`SecureServer`] whose compartments run workload
//! generators offset into their own address stripes
//! ([`compartment_base`]) over a *shared* backend — one transaction
//! engine, one SNC, one DRAM channel set. The fabric is the end-to-end
//! acceptance machine of the MLP sweep ([`e2e_machine_config`]: a
//! deliberately small 64-entry LRU SNC under 8 MSHRs and 32 in-flight
//! transactions), so adding compartments contends three shared
//! resources at once: DRAM channel occupancy, crypto-pipeline slots,
//! and — the paper-specific one — SNC capacity, where one compartment's
//! sequence-number installs evict another's entries
//! ([`ServerPoint::cross_evictions`] counts exactly those). A non-zero
//! switch quantum additionally fires the §4.3 context-switch flush
//! every `quantum` cycles, so the table shows both steady-state
//! cross-compartment pressure and the flush-storm cost of time-slicing.
//!
//! Every grid cell is an independent pure function of its parameters,
//! so [`server_table`] fans cells across a [`SweepPool`]; results
//! reassemble in submission order and the rendered table is
//! byte-identical for any job count.

use crate::mlp::{e2e_machine_config, E2eParams};
use padlock_core::server::compartment_base;
use padlock_core::{MachineConfig, SecureServer, ServerConfig};
use padlock_cpu::OffsetWorkload;
use padlock_exec::SweepPool;
use padlock_stats::Table;
use padlock_workloads::compartment_assignment;
use std::collections::BTreeMap;

/// One cell of the server contention sweep.
#[derive(Debug, Clone, Copy)]
pub struct ServerPoint {
    /// Compartment (core) count sharing the fabric.
    pub cores: usize,
    /// DRAM channel (and paired SNC shard) count.
    pub mem_channels: usize,
    /// Context-switch quantum in cycles (0 = no switching).
    pub switch_interval: u64,
    /// Cycles summed over all compartments' measured windows.
    pub cycles: u64,
    /// Ops committed, summed over all compartments.
    pub instructions: u64,
    /// SNC entries evicted by a *different* compartment's install or
    /// flush, summed over all victim compartments.
    pub cross_evictions: u64,
    /// Context switches fired inside the measured window.
    pub context_switches: u64,
}

impl ServerPoint {
    /// Mean cycles per instruction across the compartments.
    pub fn cpi(&self) -> f64 {
        self.cycles as f64 / self.instructions.max(1) as f64
    }

    /// The cell as one JSON line. Every field is a simulated quantity,
    /// so the line is identical for any `--jobs` count.
    pub fn jsonl(&self) -> String {
        format!(
            "{{\"kind\":\"server\",\"cores\":{},\"channels\":{},\"switch\":{},\
             \"cycles\":{},\"instructions\":{},\"cross_evictions\":{},\
             \"context_switches\":{}}}",
            self.cores,
            self.mem_channels,
            self.switch_interval,
            self.cycles,
            self.instructions,
            self.cross_evictions,
            self.context_switches
        )
    }
}

/// The per-compartment machine the contention sweep shares: the MLP
/// sweep's end-to-end acceptance fabric (OTP + 64-entry LRU SNC,
/// 128-entry ROB, 8 MSHRs, 32 in-flight, shards paired with channels).
/// The SNC is kept small on purpose — it is the shared resource whose
/// cross-compartment evictions the sweep is about.
pub fn server_machine_config(mem_channels: usize) -> MachineConfig {
    e2e_machine_config(E2eParams::new(8, mem_channels, 1, 32))
}

/// Runs one contention cell: `cores` compartments (each running the
/// pinned benchmark, or the suite round-robin when `benchmark` is
/// `"mix"`) time-sharing one fabric for a `measure`-op window per
/// compartment. Every compartment's written regions are pre-aged into
/// its own stripe, so reads take Algorithm 1's sequence-fetch path and
/// keep pressure on the shared SNC.
pub fn run_server_point(
    benchmark: &str,
    cores: usize,
    mem_channels: usize,
    switch_interval: u64,
    warmup: u64,
    measure: u64,
) -> ServerPoint {
    let mut config = ServerConfig::from_machine(server_machine_config(mem_channels), cores);
    if switch_interval > 0 {
        config = config.with_switch_interval(switch_interval);
    }
    let mut server = SecureServer::new(config);
    let pinned = (benchmark != "mix").then_some(benchmark);
    let mut loads = Vec::with_capacity(cores);
    for (c, feed) in compartment_assignment(cores, pinned).into_iter().enumerate() {
        let base = compartment_base(c);
        server.pre_age(
            feed.ancient_line_addrs().map(|a| a + base),
            feed.active_line_addrs().map(|a| a + base),
        );
        loads.push(OffsetWorkload::new(feed, base));
    }
    let m = server.run(&mut loads, warmup, measure);
    let cycles: u64 = m.compartments.iter().map(|r| r.stats.cycles).sum();
    let instructions: u64 = m.compartments.iter().map(|r| r.stats.instructions).sum();
    let cross_evictions: u64 = m
        .compartments
        .iter()
        .map(|r| r.snc_evictions_by_others)
        .sum();
    crate::meter::record_simulated_cycles(cycles);
    ServerPoint {
        cores,
        mem_channels,
        switch_interval,
        cycles,
        instructions,
        cross_evictions,
        context_switches: m.context_switches,
    }
}

/// The contention sweep as a rendered table: one row per compartment
/// count, one column per (channels × switch-quantum) pair, each cell
/// `mean CPI (slowdown vs the first row's compartment count in the same
/// column) + cross-compartment SNC evictions`. All cells fan across
/// `pool`.
pub fn server_table(
    pool: &SweepPool,
    benchmark: &str,
    core_counts: &[usize],
    channel_counts: &[usize],
    switch_intervals: &[u64],
    warmup: u64,
    measure: u64,
) -> Table {
    assert!(!core_counts.is_empty(), "core axis cannot be empty");
    let mut cells: Vec<(usize, usize, u64)> = Vec::new();
    for &cores in core_counts {
        for &channels in channel_counts {
            for &switch in switch_intervals {
                cells.push((cores, channels, switch));
            }
        }
    }
    let points = pool.sweep(&cells, |&(cores, channels, switch)| {
        run_server_point(benchmark, cores, channels, switch, warmup, measure)
    });
    let by_cell: BTreeMap<(usize, usize, u64), ServerPoint> =
        cells.into_iter().zip(points).collect();

    let quantum = |q: u64| {
        if q == 0 {
            "no switch".to_string()
        } else {
            format!("q={q}")
        }
    };
    let mut header = vec!["cores".to_string()];
    for &channels in channel_counts {
        for &switch in switch_intervals {
            header.push(format!("{channels}ch {}", quantum(switch)));
        }
    }
    let mut table = Table::new(header);
    for &cores in core_counts {
        let mut row = vec![cores.to_string()];
        for &channels in channel_counts {
            for &switch in switch_intervals {
                let p = by_cell[&(cores, channels, switch)];
                let base = by_cell[&(core_counts[0], channels, switch)];
                row.push(format!(
                    "{:5.2} CPI ({:4.2}x, {} xevict)",
                    p.cpi(),
                    p.cpi() / base.cpi(),
                    p.cross_evictions
                ));
            }
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_degrades_cpi_with_compartment_count() {
        // The acceptance claim: at fixed SNC capacity, packing more
        // compartments onto the shared fabric costs mean CPI, and the
        // shared SNC shows cross-compartment evictions.
        let one = run_server_point("bfs", 1, 2, 0, 2_000, 10_000);
        let four = run_server_point("bfs", 4, 2, 0, 2_000, 10_000);
        assert_eq!(one.instructions * 4, four.instructions);
        assert!(
            four.cpi() > one.cpi() * 1.02,
            "4 compartments {:.3} CPI vs 1 compartment {:.3}",
            four.cpi(),
            one.cpi()
        );
        assert_eq!(one.cross_evictions, 0, "a lone compartment has no rivals");
        assert!(
            four.cross_evictions > 0,
            "shared SNC showed no cross-compartment evictions"
        );
    }

    #[test]
    fn switch_quantum_fires_and_charges_flush_evictions() {
        let free = run_server_point("bfs", 2, 2, 0, 2_000, 10_000);
        let sliced = run_server_point("bfs", 2, 2, 20_000, 2_000, 10_000);
        assert_eq!(free.context_switches, 0);
        assert!(sliced.context_switches > 0, "quantum never fired");
        assert!(
            sliced.cross_evictions > 0,
            "context-switch flushes produced no cross-compartment evictions"
        );
        // The flush cost (refetching every flushed sequence number) is
        // offset by the flush's packed spills, so CPI only has to stay
        // in the same regime — direction is second-order at this scale.
        let ratio = sliced.cpi() / free.cpi();
        assert!(
            (0.9..1.5).contains(&ratio),
            "time-slicing moved CPI out of regime: {:.3} vs {:.3}",
            sliced.cpi(),
            free.cpi()
        );
    }

    #[test]
    fn table_covers_every_axis_and_is_jobs_invariant() {
        let render = |jobs| {
            server_table(
                &SweepPool::new(jobs),
                "bfs",
                &[1, 2],
                &[1, 2],
                &[0, 20_000],
                500,
                2_000,
            )
            .render_text()
        };
        let serial = render(1);
        assert!(serial.contains("2ch q=20000"), "{serial}");
        assert!(serial.contains("no switch"), "{serial}");
        assert!(serial.contains("xevict"), "{serial}");
        assert_eq!(serial, render(4), "table must not depend on job count");
    }

    #[test]
    fn mixed_assignment_runs_the_suite_round_robin() {
        let p = run_server_point("mix", 2, 1, 0, 500, 2_000);
        assert_eq!(p.instructions, 4_000);
        let line = p.jsonl();
        assert!(line.starts_with("{\"kind\":\"server\""), "{line}");
        assert!(line.contains("\"cores\":2"), "{line}");
    }
}
