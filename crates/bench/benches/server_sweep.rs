//! Criterion bench over the secure-server contention sweep: wall time
//! of simulating one cores × channels × switch-quantum cell end to end
//! (server construction, per-compartment pre-aging, warm-up, and the
//! measured window — everything `run_server_point` pays). The simulated
//! contention numbers themselves are printed by `repro --server` and
//! regression-tested in `padlock_bench::server`; these ids track the
//! scheduler's wall-clock overhead as compartments, channels, and
//! context-switch flushes are added to one shared fabric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use padlock_bench::run_server_point;

/// Warm-up ops per compartment per simulated point.
const WARMUP: u64 = 2_000;
/// Measured ops per compartment per simulated point.
const MEASURE: u64 = 10_000;

fn server_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("server_sweep");
    g.sample_size(10);
    // The compartment axis: the min-now lockstep and slot moves scale
    // with core count at a fixed 2-channel fabric.
    for cores in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("cores", format!("{cores}core")),
            &cores,
            |b, &cores| b.iter(|| run_server_point("bfs", cores, 2, 0, WARMUP, MEASURE)),
        );
    }
    // The switch quantum: the same 2-compartment machine with the §4.3
    // flush firing every 20k cycles.
    g.bench_with_input(
        BenchmarkId::new("cores", "2core_q20k"),
        &2usize,
        |b, &cores| b.iter(|| run_server_point("bfs", cores, 2, 20_000, WARMUP, MEASURE)),
    );
    // The channel axis under contention: 4 compartments over a wider
    // fabric.
    g.bench_with_input(
        BenchmarkId::new("cores", "4core_4ch"),
        &4usize,
        |b, &cores| b.iter(|| run_server_point("bfs", cores, 4, 0, WARMUP, MEASURE)),
    );
    g.finish();
}

criterion_group!(benches, server_sweep);
criterion_main!(benches);
