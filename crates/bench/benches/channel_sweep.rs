//! Criterion bench over the multi-channel DRAM fabric: wall time of
//! simulating the engine's miss-heavy batch and the end-to-end recorded
//! trace across the `mem_channels` and `mem_banks` axes (the
//! simulated-cycle speedup tables themselves are printed by
//! `repro --mlp` / `repro --mlp --banks` and regression-tested in
//! `padlock_bench::mlp`), plus the `sweep` group timing a whole grid
//! through the work-stealing pool serially vs at `PADLOCK_JOBS`
//! workers — the pair whose ratio is the executor's speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use padlock_bench::{run_e2e_point, run_mlp_point, E2eParams, E2eTrace};
use padlock_exec::SweepPool;
use padlock_mem::{DrainOrder, PagePolicy};

fn channel_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("channel_sweep");
    g.sample_size(10);
    let lines = 1_024;
    for channels in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("batch", format!("{channels}ch")),
            &channels,
            |b, &channels| {
                b.iter(|| {
                    run_mlp_point(16, 4, channels, 1, DrainOrder::Fifo, PagePolicy::Open, lines)
                })
            },
        );
    }
    // The bank dimension: the same miss-heavy batch with row-buffer
    // timing enabled beneath each channel.
    for banks in [4usize, 8] {
        g.bench_with_input(
            BenchmarkId::new("batch", format!("4ch{banks}bk")),
            &banks,
            |b, &banks| {
                b.iter(|| run_mlp_point(16, 4, 4, banks, DrainOrder::Fifo, PagePolicy::Open, lines))
            },
        );
    }
    // The drain-order dimension: the banked batch drained FR-FCFS
    // row-first instead of in arrival order.
    g.bench_with_input(
        BenchmarkId::new("batch", "4ch8bk_rowfirst"),
        &8usize,
        |b, &banks| {
            b.iter(|| {
                run_mlp_point(16, 4, 4, banks, DrainOrder::RowFirst, PagePolicy::Open, lines)
            })
        },
    );
    let trace = E2eTrace::record("bfs", 4_000, 12_000);
    for channels in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("e2e", format!("{channels}ch")),
            &channels,
            |b, &channels| {
                b.iter(|| run_e2e_point(&trace, E2eParams::new(8, channels, 1, 32)))
            },
        );
    }
    for banks in [4usize, 8] {
        g.bench_with_input(
            BenchmarkId::new("e2e", format!("4ch{banks}bk")),
            &banks,
            |b, &banks| {
                b.iter(|| run_e2e_point(&trace, E2eParams::new(8, 4, banks, 32)))
            },
        );
    }
    g.bench_with_input(
        BenchmarkId::new("e2e", "4ch8bk_rowfirst"),
        &8usize,
        |b, &banks| {
            b.iter(|| {
                run_e2e_point(
                    &trace,
                    E2eParams::new(8, 4, banks, 32).with_order(DrainOrder::RowFirst),
                )
            })
        },
    );
    let rstride = E2eTrace::record("rstride", 4_000, 12_000);
    g.bench_with_input(
        BenchmarkId::new("e2e_rstride", "4ch4bk"),
        &4usize,
        |b, &banks| {
            b.iter(|| run_e2e_point(&rstride, E2eParams::new(8, 4, banks, 32)))
        },
    );
    // Closed-page auto-precharge on the conflict-bound walk: the page
    // policy the rstride row motivates.
    g.bench_with_input(
        BenchmarkId::new("e2e_rstride", "4ch4bk_closed"),
        &4usize,
        |b, &banks| {
            b.iter(|| {
                run_e2e_point(
                    &rstride,
                    E2eParams::new(8, 4, banks, 32).with_page(PagePolicy::Closed),
                )
            })
        },
    );
    g.finish();
}

/// The executor's headline pair: the same 12-cell engine grid swept
/// serially and through `PADLOCK_JOBS` workers. Both produce identical
/// results (the determinism suite asserts it); the wall-time ratio in
/// the captured baseline is the pool's speedup on this host.
fn sweep_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    let lines = 1_024;
    let cells: Vec<(usize, usize)> = [4usize, 8, 16, 32]
        .iter()
        .flat_map(|&inflight| [1usize, 2, 4].map(move |channels| (inflight, channels)))
        .collect();
    let grid = |pool: &SweepPool| {
        pool.sweep(&cells, |&(inflight, channels)| {
            run_mlp_point(
                inflight,
                channels,
                channels,
                1,
                DrainOrder::Fifo,
                PagePolicy::Open,
                lines,
            )
        })
    };
    let serial = SweepPool::serial();
    g.bench_function("mlp_grid_serial", |b| b.iter(|| grid(&serial)));
    let pooled = SweepPool::from_env();
    g.bench_function("mlp_grid_jobs", |b| b.iter(|| grid(&pooled)));
    g.finish();
}

criterion_group!(benches, channel_sweep, sweep_pool);
criterion_main!(benches);
