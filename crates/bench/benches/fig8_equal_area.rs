//! Criterion bench for Figure 8: equal-area XOM-with-bigger-L2 vs
//! L2 + SNC (vortex gains most from the larger L2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use padlock_area::paper_fig8_areas;
use padlock_bench::MachineKind;
use padlock_core::Machine;
use padlock_workloads::{benchmark_profile, SpecWorkload};

fn run(kind: MachineKind) -> u64 {
    let mut workload = SpecWorkload::new(benchmark_profile("vortex"));
    let mut m = Machine::new(kind.config());
    let ancient: Vec<u64> = workload.ancient_line_addrs().collect();
    let active: Vec<u64> = workload.active_line_addrs().collect();
    m.core_mut().hierarchy_mut().backend_mut().pre_age(ancient, active);
    m.run(&mut workload, 40_000, 120_000).stats.cycles
}

fn fig8(c: &mut Criterion) {
    // The premise of the figure: the configurations really are
    // equal-area under the CACTI-like model.
    let (combo, mid, big) = paper_fig8_areas();
    assert!(mid < combo && combo < big);

    let mut g = c.benchmark_group("fig8_equal_area");
    g.sample_size(10);
    for (label, kind) in [
        ("xom_256k", MachineKind::Xom),
        ("xom_384k", MachineKind::Xom384),
        ("snc_32way_256k", MachineKind::Lru64Way32),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &k| {
            b.iter(|| run(k))
        });
    }
    g.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
