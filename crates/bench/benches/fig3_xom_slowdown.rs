//! Criterion bench regenerating Figure 3's data point class: the cost of
//! XOM's serial decryption on a memory-bound benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use padlock_bench::MachineKind;
use padlock_core::Machine;
use padlock_workloads::{benchmark_profile, SpecWorkload};

fn run(kind: MachineKind, bench: &str) -> u64 {
    let mut workload = SpecWorkload::new(benchmark_profile(bench));
    let mut m = Machine::new(kind.config());
    let ancient: Vec<u64> = workload.ancient_line_addrs().collect();
    let active: Vec<u64> = workload.active_line_addrs().collect();
    m.core_mut().hierarchy_mut().backend_mut().pre_age(ancient, active);
    m.run(&mut workload, 40_000, 120_000).stats.cycles
}

fn fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_xom_slowdown");
    g.sample_size(10);
    for bench in ["art", "mcf", "gzip"] {
        g.bench_with_input(BenchmarkId::new("baseline", bench), bench, |b, name| {
            b.iter(|| run(MachineKind::Baseline, name))
        });
        g.bench_with_input(BenchmarkId::new("xom", bench), bench, |b, name| {
            b.iter(|| run(MachineKind::Xom, name))
        });
    }
    g.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
