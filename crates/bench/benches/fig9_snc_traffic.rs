//! Criterion bench for Figure 9: the cost side of LRU replacement —
//! measured as simulation of the machine whose SNC induces the traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use padlock_bench::MachineKind;
use padlock_core::Machine;
use padlock_workloads::{benchmark_profile, SpecWorkload};

fn traffic_percent(bench: &str) -> f64 {
    let mut workload = SpecWorkload::new(benchmark_profile(bench));
    let mut m = Machine::new(MachineKind::LruFull(64).config());
    let ancient: Vec<u64> = workload.ancient_line_addrs().collect();
    let active: Vec<u64> = workload.active_line_addrs().collect();
    m.core_mut().hierarchy_mut().backend_mut().pre_age(ancient, active);
    m.run(&mut workload, 40_000, 120_000).snc_traffic_percent()
}

fn fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_snc_traffic");
    g.sample_size(10);
    for bench in ["mcf", "vortex"] {
        g.bench_with_input(BenchmarkId::from_parameter(bench), bench, |b, name| {
            b.iter(|| traffic_percent(name))
        });
    }
    g.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
