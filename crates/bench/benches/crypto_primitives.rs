//! Criterion microbenchmarks for the crypto substrate: block ciphers,
//! one-time-pad line encryption, hashing, and MACs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use padlock_crypto::{Aes128, BlockCipher, CbcMac, Des, OneTimePad, Sha256, TripleDes};

fn primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto_primitives");
    let des = Des::new(0x0123_4567_89AB_CDEF);
    let tdes = TripleDes::new(0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210);
    let aes = Aes128::new(&[7u8; 16]);
    let line = vec![0x5Au8; 128];

    g.throughput(Throughput::Bytes(8));
    g.bench_function("des_block", |b| {
        let mut block = [0u8; 8];
        b.iter(|| des.encrypt_block(&mut block))
    });
    g.bench_function("3des_block", |b| {
        let mut block = [0u8; 8];
        b.iter(|| tdes.encrypt_block(&mut block))
    });
    g.throughput(Throughput::Bytes(16));
    g.bench_function("aes128_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| aes.encrypt_block(&mut block))
    });

    g.throughput(Throughput::Bytes(128));
    let otp_des = OneTimePad::new(Des::new(42));
    g.bench_function("otp_line_des", |b| b.iter(|| otp_des.encrypt(0x4000, &line)));
    let otp_aes = OneTimePad::new(Aes128::new(&[3u8; 16]));
    g.bench_function("otp_line_aes", |b| b.iter(|| otp_aes.encrypt(0x4000, &line)));
    g.bench_function("sha256_line", |b| b.iter(|| Sha256::digest(&line)));
    let mac = CbcMac::new(Des::new(9));
    g.bench_function("cbcmac_line", |b| b.iter(|| mac.tag(0x4000, &line)));
    g.finish();
}

criterion_group!(benches, primitives);
criterion_main!(benches);
