//! Criterion bench for Figure 6: the SNC capacity sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use padlock_bench::MachineKind;
use padlock_core::Machine;
use padlock_workloads::{benchmark_profile, SpecWorkload};

fn run(kb: u32) -> u64 {
    let mut workload = SpecWorkload::new(benchmark_profile("equake"));
    let mut m = Machine::new(MachineKind::LruFull(kb).config());
    let ancient: Vec<u64> = workload.ancient_line_addrs().collect();
    let active: Vec<u64> = workload.active_line_addrs().collect();
    m.core_mut().hierarchy_mut().backend_mut().pre_age(ancient, active);
    m.run(&mut workload, 40_000, 120_000).stats.cycles
}

fn fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_snc_size");
    g.sample_size(10);
    for kb in [32u32, 64, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(kb), &kb, |b, &kb| {
            b.iter(|| run(kb))
        });
    }
    g.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
