//! Ablation benches for design choices DESIGN.md calls out:
//! clean-line SNC bypass, write-buffer depth, and the context-switch
//! SNC flush cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use padlock_core::{Machine, MachineConfig, SecureBackend, SecureBackendConfig, SecurityMode};
use padlock_workloads::{benchmark_profile, SpecWorkload};

fn cycles(mut config: MachineConfig, bench: &str) -> u64 {
    let mut workload = SpecWorkload::new(benchmark_profile(bench));
    config.security.mode = SecurityMode::otp_lru_64k();
    let mut m = Machine::new(config);
    let ancient: Vec<u64> = workload.ancient_line_addrs().collect();
    let active: Vec<u64> = workload.active_line_addrs().collect();
    m.core_mut().hierarchy_mut().backend_mut().pre_age(ancient, active);
    m.run(&mut workload, 40_000, 120_000).stats.cycles
}

fn clean_line_bypass(c: &mut Criterion) {
    // The paper never spells out how reads of never-written lines avoid
    // the SNC; this ablation quantifies why the bypass matters (art is
    // all clean streaming reads).
    let mut g = c.benchmark_group("ablation_clean_bypass");
    g.sample_size(10);
    for bypass in [true, false] {
        g.bench_with_input(BenchmarkId::from_parameter(bypass), &bypass, |b, &on| {
            b.iter(|| {
                let mut cfg = MachineConfig::paper(SecurityMode::otp_lru_64k());
                cfg.security.clean_lines_bypass = on;
                cycles(cfg, "art")
            })
        });
    }
    g.finish();
}

fn write_buffer_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_write_buffer");
    g.sample_size(10);
    for entries in [2usize, 8, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, &n| {
            b.iter(|| {
                let mut cfg = MachineConfig::paper(SecurityMode::otp_lru_64k());
                cfg.security.write_buffer_entries = n;
                cycles(cfg, "gcc")
            })
        });
    }
    g.finish();
}

fn context_switch_flush(c: &mut Criterion) {
    // §4.3: flushing the SNC with encryption on a context switch.
    let mut g = c.benchmark_group("ablation_context_flush");
    g.sample_size(20);
    for entries in [1024u64, 32 * 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, &n| {
            b.iter(|| {
                let mut backend =
                    SecureBackend::new(SecureBackendConfig::paper(SecurityMode::otp_lru_64k()));
                backend.pre_age((0..n).map(|i| 0x4000_0000 + i * 128), std::iter::empty());
                backend.context_switch_flush(0)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, clean_line_bypass, write_buffer_depth, context_switch_flush);
criterion_main!(benches);
