//! Criterion bench for Figure 5: XOM vs no-replacement SNC vs LRU SNC.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use padlock_bench::MachineKind;
use padlock_core::Machine;
use padlock_workloads::{benchmark_profile, SpecWorkload};

fn run(kind: MachineKind) -> u64 {
    let mut workload = SpecWorkload::new(benchmark_profile("gcc"));
    let mut m = Machine::new(kind.config());
    let ancient: Vec<u64> = workload.ancient_line_addrs().collect();
    let active: Vec<u64> = workload.active_line_addrs().collect();
    m.core_mut().hierarchy_mut().backend_mut().pre_age(ancient, active);
    m.run(&mut workload, 40_000, 120_000).stats.cycles
}

fn fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_policies");
    g.sample_size(10);
    for (label, kind) in [
        ("xom", MachineKind::Xom),
        ("snc_norepl", MachineKind::Norepl64),
        ("snc_lru", MachineKind::LruFull(64)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &k| {
            b.iter(|| run(k))
        });
    }
    g.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
