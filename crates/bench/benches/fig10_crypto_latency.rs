//! Criterion bench for Figure 10: sensitivity to a 102-cycle crypto
//! unit — XOM doubles its loss, the SNC design barely moves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use padlock_bench::MachineKind;
use padlock_core::Machine;
use padlock_workloads::{benchmark_profile, SpecWorkload};

fn run(kind: MachineKind) -> u64 {
    let mut workload = SpecWorkload::new(benchmark_profile("art"));
    let mut m = Machine::new(kind.config());
    let ancient: Vec<u64> = workload.ancient_line_addrs().collect();
    let active: Vec<u64> = workload.active_line_addrs().collect();
    m.core_mut().hierarchy_mut().backend_mut().pre_age(ancient, active);
    m.run(&mut workload, 40_000, 120_000).stats.cycles
}

fn fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_crypto_latency");
    g.sample_size(10);
    for (label, kind) in [
        ("xom_50", MachineKind::Xom),
        ("xom_102", MachineKind::XomSlow),
        ("snc_lru_50", MachineKind::LruFull(64)),
        ("snc_lru_102", MachineKind::Lru64Slow),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &k| {
            b.iter(|| run(k))
        });
    }
    g.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
