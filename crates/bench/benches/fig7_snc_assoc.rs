//! Criterion bench for Figure 7: SNC associativity (ammp is the
//! benchmark whose strided write set makes 32 ways visibly worse).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use padlock_bench::MachineKind;
use padlock_core::Machine;
use padlock_workloads::{benchmark_profile, SpecWorkload};

fn run(kind: MachineKind) -> u64 {
    let mut workload = SpecWorkload::new(benchmark_profile("ammp"));
    let mut m = Machine::new(kind.config());
    let ancient: Vec<u64> = workload.ancient_line_addrs().collect();
    let active: Vec<u64> = workload.active_line_addrs().collect();
    m.core_mut().hierarchy_mut().backend_mut().pre_age(ancient, active);
    m.run(&mut workload, 40_000, 120_000).stats.cycles
}

fn fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_snc_assoc");
    g.sample_size(10);
    for (label, kind) in [
        ("fully_assoc", MachineKind::LruFull(64)),
        ("way32", MachineKind::Lru64Way32),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &k| {
            b.iter(|| run(k))
        });
    }
    g.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
