//! Simulator-throughput benches: wall-time per simulated point on
//! memory-bound recorded traces, seed run loop vs the event-calendar
//! fast-forward core.
//!
//! Each bench simulates one end-to-end point (machine construction,
//! `pre_age`, warm-up, and a measured window — everything
//! `run_e2e_point` pays) at the paper-default 4-wide pipeline over the
//! acceptance fabric (8 MSHRs × 4 channels × 2 banks, 32 in-flight)
//! with a deep 2048-entry window, the "ROB full of parked loads" regime
//! the event calendar was built for. `seed/*` drives the line-for-line
//! port of the pre-rewrite run loop ([`padlock_bench::seed_core`]);
//! `fastforward/*` drives today's core. Both halves sit on the same
//! hierarchy/backend — the `fastforward_vs_seed` differential proves
//! them bit-exact, so the gap between the two ids in `baseline.json` is
//! purely run-loop mechanics: the O(|ROB|) issue/advance rescans and
//! batched stall-on-use drains the calendar + incremental ready sets
//! replace. The seed loop already event-skips (its `forced_steps` stays
//! 0), so the matched-backend gap is structural but bounded; the
//! end-to-end win of this PR additionally includes the fixed-slot
//! counter and drain-window work visible against the *previous*
//! `baseline.json` capture of `channel_sweep/e2e/*` and `mlp_sweep/*`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use padlock_bench::seed_core::SeedMachine;
use padlock_bench::{e2e_machine_config, E2eParams, E2eTrace};
use padlock_core::{Machine, MachineConfig};

/// Warm-up ops per simulated point.
const WARMUP: u64 = 20_000;
/// Measured ops per simulated point.
const MEASURE: u64 = 120_000;

/// The benched machine: the e2e acceptance fabric (8 MSHRs, 4 channels,
/// 2 banks/channel, 32 in-flight) at the paper-default 4-wide pipeline,
/// deepened to a 2048-entry ROB so in-flight misses park a full window
/// of loads.
fn simrate_config() -> MachineConfig {
    let mut cfg = e2e_machine_config(E2eParams::new(8, 4, 2, 32));
    cfg.pipeline.rob_size = 2048;
    cfg
}

/// A pre-aged seed machine, built outside the timed region.
fn seed_machine(trace: &E2eTrace) -> SeedMachine {
    let mut m = SeedMachine::new(simrate_config());
    m.core_mut().hierarchy_mut().backend_mut().pre_age(
        trace.ancient_lines().iter().copied(),
        trace.active_lines().iter().copied(),
    );
    m
}

/// A pre-aged fast-forward machine over the identical configuration.
fn fastforward_machine(trace: &E2eTrace) -> Machine {
    let mut m = Machine::new(simrate_config());
    m.core_mut().hierarchy_mut().backend_mut().pre_age(
        trace.ancient_lines().iter().copied(),
        trace.active_lines().iter().copied(),
    );
    m
}

fn simrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("simrate");
    g.sample_size(10);
    for name in ["bfs", "rstride"] {
        let trace = E2eTrace::record(name, WARMUP, MEASURE);
        // Sanity: the two cores must agree cycle-for-cycle before their
        // wall-clocks are worth comparing (the full grid lives in the
        // `fastforward_vs_seed` differential).
        {
            let mut seed = seed_machine(&trace);
            let mut ff = fastforward_machine(&trace);
            let mut p1 = trace.clone_player();
            let mut p2 = trace.clone_player();
            assert_eq!(
                seed.run(&mut p1, WARMUP, MEASURE).stats.cycles,
                ff.run(&mut p2, WARMUP, MEASURE).stats.cycles,
            );
        }
        // Construction and pre-aging happen in the setup half of each
        // batch; only the warm-up + measured simulation is timed.
        g.bench_with_input(BenchmarkId::new("seed", name), &trace, |b, t| {
            b.iter_batched(
                || (seed_machine(t), t.clone_player()),
                |(mut m, mut p)| m.run(&mut p, WARMUP, MEASURE).stats.cycles,
                BatchSize::PerIteration,
            )
        });
        g.bench_with_input(BenchmarkId::new("fastforward", name), &trace, |b, t| {
            b.iter_batched(
                || (fastforward_machine(t), t.clone_player()),
                |(mut m, mut p)| m.run(&mut p, WARMUP, MEASURE).stats.cycles,
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, simrate);
criterion_main!(benches);
