//! Simulator-throughput benches: wall-time per simulated point on
//! memory-bound recorded traces, seed run loop vs the event-calendar
//! fast-forward core.
//!
//! Each bench simulates one end-to-end point (machine construction,
//! `pre_age`, warm-up, and a measured window — everything
//! `run_e2e_point` pays) at the paper-default 4-wide pipeline over the
//! acceptance fabric (8 MSHRs × 4 channels × 2 banks, 32 in-flight)
//! with a deep 2048-entry window, the "ROB full of parked loads" regime
//! the event calendar was built for. `seed/*` drives the line-for-line
//! port of the pre-rewrite run loop ([`padlock_bench::seed_core`]);
//! `fastforward/*` drives today's core; `speculative/*` drives it
//! again with speculative singleton-window miss issue
//! (`HierarchyConfig::speculative_completions`). All three sit on the
//! same hierarchy/backend — the `fastforward_vs_seed` and
//! `speculative_vs_parked` differentials prove them bit-exact, so the
//! gaps between the ids in `baseline.json` are purely run-loop and
//! drain-window mechanics: the O(|ROB|) issue/advance rescans and
//! batched stall-on-use drains the calendar + incremental ready sets
//! replace, and the per-window batch scheduling the speculation fast
//! path skips on singleton (pointer-chase) drain windows. The seed loop already event-skips (its `forced_steps` stays
//! 0), so the matched-backend gap is structural but bounded; the
//! end-to-end win of this PR additionally includes the fixed-slot
//! counter and drain-window work visible against the *previous*
//! `baseline.json` capture of `channel_sweep/e2e/*` and `mlp_sweep/*`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use padlock_bench::seed_core::SeedMachine;
use padlock_bench::{e2e_machine_config, E2eParams, E2eTrace};
use padlock_core::{Machine, MachineConfig};

/// Warm-up ops per simulated point.
const WARMUP: u64 = 20_000;
/// Measured ops per simulated point.
const MEASURE: u64 = 120_000;

/// The benched machine: the e2e acceptance fabric (8 MSHRs, 4 channels,
/// 2 banks/channel, 32 in-flight) at the paper-default 4-wide pipeline,
/// deepened to a 2048-entry ROB so in-flight misses park a full window
/// of loads.
fn simrate_config() -> MachineConfig {
    let mut cfg = e2e_machine_config(E2eParams::new(8, 4, 2, 32));
    cfg.pipeline.rob_size = 2048;
    cfg
}

/// The same machine with speculative singleton-window miss issue: each
/// parked miss is issued eagerly as a rollback-able window, and coupled
/// windows replay as parked batches — bit-exact in cycles with
/// `fastforward/*`, so the id gap is pure drain-window mechanics. On
/// the serial pointer-chase `rstride` trace almost every drain window
/// is a singleton, the regime the speculation fast-path targets.
fn speculative_config() -> MachineConfig {
    let mut cfg = simrate_config();
    cfg.hierarchy.speculative_completions = true;
    cfg
}

/// A pre-aged seed machine, built outside the timed region.
fn seed_machine(trace: &E2eTrace) -> SeedMachine {
    let mut m = SeedMachine::new(simrate_config());
    m.core_mut().hierarchy_mut().backend_mut().pre_age(
        trace.ancient_lines().iter().copied(),
        trace.active_lines().iter().copied(),
    );
    m
}

/// A pre-aged fast-forward machine over the identical configuration.
fn fastforward_machine(trace: &E2eTrace) -> Machine {
    let mut m = Machine::new(simrate_config());
    m.core_mut().hierarchy_mut().backend_mut().pre_age(
        trace.ancient_lines().iter().copied(),
        trace.active_lines().iter().copied(),
    );
    m
}

/// A pre-aged fast-forward machine with speculative miss issue on.
fn speculative_machine(trace: &E2eTrace) -> Machine {
    let mut m = Machine::new(speculative_config());
    m.core_mut().hierarchy_mut().backend_mut().pre_age(
        trace.ancient_lines().iter().copied(),
        trace.active_lines().iter().copied(),
    );
    m
}

fn simrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("simrate");
    g.sample_size(10);
    for name in ["bfs", "rstride"] {
        let trace = E2eTrace::record(name, WARMUP, MEASURE);
        // Sanity: the two cores must agree cycle-for-cycle before their
        // wall-clocks are worth comparing (the full grid lives in the
        // `fastforward_vs_seed` differential).
        {
            let mut seed = seed_machine(&trace);
            let mut ff = fastforward_machine(&trace);
            let mut spec = speculative_machine(&trace);
            let mut p1 = trace.clone_player();
            let mut p2 = trace.clone_player();
            let mut p3 = trace.clone_player();
            let seed_cycles = seed.run(&mut p1, WARMUP, MEASURE).stats.cycles;
            assert_eq!(seed_cycles, ff.run(&mut p2, WARMUP, MEASURE).stats.cycles);
            assert_eq!(seed_cycles, spec.run(&mut p3, WARMUP, MEASURE).stats.cycles);
        }
        // Construction and pre-aging happen in the setup half of each
        // batch; only the warm-up + measured simulation is timed.
        g.bench_with_input(BenchmarkId::new("seed", name), &trace, |b, t| {
            b.iter_batched(
                || (seed_machine(t), t.clone_player()),
                |(mut m, mut p)| m.run(&mut p, WARMUP, MEASURE).stats.cycles,
                BatchSize::PerIteration,
            )
        });
        g.bench_with_input(BenchmarkId::new("fastforward", name), &trace, |b, t| {
            b.iter_batched(
                || (fastforward_machine(t), t.clone_player()),
                |(mut m, mut p)| m.run(&mut p, WARMUP, MEASURE).stats.cycles,
                BatchSize::PerIteration,
            )
        });
        g.bench_with_input(BenchmarkId::new("speculative", name), &trace, |b, t| {
            b.iter_batched(
                || (speculative_machine(t), t.clone_player()),
                |(mut m, mut p)| m.run(&mut p, WARMUP, MEASURE).stats.cycles,
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, simrate);
criterion_main!(benches);
