//! Criterion bench over the transaction engine's MLP sweep: wall time
//! of simulating a miss-heavy batch across the `max_inflight` ×
//! `snc_shards` grid (the simulated-cycle speedup table itself is
//! printed by `repro --mlp` and regression-tested in
//! `padlock_bench::mlp`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use padlock_bench::run_mlp_point;
use padlock_mem::{DrainOrder, PagePolicy};

fn mlp_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("mlp_sweep");
    g.sample_size(10);
    let lines = 1_024;
    for inflight in [1usize, 4, 16] {
        for shards in [1usize, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("inflight{inflight}"), format!("{shards}shard")),
                &(inflight, shards),
                |b, &(inflight, shards)| {
                    b.iter(|| {
                        run_mlp_point(
                            inflight,
                            shards,
                            1,
                            1,
                            DrainOrder::Fifo,
                            PagePolicy::Open,
                            lines,
                        )
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, mlp_sweep);
criterion_main!(benches);
