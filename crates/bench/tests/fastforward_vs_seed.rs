//! The fast-forward differential: the event-calendar core must be
//! **bit-exact** against the seed cycle-stepping loop (ported verbatim
//! into [`padlock_bench::seed_core`]) — same cycles, same instructions,
//! and the same value for every cache, traffic, controller, MSHR, and
//! SNC counter — over the full structural grid (security mode ×
//! channels × banks × MSHRs × in-flight bound) on recorded bfs/rstride
//! traces plus the figure workloads. The two cores share one hierarchy
//! implementation, so any divergence is a calendar bug: an event
//! skipped, a readiness edge missed, or a drain trigger firing on a
//! different cycle. CI runs this on every push.

use padlock_bench::mlp::{e2e_machine_config, inflight_for, E2eParams, E2eTrace};
use padlock_bench::seed_core::SeedMachine;
use padlock_core::{Machine, MachineConfig, Measurement, SecurityMode, SncConfig};
use padlock_mem::{DrainOrder, PagePolicy};
use padlock_workloads::{benchmark_profile, SpecWorkload};

/// Tiny end-to-end windows: bit-exactness does not need a
/// representative measurement, just real simulations on both sides.
const WARMUP: u64 = 2_000;
const MEASURE: u64 = 6_000;

fn assert_bit_exact(ctx: &str, seed: &Measurement, ff: &Measurement) {
    assert_eq!(seed.stats, ff.stats, "{ctx}: core stats diverged");
    assert_eq!(seed.stats.forced_steps, 0, "{ctx}: seed forced a time step");
    assert_eq!(
        ff.stats.forced_steps, 0,
        "{ctx}: fast-forward core forced a time step"
    );
    assert_eq!(seed.l2, ff.l2, "{ctx}: L2 counters diverged");
    assert_eq!(seed.traffic, ff.traffic, "{ctx}: traffic counters diverged");
    assert_eq!(
        seed.controller, ff.controller,
        "{ctx}: controller counters diverged"
    );
    assert_eq!(seed.mshr, ff.mshr, "{ctx}: MSHR counters diverged");
    assert_eq!(seed.snc, ff.snc, "{ctx}: SNC counters diverged");
    assert_eq!(seed.label, ff.label, "{ctx}: backend label diverged");
}

/// Runs one recorded-trace cell through both cores and returns
/// `(seed, fast_forward)` measurements.
fn run_both(trace: &E2eTrace, config: MachineConfig) -> (Measurement, Measurement) {
    let mut seed = SeedMachine::new(config.clone());
    seed.core_mut()
        .hierarchy_mut()
        .backend_mut()
        .pre_age(
            trace.ancient_lines().iter().copied(),
            trace.active_lines().iter().copied(),
        );
    let mut player = trace.clone_player();
    let seed_m = seed.run(&mut player, trace.warmup_ops(), trace.measure_ops());

    let mut ff = Machine::new(config);
    ff.core_mut().hierarchy_mut().backend_mut().pre_age(
        trace.ancient_lines().iter().copied(),
        trace.active_lines().iter().copied(),
    );
    let mut player = trace.clone_player();
    let ff_m = ff.run(&mut player, trace.warmup_ops(), trace.measure_ops());
    (seed_m, ff_m)
}

#[test]
fn recorded_traces_match_over_the_structural_grid() {
    for bench in ["bfs", "rstride"] {
        let trace = E2eTrace::record(bench, WARMUP, MEASURE);
        for channels in [1usize, 2] {
            for banks in [1usize, 2] {
                for mshrs in [1usize, 4] {
                    for inflight in [1usize, inflight_for(mshrs)] {
                        let params = E2eParams::new(mshrs, channels, banks, inflight);
                        let (seed, ff) = run_both(&trace, e2e_machine_config(params));
                        let ctx = format!(
                            "{bench} ch={channels} banks={banks} \
                             mshrs={mshrs} inflight={inflight}"
                        );
                        assert_bit_exact(&ctx, &seed, &ff);
                    }
                }
            }
        }
    }
}

#[test]
fn scheduling_knobs_match_at_the_deep_point() {
    // The structural grid above runs paper-default scheduling; this
    // re-runs the deepest cell under every scheduler variant the sweep
    // exposes (FR-FCFS, closed page, idle-keyed drains).
    let trace = E2eTrace::record("bfs", WARMUP, MEASURE);
    let deep = E2eParams::new(4, 2, 2, inflight_for(4));
    let variants: [(&str, E2eParams); 3] = [
        ("row-first", deep.with_order(DrainOrder::RowFirst)),
        ("closed-page", deep.with_page(PagePolicy::Closed)),
        ("idle-drain", deep.with_drain_on_idle(true)),
    ];
    for (name, params) in variants {
        let (seed, ff) = run_both(&trace, e2e_machine_config(params));
        assert_bit_exact(name, &seed, &ff);
    }
}

#[test]
fn figure_workloads_match_across_security_modes() {
    // One machine per security mode (the figure suite's base, XOM, and
    // OTP columns) over a spread of benchmark profiles.
    let machines: [(&str, MachineConfig); 3] = [
        ("base", MachineConfig::paper(SecurityMode::Insecure)),
        ("xom", MachineConfig::paper(SecurityMode::Xom)),
        (
            "otp-lru64",
            MachineConfig::paper(SecurityMode::Otp {
                snc: SncConfig::paper_default(),
            }),
        ),
    ];
    for bench in ["gzip", "mcf", "equake"] {
        for (name, config) in &machines {
            let mut seed_workload = SpecWorkload::new(benchmark_profile(bench));
            let ancient: Vec<u64> = seed_workload.ancient_line_addrs().collect();
            let active: Vec<u64> = seed_workload.active_line_addrs().collect();

            let mut seed = SeedMachine::new(config.clone());
            seed.core_mut()
                .hierarchy_mut()
                .backend_mut()
                .pre_age(ancient.iter().copied(), active.iter().copied());
            let seed_m = seed.run(&mut seed_workload, WARMUP, MEASURE);

            let mut ff_workload = SpecWorkload::new(benchmark_profile(bench));
            let mut ff = Machine::new(config.clone());
            ff.core_mut()
                .hierarchy_mut()
                .backend_mut()
                .pre_age(ancient.iter().copied(), active.iter().copied());
            let ff_m = ff.run(&mut ff_workload, WARMUP, MEASURE);

            assert_bit_exact(&format!("{bench}/{name}"), &seed_m, &ff_m);
        }
    }
}
