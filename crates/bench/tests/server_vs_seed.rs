//! Differential test: a [`SecureServer`] with one compartment and no
//! context switching IS the seed [`Machine`] — same core, same
//! hierarchy, same backend, with the scheduler reduced to a no-op.
//! Every measured quantity must match bit for bit over the full
//! mode × channels × banks × MSHRs grid, and the single compartment's
//! traffic split must equal the fabric totals exactly.
//!
//! This is the lockdown for the multi-compartment refactor: whatever
//! the scheduler, slot indirection, and per-requestor tagging added,
//! the degenerate configuration must not move a single counter.

use padlock_bench::inflight_for;
use padlock_core::{
    MachineConfig, Machine, SecureServer, SecurityMode, ServerConfig, SncConfig,
};
use padlock_cpu::StrideWorkload;
use padlock_mem::DrainOrder;

/// The measurement windows: long enough that every mode misses, spills,
/// and drains through the engine.
const WARMUP: u64 = 2_000;
const MEASURE: u64 = 8_000;

fn grid_config(mode: SecurityMode, channels: usize, banks: usize, mshrs: usize) -> MachineConfig {
    let mut cfg = MachineConfig::paper(mode);
    cfg.hierarchy.l2_mshrs = mshrs;
    cfg.security = cfg
        .security
        .with_max_inflight(inflight_for(mshrs))
        .with_snc_shards(channels)
        .with_mem_channels(channels)
        .with_mem_banks(banks);
    if banks > 1 {
        // Exercise the FR-FCFS arbitration path the server's drain
        // windows share across compartments.
        cfg.security = cfg.security.with_drain_order(DrainOrder::RowFirst);
    }
    cfg
}

fn workload() -> StrideWorkload {
    StrideWorkload::new(8 << 20, 128, 0.4)
}

#[test]
fn one_compartment_server_is_bit_exact_to_the_machine() {
    let modes = [
        SecurityMode::Insecure,
        SecurityMode::Xom,
        SecurityMode::Otp {
            snc: SncConfig::paper_default().with_capacity(256),
        },
        SecurityMode::otp_lru_64k(),
    ];
    for mode in modes {
        for channels in [1usize, 2] {
            for banks in [1usize, 4] {
                for mshrs in [1usize, 4] {
                    let cfg = grid_config(mode, channels, banks, mshrs);
                    let cell = format!(
                        "{} x{channels}ch x{banks}bk x{mshrs}mshr",
                        cfg.label()
                    );

                    let mut machine = Machine::new(cfg.clone());
                    let m = machine.run(&mut workload(), WARMUP, MEASURE);

                    let mut server = SecureServer::new(ServerConfig::from_machine(cfg, 1));
                    let s = server.run(&mut [workload()], WARMUP, MEASURE);

                    assert_eq!(s.label, m.label, "{cell}: label");
                    assert_eq!(s.compartments.len(), 1, "{cell}");
                    let c0 = &s.compartments[0];
                    assert_eq!(c0.stats, m.stats, "{cell}: run stats");
                    assert_eq!(c0.l2, m.l2, "{cell}: L2 counters");
                    assert_eq!(c0.mshr, m.mshr, "{cell}: MSHR counters");
                    assert_eq!(s.traffic, m.traffic, "{cell}: traffic counters");
                    assert_eq!(s.controller, m.controller, "{cell}: controller counters");
                    assert_eq!(s.snc, m.snc, "{cell}: SNC counters");

                    // With one compartment the partition is the whole:
                    // its split equals the fabric totals, nobody else
                    // evicted anything, and no switch ever fired.
                    assert_eq!(c0.traffic, s.totals, "{cell}: traffic split");
                    assert_eq!(c0.snc_evictions_by_others, 0, "{cell}");
                    assert_eq!(s.context_switches, 0, "{cell}");
                }
            }
        }
    }
}
