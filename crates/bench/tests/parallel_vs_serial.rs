//! The parallel-determinism gate: every table builder and JSON-lines
//! serialisation must be **byte-identical** when fanned across a
//! work-stealing pool vs run serially. Each grid cell is a pure
//! function of its configuration, and [`padlock_exec::SweepPool`]
//! reassembles results in submission order, so any byte of difference
//! means a cell stopped being pure (shared state leaked between
//! simulations) or the pool mis-slotted a result — both bugs this
//! suite exists to catch. CI runs it on every push.

use padlock_bench::{
    bank_table, banked_grid, e2e_table, figure_machines, grid_jsonl, idle_delta_table, mlp_table,
    order_delta_table, E2eTrace, Lab, RunScale, ORDER,
};
use padlock_exec::SweepPool;
use padlock_mem::{DrainOrder, PagePolicy};

/// Tiny end-to-end windows: determinism does not need a representative
/// measurement, just real simulations on both sides of the comparison.
const WARMUP: u64 = 2_000;
const MEASURE: u64 = 6_000;

#[test]
fn mlp_table_is_byte_identical_across_jobs() {
    let serial =
        mlp_table(&SweepPool::serial(), &[1, 4], &[1, 2], &[1, 2], 256).render_text();
    let pooled = mlp_table(&SweepPool::new(4), &[1, 4], &[1, 2], &[1, 2], 256).render_text();
    assert_eq!(serial, pooled);
}

#[test]
fn e2e_table_is_byte_identical_across_jobs() {
    let trace = E2eTrace::record("bfs", WARMUP, MEASURE);
    for (idle, speculative) in [(false, false), (true, false), (false, true)] {
        let serial = e2e_table(
            &SweepPool::serial(),
            &trace,
            &[1, 2],
            &[1, 2],
            DrainOrder::Fifo,
            PagePolicy::Open,
            idle,
            speculative,
            false,
        )
        .render_text();
        let pooled = e2e_table(
            &SweepPool::new(4),
            &trace,
            &[1, 2],
            &[1, 2],
            DrainOrder::Fifo,
            PagePolicy::Open,
            idle,
            speculative,
            false,
        )
        .render_text();
        assert_eq!(
            serial, pooled,
            "e2e table diverged (idle drain {idle}, speculative {speculative})"
        );
    }
}

#[test]
fn bank_and_delta_tables_and_jsonl_are_byte_identical_across_jobs() {
    let bfs = E2eTrace::record("bfs", WARMUP, MEASURE);
    let rstride = E2eTrace::record("rstride", WARMUP, MEASURE);
    let traces: Vec<&E2eTrace> = vec![&bfs, &rstride];
    let banks = [1usize, 2];
    let serial = SweepPool::serial();
    let pooled = SweepPool::new(4);

    assert_eq!(
        bank_table(&serial, &traces, &banks, 2, DrainOrder::Fifo, PagePolicy::Open).render_text(),
        bank_table(&pooled, &traces, &banks, 2, DrainOrder::Fifo, PagePolicy::Open).render_text(),
    );
    assert_eq!(
        order_delta_table(&serial, &traces, &banks, 2, PagePolicy::Open).render_text(),
        order_delta_table(&pooled, &traces, &banks, 2, PagePolicy::Open).render_text(),
    );
    assert_eq!(
        idle_delta_table(&serial, &traces, &banks, 2, DrainOrder::Fifo, PagePolicy::Open)
            .render_text(),
        idle_delta_table(&pooled, &traces, &banks, 2, DrainOrder::Fifo, PagePolicy::Open)
            .render_text(),
    );

    // Speculative on: the spec counters in the JSON lines must be as
    // deterministic across jobs as the cycles.
    let grid_serial = banked_grid(
        &serial,
        &traces,
        &banks,
        2,
        DrainOrder::Fifo,
        PagePolicy::Open,
        true,
        true,
    );
    let grid_pooled = banked_grid(
        &pooled,
        &traces,
        &banks,
        2,
        DrainOrder::Fifo,
        PagePolicy::Open,
        true,
        true,
    );
    assert_eq!(
        grid_jsonl(&traces, &grid_serial),
        grid_jsonl(&traces, &grid_pooled),
        "JSON-lines stream diverged across jobs"
    );
}

#[test]
fn figure_tables_are_byte_identical_after_parallel_prewarm() {
    // Shrink the Smoke windows for this test only: the comparison needs
    // 44 real simulations, not representative ones. No other test in
    // this binary reads the scale windows, so the process-global
    // override cannot race.
    std::env::set_var("PADLOCK_WARMUP", "2000");
    std::env::set_var("PADLOCK_MEASURE", "6000");
    let mut serial = Lab::new(RunScale::Smoke);
    let serial_text = serial.figure3().table().render_text();
    let mut prewarmed = Lab::new(RunScale::Smoke);
    prewarmed.prewarm(&SweepPool::new(4), &ORDER, &figure_machines(3));
    let pooled_text = prewarmed.figure3().table().render_text();
    std::env::remove_var("PADLOCK_WARMUP");
    std::env::remove_var("PADLOCK_MEASURE");
    assert_eq!(serial_text, pooled_text);
}
