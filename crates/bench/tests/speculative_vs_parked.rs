//! The speculative-issue differential: with
//! `HierarchyConfig::speculative_completions` on, the machine must be
//! **bit-exact** against the parked-drain machine — same cycles, same
//! instructions, and the same value for every cache, traffic,
//! controller, and SNC counter — over the structural grid (channels ×
//! banks × MSHRs × in-flight bound) and the scheduler variants
//! (FR-FCFS, closed page, idle-keyed drains) on recorded bfs/rstride
//! traces. Speculation may only add its own three MSHR counters
//! (`speculative_issues`, `window_replays`,
//! `replay_patched_completions`); every shared counter must match.
//! The grid must also prove speculation *engages*: singleton windows
//! confirm on the pointer-chase rstride trace, and coupled windows
//! replay (`window_replays > 0`) on the deep FR-FCFS banked bfs
//! points. CI runs this on every push.

use padlock_bench::mlp::{e2e_machine_config, inflight_for, E2eParams, E2eTrace};
use padlock_core::{Machine, MachineConfig, Measurement};
use padlock_mem::{DrainOrder, PagePolicy};

/// Tiny end-to-end windows: bit-exactness does not need a
/// representative measurement, just real simulations on both sides.
const WARMUP: u64 = 2_000;
const MEASURE: u64 = 6_000;

/// The MSHR counters only the speculative run is allowed to touch.
const SPEC_COUNTERS: [&str; 3] = [
    "speculative_issues",
    "window_replays",
    "replay_patched_completions",
];

fn assert_spec_exact(ctx: &str, parked: &Measurement, spec: &Measurement) {
    assert_eq!(parked.stats, spec.stats, "{ctx}: core stats diverged");
    assert_eq!(
        parked.stats.forced_steps, 0,
        "{ctx}: parked run forced a time step"
    );
    assert_eq!(
        spec.stats.forced_steps, 0,
        "{ctx}: speculative run forced a time step"
    );
    assert_eq!(parked.l2, spec.l2, "{ctx}: L2 counters diverged");
    assert_eq!(
        parked.traffic, spec.traffic,
        "{ctx}: traffic counters diverged"
    );
    assert_eq!(
        parked.controller, spec.controller,
        "{ctx}: controller counters diverged"
    );
    assert_eq!(parked.snc, spec.snc, "{ctx}: SNC counters diverged");
    assert_eq!(parked.label, spec.label, "{ctx}: backend label diverged");
    // MSHR counters: identical except the speculation-only three, which
    // the parked run must never touch. Walk both directions so a
    // counter nonzero on only one side cannot hide.
    for (name, v) in parked.mshr.iter() {
        assert!(
            !SPEC_COUNTERS.contains(&name),
            "{ctx}: parked run counted {name}"
        );
        assert_eq!(spec.mshr.get(name), v, "{ctx}: MSHR counter {name}");
    }
    for (name, v) in spec.mshr.iter() {
        if SPEC_COUNTERS.contains(&name) {
            continue;
        }
        assert_eq!(parked.mshr.get(name), v, "{ctx}: MSHR counter {name}");
    }
}

/// Runs one recorded-trace cell and returns its measurement.
fn run_one(trace: &E2eTrace, config: MachineConfig) -> Measurement {
    let mut machine = Machine::new(config);
    machine.core_mut().hierarchy_mut().backend_mut().pre_age(
        trace.ancient_lines().iter().copied(),
        trace.active_lines().iter().copied(),
    );
    let mut player = trace.clone_player();
    machine.run(&mut player, trace.warmup_ops(), trace.measure_ops())
}

/// Runs one cell both ways — `params` parked, then with speculation —
/// asserts bit-exactness, and returns the speculative measurement.
fn run_cell(trace: &E2eTrace, params: E2eParams, ctx: &str) -> Measurement {
    let parked = run_one(trace, e2e_machine_config(params));
    let spec = run_one(trace, e2e_machine_config(params.with_speculative(true)));
    assert_spec_exact(ctx, &parked, &spec);
    spec
}

#[test]
fn recorded_traces_match_over_the_structural_grid() {
    let mut speculative_issues = 0u64;
    for bench in ["bfs", "rstride"] {
        let trace = E2eTrace::record(bench, WARMUP, MEASURE);
        for channels in [1usize, 2] {
            for banks in [1usize, 2] {
                for mshrs in [1usize, 4] {
                    for inflight in [1usize, inflight_for(mshrs)] {
                        let params = E2eParams::new(mshrs, channels, banks, inflight);
                        let ctx = format!(
                            "{bench} ch={channels} banks={banks} \
                             mshrs={mshrs} inflight={inflight}"
                        );
                        let spec = run_cell(&trace, params, &ctx);
                        speculative_issues += spec.mshr.get("speculative_issues");
                    }
                }
            }
        }
    }
    assert!(
        speculative_issues > 0,
        "speculation never engaged anywhere on the structural grid"
    );
}

#[test]
fn scheduling_knobs_match_at_the_deep_point() {
    // The deep FR-FCFS banked machine is the window-coupling regime:
    // crypto-pipeline slots, SNC ports, and bank state all shared
    // across a multi-miss window, so speculated windows must both
    // confirm (singletons) and replay (coupled batches) here — and
    // stay bit-exact through every scheduler variant.
    let trace = E2eTrace::record("bfs", WARMUP, MEASURE);
    let deep = E2eParams::new(4, 2, 2, inflight_for(4));
    let variants: [(&str, E2eParams); 4] = [
        ("fifo", deep),
        ("row-first", deep.with_order(DrainOrder::RowFirst)),
        ("closed-page", deep.with_page(PagePolicy::Closed)),
        ("idle-drain", deep.with_drain_on_idle(true)),
    ];
    for (name, params) in variants {
        let spec = run_cell(&trace, params, name);
        assert!(
            spec.mshr.get("speculative_issues") > 0,
            "{name}: speculation never engaged on the deep machine"
        );
        assert!(
            spec.mshr.get("window_replays") > 0,
            "{name}: no window ever coupled on the deep machine"
        );
        assert!(
            spec.mshr.get("replay_patched_completions")
                >= spec.mshr.get("window_replays"),
            "{name}: a replay patched no completions"
        );
    }
}

#[test]
fn the_pointer_chase_confirms_most_of_its_windows() {
    // rstride is a serial random walk: one miss in flight at a time,
    // so nearly every drain window is a singleton and the speculated
    // completion survives to the drain trigger. This is the simrate
    // fast path — most issues must confirm, not replay.
    let trace = E2eTrace::record("rstride", WARMUP, MEASURE);
    let deep = E2eParams::new(8, 4, 2, 32).with_order(DrainOrder::RowFirst);
    let spec = run_cell(&trace, deep, "rstride deep");
    let issues = spec.mshr.get("speculative_issues");
    let replays = spec.mshr.get("window_replays");
    assert!(issues > 0, "speculation never engaged");
    assert!(
        replays * 2 < issues,
        "a pointer chase should confirm most windows: \
         {replays} replays of {issues} issues"
    );
}
