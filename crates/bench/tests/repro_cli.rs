//! CLI-level tests of the `repro` binary's argument validation: bad
//! axes and policies must fail fast with a usage error (exit code 2)
//! before any simulation starts, and `--help` must advertise the
//! scheduling flags.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn banks_must_divide_the_row() {
    // ROW_LINES = 16: a 3-bank fabric would silently compare unequal
    // bank populations in the row-hit tables; the CLI rejects it.
    for bad in ["3", "5", "1,4,6", "32"] {
        let out = repro(&["--mlp", "--smoke", "--banks", bad]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "--banks {bad} should be a usage error"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("divide"),
            "--banks {bad}: unexpected message {stderr:?}"
        );
        // Fails before any table is simulated or printed.
        assert!(out.stdout.is_empty(), "--banks {bad} printed output");
    }
}

#[test]
fn zero_and_garbage_axes_are_rejected() {
    for (flag, value) in [("--banks", "0"), ("--banks", "x"), ("--channels", "0")] {
        let out = repro(&["--mlp", flag, value]);
        assert_eq!(out.status.code(), Some(2), "{flag} {value}");
    }
}

#[test]
fn order_and_page_accept_only_known_policies() {
    for (flag, bad) in [("--order", "lifo"), ("--page", "ajar")] {
        let out = repro(&["--mlp", flag, bad]);
        assert_eq!(out.status.code(), Some(2), "{flag} {bad}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("expects"), "{flag} {bad}: {stderr:?}");
    }
}

#[test]
fn jobs_must_be_a_positive_worker_count() {
    for bad in ["0", "x", "-1", "1.5"] {
        let out = repro(&["--mlp", "--smoke", "--jobs", bad]);
        assert_eq!(out.status.code(), Some(2), "--jobs {bad} should be a usage error");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--jobs"),
            "--jobs {bad}: unexpected message {stderr:?}"
        );
        assert!(out.stdout.is_empty(), "--jobs {bad} printed output");
    }
    // The flag needs a value at all.
    let out = repro(&["--mlp", "--jobs"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn speculative_requires_the_mlp_sweeps() {
    let out = repro(&["--speculative"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--mlp"), "unexpected message {stderr:?}");
    assert!(out.stdout.is_empty(), "--speculative alone printed output");
}

#[test]
fn server_axes_require_the_server_sweep() {
    // --cores / --switch configure the contention grid; outside
    // --server they would be silently ignored, so the CLI rejects them.
    for args in [
        &["--mlp", "--cores", "1,2"][..],
        &["--mlp", "--switch", "20000"][..],
        &["--cores", "1,2"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--server"), "{args:?}: {stderr:?}");
        assert!(out.stdout.is_empty(), "{args:?} printed output");
    }
    // The two sweeps are exclusive, and `mix` only means round-robin
    // compartment assignment on the server.
    let out = repro(&["--server", "--mlp"]);
    assert_eq!(out.status.code(), Some(2));
    let out = repro(&["--mlp", "--smoke", "--trace", "mix"]);
    assert_eq!(out.status.code(), Some(2));
    // Garbage and empty server axes fail fast.
    for (flag, bad) in [("--cores", "x"), ("--cores", "0"), ("--switch", "q")] {
        let out = repro(&["--server", "--smoke", flag, bad]);
        assert_eq!(out.status.code(), Some(2), "{flag} {bad}");
    }
    // Quantum 0 (no switching) is a legal axis value, parsed fine:
    // validation stops at parse, long before any simulation.
    let out = repro(&["--server", "--switch", "0", "--cores", "x"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn jsonl_requires_the_bank_sweep() {
    let out = repro(&["--mlp", "--smoke", "--jsonl", "/tmp/never-written.jsonl"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--banks"), "unexpected message {stderr:?}");
}

#[test]
fn help_documents_the_scheduling_flags() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "--order",
        "row-first",
        "--page",
        "closed",
        "--banks",
        "--jobs",
        "byte-identical",
        "--idle-drain",
        "--jsonl",
        "--speculative",
        "--server",
        "--cores",
        "--switch",
    ] {
        assert!(stdout.contains(needle), "help lacks {needle}: {stdout}");
    }
}
