//! A CACTI-like analytic SRAM area model.
//!
//! The paper justifies its Fig. 8 comparison with CACTI 3.2: a 64KB
//! 32-way SNC added to a 4-way 256KB L2 occupies chip area "between that
//! of a 5-way 320KB and a 6-way 384KB L2 cache", so the equal-area rival
//! to L2+SNC is a 384KB 6-way L2. This crate reimplements the relevant
//! slice of that estimate: data-array bits, tag-array bits, and per-way
//! periphery (sense amps, comparators, output drivers) with
//! associativity-dependent overhead. Absolute units are arbitrary
//! (normalised "bit-equivalents"); only ratios are used, exactly like
//! the paper's argument.
//!
//! # Examples
//!
//! ```
//! use padlock_area::{CacheGeometry, area_estimate};
//!
//! let l2 = CacheGeometry::new(256 * 1024, 128, 4, 48);
//! // The SNC packs sixteen 2-byte sequence numbers under each tag
//! // (a sectored organisation, consistent with line-packed spills).
//! let snc = CacheGeometry::new(64 * 1024, 32, 32, 48);
//! let rival = CacheGeometry::new(384 * 1024, 128, 6, 48);
//! assert!(area_estimate(&l2) + area_estimate(&snc) < area_estimate(&rival));
//! ```

#![warn(missing_docs)]

/// Geometry of one SRAM cache for area estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Capacity in bytes.
    pub size_bytes: usize,
    /// Line (entry) size in bytes.
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Physical/virtual address width for tags.
    pub address_bits: usize,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes or if lines do not divide the capacity.
    pub fn new(size_bytes: usize, line_bytes: usize, ways: usize, address_bits: usize) -> Self {
        assert!(size_bytes > 0 && line_bytes > 0 && ways > 0, "sizes must be positive");
        assert!(
            size_bytes.is_multiple_of(line_bytes * ways),
            "capacity must divide into ways of whole lines"
        );
        Self {
            size_bytes,
            line_bytes,
            ways,
            address_bits,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }

    /// Tag width in bits (address minus set-index minus line-offset bits).
    pub fn tag_bits(&self) -> usize {
        let offset_bits = (self.line_bytes.max(2) as f64).log2().ceil() as usize;
        let index_bits = (self.sets().max(1) as f64).log2().ceil() as usize;
        self.address_bits.saturating_sub(offset_bits + index_bits)
    }
}

/// Relative area cost of one bit of data SRAM (the normalisation unit).
const DATA_BIT: f64 = 1.0;
/// Tag bits cost slightly more (comparator wiring per bit).
const TAG_BIT: f64 = 1.1;
/// Fixed periphery per way, in bit-equivalents (sense amps, comparators,
/// way-select muxes). Dominates the associativity penalty, per CACTI.
const WAY_PERIPHERY: f64 = 12_000.0;
/// Per-set wordline/decoder overhead in bit-equivalents.
const SET_PERIPHERY: f64 = 6.0;

/// Estimated area in normalised bit-equivalents.
///
/// The model is deliberately simple — data bits + tag bits + per-way and
/// per-set periphery — but captures CACTI's first-order behaviour: area
/// grows slightly super-linearly with associativity at fixed capacity.
pub fn area_estimate(g: &CacheGeometry) -> f64 {
    let data_bits = (g.size_bytes * 8) as f64 * DATA_BIT;
    // One tag + valid/dirty/LRU state per line.
    let lines = (g.size_bytes / g.line_bytes) as f64;
    let state_bits = (g.tag_bits() + 2 + 5) as f64;
    let tag_bits = lines * state_bits * TAG_BIT;
    let periphery = g.ways as f64 * WAY_PERIPHERY + g.sets() as f64 * SET_PERIPHERY;
    data_bits + tag_bits + periphery
}

/// The paper's Fig. 8 area argument, reproduced as data:
/// `(area(L2 256K/4w) + area(SNC 64K/32w), area(320K/5w), area(384K/6w))`.
pub fn paper_fig8_areas() -> (f64, f64, f64) {
    let l2 = CacheGeometry::new(256 * 1024, 128, 4, 48);
    // Physically the SNC shares one tag across a 32-byte sector of
    // sixteen 2-byte entries; per-entry tags would make the structure
    // tag-dominated and break the paper's CACTI bracketing claim (see
    // DESIGN.md, modelling decisions).
    let snc = CacheGeometry::new(64 * 1024, 32, 32, 48);
    let mid = CacheGeometry::new(320 * 1024, 128, 5, 48);
    let big = CacheGeometry::new(384 * 1024, 128, 6, 48);
    (
        area_estimate(&l2) + area_estimate(&snc),
        area_estimate(&mid),
        area_estimate(&big),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_derivations() {
        let l2 = CacheGeometry::new(256 * 1024, 128, 4, 48);
        assert_eq!(l2.sets(), 512);
        // 48 - 7 (offset) - 9 (index) = 32 tag bits.
        assert_eq!(l2.tag_bits(), 32);
    }

    #[test]
    fn area_grows_with_capacity() {
        let small = CacheGeometry::new(256 * 1024, 128, 4, 48);
        let big = CacheGeometry::new(384 * 1024, 128, 4, 48);
        assert!(area_estimate(&big) > area_estimate(&small) * 1.4);
    }

    #[test]
    fn area_grows_with_associativity_at_fixed_capacity() {
        let a4 = CacheGeometry::new(256 * 1024, 128, 4, 48);
        let a8 = CacheGeometry::new(256 * 1024, 128, 8, 48);
        let a4x = area_estimate(&a4);
        let a8x = area_estimate(&a8);
        assert!(a8x > a4x);
        // Super-linear penalty is mild, not explosive.
        assert!(a8x < a4x * 1.2);
    }

    #[test]
    fn papers_bracketing_claim_holds() {
        // "a 64KB 32-way SNC on top of a 4-way 256KB L2 occupies chip
        //  area between that of a 5-way 320KB and a 6-way 384KB L2".
        let (combo, mid, big) = paper_fig8_areas();
        assert!(
            mid < combo && combo < big,
            "combo {combo:.0} should lie between {mid:.0} and {big:.0}"
        );
    }

    #[test]
    fn fine_grained_entries_cost_more_tag_area() {
        // Per-entry (2-byte) tagging would be tag-dominated — the reason
        // the model (and plausibly the paper's CACTI run) assumes a
        // sectored SNC.
        let sectored = CacheGeometry::new(64 * 1024, 32, 32, 48);
        let per_entry = CacheGeometry::new(64 * 1024, 2, 32, 48);
        assert!(area_estimate(&per_entry) > area_estimate(&sectored) * 1.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        let _ = CacheGeometry::new(0, 128, 4, 48);
    }

    #[test]
    #[should_panic(expected = "whole lines")]
    fn ragged_geometry_rejected() {
        let _ = CacheGeometry::new(1000, 128, 4, 48);
    }
}
