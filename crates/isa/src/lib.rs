//! A tiny 32-bit RISC ISA, assembler, and VM that executes *through* the
//! padlock functional secure memory.
//!
//! This is the workspace's end-to-end demonstration vehicle for the
//! paper's piracy/tampering story: a vendor assembles and encrypts a
//! program ([`assemble`] + `padlock_core::vendor`), the secure loader
//! unwraps it on one specific processor, and the [`Vm`] fetches every
//! instruction and datum through [`padlock_core::SecureMemory`] — so
//! tampering with off-chip bytes produces garbage instructions or MAC
//! traps exactly as the XOM model prescribes ("it would raise exceptions
//! and then halt", paper §1).
//!
//! # Examples
//!
//! ```
//! use padlock_isa::{assemble, Vm};
//! use padlock_core::{IntegrityMode, LineProtection, SecureMemory, SeedScheme};
//! use padlock_crypto::CipherKind;
//!
//! let program = assemble(r#"
//!     addi r1, r0, 7
//!     addi r2, r0, 35
//!     add  r3, r1, r2
//!     out  r3
//!     halt
//! "#).unwrap();
//!
//! let mut mem = SecureMemory::new(CipherKind::Des, &[9u8; 16],
//!     SeedScheme::PaperAdditive, 128, IntegrityMode::Mac);
//! mem.add_region("code", 0x0, 0x1_0000, LineProtection::OtpDynamic).unwrap();
//! mem.write_bytes(0x1000, &program.encode()).unwrap();
//!
//! let mut vm = Vm::new(mem, 0x1000);
//! vm.run(1_000).unwrap();
//! assert_eq!(vm.output(), &[42]);
//! ```

#![warn(missing_docs)]

mod asm;
mod inst;
mod vm;

pub use asm::{assemble, AsmError, Program};
pub use inst::{decode, encode, Instruction, Opcode, Reg};
pub use vm::{Vm, VmError};
