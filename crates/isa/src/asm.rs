//! A two-pass assembler for the tiny ISA.
//!
//! Syntax: one instruction per line; `;` or `#` comments; `label:`
//! definitions; `.word N` data directives. Branch/jump targets may be
//! labels (pc-relative offsets are computed) or literal numbers.

use crate::inst::{encode, Instruction, Opcode, Reg};
use std::collections::HashMap;
use std::fmt;

/// Assembly errors with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// An assembled program: words plus label metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    words: Vec<u32>,
    labels: HashMap<String, u32>,
}

impl Program {
    /// The assembled words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Byte size of the program.
    pub fn byte_len(&self) -> usize {
        self.words.len() * 4
    }

    /// The word offset of a label, if defined.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// Encodes to little-endian bytes for loading.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 4);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let t = tok.trim().trim_end_matches(',');
    if let Some(n) = t.strip_prefix('r') {
        if let Ok(idx) = n.parse::<u8>() {
            if idx < 16 {
                return Ok(Reg(idx));
            }
        }
    }
    Err(AsmError {
        line,
        message: format!("expected register, found {t:?}"),
    })
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let t = tok.trim().trim_end_matches(',');
    let parsed = if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else if let Some(hex) = t.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).map(|v| -v)
    } else {
        t.parse::<i64>()
    };
    parsed.map_err(|_| AsmError {
        line,
        message: format!("expected immediate, found {t:?}"),
    })
}

/// `imm(rs1)` memory operand.
fn parse_mem(tok: &str, line: usize) -> Result<(i64, Reg), AsmError> {
    let t = tok.trim();
    let open = t.find('(').ok_or_else(|| AsmError {
        line,
        message: format!("expected imm(reg), found {t:?}"),
    })?;
    let close = t.rfind(')').ok_or_else(|| AsmError {
        line,
        message: "missing )".to_string(),
    })?;
    let imm = if open == 0 { 0 } else { parse_imm(&t[..open], line)? };
    let reg = parse_reg(&t[open + 1..close], line)?;
    Ok((imm, reg))
}

/// Assembles source text.
///
/// # Errors
///
/// Returns [`AsmError`] for unknown mnemonics, malformed operands,
/// duplicate or undefined labels, and out-of-range immediates.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    // Pass 1: strip comments, collect labels and raw statements.
    struct Stmt<'a> {
        line: usize,
        tokens: Vec<&'a str>,
    }
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut stmts: Vec<Stmt> = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let mut text = raw;
        if let Some(p) = text.find([';', '#']) {
            text = &text[..p];
        }
        let mut text = text.trim();
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(AsmError {
                    line: line_no,
                    message: format!("bad label {label:?}"),
                });
            }
            if labels
                .insert(label.to_string(), stmts.len() as u32)
                .is_some()
            {
                return Err(AsmError {
                    line: line_no,
                    message: format!("duplicate label {label:?}"),
                });
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = text.split_whitespace().collect();
        stmts.push(Stmt {
            line: line_no,
            tokens,
        });
    }

    // Pass 2: encode.
    let mut words = Vec::with_capacity(stmts.len());
    for (word_idx, stmt) in stmts.iter().enumerate() {
        let line = stmt.line;
        let t = &stmt.tokens;
        let mnemonic = t[0].to_ascii_lowercase();
        let need = |n: usize| -> Result<(), AsmError> {
            if t.len() != n + 1 {
                Err(AsmError {
                    line,
                    message: format!("{mnemonic} expects {n} operands, found {}", t.len() - 1),
                })
            } else {
                Ok(())
            }
        };
        let branch_imm = |target: &str| -> Result<u16, AsmError> {
            let offset: i64 = if let Some(&word) = labels.get(target.trim_end_matches(',')) {
                i64::from(word) - word_idx as i64 - 1
            } else {
                parse_imm(target, line)?
            };
            i16::try_from(offset).map(|v| v as u16).map_err(|_| AsmError {
                line,
                message: format!("branch offset {offset} out of range"),
            })
        };
        let rrr = |op: Opcode, t: &[&str]| -> Result<Instruction, AsmError> {
            Ok(Instruction {
                op,
                rd: parse_reg(t[1], line)?,
                rs1: parse_reg(t[2], line)?,
                imm: u16::from(parse_reg(t[3], line)?.0),
            })
        };
        let inst = match mnemonic.as_str() {
            ".word" => {
                need(1)?;
                let v = parse_imm(t[1], line)?;
                words.push(v as u32);
                continue;
            }
            "add" => {
                need(3)?;
                rrr(Opcode::Add, t)?
            }
            "sub" => {
                need(3)?;
                rrr(Opcode::Sub, t)?
            }
            "and" => {
                need(3)?;
                rrr(Opcode::And, t)?
            }
            "or" => {
                need(3)?;
                rrr(Opcode::Or, t)?
            }
            "xor" => {
                need(3)?;
                rrr(Opcode::Xor, t)?
            }
            "slt" => {
                need(3)?;
                rrr(Opcode::Slt, t)?
            }
            "mul" => {
                need(3)?;
                rrr(Opcode::Mul, t)?
            }
            "addi" => {
                need(3)?;
                let imm = parse_imm(t[3], line)?;
                let imm = i16::try_from(imm).map_err(|_| AsmError {
                    line,
                    message: format!("immediate {imm} out of i16 range"),
                })?;
                Instruction {
                    op: Opcode::Addi,
                    rd: parse_reg(t[1], line)?,
                    rs1: parse_reg(t[2], line)?,
                    imm: imm as u16,
                }
            }
            "lui" => {
                need(2)?;
                let imm = parse_imm(t[2], line)?;
                let imm = u16::try_from(imm).map_err(|_| AsmError {
                    line,
                    message: format!("immediate {imm} out of u16 range"),
                })?;
                Instruction {
                    op: Opcode::Lui,
                    rd: parse_reg(t[1], line)?,
                    rs1: Reg::ZERO,
                    imm,
                }
            }
            "lw" | "sw" => {
                need(2)?;
                let (imm, base) = parse_mem(t[2], line)?;
                let imm = i16::try_from(imm).map_err(|_| AsmError {
                    line,
                    message: format!("offset {imm} out of i16 range"),
                })?;
                Instruction {
                    op: if mnemonic == "lw" { Opcode::Lw } else { Opcode::Sw },
                    rd: parse_reg(t[1], line)?,
                    rs1: base,
                    imm: imm as u16,
                }
            }
            "beq" | "bne" => {
                need(3)?;
                Instruction {
                    op: if mnemonic == "beq" {
                        Opcode::Beq
                    } else {
                        Opcode::Bne
                    },
                    rd: parse_reg(t[1], line)?,
                    rs1: parse_reg(t[2], line)?,
                    imm: branch_imm(t[3])?,
                }
            }
            "jal" => {
                need(1)?;
                Instruction {
                    op: Opcode::Jal,
                    rd: Reg(15), // link register by convention
                    rs1: Reg::ZERO,
                    imm: branch_imm(t[1])?,
                }
            }
            "jr" => {
                need(1)?;
                Instruction {
                    op: Opcode::Jr,
                    rd: Reg::ZERO,
                    rs1: parse_reg(t[1], line)?,
                    imm: 0,
                }
            }
            "out" => {
                need(1)?;
                Instruction {
                    op: Opcode::Out,
                    rd: Reg::ZERO,
                    rs1: parse_reg(t[1], line)?,
                    imm: 0,
                }
            }
            "halt" => {
                need(0)?;
                Instruction {
                    op: Opcode::Halt,
                    rd: Reg::ZERO,
                    rs1: Reg::ZERO,
                    imm: 0,
                }
            }
            other => {
                return Err(AsmError {
                    line,
                    message: format!("unknown mnemonic {other:?}"),
                })
            }
        };
        words.push(encode(&inst));
    }

    Ok(Program { words, labels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::decode;

    #[test]
    fn assembles_simple_arithmetic() {
        let p = assemble("addi r1, r0, 5\nadd r2, r1, r1\nhalt").unwrap();
        assert_eq!(p.words().len(), 3);
        let i0 = decode(p.words()[0]).unwrap();
        assert_eq!(i0.op, Opcode::Addi);
        assert_eq!(i0.rd, Reg(1));
        assert_eq!(i0.simm(), 5);
    }

    #[test]
    fn labels_resolve_to_relative_offsets() {
        let p = assemble(
            "loop: addi r1, r1, 1\n\
             bne r1, r2, loop\n\
             halt",
        )
        .unwrap();
        let b = decode(p.words()[1]).unwrap();
        // Branch at word 1, target word 0: offset = 0 - 1 - 1 = -2.
        assert_eq!(b.simm(), -2);
        assert_eq!(p.label("loop"), Some(0));
    }

    #[test]
    fn forward_labels_work() {
        let p = assemble(
            "beq r0, r0, done\n\
             addi r1, r0, 1\n\
             done: halt",
        )
        .unwrap();
        let b = decode(p.words()[0]).unwrap();
        assert_eq!(b.simm(), 1); // skip one instruction
    }

    #[test]
    fn memory_operands_parse() {
        let p = assemble("lw r3, 8(r2)\nsw r3, -4(r2)\nlw r1, (r4)").unwrap();
        let lw = decode(p.words()[0]).unwrap();
        assert_eq!(lw.op, Opcode::Lw);
        assert_eq!(lw.rs1, Reg(2));
        assert_eq!(lw.simm(), 8);
        let sw = decode(p.words()[1]).unwrap();
        assert_eq!(sw.simm(), -4);
        let lw0 = decode(p.words()[2]).unwrap();
        assert_eq!(lw0.simm(), 0);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("; header\n\n# also a comment\nhalt ; trailing").unwrap();
        assert_eq!(p.words().len(), 1);
    }

    #[test]
    fn word_directive_emits_raw_data() {
        let p = assemble(".word 0xDEADBEEF\n.word -1").unwrap();
        assert_eq!(p.words(), &[0xDEAD_BEEF, u32::MAX]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("addi r1, r0, 1\nfrobnicate r1").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let err = assemble("x: halt\nx: halt").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn bad_register_rejected() {
        let err = assemble("addi r99, r0, 1").unwrap_err();
        assert!(err.message.contains("register"));
    }

    #[test]
    fn out_of_range_immediate_rejected() {
        let err = assemble("addi r1, r0, 99999").unwrap_err();
        assert!(err.message.contains("out of i16 range"));
    }

    #[test]
    fn encode_is_little_endian() {
        let p = assemble(".word 0x01020304").unwrap();
        assert_eq!(p.encode(), vec![4, 3, 2, 1]);
        assert_eq!(p.byte_len(), 4);
    }
}
