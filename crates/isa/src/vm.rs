//! The VM: executes the tiny ISA through a [`SecureMemory`].
//!
//! Every fetch, load, and store crosses the security boundary, so memory
//! tampering is either caught by the MAC (a [`VmError::MemoryFault`]) or
//! surfaces as garbage instructions ([`VmError::IllegalInstruction`]) —
//! the two failure modes the XOM model promises for manipulated
//! software.

use crate::inst::{decode, Opcode};
use padlock_core::{SecureMemory, SecureMemoryError};
use std::fmt;

/// Number of architectural registers.
pub const NUM_REGS: usize = 16;

/// Execution faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The secure memory rejected an access (MAC/root mismatch).
    MemoryFault(SecureMemoryError),
    /// A fetched word did not decode — tampered or mis-keyed code.
    IllegalInstruction {
        /// Faulting pc.
        pc: u64,
        /// The offending word.
        word: u32,
    },
    /// The step budget ran out before `halt`.
    StepLimit {
        /// Steps executed.
        steps: u64,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::MemoryFault(e) => write!(f, "memory fault: {e}"),
            VmError::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at {pc:#x}")
            }
            VmError::StepLimit { steps } => write!(f, "step limit reached after {steps} steps"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<SecureMemoryError> for VmError {
    fn from(e: SecureMemoryError) -> Self {
        VmError::MemoryFault(e)
    }
}

/// The virtual machine.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct Vm {
    memory: SecureMemory,
    regs: [u32; NUM_REGS],
    pc: u64,
    halted: bool,
    steps: u64,
    output: Vec<u32>,
}

impl Vm {
    /// Creates a VM over a loaded secure memory, starting at `entry`.
    pub fn new(memory: SecureMemory, entry: u64) -> Self {
        Self {
            memory,
            regs: [0; NUM_REGS],
            pc: entry,
            halted: false,
            steps: 0,
            output: Vec::new(),
        }
    }

    /// The current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Values emitted by `out`.
    pub fn output(&self) -> &[u32] {
        &self.output
    }

    /// Reads a register (r0 reads as zero).
    pub fn reg(&self, idx: usize) -> u32 {
        if idx == 0 {
            0
        } else {
            self.regs[idx]
        }
    }

    fn set_reg(&mut self, idx: usize, value: u32) {
        if idx != 0 {
            self.regs[idx] = value;
        }
    }

    /// The underlying secure memory (attack surface for tests/examples).
    pub fn memory_mut(&mut self) -> &mut SecureMemory {
        &mut self.memory
    }

    /// Borrow of the underlying secure memory.
    pub fn memory(&self) -> &SecureMemory {
        &self.memory
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::MemoryFault`] or
    /// [`VmError::IllegalInstruction`]; `Ok(false)` after a `halt`.
    pub fn step(&mut self) -> Result<bool, VmError> {
        if self.halted {
            return Ok(false);
        }
        let bytes = self.memory.read_bytes(self.pc, 4)?;
        let word = u32::from_le_bytes(bytes.try_into().expect("4 bytes"));
        let inst = decode(word).ok_or(VmError::IllegalInstruction {
            pc: self.pc,
            word,
        })?;
        self.steps += 1;
        let mut next_pc = self.pc + 4;
        let rd = inst.rd.0 as usize;
        let rs1 = self.reg(inst.rs1.0 as usize);
        match inst.op {
            Opcode::Add => self.set_reg(rd, rs1.wrapping_add(self.reg(inst.rs2().0 as usize))),
            Opcode::Sub => self.set_reg(rd, rs1.wrapping_sub(self.reg(inst.rs2().0 as usize))),
            Opcode::And => self.set_reg(rd, rs1 & self.reg(inst.rs2().0 as usize)),
            Opcode::Or => self.set_reg(rd, rs1 | self.reg(inst.rs2().0 as usize)),
            Opcode::Xor => self.set_reg(rd, rs1 ^ self.reg(inst.rs2().0 as usize)),
            Opcode::Slt => {
                let lt = (rs1 as i32) < (self.reg(inst.rs2().0 as usize) as i32);
                self.set_reg(rd, u32::from(lt));
            }
            Opcode::Mul => self.set_reg(rd, rs1.wrapping_mul(self.reg(inst.rs2().0 as usize))),
            Opcode::Addi => self.set_reg(rd, rs1.wrapping_add(inst.simm() as u32)),
            Opcode::Lui => self.set_reg(rd, u32::from(inst.imm) << 16),
            Opcode::Lw => {
                let addr = (rs1 as i64 + i64::from(inst.simm())) as u64;
                let bytes = self.memory.read_bytes(addr, 4)?;
                self.set_reg(rd, u32::from_le_bytes(bytes.try_into().expect("4 bytes")));
            }
            Opcode::Sw => {
                let addr = (rs1 as i64 + i64::from(inst.simm())) as u64;
                let value = self.reg(rd);
                self.memory.write_bytes(addr, &value.to_le_bytes())?;
            }
            Opcode::Beq => {
                if self.reg(rd) == rs1 {
                    next_pc = (self.pc as i64 + 4 + i64::from(inst.simm()) * 4) as u64;
                }
            }
            Opcode::Bne => {
                if self.reg(rd) != rs1 {
                    next_pc = (self.pc as i64 + 4 + i64::from(inst.simm()) * 4) as u64;
                }
            }
            Opcode::Jal => {
                self.set_reg(rd, (self.pc + 4) as u32);
                next_pc = (self.pc as i64 + 4 + i64::from(inst.simm()) * 4) as u64;
            }
            Opcode::Jr => {
                next_pc = u64::from(rs1);
            }
            Opcode::Out => {
                self.output.push(rs1);
            }
            Opcode::Halt => {
                self.halted = true;
                return Ok(false);
            }
        }
        self.pc = next_pc;
        Ok(true)
    }

    /// Runs until `halt` or `max_steps`.
    ///
    /// # Errors
    ///
    /// Propagates step faults; returns [`VmError::StepLimit`] when the
    /// budget is exhausted.
    pub fn run(&mut self, max_steps: u64) -> Result<(), VmError> {
        for _ in 0..max_steps {
            if !self.step()? {
                return Ok(());
            }
        }
        if self.halted {
            Ok(())
        } else {
            Err(VmError::StepLimit { steps: self.steps })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use padlock_core::{IntegrityMode, LineProtection, SecureMemory, SeedScheme};
    use padlock_crypto::CipherKind;

    fn vm_with(source: &str) -> Vm {
        let program = assemble(source).expect("assembles");
        let mut mem = SecureMemory::new(
            CipherKind::Des,
            &[0x42u8; 16],
            SeedScheme::PaperAdditive,
            128,
            IntegrityMode::Mac,
        );
        mem.add_region("code", 0x0, 0x10_000, LineProtection::OtpDynamic)
            .unwrap();
        mem.add_region("data", 0x10_000, 0x20_000, LineProtection::OtpDynamic)
            .unwrap();
        mem.write_bytes(0x1000, &program.encode()).unwrap();
        Vm::new(mem, 0x1000)
    }

    #[test]
    fn arithmetic_and_output() {
        let mut vm = vm_with(
            "addi r1, r0, 6\n\
             addi r2, r0, 7\n\
             mul r3, r1, r2\n\
             out r3\n\
             halt",
        );
        vm.run(100).unwrap();
        assert_eq!(vm.output(), &[42]);
        assert!(vm.is_halted());
        assert_eq!(vm.steps(), 5);
    }

    #[test]
    fn loop_sums_one_to_ten() {
        let mut vm = vm_with(
            "addi r1, r0, 0      ; sum\n\
             addi r2, r0, 1      ; i\n\
             addi r3, r0, 11     ; bound\n\
             loop: add r1, r1, r2\n\
             addi r2, r2, 1\n\
             bne r2, r3, loop\n\
             out r1\n\
             halt",
        );
        vm.run(1000).unwrap();
        assert_eq!(vm.output(), &[55]);
    }

    #[test]
    fn loads_and_stores_roundtrip_through_secure_memory() {
        let mut vm = vm_with(
            "lui r4, 1           ; r4 = 0x10000 (data base)\n\
             addi r1, r0, 1234\n\
             sw r1, 8(r4)\n\
             lw r2, 8(r4)\n\
             out r2\n\
             halt",
        );
        vm.run(100).unwrap();
        assert_eq!(vm.output(), &[1234]);
        // The stored word is encrypted off-chip.
        let raw = vm.memory().raw_ciphertext(0x10_000, 16);
        assert_ne!(&raw[8..12], &1234u32.to_le_bytes());
    }

    #[test]
    fn fibonacci_with_memory_table() {
        let mut vm = vm_with(
            "lui r4, 1\n\
             addi r1, r0, 0\n\
             addi r2, r0, 1\n\
             addi r5, r0, 10     ; count\n\
             loop: add r3, r1, r2\n\
             sw r3, (r4)\n\
             addi r4, r4, 4\n\
             add r1, r2, r0\n\
             add r2, r3, r0\n\
             addi r5, r5, -1\n\
             bne r5, r0, loop\n\
             out r3\n\
             halt",
        );
        vm.run(1000).unwrap();
        assert_eq!(vm.output(), &[89]); // tenth iteration of the pair

    }

    #[test]
    fn jal_and_jr_implement_calls() {
        let mut vm = vm_with(
            "addi r1, r0, 5\n\
             jal double          ; r15 = return address\n\
             out r1\n\
             halt\n\
             double: add r1, r1, r1\n\
             jr r15",
        );
        vm.run(100).unwrap();
        assert_eq!(vm.output(), &[10]);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut vm = vm_with(
            "addi r0, r0, 99\n\
             out r0\n\
             halt",
        );
        vm.run(10).unwrap();
        assert_eq!(vm.output(), &[0]);
    }

    #[test]
    fn tampered_code_faults() {
        let mut vm = vm_with("addi r1, r0, 1\nhalt");
        // Flip ciphertext bits in the code line.
        vm.memory_mut().attack_spoof(0x1000, &[0xFF; 8]);
        let err = vm.run(10).unwrap_err();
        assert!(
            matches!(
                err,
                VmError::MemoryFault(_) | VmError::IllegalInstruction { .. }
            ),
            "unexpected: {err}"
        );
    }

    #[test]
    fn step_limit_reported() {
        let mut vm = vm_with("loop: beq r0, r0, loop"); // infinite loop
        let err = vm.run(50).unwrap_err();
        assert_eq!(err, VmError::StepLimit { steps: 50 });
    }

    #[test]
    fn halted_vm_stays_halted() {
        let mut vm = vm_with("halt");
        vm.run(10).unwrap();
        assert!(!vm.step().unwrap());
    }
}
