//! Instruction encoding: 32-bit words.
//!
//! Layout: `[31:24] opcode | [23:20] rd | [19:16] rs1 | [15:0] imm16`.
//! Register–register ops carry `rs2` in `imm[3:0]`. Sixteen registers;
//! `r0` reads as zero.

use std::fmt;

/// A register index (0–15); `r0` is hardwired to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The zero register.
    pub const ZERO: Reg = Reg(0);
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// `add rd, rs1, rs2`
    Add = 0x01,
    /// `sub rd, rs1, rs2`
    Sub = 0x02,
    /// `and rd, rs1, rs2`
    And = 0x03,
    /// `or rd, rs1, rs2`
    Or = 0x04,
    /// `xor rd, rs1, rs2`
    Xor = 0x05,
    /// `slt rd, rs1, rs2` — rd = (rs1 < rs2) signed
    Slt = 0x06,
    /// `mul rd, rs1, rs2`
    Mul = 0x07,
    /// `addi rd, rs1, imm`
    Addi = 0x10,
    /// `lui rd, imm` — rd = imm << 16
    Lui = 0x11,
    /// `lw rd, imm(rs1)`
    Lw = 0x20,
    /// `sw rd, imm(rs1)` — stores rd
    Sw = 0x21,
    /// `beq rd, rs1, imm` — pc-relative word offset
    Beq = 0x30,
    /// `bne rd, rs1, imm`
    Bne = 0x31,
    /// `jal rd, imm` — rd = pc+4; pc += imm*4
    Jal = 0x32,
    /// `jr rs1`
    Jr = 0x33,
    /// `out rs1` — append register to the output channel
    Out = 0x40,
    /// `halt`
    Halt = 0x41,
}

impl Opcode {
    /// Decodes an opcode byte.
    pub fn from_byte(b: u8) -> Option<Opcode> {
        use Opcode::*;
        Some(match b {
            0x01 => Add,
            0x02 => Sub,
            0x03 => And,
            0x04 => Or,
            0x05 => Xor,
            0x06 => Slt,
            0x07 => Mul,
            0x10 => Addi,
            0x11 => Lui,
            0x20 => Lw,
            0x21 => Sw,
            0x30 => Beq,
            0x31 => Bne,
            0x32 => Jal,
            0x33 => Jr,
            0x40 => Out,
            0x41 => Halt,
            _ => return None,
        })
    }
}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instruction {
    /// Operation.
    pub op: Opcode,
    /// Destination (or store-source) register.
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// 16-bit immediate (sign-extended where applicable); holds `rs2`
    /// in its low 4 bits for register–register ops.
    pub imm: u16,
}

impl Instruction {
    /// The second source register for register–register forms.
    pub fn rs2(&self) -> Reg {
        Reg((self.imm & 0xF) as u8)
    }

    /// The immediate sign-extended to i32.
    pub fn simm(&self) -> i32 {
        self.imm as i16 as i32
    }
}

/// Encodes an instruction to its 32-bit word.
pub fn encode(inst: &Instruction) -> u32 {
    (u32::from(inst.op as u8) << 24)
        | (u32::from(inst.rd.0 & 0xF) << 20)
        | (u32::from(inst.rs1.0 & 0xF) << 16)
        | u32::from(inst.imm)
}

/// Decodes a 32-bit word; `None` for invalid opcodes (the VM treats that
/// as a tamper trap).
pub fn decode(word: u32) -> Option<Instruction> {
    let op = Opcode::from_byte((word >> 24) as u8)?;
    Some(Instruction {
        op,
        rd: Reg(((word >> 20) & 0xF) as u8),
        rs1: Reg(((word >> 16) & 0xF) as u8),
        imm: (word & 0xFFFF) as u16,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_opcode() {
        for b in 0u8..=0xFF {
            if let Some(op) = Opcode::from_byte(b) {
                let inst = Instruction {
                    op,
                    rd: Reg(5),
                    rs1: Reg(9),
                    imm: 0x1234,
                };
                let word = encode(&inst);
                assert_eq!(decode(word), Some(inst), "op {op:?}");
            }
        }
    }

    #[test]
    fn invalid_opcodes_fail_to_decode() {
        assert_eq!(decode(0xFF00_0000), None);
        assert_eq!(decode(0x0000_0000), None); // 0x00 is not an opcode
    }

    #[test]
    fn rs2_lives_in_low_imm_bits() {
        let inst = Instruction {
            op: Opcode::Add,
            rd: Reg(1),
            rs1: Reg(2),
            imm: 0x3,
        };
        assert_eq!(inst.rs2(), Reg(3));
    }

    #[test]
    fn immediates_sign_extend() {
        let inst = Instruction {
            op: Opcode::Addi,
            rd: Reg(1),
            rs1: Reg(0),
            imm: 0xFFFF,
        };
        assert_eq!(inst.simm(), -1);
    }

    #[test]
    fn register_display() {
        assert_eq!(Reg(7).to_string(), "r7");
        assert_eq!(Reg::ZERO, Reg(0));
    }
}
