//! Differential test: the bank-aware fabric at `mem_banks = 1` must
//! reproduce the pre-bank (PR 3) channel fabric *bit-exactly*.
//!
//! Three layers, mirroring `hierarchy_vs_seed` one level down. The
//! fabric layer is a true old-vs-new differential (a line-for-line
//! port of the PR 3 fabric); the backend and machine layers prove the
//! new row-timing knobs are *inert* at `mem_banks = 1` across the
//! whole mode × policy × channel × MSHR grid — combined with the
//! fabric layer (the only component this PR's timing paths changed)
//! and the still-green `engine_vs_seed` / `hierarchy_vs_seed`
//! differentials one level up, that pins the flat machine to the PR 3
//! behaviour:
//!
//! * **fabric** — `SeedChannelSet` below is a line-for-line port of the
//!   multi-channel fabric as it was before the bank layer (flat
//!   occupancy, no addresses in the channel timing paths). It is
//!   driven against the new `ChannelSet` with identical pseudorandom
//!   op streams across every channel count; every returned cycle and
//!   every traffic counter must match, with the bank knobs at their
//!   defaults *and* at absurd values (both flat, so provably inert);
//! * **backend** — `SecureBackend`s differing only in the (inert at
//!   `mem_banks = 1`) row-timing knobs are driven with identical
//!   pseudorandom read/writeback traces across every security mode ×
//!   SNC policy × channel count × in-flight depth; every latency and
//!   every traffic/controller/SNC counter must match;
//! * **machine** — whole `Machine`s (core + hierarchy + engine) run
//!   the same workload across mode × channel × MSHR combinations; the
//!   measured cycles, instructions, and every counter must match.

use padlock_cache::WriteBuffer;
use padlock_core::{
    Machine, MachineConfig, SecureBackend, SecureBackendConfig, SecurityMode, SncConfig,
    SncOrganization, SncPolicy,
};
use padlock_cpu::{LineKind, MemoryBackend, StrideWorkload};
use padlock_mem::{BankConfig, ChannelSet, MemTimingModel, TrafficClass};
use padlock_stats::CounterSet;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::BTreeMap;

// ---- the PR 3 fabric, ported line for line ----

/// One write-buffered channel exactly as it was before the bank layer.
struct SeedChannel {
    mem: MemTimingModel,
    write_buffer: WriteBuffer,
}

impl SeedChannel {
    fn new(mem_latency: u64, occupancy: u64, write_buffer_entries: usize) -> Self {
        Self {
            mem: MemTimingModel::new(mem_latency, occupancy),
            write_buffer: WriteBuffer::new(write_buffer_entries),
        }
    }

    fn drain_ready(&mut self, now: u64) {
        while let Some(entry) = self.write_buffer.pop_ready(now) {
            self.mem
                .write(entry.ready_at, TrafficClass::LineWrite, entry.bytes);
        }
    }

    fn demand_read(&mut self, now: u64, class: TrafficClass, bytes: u32) -> u64 {
        let done = self.mem.read(now, class, bytes);
        self.drain_ready(now);
        done
    }

    fn demand_write(&mut self, now: u64, class: TrafficClass, bytes: u32) -> u64 {
        self.drain_ready(now);
        self.mem.write(now, class, bytes)
    }

    fn enqueue_write(&mut self, now: u64, ready_at: u64, addr: u64, class: TrafficClass, bytes: u32) {
        if self.write_buffer.is_full() {
            if let Some(head) = self.write_buffer.pop_ready(u64::MAX) {
                let start = head.ready_at.max(now);
                self.mem.write(start, TrafficClass::LineWrite, head.bytes);
            }
        }
        if class != TrafficClass::LineWrite {
            self.mem.write(now.max(ready_at), class, bytes);
        } else {
            let pushed = self.write_buffer.push(addr, ready_at, bytes);
            debug_assert!(pushed, "buffer cannot be full after force-drain");
        }
    }

    fn flush_writes(&mut self, now: u64) -> usize {
        let mut drained = 0;
        while let Some(entry) = self.write_buffer.pop_ready(u64::MAX) {
            let start = entry.ready_at.max(now);
            self.mem.write(start, TrafficClass::LineWrite, entry.bytes);
            drained += 1;
        }
        drained
    }
}

/// The line-interleaved fabric exactly as it was before the bank layer.
struct SeedChannelSet {
    channels: Vec<SeedChannel>,
    interleave_bytes: u64,
}

impl SeedChannelSet {
    fn new(
        channels: usize,
        mem_latency: u64,
        occupancy: u64,
        write_buffer_entries: usize,
        interleave_bytes: u64,
    ) -> Self {
        Self {
            channels: (0..channels)
                .map(|_| SeedChannel::new(mem_latency, occupancy, write_buffer_entries))
                .collect(),
            interleave_bytes,
        }
    }

    fn channel_of(&self, addr: u64) -> usize {
        ((addr / self.interleave_bytes) % self.channels.len() as u64) as usize
    }

    fn demand_read(&mut self, now: u64, addr: u64, class: TrafficClass, bytes: u32) -> u64 {
        let ch = self.channel_of(addr);
        self.channels[ch].demand_read(now, class, bytes)
    }

    fn demand_write(&mut self, now: u64, addr: u64, class: TrafficClass, bytes: u32) -> u64 {
        let ch = self.channel_of(addr);
        self.channels[ch].demand_write(now, class, bytes)
    }

    fn enqueue_write(&mut self, now: u64, ready_at: u64, addr: u64, class: TrafficClass, bytes: u32) {
        let ch = self.channel_of(addr);
        self.channels[ch].enqueue_write(now, ready_at, addr, class, bytes);
    }

    fn flush_writes(&mut self, now: u64) -> usize {
        self.channels.iter_mut().map(|ch| ch.flush_writes(now)).sum()
    }

    fn stats(&self) -> CounterSet {
        let mut all = CounterSet::new("mem");
        for ch in &self.channels {
            all.merge(&ch.mem.stats());
        }
        all
    }
}

fn counters(set: &CounterSet) -> BTreeMap<String, u64> {
    set.iter().map(|(k, v)| (k.to_string(), v)).collect()
}

// ---- layer 1: fabric differential ----

/// Drives the seed fabric and a new flat fabric with one pseudorandom
/// op stream; every returned cycle and every counter must match.
fn assert_fabric_equivalent(channels: usize, bank_config: BankConfig, seed: u64) {
    assert!(bank_config.is_flat(), "only flat configs collapse to the seed fabric");
    let mut old = SeedChannelSet::new(channels, 100, 8, 8, 128);
    let mut new = ChannelSet::new(channels, 100, 8, 8, 128).with_banks(bank_config);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = 0u64;
    for step in 0..3_000u32 {
        now += rng.next_u64() % 160;
        let addr = (rng.next_u64() % 4096) * 128;
        match rng.next_u64() % 10 {
            0..=4 => {
                let class = if rng.next_u64() % 4 == 0 {
                    TrafficClass::SeqRead
                } else {
                    TrafficClass::LineRead
                };
                assert_eq!(
                    new.demand_read(now, addr, class, 128),
                    old.demand_read(now, addr, class, 128),
                    "step {step}: read of {addr:#x} at {now} ({channels}ch)"
                );
            }
            5 | 6 => {
                let class = if rng.next_u64() % 4 == 0 {
                    TrafficClass::SeqWrite
                } else {
                    TrafficClass::LineWrite
                };
                assert_eq!(
                    new.demand_write(now, addr, class, 128),
                    old.demand_write(now, addr, class, 128),
                    "step {step}: write of {addr:#x} at {now} ({channels}ch)"
                );
            }
            7 | 8 => {
                let ready = now + rng.next_u64() % 300;
                new.enqueue_write(now, ready, addr, TrafficClass::LineWrite, 128);
                old.enqueue_write(now, ready, addr, TrafficClass::LineWrite, 128);
            }
            _ => {
                assert_eq!(
                    new.flush_writes(now),
                    old.flush_writes(now),
                    "step {step}: flush at {now} ({channels}ch)"
                );
            }
        }
    }
    now += 10_000;
    assert_eq!(new.flush_writes(now), old.flush_writes(now));
    assert_eq!(
        counters(&new.stats()),
        counters(&old.stats()),
        "fabric counters diverged ({channels}ch)"
    );
}

#[test]
fn flat_fabric_matches_seed_fabric_across_channel_counts() {
    for (i, channels) in [1usize, 2, 3, 4, 8].into_iter().enumerate() {
        assert_fabric_equivalent(channels, BankConfig::flat(), 211 + i as u64);
    }
}

#[test]
fn bank_knobs_are_inert_on_a_flat_fabric() {
    // Absurd row timings with banks = 1 must still be the seed fabric:
    // the knobs cannot leak into flat timing.
    let weird = BankConfig {
        banks: 1,
        row_hit_cycles: 1,
        row_conflict_cycles: 9_999,
        row_closed_cycles: 77,
        page_policy: padlock_mem::PagePolicy::Closed,
        row_bytes: 64,
    };
    for (i, channels) in [1usize, 2, 4].into_iter().enumerate() {
        assert_fabric_equivalent(channels, weird, 223 + i as u64);
    }
}

// ---- layer 2: backend grid ----

fn snc_cfg(policy: SncPolicy, entries: usize) -> SncConfig {
    SncConfig {
        capacity_bytes: entries * 2,
        entry_bytes: 2,
        organization: SncOrganization::FullyAssociative,
        policy,
        covered_line_bytes: 128,
    }
}

fn grid_modes() -> Vec<SecurityMode> {
    vec![
        SecurityMode::Insecure,
        SecurityMode::Xom,
        SecurityMode::Otp {
            snc: snc_cfg(SncPolicy::Lru, 64),
        },
        SecurityMode::Otp {
            snc: snc_cfg(SncPolicy::NoReplacement, 64),
        },
    ]
}

/// Two backends differing only in the (inert at `mem_banks = 1`)
/// row-timing knobs, driven with one pseudorandom trace: every latency
/// and counter must match.
fn assert_backend_equivalent(mode: SecurityMode, channels: usize, inflight: usize, seed: u64) {
    let base = SecureBackendConfig::paper(mode)
        .with_mem_channels(channels)
        .with_snc_shards(channels)
        .with_max_inflight(inflight);
    assert_eq!(base.mem_banks, 1, "the grid probes the flat configuration");
    let weird = base.clone().with_row_cycles(1, 9_999);

    let mut a = SecureBackend::new(base);
    let mut b = SecureBackend::new(weird);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = 0u64;
    let mut batch: Vec<(u64, u64, LineKind)> = Vec::new();
    for step in 0..1_500u32 {
        now += rng.next_u64() % 220;
        let addr = 0x8000 + (rng.next_u64() % 512) * 128;
        match rng.next_u64() % 10 {
            0..=4 => {
                let kind = if rng.next_u64() % 5 == 0 {
                    LineKind::Instruction
                } else {
                    LineKind::Data
                };
                batch.push((now, addr, kind));
                if batch.len() >= inflight || rng.next_u64() % 3 == 0 {
                    let da = a.line_read_batch_at(&batch);
                    let db = b.line_read_batch_at(&batch);
                    assert_eq!(da, db, "step {step}: batch diverged ({mode}, {channels}ch)");
                    batch.clear();
                }
            }
            _ => {
                a.line_writeback(now, addr);
                b.line_writeback(now, addr);
            }
        }
    }
    if !batch.is_empty() {
        assert_eq!(a.line_read_batch_at(&batch), b.line_read_batch_at(&batch));
    }
    now += 1_000;
    a.drain(now);
    b.drain(now);
    assert_eq!(
        counters(&a.traffic()),
        counters(&b.traffic()),
        "traffic diverged ({mode}, {channels}ch, mlp{inflight})"
    );
    assert_eq!(
        counters(&a.controller_stats()),
        counters(&b.controller_stats()),
        "controller diverged ({mode}, {channels}ch, mlp{inflight})"
    );
    if let Some(snc) = a.snc() {
        assert_eq!(
            counters(&snc.stats()),
            counters(&b.snc().expect("both engines run the same mode").stats()),
            "snc diverged ({mode}, {channels}ch, mlp{inflight})"
        );
    }
    // The flat fabric never classifies row outcomes.
    assert_eq!(a.traffic().get("row_hits"), 0);
    assert_eq!(a.traffic().get("row_conflicts"), 0);
}

#[test]
fn flat_backends_match_across_mode_policy_channel_inflight_grid() {
    let mut seed = 307u64;
    for mode in grid_modes() {
        for channels in [1usize, 2, 4] {
            for inflight in [1usize, 8] {
                seed += 1;
                assert_backend_equivalent(mode, channels, inflight, seed);
            }
        }
    }
}

// ---- layer 3: whole machines ----

/// Two machines differing only in the inert row knobs run the same
/// workload; cycles, instructions, and every counter must match.
fn assert_machine_equivalent(mode: SecurityMode, channels: usize, mshrs: usize) {
    let build = |weird_rows: bool| {
        let mut cfg = MachineConfig::paper(mode);
        cfg.hierarchy.l2_mshrs = mshrs;
        cfg.security = cfg
            .security
            .with_mem_channels(channels)
            .with_snc_shards(channels)
            .with_max_inflight(4 * mshrs);
        if weird_rows {
            cfg.security = cfg.security.with_row_cycles(1, 9_999);
        }
        assert_eq!(cfg.security.mem_banks, 1);
        Machine::new(cfg)
    };
    let mut a = build(false);
    let mut b = build(true);
    let ma = a.run(&mut StrideWorkload::new(8 << 20, 136, 0.35), 2_000, 8_000);
    let mb = b.run(&mut StrideWorkload::new(8 << 20, 136, 0.35), 2_000, 8_000);
    let tag = format!("{mode}, {channels}ch, {mshrs} mshrs");
    assert_eq!(ma.stats.cycles, mb.stats.cycles, "cycles diverged ({tag})");
    assert_eq!(ma.stats.instructions, mb.stats.instructions, "{tag}");
    assert_eq!(counters(&ma.traffic), counters(&mb.traffic), "{tag}");
    assert_eq!(counters(&ma.controller), counters(&mb.controller), "{tag}");
    assert_eq!(counters(&ma.snc), counters(&mb.snc), "{tag}");
    assert_eq!(counters(&ma.l2), counters(&mb.l2), "{tag}");
}

#[test]
fn flat_machines_match_across_mode_channel_mshr_grid() {
    for mode in grid_modes() {
        for (channels, mshrs) in [(1usize, 1usize), (1, 8), (4, 1), (4, 8)] {
            assert_machine_equivalent(mode, channels, mshrs);
        }
    }
}

#[test]
fn banked_machine_actually_diverges_from_flat() {
    // Sanity that the knob is live: the same machine with mem_banks > 1
    // must *not* be cycle-identical — otherwise the grid above proves
    // nothing.
    let mut cfg = MachineConfig::paper(SecurityMode::otp_lru_64k());
    cfg.security = cfg.security.with_mem_channels(2).with_snc_shards(2);
    let mut flat = Machine::new(cfg.clone());
    cfg.security = cfg.security.with_mem_banks(4);
    let mut banked = Machine::new(cfg);
    let mf = flat.run(&mut StrideWorkload::new(8 << 20, 136, 0.35), 2_000, 8_000);
    let mb = banked.run(&mut StrideWorkload::new(8 << 20, 136, 0.35), 2_000, 8_000);
    assert_ne!(mf.stats.cycles, mb.stats.cycles);
    assert_eq!(mf.traffic.get("row_hits") + mf.traffic.get("row_conflicts"), 0);
    assert!(mb.traffic.get("row_hits") + mb.traffic.get("row_conflicts") > 0);
}
