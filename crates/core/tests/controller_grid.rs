//! Controller-level invariants over randomised access sequences: for
//! any interleaving of reads and writebacks, the one-time-pad machine
//! never loses to XOM on a read, and the SNC's bookkeeping stays
//! consistent with a reference model.

use padlock_core::{
    SecureBackend, SecureBackendConfig, SecurityMode, SequenceNumberCache, SncConfig,
    SncLookup, SncOrganization, SncPolicy,
};
use padlock_cpu::{LineKind, MemoryBackend};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Read(u64),
    Write(u64),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (any::<bool>(), 0u64..64).prop_map(|(w, line)| {
            let addr = 0x8000 + line * 128;
            if w {
                Op::Write(addr)
            } else {
                Op::Read(addr)
            }
        }),
        1..200,
    )
}

fn backend(mode: SecurityMode) -> SecureBackend {
    let mut cfg = SecureBackendConfig::paper(mode);
    cfg.mem_occupancy = 0; // isolate per-access latency from queueing
    SecureBackend::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every access in every random interleaving, the OTP read is at
    /// least as fast as XOM's *unless* it took an LRU sequence fetch —
    /// and even then it is bounded by one extra memory+crypto round.
    #[test]
    fn otp_reads_are_bounded_against_xom(ops in ops_strategy()) {
        let mut xom = backend(SecurityMode::Xom);
        let mut otp = backend(SecurityMode::otp_lru_64k());
        let mut t = 0u64;
        for op in &ops {
            t += 500;
            match op {
                Op::Read(addr) => {
                    let x = xom.line_read(t, *addr, LineKind::Data) - t;
                    let o = otp.line_read(t, *addr, LineKind::Data) - t;
                    // Fast path: max(100,50)+1 = 101 <= 150. Seq-fetch
                    // path: 100+50+101 = 251 <= 150 + 150.
                    prop_assert!(o <= x + 150, "otp {o} vs xom {x}");
                }
                Op::Write(addr) => {
                    xom.line_writeback(t, *addr);
                    otp.line_writeback(t, *addr);
                }
            }
        }
    }

    /// With a 64KB SNC and a 64-line footprint nothing ever spills, and
    /// every read after the first writeback of a line is the fast path.
    #[test]
    fn small_footprints_never_leave_the_fast_path(ops in ops_strategy()) {
        let mut otp = backend(SecurityMode::otp_lru_64k());
        let mut written = std::collections::BTreeSet::new();
        let mut t = 0u64;
        for op in &ops {
            t += 500;
            match op {
                Op::Write(addr) => {
                    otp.line_writeback(t, *addr);
                    written.insert(*addr);
                }
                Op::Read(addr) => {
                    let lat = otp.line_read(t, *addr, LineKind::Data) - t;
                    prop_assert_eq!(lat, 101, "read of {:#x} (written: {})",
                        addr, written.contains(addr));
                }
            }
        }
        prop_assert_eq!(otp.traffic().get("seq_reads"), 0);
        prop_assert_eq!(otp.traffic().get("seq_writes"), 0);
    }

    /// The SNC agrees with a straightforward reference model (map +
    /// recency list) for any operation sequence, in both organisations.
    #[test]
    fn snc_matches_reference_model(
        ops in proptest::collection::vec((0u64..48, any::<bool>()), 1..300),
        fully in any::<bool>(),
    ) {
        let organization = if fully {
            SncOrganization::FullyAssociative
        } else {
            SncOrganization::SetAssociative(2)
        };
        let capacity = 16usize; // entries
        let mut snc = SequenceNumberCache::new(SncConfig {
            capacity_bytes: capacity * 2,
            entry_bytes: 2,
            organization,
            policy: SncPolicy::Lru,
            covered_line_bytes: 128,
        });
        // Reference: map line -> seq; recency only checked for the fully
        // associative case (set-assoc recency is per-set).
        let mut model: BTreeMap<u64, u16> = BTreeMap::new();
        let mut recency: Vec<u64> = Vec::new();
        for (line, is_update) in ops {
            let addr = line * 128;
            if is_update {
                match snc.increment(addr) {
                    Some(seq) => {
                        prop_assert!(model.contains_key(&addr));
                        let m = model.get_mut(&addr).unwrap();
                        *m += 1;
                        prop_assert_eq!(seq, *m);
                        if fully {
                            recency.retain(|&a| a != addr);
                            recency.push(addr);
                        }
                    }
                    None => {
                        prop_assert!(!model.contains_key(&addr));
                        let evicted = snc.install(addr, 1);
                        model.insert(addr, 1);
                        if fully {
                            if model.len() > capacity {
                                let lru = recency.remove(0);
                                prop_assert_eq!(evicted.map(|e| e.line_addr), Some(lru));
                                model.remove(&lru);
                            } else {
                                prop_assert!(evicted.is_none());
                            }
                            recency.push(addr);
                        } else if let Some(e) = evicted {
                            model.remove(&e.line_addr);
                        }
                    }
                }
            } else {
                let got = snc.query(addr);
                match got {
                    SncLookup::Hit(seq) => {
                        prop_assert_eq!(model.get(&addr).copied(), Some(seq));
                        if fully {
                            recency.retain(|&a| a != addr);
                            recency.push(addr);
                        }
                    }
                    SncLookup::Miss => {
                        prop_assert!(!model.contains_key(&addr));
                    }
                }
            }
            prop_assert_eq!(snc.occupancy(), model.len());
        }
    }

    /// Instruction reads never touch the SNC regardless of history.
    #[test]
    fn instruction_reads_never_query_the_snc(ops in ops_strategy()) {
        let mut otp = backend(SecurityMode::otp_lru_64k());
        let mut t = 0;
        for op in &ops {
            t += 500;
            match op {
                Op::Write(addr) => otp.line_writeback(t, *addr),
                Op::Read(addr) => {
                    let lat = otp.line_read(t, *addr, LineKind::Instruction) - t;
                    prop_assert_eq!(lat, 101);
                }
            }
        }
        let snc = otp.snc().expect("otp has an SNC");
        prop_assert_eq!(snc.stats().get("query_hits") + snc.stats().get("query_misses"), 0);
    }
}
