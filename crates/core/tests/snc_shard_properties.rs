//! Sharding properties of the Sequence Number Cache.
//!
//! The load-bearing claim: under a **per-shard-balanced** address
//! stream (every logical operation replicated once per shard, round
//! robin), an `N`-sharded fully associative LRU SNC is
//! hit/miss-equivalent to a single fully associative LRU SNC of the
//! same total capacity. The argument is the symmetry of recency: the
//! interleaved stream keeps every shard's sub-stream identical modulo
//! the address offset, so the single cache's most-recent `capacity`
//! distinct lines are exactly the union of each shard's most-recent
//! `capacity / N` — and hits depend only on contents. The tests below
//! check it op-by-op for random streams and any shard count, plus the
//! per-shard LRU-vs-no-replacement behaviours.

use padlock_core::{SequenceNumberCache, SncConfig, SncOrganization, SncPolicy, SncShards};
use proptest::prelude::*;

/// One logical operation on a per-shard line id; the harness replays it
/// once per shard at the interleaved addresses.
#[derive(Debug, Clone, Copy)]
enum Op {
    Query(u64),
    Increment(u64),
    Install(u64),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u64..24, 0u32..3).prop_map(|(line, kind)| match kind {
            0 => Op::Query(line),
            1 => Op::Increment(line),
            _ => Op::Install(line),
        }),
        1..250,
    )
}

fn cfg(entries: usize, policy: SncPolicy) -> SncConfig {
    SncConfig {
        capacity_bytes: entries * 2,
        entry_bytes: 2,
        organization: SncOrganization::FullyAssociative,
        policy,
        covered_line_bytes: 128,
    }
}

/// The address of logical `line` as seen by shard `s` of `n`: line
/// indices interleave so consecutive covered lines rotate shards.
fn addr(line: u64, s: u64, n: u64) -> u64 {
    (line * n + s) * 128
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Hit/miss equivalence of sharded vs monolithic for any shard
    /// count dividing the capacity, under a balanced stream.
    #[test]
    fn balanced_stream_sharded_equals_monolithic(
        ops in ops_strategy(),
        shards in prop::sample::select(vec![2usize, 3, 4, 6]),
    ) {
        let per_shard_entries = 8usize;
        let total = per_shard_entries * shards;
        let mut sharded = SncShards::new(cfg(total, SncPolicy::Lru), shards);
        let mut single = SequenceNumberCache::new(cfg(total, SncPolicy::Lru));
        let n = shards as u64;
        for op in &ops {
            for s in 0..n {
                match *op {
                    Op::Query(line) => {
                        let a = addr(line, s, n);
                        prop_assert_eq!(sharded.query(a), single.query(a),
                            "query {:#x} ({} shards)", a, shards);
                    }
                    Op::Increment(line) => {
                        let a = addr(line, s, n);
                        prop_assert_eq!(sharded.increment(a), single.increment(a),
                            "increment {:#x} ({} shards)", a, shards);
                    }
                    Op::Install(line) => {
                        let a = addr(line, s, n);
                        // Victim identities may differ (global LRU can
                        // evict from a different shard's slice) but an
                        // eviction happens in both or neither.
                        let sv = sharded.install(a, (line % 9) as u16 + 1);
                        let mv = single.install(a, (line % 9) as u16 + 1);
                        prop_assert_eq!(sv.is_some(), mv.is_some(),
                            "install {:#x} ({} shards)", a, shards);
                    }
                }
            }
            prop_assert_eq!(sharded.occupancy(), single.occupancy());
        }
        let sh = sharded.stats();
        let mo = single.stats();
        for key in ["query_hits", "query_misses", "update_hits",
                    "update_misses", "installs", "spills"] {
            prop_assert_eq!(sh.get(key), mo.get(key), "counter {}", key);
        }
    }

    /// LRU evictions never cross a shard boundary: the victim always
    /// belongs to the shard being installed into.
    #[test]
    fn lru_victims_stay_in_the_installing_shard(
        lines in proptest::collection::vec(0u64..64, 1..200),
        shards in prop::sample::select(vec![2usize, 4, 8]),
    ) {
        let mut snc = SncShards::new(cfg(2 * shards, SncPolicy::Lru), shards);
        for line in lines {
            let a = line * 128;
            let installing_shard = snc.shard_of(a);
            if let Some(victim) = snc.install(a, 1) {
                prop_assert_eq!(snc.shard_of(victim.line_addr), installing_shard);
            }
        }
    }

    /// Under no-replacement, rejection is a per-shard decision: a full
    /// shard rejects while its siblings keep accepting, and nothing is
    /// ever evicted.
    #[test]
    fn no_replacement_fills_and_rejects_per_shard(
        lines in proptest::collection::vec(0u64..96, 1..250),
        shards in prop::sample::select(vec![2usize, 3, 4]),
    ) {
        let per_shard = 4usize;
        let mut snc = SncShards::new(cfg(per_shard * shards, SncPolicy::NoReplacement), shards);
        let mut resident: Vec<std::collections::BTreeSet<u64>> =
            vec![Default::default(); shards];
        for line in lines {
            let a = line * 128;
            let s = snc.shard_of(a);
            let expect = resident[s].contains(&a) || resident[s].len() < per_shard;
            let accepted = if resident[s].contains(&a) {
                // Already resident: an install path would be an update
                // hit; model it via increment instead.
                snc.increment(a).is_some()
            } else {
                snc.try_install(a, 1)
            };
            prop_assert_eq!(accepted, expect, "line {:#x} shard {}", a, s);
            if accepted {
                resident[s].insert(a);
            }
            prop_assert_eq!(
                snc.shards()[s].occupancy(),
                resident[s].len().min(per_shard)
            );
        }
        prop_assert_eq!(snc.stats().get("spills"), 0);
    }
}

/// A shard count of one is the degenerate case and must equal the
/// plain SNC exactly, including victim identities.
#[test]
fn one_shard_is_the_monolithic_snc() {
    let mut sharded = SncShards::new(cfg(8, SncPolicy::Lru), 1);
    let mut single = SequenceNumberCache::new(cfg(8, SncPolicy::Lru));
    for line in [0u64, 5, 2, 0, 9, 14, 2, 5, 21, 3, 9, 0, 30, 31, 1] {
        let a = line * 128;
        assert_eq!(sharded.query(a), single.query(a));
        assert_eq!(sharded.install(a, line as u16 + 1), single.install(a, line as u16 + 1));
        assert_eq!(sharded.increment(a), single.increment(a));
    }
    assert_eq!(sharded.occupancy(), single.occupancy());
    assert_eq!(sharded.flush().len(), single.flush().len());
}
