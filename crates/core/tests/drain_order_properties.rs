//! Order-invariance properties of the FR-FCFS drain scheduler.
//!
//! The load-bearing claim: `RowFirst` reorders only *when* a window's
//! phase-one memory accesses touch the fabric, never *what* the window
//! does — it drains a permutation of the same window. So against any
//! public-API trace, a `RowFirst` controller and a `Fifo` controller
//! must agree on every count that describes work rather than timing:
//!
//! * per-class traffic counters (transactions and bytes), in aggregate
//!   **and per channel** — the interleave routes by address, which the
//!   reorder does not change;
//! * the row-outcome *total* (`row_hits + row_conflicts`) — every
//!   banked access is still classified exactly once; only the hit /
//!   conflict split may shift (and that shift is the whole point);
//! * merge counts and every other controller event counter, and every
//!   SNC counter — classification, probes, and installs run in arrival
//!   order under both policies;
//! * the *number* of retired reads, each completing no earlier than it
//!   arrived.
//!
//! A second property pins the closed-page policy: under
//! `PagePolicy::Closed` no access is ever a row hit, and every banked
//! access still reports exactly one row outcome.

use padlock_core::{SecureBackend, SecureBackendConfig, SecurityMode, SncConfig, SncPolicy};
use padlock_cpu::{LineKind, MemoryBackend};
use padlock_mem::{DrainOrder, PagePolicy};
use padlock_stats::CounterSet;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One public-API step: a batched read or an immediate writeback.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u64, bool), // (line index, instruction?)
    Write(u64),
    Flush, // drain the pending batch early
}

fn ops_strategy() -> impl Strategy<Value = Vec<(Op, u64)>> {
    proptest::collection::vec(
        (0u64..400, 0u32..8, 1u64..200).prop_map(|(line, kind, gap)| {
            let op = match kind {
                0..=4 => Op::Read(line, kind == 0),
                5 | 6 => Op::Write(line),
                _ => Op::Flush,
            };
            (op, gap)
        }),
        1..250,
    )
}

fn counters(set: &CounterSet) -> BTreeMap<String, u64> {
    set.iter().map(|(k, v)| (k.to_string(), v)).collect()
}

fn build(
    mode: SecurityMode,
    channels: usize,
    banks: usize,
    inflight: usize,
    order: DrainOrder,
    page: PagePolicy,
) -> SecureBackend {
    let cfg = SecureBackendConfig::paper(mode)
        .with_mem_channels(channels)
        .with_snc_shards(channels)
        .with_mem_banks(banks)
        .with_max_inflight(inflight)
        .with_drain_order(order)
        .with_page_policy(page);
    let mut backend = SecureBackend::new(cfg);
    backend.pre_age((0..96u64).map(|i| 0x8000 + i * 128), std::iter::empty());
    backend
}

/// Replays one op trace; returns the number of retired reads after
/// checking each completion against its arrival.
fn replay(backend: &mut SecureBackend, ops: &[(Op, u64)], inflight: usize) -> usize {
    let mut now = 0u64;
    let mut batch: Vec<(u64, u64, LineKind)> = Vec::new();
    let mut retired = 0usize;
    let drain_batch =
        |backend: &mut SecureBackend, batch: &mut Vec<(u64, u64, LineKind)>| {
            let dones = backend.line_read_batch_at(batch);
            // One completion per request. (A merged read may "complete"
            // before its own arrival — it shares an earlier fill whose
            // data was already on chip; that is seed semantics.)
            assert_eq!(dones.len(), batch.len());
            let n = batch.len();
            batch.clear();
            n
        };
    for &(op, gap) in ops {
        now += gap;
        match op {
            Op::Read(line, inst) => {
                let kind = if inst {
                    LineKind::Instruction
                } else {
                    LineKind::Data
                };
                batch.push((now, 0x8000 + line * 128, kind));
                if batch.len() >= inflight {
                    retired += drain_batch(backend, &mut batch);
                }
            }
            Op::Write(line) => backend.line_writeback(now, 0x8000 + line * 128),
            Op::Flush => retired += drain_batch(backend, &mut batch),
        }
    }
    retired += drain_batch(backend, &mut batch);
    backend.drain(now + 10_000);
    retired
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `RowFirst` drains a permutation of the FIFO window: every count
    /// that describes *work* is exact, only timing may differ.
    #[test]
    fn row_first_is_a_counter_exact_permutation_of_fifo(
        ops in ops_strategy(),
        channels in prop::sample::select(vec![1usize, 2, 4]),
        banks in prop::sample::select(vec![1usize, 2, 8]),
        inflight in prop::sample::select(vec![4usize, 8, 16]),
        lru in prop::sample::select(vec![true, false]),
    ) {
        let mode = SecurityMode::Otp {
            snc: SncConfig::paper_default()
                .with_capacity(128)
                .with_policy(if lru { SncPolicy::Lru } else { SncPolicy::NoReplacement }),
        };
        let mut fifo = build(mode, channels, banks, inflight, DrainOrder::Fifo, PagePolicy::Open);
        let mut rowf = build(mode, channels, banks, inflight, DrainOrder::RowFirst, PagePolicy::Open);
        let retired_fifo = replay(&mut fifo, &ops, inflight);
        let retired_rowf = replay(&mut rowf, &ops, inflight);
        prop_assert_eq!(retired_fifo, retired_rowf, "read multiset changed size");

        // Aggregate traffic: identical per class, in counts and bytes.
        let tf = counters(&fifo.traffic());
        let tr = counters(&rowf.traffic());
        for key in tf.keys() {
            if key == "row_hits" || key == "row_conflicts" {
                continue; // the split is the one thing allowed to move
            }
            prop_assert_eq!(tf[key], tr[key], "traffic {} diverged", key);
        }
        // The row-outcome total is conserved even as the split shifts.
        prop_assert_eq!(
            tf.get("row_hits").unwrap_or(&0) + tf.get("row_conflicts").unwrap_or(&0),
            tr.get("row_hits").unwrap_or(&0) + tr.get("row_conflicts").unwrap_or(&0),
            "row-outcome total changed"
        );
        // Per-channel byte counters: the reorder never re-routes.
        for (ch, (a, b)) in fifo
            .channels()
            .channels()
            .iter()
            .zip(rowf.channels().channels().iter())
            .enumerate()
        {
            let ca = counters(&a.mem().stats());
            let cb = counters(&b.mem().stats());
            for key in ca.keys() {
                if key == "row_hits" || key == "row_conflicts" {
                    continue;
                }
                prop_assert_eq!(ca[key], cb[key], "channel {} {} diverged", ch, key);
            }
        }

        // Controller events (incl. mshr_merged_reads) and SNC counters:
        // classification runs in arrival order under both.
        prop_assert_eq!(
            counters(&fifo.controller_stats()),
            counters(&rowf.controller_stats()),
            "controller counters diverged"
        );
        prop_assert_eq!(
            counters(&fifo.snc().unwrap().stats()),
            counters(&rowf.snc().unwrap().stats()),
            "snc counters diverged"
        );
    }

    /// Closed-page banks never report a row hit, and still classify
    /// every access as exactly one row outcome.
    #[test]
    fn closed_page_never_reports_a_row_hit(
        ops in ops_strategy(),
        channels in prop::sample::select(vec![1usize, 2]),
        banks in prop::sample::select(vec![2usize, 4, 8]),
        order in prop::sample::select(vec![DrainOrder::Fifo, DrainOrder::RowFirst]),
    ) {
        let mode = SecurityMode::Otp {
            snc: SncConfig::paper_default().with_capacity(128),
        };
        let mut b = build(mode, channels, banks, 8, order, PagePolicy::Closed);
        replay(&mut b, &ops, 8);
        let t = counters(&b.traffic());
        prop_assert_eq!(*t.get("row_hits").unwrap_or(&0), 0, "closed-page row hit");
        prop_assert_eq!(
            *t.get("row_conflicts").unwrap_or(&0),
            t["transactions"],
            "not every access classified"
        );
    }
}
