//! Partition properties of the secure server's per-compartment
//! accounting.
//!
//! The load-bearing claim: the per-compartment fairness counters are
//! *splits* of the shared fabric's aggregates, not parallel estimates —
//! summing any counter over all compartments reproduces the shared
//! total exactly. The attribution is delta-snapshot based (the server
//! samples [`padlock_mem::TrafficTotals`] at every ownership change),
//! so the partition must hold for every traffic class — demand lines,
//! sequence-number reads and writes, bytes, row hits and conflicts —
//! under any mix of core counts, fabric widths, bank counts, and
//! context-switch quanta. This mirrors `channel_properties`, which pins
//! the same conservation one layer down (per-channel vs fabric).

use padlock_core::{SecureServer, SecurityMode, ServerConfig, SncConfig};
use padlock_cpu::{OffsetWorkload, StrideWorkload};
use padlock_mem::{TrafficClass, TrafficTotals};
use proptest::prelude::*;

fn mode_strategy() -> impl Strategy<Value = SecurityMode> {
    prop::sample::select(vec![
        SecurityMode::Insecure,
        SecurityMode::Xom,
        SecurityMode::Otp {
            snc: SncConfig::paper_default().with_capacity(256),
        },
        SecurityMode::otp_lru_64k(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sum over compartments of every per-compartment traffic counter
    /// equals the shared fabric's aggregate, bit for bit.
    #[test]
    fn compartment_splits_partition_the_aggregate(
        mode in mode_strategy(),
        cores in 1usize..4,
        channels in prop::sample::select(vec![1usize, 2]),
        banks in prop::sample::select(vec![1usize, 4]),
        switch in prop::sample::select(vec![None, Some(5_000u64), Some(20_000u64)]),
        mem_frac in prop::sample::select(vec![0.2f64, 0.5, 0.8]),
    ) {
        let machine = padlock_core::MachineConfig {
            pipeline: padlock_cpu::PipelineConfig::paper_default(),
            hierarchy: padlock_cpu::HierarchyConfig::paper_default(),
            security: padlock_core::SecureBackendConfig::paper(mode)
                .with_mem_channels(channels)
                .with_snc_shards(channels)
                .with_mem_banks(banks),
        };
        let mut config = ServerConfig::from_machine(machine, cores);
        if let Some(interval) = switch {
            config = config.with_switch_interval(interval);
        }
        let mut server = SecureServer::new(config);
        let mut loads: Vec<_> = (0..cores)
            .map(|c| OffsetWorkload::new(
                StrideWorkload::new(8 << 20, 128, mem_frac),
                padlock_core::server::compartment_base(c),
            ))
            .collect();
        let meas = server.run(&mut loads, 1_000, 5_000);

        let sum = meas
            .compartments
            .iter()
            .fold(TrafficTotals::default(), |acc, r| acc.plus(r.traffic));
        prop_assert_eq!(sum, meas.totals, "per-compartment splits must reassemble");

        // Spot-check the classes against the aggregate CounterSet the
        // backend reports through `MemoryBackend::traffic`, so the
        // split, the totals, and the counter names all agree.
        for class in [
            TrafficClass::LineRead,
            TrafficClass::LineWrite,
            TrafficClass::SeqRead,
            TrafficClass::SeqWrite,
        ] {
            let split: u64 = meas.compartments.iter().map(|r| r.traffic.count(class)).sum();
            prop_assert_eq!(split, meas.traffic.get(class.counter()),
                "class {:?}", class);
        }
        let split_hits: u64 = meas.compartments.iter().map(|r| r.traffic.row_hits).sum();
        let split_conf: u64 = meas.compartments.iter().map(|r| r.traffic.row_conflicts).sum();
        prop_assert_eq!(split_hits, meas.traffic.get("row_hits"));
        prop_assert_eq!(split_conf, meas.traffic.get("row_conflicts"));

        // Every compartment committed its window.
        for report in &meas.compartments {
            prop_assert_eq!(report.stats.instructions, 5_000);
        }

        // SNC cross-eviction charges only exist where an SNC does.
        if !meas.label.contains("SNC") {
            for report in &meas.compartments {
                prop_assert_eq!(report.snc_evictions_by_others, 0);
            }
        }
    }
}
