//! Differential test: the MSHR-file hierarchy at `l2_mshrs = 1` over a
//! one-channel fabric must reproduce the pre-refactor *blocking*
//! hierarchy cycle-for-cycle.
//!
//! `SeedHierarchy` below is a line-for-line port of the hierarchy as it
//! was before the non-blocking rewrite: every L2 miss calls
//! `MemoryBackend::line_read` synchronously. Both hierarchies sit on
//! top of identical `SecureBackend`s (paper defaults: `max_inflight =
//! 1`, `snc_shards = 1`, `mem_channels = 1`) and are driven with the
//! same pseudorandom streams of loads, stores, and instruction fetches
//! in every security mode; every returned latency plus every cache,
//! traffic, controller, and SNC counter must match, mirroring the
//! engine-level `engine_vs_seed` differential one layer up.

use padlock_cache::{AccessKind, SetAssocCache};
use padlock_core::{SecureBackend, SecureBackendConfig, SecurityMode, SncConfig, SncOrganization, SncPolicy};
use padlock_cpu::{Hierarchy, HierarchyConfig, LineKind, MemoryBackend};
use padlock_stats::CounterSet;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::BTreeMap;

/// The blocking hierarchy exactly as it was before the MSHR rewrite.
struct SeedHierarchy<B> {
    config: HierarchyConfig,
    l1i: SetAssocCache<()>,
    l1d: SetAssocCache<()>,
    l2: SetAssocCache<()>,
    backend: B,
}

impl<B: MemoryBackend> SeedHierarchy<B> {
    fn new(config: HierarchyConfig, backend: B) -> Self {
        let l1i = SetAssocCache::new(config.l1i.clone());
        let l1d = SetAssocCache::new(config.l1d.clone());
        let l2 = SetAssocCache::new(config.l2.clone());
        Self {
            config,
            l1i,
            l1d,
            l2,
            backend,
        }
    }

    fn inst_fetch(&mut self, now: u64, pc: u64) -> u64 {
        let t = now + self.config.l1_latency;
        let outcome = self.l1i.access(pc, AccessKind::Read);
        if outcome.hit {
            return t;
        }
        self.fill_from_l2(t, pc, LineKind::Instruction)
    }

    fn data_access(&mut self, now: u64, addr: u64, is_store: bool) -> u64 {
        let kind = if is_store {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let t = now + self.config.l1_latency;
        let outcome = self.l1d.access(addr, kind);
        if let Some(victim) = &outcome.victim {
            if victim.dirty {
                self.l2_absorb_writeback(t, victim.addr);
            }
        }
        if outcome.hit {
            return t;
        }
        self.fill_from_l2(t, addr, LineKind::Data)
    }

    fn fill_from_l2(&mut self, t: u64, addr: u64, kind: LineKind) -> u64 {
        let t2 = t + self.config.l2_latency;
        let outcome = self.l2.access(addr, AccessKind::Read);
        if let Some(victim) = &outcome.victim {
            if victim.dirty {
                self.backend.line_writeback(t2, victim.addr);
            }
        }
        if outcome.hit {
            return t2;
        }
        self.backend
            .line_read(t2, self.config.l2.line_addr(addr), kind)
    }

    fn l2_absorb_writeback(&mut self, now: u64, victim_addr: u64) {
        if let Some(l2_victim) = self.l2.insert(victim_addr, (), true) {
            if l2_victim.dirty {
                self.backend.line_writeback(now, l2_victim.addr);
            }
        }
    }
}

fn counters(set: CounterSet) -> BTreeMap<String, u64> {
    set.iter().map(|(k, v)| (k.to_string(), v)).collect()
}

fn snc_cfg(policy: SncPolicy, entries: usize) -> SncConfig {
    SncConfig {
        capacity_bytes: entries * 2,
        entry_bytes: 2,
        organization: SncOrganization::FullyAssociative,
        policy,
        covered_line_bytes: 128,
    }
}

/// Drives the MSHR hierarchy (paper defaults) and the seed blocking
/// hierarchy with one pseudorandom trace; every latency and counter
/// must agree.
fn assert_equivalent(mode: SecurityMode, occupancy: u64, slow_crypto: bool, seed: u64) {
    let mut cfg = SecureBackendConfig::paper(mode);
    cfg.mem_occupancy = occupancy;
    if slow_crypto {
        cfg = cfg.with_slow_crypto();
    }
    assert_eq!(cfg.max_inflight, 1, "paper defaults model the seed machine");
    assert_eq!(cfg.mem_channels, 1);
    let hier_cfg = HierarchyConfig::paper_default();
    assert_eq!(hier_cfg.l2_mshrs, 1, "paper default is the blocking hierarchy");

    let mut new = Hierarchy::new(hier_cfg.clone(), SecureBackend::new(cfg.clone()));
    let mut old = SeedHierarchy::new(hier_cfg, SecureBackend::new(cfg));

    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = 0u64;
    for step in 0..4_000u32 {
        now += rng.next_u64() % 220;
        match rng.next_u64() % 10 {
            // Instruction fetches over a 64KB code footprint (misses
            // both the 32KB L1I and, early on, the L2).
            0..=2 => {
                let pc = 0x1_0000 + (rng.next_u64() % 16_384) * 4;
                let a = new.inst_fetch(now, pc);
                let b = old.inst_fetch(now, pc);
                assert_eq!(a, b, "step {step}: inst fetch {pc:#x} at {now}");
            }
            // Data traffic over a 512KB footprint (beyond the 256KB
            // L2) so lines evict, dirty victims write back, and every
            // SNC path triggers.
            kind => {
                let addr = 0x10_0000 + (rng.next_u64() % 4_096) * 128 + (rng.next_u64() % 16) * 8;
                let is_store = kind >= 7;
                let a = new.data_access(now, addr, is_store);
                let b = old.data_access(now, addr, is_store);
                assert_eq!(
                    a, b,
                    "step {step}: {} of {addr:#x} at {now}",
                    if is_store { "store" } else { "load" }
                );
            }
        }
    }

    // Measurement wrap-up on both backends, then compare every counter.
    now += 1_000;
    new.backend_mut().drain(now);
    old.backend.drain(now);

    assert_eq!(counters(new.l1i_stats()), counters(old.l1i.stats()), "L1I");
    assert_eq!(counters(new.l1d_stats()), counters(old.l1d.stats()), "L1D");
    assert_eq!(counters(new.l2_stats()), counters(old.l2.stats()), "L2");
    assert_eq!(
        counters(new.backend().traffic()),
        counters(old.backend.traffic()),
        "traffic counters diverged"
    );
    assert_eq!(
        counters(new.backend().controller_stats().clone()),
        counters(old.backend.controller_stats().clone()),
        "controller counters diverged"
    );
    if let Some(snc) = new.backend().snc() {
        let old_snc = old.backend.snc().expect("same mode");
        assert_eq!(
            counters(snc.stats()),
            counters(old_snc.stats()),
            "snc counters diverged"
        );
        assert_eq!(snc.occupancy(), old_snc.occupancy());
    }
    // The blocking configuration never leaves a miss in flight.
    assert_eq!(new.pending_misses(), 0);
    assert_eq!(new.mshr_stats().get("merges"), 0, "one MSHR cannot merge");
}

#[test]
fn insecure_hierarchy_matches_seed_model() {
    for occ in [0, 8] {
        assert_equivalent(SecurityMode::Insecure, occ, false, 101 + occ);
    }
}

#[test]
fn xom_hierarchy_matches_seed_model() {
    for occ in [0, 8] {
        for slow in [false, true] {
            assert_equivalent(SecurityMode::Xom, occ, slow, 113 + occ + slow as u64);
        }
    }
}

#[test]
fn otp_lru_hierarchy_matches_seed_model_under_pressure() {
    // A 64-entry SNC against a 4096-line footprint: constant evictions,
    // sequence fetches, update misses, and packed spills.
    for occ in [0, 8] {
        for slow in [false, true] {
            let mode = SecurityMode::Otp {
                snc: snc_cfg(SncPolicy::Lru, 64),
            };
            assert_equivalent(mode, occ, slow, 127 + occ * 2 + slow as u64);
        }
    }
}

#[test]
fn otp_norepl_hierarchy_matches_seed_model() {
    for occ in [0, 8] {
        let mode = SecurityMode::Otp {
            snc: snc_cfg(SncPolicy::NoReplacement, 64),
        };
        assert_equivalent(mode, occ, false, 139 + occ);
    }
}

#[test]
fn paper_default_hierarchy_matches_seed_model() {
    assert_equivalent(SecurityMode::otp_lru_64k(), 8, false, 149);
    assert_equivalent(SecurityMode::otp_norepl_64k(), 8, true, 151);
}
