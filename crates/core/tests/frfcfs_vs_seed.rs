//! Differential test: the scheduling knobs this PR adds — `drain_order`
//! and `page_policy` — must be *inert at their defaults*: a controller
//! at `drain_order = Fifo`, `page_policy = Open` must reproduce the
//! PR 4 drain scheduler **bit-exactly**, across the whole
//! mode × channels × banks × inflight grid.
//!
//! Three layers, mirroring `banks_vs_seed` one knob later:
//!
//! * **bank** — `SeedBankSet` below is a line-for-line port of the PR 4
//!   bank set (open-row registers with no page-policy machinery). It is
//!   driven against the new [`padlock_mem::BankSet`] under the open
//!   page policy with identical pseudorandom access streams; every
//!   grant (start, done, hit, bank) must match, with the closed-page
//!   latency knob at its default *and* at absurd values (inert under
//!   `Open`);
//! * **engine** — `SeedEngine` below is a line-for-line port of the
//!   PR 4 drain scheduler (classify in arrival order, issue phase-one
//!   accesses inline, no writeback forwarding). Both engines are driven
//!   with identical pseudorandom read-batch/writeback traces across
//!   every security mode × SNC policy × channel count × bank count ×
//!   in-flight depth; every latency and every traffic / controller /
//!   SNC counter must match. (The public entry points drain a posted
//!   writeback before any read can queue behind it, so the new
//!   writeback-forwarding path never fires on seed-reachable traces —
//!   its semantics are pinned separately by the controller's unit
//!   tests.)
//! * **machine** — whole `Machine`s prove the knobs collapse on a flat
//!   fabric: `RowFirst` has no rows to group and `Closed` has no banks
//!   to precharge at `mem_banks = 1`, so machines differing only in
//!   those knobs must be cycle- and counter-identical — while a banked
//!   machine with `Closed` (and a banked engine window under
//!   `RowFirst`) must actually diverge, or the grid proves nothing.

use padlock_core::engine::{CryptoTimeline, MemTxn, SncPorts, TxnOp};
use padlock_core::{
    Machine, MachineConfig, SecureBackend, SecureBackendConfig, SecurityMode, SncConfig,
    SncLookup, SncOrganization, SncPolicy, SncShards,
};
use padlock_cpu::{LineKind, MemoryBackend, StrideWorkload};
use padlock_mem::{
    BankConfig, BankSet, ChannelSet, DrainOrder, PagePolicy, TrafficClass, ROW_LINES,
};
use padlock_stats::CounterSet;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

fn counters(set: &CounterSet) -> BTreeMap<String, u64> {
    set.iter().map(|(k, v)| (k.to_string(), v)).collect()
}

// ---- layer 1: the PR 4 bank set, ported line for line ----

#[derive(Clone, Copy)]
struct SeedBank {
    open_row: Option<u64>,
    busy_until: u64,
}

struct SeedBankSet {
    row_hit_cycles: u64,
    row_conflict_cycles: u64,
    row_bytes: u64,
    banks: Vec<SeedBank>,
}

impl SeedBankSet {
    fn new(banks: usize, row_hit_cycles: u64, row_conflict_cycles: u64, row_bytes: u64) -> Self {
        Self {
            row_hit_cycles,
            row_conflict_cycles,
            row_bytes,
            banks: vec![
                SeedBank {
                    open_row: None,
                    busy_until: 0,
                };
                banks
            ],
        }
    }

    fn access(&mut self, ready: u64, addr: u64) -> (u64, u64, bool, usize) {
        let row = addr / self.row_bytes;
        let index = (row % self.banks.len() as u64) as usize;
        let bank = &mut self.banks[index];
        let start = ready.max(bank.busy_until);
        let hit = bank.open_row == Some(row);
        let latency = if hit {
            self.row_hit_cycles
        } else {
            self.row_conflict_cycles
        };
        bank.busy_until = start + latency;
        bank.open_row = Some(row);
        (start, start + latency, hit, index)
    }
}

fn assert_bankset_equivalent(banks: usize, closed_cycles: u64, seed: u64) {
    let config = BankConfig::banked(banks, 128)
        .with_page_policy(PagePolicy::Open)
        .with_closed_cycles(closed_cycles);
    let mut new = BankSet::new(config);
    let mut old = SeedBankSet::new(
        banks,
        config.row_hit_cycles,
        config.row_conflict_cycles,
        config.row_bytes,
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = 0u64;
    for step in 0..5_000u32 {
        now += rng.next_u64() % 200;
        let addr = (rng.next_u64() % 2048) * 128;
        let grant = new.access(now, addr);
        let (start, done, hit, bank) = old.access(now, addr);
        assert_eq!(
            (grant.start, grant.done, grant.hit, grant.bank),
            (start, done, hit, bank),
            "step {step}: {addr:#x} at {now} ({banks} banks)"
        );
    }
}

#[test]
fn open_page_bankset_matches_the_seed_bankset() {
    for (i, banks) in [1usize, 2, 4, 8].into_iter().enumerate() {
        assert_bankset_equivalent(banks, padlock_mem::DEFAULT_ROW_CLOSED_CYCLES, 401 + i as u64);
    }
}

#[test]
fn closed_latency_knob_is_inert_under_open_page_rows() {
    // Any closed-page latency inside the legal [hit, conflict] band
    // must leave open-page timing untouched.
    for (i, closed) in [
        padlock_mem::DEFAULT_ROW_HIT_CYCLES,
        77,
        padlock_mem::DEFAULT_ROW_CONFLICT_CYCLES,
    ]
    .into_iter()
    .enumerate()
    {
        assert_bankset_equivalent(4, closed, 431 + i as u64);
    }
}

// ---- layer 2: the PR 4 drain scheduler, ported line for line ----

const SPILL_BATCH: u32 = 64;

#[derive(Debug, Clone, Copy)]
enum SeedPath {
    Plain,
    Fast,
    SeqFetch,
    Direct,
    Alias(usize),
    Posted,
}

struct SeedSlot {
    txn: MemTxn,
    path: SeedPath,
    fetched: u64,
    crypto_done: u64,
    done: u64,
}

/// The controller exactly as PR 4 left it: classify in arrival order,
/// issue each phase-one access inline, merge later reads into earlier
/// *read* slots only.
struct SeedEngine {
    config: SecureBackendConfig,
    channels: ChannelSet,
    snc: Option<SncShards>,
    written: BTreeSet<u64>,
    pending_spills: u32,
    queue: Vec<MemTxn>,
    stats: CounterSet,
}

impl SeedEngine {
    fn new(config: SecureBackendConfig) -> Self {
        let channels = ChannelSet::new(
            config.mem_channels,
            config.mem_latency,
            config.mem_occupancy,
            config.write_buffer_entries,
            u64::from(config.line_bytes),
        )
        .with_banks(config.bank_config());
        let snc = match config.mode {
            SecurityMode::Otp { snc } => Some(SncShards::new(snc, config.snc_shards)),
            _ => None,
        };
        Self {
            config,
            channels,
            snc,
            written: BTreeSet::new(),
            pending_spills: 0,
            queue: Vec::new(),
            stats: CounterSet::new("controller"),
        }
    }

    fn crypto_latency(&self) -> u64 {
        self.config.crypto.pipeline_latency()
    }

    /// Mirrors `SecureBackend::pre_age` with an ancient-only feed.
    fn pre_age<A: IntoIterator<Item = u64>>(&mut self, lines: A) {
        if let SecurityMode::Otp { snc: snc_cfg } = self.config.mode {
            let snc = self.snc.as_mut().expect("OTP mode has an SNC");
            for line in lines {
                self.written.insert(line);
                match snc_cfg.policy {
                    SncPolicy::NoReplacement => {
                        snc.try_install(line, 1);
                    }
                    SncPolicy::Lru => {
                        snc.install(line, 1);
                    }
                }
            }
            snc.reset_stats();
        }
        self.stats.reset();
    }

    fn spill_seq(&mut self, now: u64, ready_at: u64, line_addr: u64) {
        self.pending_spills += 1;
        if self.pending_spills >= SPILL_BATCH {
            self.pending_spills = 0;
            self.channels.enqueue_write(
                now,
                ready_at,
                line_addr,
                TrafficClass::SeqWrite,
                self.config.line_bytes,
            );
        }
    }

    fn flush_spills(&mut self, now: u64) {
        if self.pending_spills > 0 {
            self.pending_spills = 0;
            self.channels.enqueue_write(
                now,
                now + self.crypto_latency(),
                0,
                TrafficClass::SeqWrite,
                self.config.line_bytes,
            );
        }
    }

    fn classify_read(
        &mut self,
        txn: &MemTxn,
        kind: LineKind,
        crypto: &mut CryptoTimeline,
        ports: &mut SncPorts,
    ) -> SeedSlot {
        let bytes = self.config.line_bytes;
        let mut slot = SeedSlot {
            txn: *txn,
            path: SeedPath::Plain,
            fetched: 0,
            crypto_done: 0,
            done: 0,
        };
        match self.config.mode {
            SecurityMode::Insecure => {
                slot.fetched =
                    self.channels
                        .demand_read(txn.arrival, txn.line_addr, TrafficClass::LineRead, bytes);
            }
            SecurityMode::Xom => {
                self.stats.incr("xom_reads");
                slot.path = SeedPath::Direct;
                slot.fetched =
                    self.channels
                        .demand_read(txn.arrival, txn.line_addr, TrafficClass::LineRead, bytes);
            }
            SecurityMode::Otp { snc: snc_cfg } => {
                let fast = if kind == LineKind::Instruction {
                    true
                } else if self.config.clean_lines_bypass && !self.written.contains(&txn.line_addr)
                {
                    self.stats.incr("clean_bypass_reads");
                    true
                } else {
                    false
                };
                if fast {
                    self.stats.incr("otp_fast_reads");
                    slot.path = SeedPath::Fast;
                    slot.fetched = self.channels.demand_read(
                        txn.arrival,
                        txn.line_addr,
                        TrafficClass::LineRead,
                        bytes,
                    );
                    slot.crypto_done = crypto.issue_pad(txn.arrival);
                    return slot;
                }
                let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                let lookup_at = ports.acquire(snc.shard_of(txn.line_addr), txn.arrival);
                match snc.query(txn.line_addr) {
                    SncLookup::Hit(_) => {
                        self.stats.incr("otp_fast_reads");
                        slot.path = SeedPath::Fast;
                        slot.fetched = self.channels.demand_read(
                            lookup_at,
                            txn.line_addr,
                            TrafficClass::LineRead,
                            bytes,
                        );
                        slot.crypto_done = crypto.issue_pad(lookup_at);
                    }
                    SncLookup::Miss => match snc_cfg.policy {
                        SncPolicy::NoReplacement => {
                            self.stats.incr("xom_reads");
                            slot.path = SeedPath::Direct;
                            slot.fetched = self.channels.demand_read(
                                lookup_at,
                                txn.line_addr,
                                TrafficClass::LineRead,
                                bytes,
                            );
                        }
                        SncPolicy::Lru => {
                            self.stats.incr("snc_fetch_reads");
                            slot.path = SeedPath::SeqFetch;
                            slot.fetched = self.channels.demand_read(
                                lookup_at,
                                txn.line_addr,
                                TrafficClass::SeqRead,
                                bytes,
                            );
                        }
                    },
                }
            }
        }
        slot
    }

    fn drain_window(&mut self, out: &mut Vec<u64>) {
        if self.queue.is_empty() {
            return;
        }
        let window: Vec<MemTxn> = self.queue.drain(..).collect();
        let mut crypto = CryptoTimeline::new(
            self.crypto_latency(),
            self.config.crypto_pipeline_width,
        );
        let mut ports = SncPorts::new(self.config.snc_shards, self.config.snc_port_cycles);
        let mut slots: Vec<SeedSlot> = Vec::with_capacity(window.len());
        for txn in window {
            let slot = match txn.op {
                TxnOp::Writeback => {
                    self.process_writeback(txn.arrival, txn.line_addr);
                    SeedSlot {
                        txn,
                        path: SeedPath::Posted,
                        fetched: 0,
                        crypto_done: 0,
                        done: 0,
                    }
                }
                TxnOp::Read(kind) => {
                    let primary = slots.iter().position(|s| {
                        s.txn.line_addr == txn.line_addr
                            && matches!(s.txn.op, TxnOp::Read(_))
                            && !matches!(s.path, SeedPath::Alias(_))
                    });
                    match primary {
                        Some(p) => {
                            self.stats.incr("mshr_merged_reads");
                            SeedSlot {
                                txn,
                                path: SeedPath::Alias(p),
                                fetched: 0,
                                crypto_done: 0,
                                done: 0,
                            }
                        }
                        None => self.classify_read(&txn, kind, &mut crypto, &mut ports),
                    }
                }
            };
            slots.push(slot);
        }
        for slot in slots.iter_mut() {
            if matches!(slot.path, SeedPath::SeqFetch) {
                slot.crypto_done = crypto.issue_block(slot.fetched);
            }
        }
        for i in 0..slots.len() {
            let (path, fetched, crypto_done) =
                (slots[i].path, slots[i].fetched, slots[i].crypto_done);
            slots[i].done = match path {
                SeedPath::Posted => 0,
                SeedPath::Plain => fetched,
                SeedPath::Fast => fetched.max(crypto_done) + 1,
                SeedPath::Direct => crypto.issue_block(fetched),
                SeedPath::Alias(p) => slots[p].done,
                SeedPath::SeqFetch => {
                    let seq_ready = crypto_done;
                    let line_fetched = self.channels.demand_read(
                        seq_ready,
                        slots[i].txn.line_addr,
                        TrafficClass::LineRead,
                        self.config.line_bytes,
                    );
                    let pad_done = crypto.issue_pad(seq_ready);
                    let arrival = slots[i].txn.arrival;
                    let line_addr = slots[i].txn.line_addr;
                    let spill_ready = seq_ready + self.crypto_latency();
                    let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                    if let Some(victim) = snc.install(line_addr, 1) {
                        self.spill_seq(arrival, spill_ready, victim.line_addr);
                    }
                    line_fetched.max(pad_done) + 1
                }
            };
        }
        for slot in &slots {
            if matches!(slot.txn.op, TxnOp::Read(_)) {
                out.push(slot.done);
            }
        }
    }

    fn process_writeback(&mut self, now: u64, line_addr: u64) {
        let bytes = self.config.line_bytes;
        match self.config.mode {
            SecurityMode::Insecure => {
                self.channels
                    .enqueue_write(now, now, line_addr, TrafficClass::LineWrite, bytes);
            }
            SecurityMode::Xom => {
                let ready = now + self.crypto_latency();
                self.channels
                    .enqueue_write(now, ready, line_addr, TrafficClass::LineWrite, bytes);
            }
            SecurityMode::Otp { snc: snc_cfg } => {
                let first_writeback = self.written.insert(line_addr);
                let crypto = self.crypto_latency();
                let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                let ready = if snc.increment(line_addr).is_some() {
                    now + crypto
                } else {
                    match snc_cfg.policy {
                        SncPolicy::NoReplacement => {
                            if snc.try_install(line_addr, 1) {
                                now + crypto
                            } else {
                                self.stats.incr("norepl_direct_writes");
                                now + crypto
                            }
                        }
                        SncPolicy::Lru => {
                            let mut ready = now + crypto;
                            if first_writeback {
                                self.stats.incr("first_writebacks");
                            } else {
                                self.stats.incr("snc_fetch_updates");
                                let seq_fetched = self.channels.demand_read(
                                    now,
                                    line_addr,
                                    TrafficClass::SeqRead,
                                    bytes,
                                );
                                ready = seq_fetched + crypto + crypto;
                            }
                            let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                            if let Some(victim) = snc.install(line_addr, 1) {
                                let spill_ready = now + crypto;
                                self.spill_seq(now, spill_ready, victim.line_addr);
                            }
                            ready
                        }
                    }
                };
                self.channels
                    .enqueue_write(now, ready, line_addr, TrafficClass::LineWrite, bytes);
            }
        }
    }

    fn line_read_batch_at(&mut self, reqs: &[(u64, u64, LineKind)]) -> Vec<u64> {
        let mut out = Vec::with_capacity(reqs.len());
        for &(at, line_addr, kind) in reqs {
            if self.queue.len() >= self.config.max_inflight {
                self.drain_window(&mut out);
            }
            self.queue.push(MemTxn::read(at, line_addr, kind));
        }
        self.drain_window(&mut out);
        out
    }

    fn line_writeback(&mut self, now: u64, line_addr: u64) {
        self.queue.push(MemTxn::writeback(now, line_addr));
        let mut out = Vec::new();
        self.drain_window(&mut out);
    }

    fn drain(&mut self, now: u64) {
        let mut out = Vec::new();
        self.drain_window(&mut out);
        self.flush_spills(now);
        self.channels.flush_writes(now);
    }
}

fn snc_cfg(policy: SncPolicy, entries: usize) -> SncConfig {
    SncConfig {
        capacity_bytes: entries * 2,
        entry_bytes: 2,
        organization: SncOrganization::FullyAssociative,
        policy,
        covered_line_bytes: 128,
    }
}

fn grid_modes() -> Vec<SecurityMode> {
    vec![
        SecurityMode::Insecure,
        SecurityMode::Xom,
        SecurityMode::Otp {
            snc: snc_cfg(SncPolicy::Lru, 64),
        },
        SecurityMode::Otp {
            snc: snc_cfg(SncPolicy::NoReplacement, 64),
        },
    ]
}

/// Drives the PR 4 seed engine and the new controller (knobs at their
/// defaults) with one pseudorandom public-API trace; every latency and
/// counter must match.
fn assert_engine_equivalent(
    mode: SecurityMode,
    channels: usize,
    banks: usize,
    inflight: usize,
    seed: u64,
) {
    let cfg = SecureBackendConfig::paper(mode)
        .with_mem_channels(channels)
        .with_snc_shards(channels)
        .with_mem_banks(banks)
        .with_max_inflight(inflight);
    assert_eq!(cfg.drain_order, DrainOrder::Fifo);
    assert_eq!(cfg.page_policy, PagePolicy::Open);
    let mut old = SeedEngine::new(cfg.clone());
    let mut new = SecureBackend::new(cfg);
    // Age a slice of the address pool so written-line and SNC paths
    // are live from the first step.
    let aged: Vec<u64> = (0..128u64).map(|i| 0x8000 + i * 128).collect();
    old.pre_age(aged.iter().copied());
    new.pre_age(aged.iter().copied(), std::iter::empty());

    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = 0u64;
    let mut batch: Vec<(u64, u64, LineKind)> = Vec::new();
    for step in 0..1_200u32 {
        now += rng.next_u64() % 220;
        let addr = 0x8000 + (rng.next_u64() % 512) * 128;
        match rng.next_u64() % 10 {
            0..=4 => {
                let kind = if rng.next_u64() % 5 == 0 {
                    LineKind::Instruction
                } else {
                    LineKind::Data
                };
                batch.push((now, addr, kind));
                if batch.len() >= inflight || rng.next_u64() % 3 == 0 {
                    let dn = new.line_read_batch_at(&batch);
                    let ds = old.line_read_batch_at(&batch);
                    assert_eq!(
                        dn, ds,
                        "step {step}: batch diverged ({mode}, {channels}ch, {banks}bk)"
                    );
                    batch.clear();
                }
            }
            _ => {
                new.line_writeback(now, addr);
                old.line_writeback(now, addr);
            }
        }
    }
    if !batch.is_empty() {
        assert_eq!(new.line_read_batch_at(&batch), old.line_read_batch_at(&batch));
    }
    now += 1_000;
    new.drain(now);
    old.drain(now);
    let tag = format!("{mode}, {channels}ch, {banks}bk, mlp{inflight}");
    assert_eq!(
        counters(&new.traffic()),
        counters(&old.channels.stats()),
        "traffic diverged ({tag})"
    );
    assert_eq!(
        counters(&new.controller_stats()),
        counters(&old.stats),
        "controller diverged ({tag})"
    );
    if let Some(snc) = new.snc() {
        assert_eq!(
            counters(&snc.stats()),
            counters(&old.snc.as_ref().expect("both engines run the same mode").stats()),
            "snc diverged ({tag})"
        );
    }
}

#[test]
fn fifo_open_engine_matches_seed_across_mode_channel_bank_inflight_grid() {
    let mut seed = 509u64;
    for mode in grid_modes() {
        for channels in [1usize, 2, 4] {
            for banks in [1usize, 4] {
                for inflight in [1usize, 8] {
                    seed += 1;
                    assert_engine_equivalent(mode, channels, banks, inflight, seed);
                }
            }
        }
    }
}

// ---- layer 3: whole machines, knob inertness on the flat fabric ----

fn flat_machine(
    mode: SecurityMode,
    channels: usize,
    mshrs: usize,
    order: DrainOrder,
    page: PagePolicy,
) -> Machine {
    let mut cfg = MachineConfig::paper(mode);
    cfg.hierarchy.l2_mshrs = mshrs;
    cfg.security = cfg
        .security
        .with_mem_channels(channels)
        .with_snc_shards(channels)
        .with_max_inflight(4 * mshrs)
        .with_drain_order(order)
        .with_page_policy(page);
    assert_eq!(cfg.security.mem_banks, 1);
    Machine::new(cfg)
}

fn assert_machines_identical(mut a: Machine, mut b: Machine, tag: &str) {
    let ma = a.run(&mut StrideWorkload::new(8 << 20, 136, 0.35), 2_000, 8_000);
    let mb = b.run(&mut StrideWorkload::new(8 << 20, 136, 0.35), 2_000, 8_000);
    assert_eq!(ma.stats.cycles, mb.stats.cycles, "cycles diverged ({tag})");
    assert_eq!(ma.stats.instructions, mb.stats.instructions, "{tag}");
    assert_eq!(counters(&ma.traffic), counters(&mb.traffic), "{tag}");
    assert_eq!(counters(&ma.controller), counters(&mb.controller), "{tag}");
    assert_eq!(counters(&ma.snc), counters(&mb.snc), "{tag}");
}

#[test]
fn row_first_collapses_to_fifo_on_a_flat_fabric() {
    for mode in [SecurityMode::Insecure, SecurityMode::otp_lru_64k()] {
        for (channels, mshrs) in [(1usize, 8usize), (4, 8)] {
            let fifo = flat_machine(mode, channels, mshrs, DrainOrder::Fifo, PagePolicy::Open);
            let rowf = flat_machine(mode, channels, mshrs, DrainOrder::RowFirst, PagePolicy::Open);
            assert_machines_identical(fifo, rowf, &format!("{mode}, {channels}ch row-first"));
        }
    }
}

#[test]
fn closed_page_collapses_to_open_on_a_flat_fabric() {
    for mode in [SecurityMode::Xom, SecurityMode::otp_lru_64k()] {
        for (channels, mshrs) in [(1usize, 1usize), (4, 8)] {
            let open = flat_machine(mode, channels, mshrs, DrainOrder::Fifo, PagePolicy::Open);
            let closed = flat_machine(mode, channels, mshrs, DrainOrder::Fifo, PagePolicy::Closed);
            assert_machines_identical(open, closed, &format!("{mode}, {channels}ch closed-page"));
        }
    }
}

#[test]
fn banked_scheduling_knobs_actually_diverge() {
    // Sanity that the grid proves something: on a *banked* fabric the
    // knobs must be live. A window that ping-pongs two rows of one
    // bank diverges under RowFirst, and Closed changes every banked
    // access latency.
    let row = 128 * ROW_LINES;
    let reqs: Vec<(u64, LineKind)> = [0, 2 * row, 128, 2 * row + 128]
        .into_iter()
        .map(|a| (a, LineKind::Instruction))
        .collect();
    let run = |order: DrainOrder, page: PagePolicy| {
        let cfg = SecureBackendConfig::paper(SecurityMode::Insecure)
            .with_mem_banks(2)
            .with_max_inflight(8)
            .with_drain_order(order)
            .with_page_policy(page);
        let mut b = SecureBackend::new(cfg);
        let dones = b.line_read_batch(0, &reqs);
        (dones, b.traffic().get("row_hits"))
    };
    let (fifo, fifo_hits) = run(DrainOrder::Fifo, PagePolicy::Open);
    let (rowf, rowf_hits) = run(DrainOrder::RowFirst, PagePolicy::Open);
    assert_ne!(fifo, rowf, "RowFirst knob is dead on a banked window");
    assert!(rowf_hits > fifo_hits);
    let (closed, closed_hits) = run(DrainOrder::Fifo, PagePolicy::Closed);
    assert_ne!(fifo, closed, "Closed knob is dead on a banked window");
    assert_eq!(closed_hits, 0);

    // And a whole banked machine diverges under Closed.
    let banked = |page: PagePolicy| {
        let mut cfg = MachineConfig::paper(SecurityMode::otp_lru_64k());
        cfg.security = cfg.security.with_mem_banks(4).with_page_policy(page);
        Machine::new(cfg)
    };
    let mo = banked(PagePolicy::Open).run(&mut StrideWorkload::new(8 << 20, 136, 0.35), 2_000, 8_000);
    let mc = banked(PagePolicy::Closed).run(&mut StrideWorkload::new(8 << 20, 136, 0.35), 2_000, 8_000);
    assert_ne!(mo.stats.cycles, mc.stats.cycles);
    assert!(mo.traffic.get("row_hits") > 0);
    assert_eq!(mc.traffic.get("row_hits"), 0);
}
