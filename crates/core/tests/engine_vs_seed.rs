//! Differential test: the transaction engine at `max_inflight = 1`,
//! `snc_shards = 1` must reproduce the seed model's latencies
//! *bit-exactly*.
//!
//! `SeedBackend` below is a line-for-line port of the pre-engine
//! controller (one-call-one-latency, single SNC). Both backends are
//! driven with identical pseudorandom traces of reads and writebacks
//! across every mode/policy/occupancy/crypto combination the paper
//! uses, and every returned latency plus every traffic, controller,
//! and SNC counter must match.

use padlock_core::{
    SecureBackend, SecureBackendConfig, SecurityMode, SequenceNumberCache, SncConfig,
    SncLookup, SncOrganization, SncPolicy,
};
use padlock_cpu::{LineKind, MemoryBackend, MemoryChannel};
use padlock_mem::TrafficClass;
use padlock_stats::CounterSet;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Sequence-number entries packed per spill transaction.
const SPILL_BATCH: u32 = 64;

/// The seed model: the controller exactly as it was before the
/// transaction-engine rewrite.
struct SeedBackend {
    config: SecureBackendConfig,
    channel: MemoryChannel,
    snc: Option<SequenceNumberCache>,
    written: BTreeSet<u64>,
    pending_spills: u32,
    stats: CounterSet,
}

impl SeedBackend {
    fn new(config: SecureBackendConfig) -> Self {
        let channel = MemoryChannel::new(
            config.mem_latency,
            config.mem_occupancy,
            config.write_buffer_entries,
        );
        let snc = match config.mode {
            SecurityMode::Otp { snc } => Some(SequenceNumberCache::new(snc)),
            _ => None,
        };
        Self {
            config,
            channel,
            snc,
            written: BTreeSet::new(),
            pending_spills: 0,
            stats: CounterSet::new("controller"),
        }
    }

    fn crypto_latency(&self) -> u64 {
        self.config.crypto.pipeline_latency()
    }

    fn spill_seq(&mut self, now: u64, ready_at: u64, line_addr: u64) {
        self.pending_spills += 1;
        if self.pending_spills >= SPILL_BATCH {
            self.pending_spills = 0;
            self.channel.enqueue_write(
                now,
                ready_at,
                line_addr,
                TrafficClass::SeqWrite,
                self.config.line_bytes,
            );
        }
    }

    fn xom_read(&mut self, now: u64, line_addr: u64) -> u64 {
        self.stats.incr("xom_reads");
        let fetched = self
            .channel
            .demand_read(now, line_addr, TrafficClass::LineRead, self.config.line_bytes);
        fetched + self.crypto_latency()
    }

    fn otp_read(&mut self, now: u64, line_addr: u64) -> u64 {
        self.stats.incr("otp_fast_reads");
        let fetched = self
            .channel
            .demand_read(now, line_addr, TrafficClass::LineRead, self.config.line_bytes);
        let pad_ready = now + self.crypto_latency();
        fetched.max(pad_ready) + 1
    }

    fn line_read(&mut self, now: u64, line_addr: u64, kind: LineKind) -> u64 {
        match self.config.mode {
            SecurityMode::Insecure => {
                self.channel
                    .demand_read(now, line_addr, TrafficClass::LineRead, self.config.line_bytes)
            }
            SecurityMode::Xom => self.xom_read(now, line_addr),
            SecurityMode::Otp { snc: snc_cfg } => {
                if kind == LineKind::Instruction {
                    return self.otp_read(now, line_addr);
                }
                if self.config.clean_lines_bypass && !self.written.contains(&line_addr) {
                    self.stats.incr("clean_bypass_reads");
                    return self.otp_read(now, line_addr);
                }
                let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                match snc.query(line_addr) {
                    SncLookup::Hit(_) => self.otp_read(now, line_addr),
                    SncLookup::Miss => match snc_cfg.policy {
                        SncPolicy::NoReplacement => self.xom_read(now, line_addr),
                        SncPolicy::Lru => {
                            self.stats.incr("snc_fetch_reads");
                            let seq_fetched = self.channel.demand_read(
                                now,
                                line_addr,
                                TrafficClass::SeqRead,
                                self.config.line_bytes,
                            );
                            let seq_ready = seq_fetched + self.crypto_latency();
                            let line_fetched = self.channel.demand_read(
                                seq_ready,
                                line_addr,
                                TrafficClass::LineRead,
                                self.config.line_bytes,
                            );
                            let pad_ready = seq_ready + self.crypto_latency();
                            let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                            if let Some(victim) = snc.install(line_addr, 1) {
                                let spill_ready = seq_ready + self.crypto_latency();
                                self.spill_seq(now, spill_ready, victim.line_addr);
                            }
                            line_fetched.max(pad_ready) + 1
                        }
                    },
                }
            }
        }
    }

    fn line_writeback(&mut self, now: u64, line_addr: u64) {
        let bytes = self.config.line_bytes;
        match self.config.mode {
            SecurityMode::Insecure => {
                self.channel
                    .enqueue_write(now, now, line_addr, TrafficClass::LineWrite, bytes);
            }
            SecurityMode::Xom => {
                let ready = now + self.crypto_latency();
                self.channel
                    .enqueue_write(now, ready, line_addr, TrafficClass::LineWrite, bytes);
            }
            SecurityMode::Otp { snc: snc_cfg } => {
                let first_writeback = self.written.insert(line_addr);
                let crypto = self.crypto_latency();
                let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                let ready = if snc.increment(line_addr).is_some() {
                    now + crypto
                } else {
                    match snc_cfg.policy {
                        SncPolicy::NoReplacement => {
                            if snc.try_install(line_addr, 1) {
                                now + crypto
                            } else {
                                self.stats.incr("norepl_direct_writes");
                                now + crypto
                            }
                        }
                        SncPolicy::Lru => {
                            let mut ready = now + crypto;
                            if first_writeback {
                                self.stats.incr("first_writebacks");
                            } else {
                                self.stats.incr("snc_fetch_updates");
                                let seq_fetched = self.channel.demand_read(
                                    now,
                                    line_addr,
                                    TrafficClass::SeqRead,
                                    bytes,
                                );
                                ready = seq_fetched + crypto + crypto;
                            }
                            let snc = self.snc.as_mut().expect("OTP mode has an SNC");
                            if let Some(victim) = snc.install(line_addr, 1) {
                                let spill_ready = now + crypto;
                                self.spill_seq(now, spill_ready, victim.line_addr);
                            }
                            ready
                        }
                    }
                };
                self.channel
                    .enqueue_write(now, ready, line_addr, TrafficClass::LineWrite, bytes);
            }
        }
    }
}

fn counters(set: &CounterSet) -> BTreeMap<String, u64> {
    set.iter().map(|(k, v)| (k.to_string(), v)).collect()
}

fn snc_cfg(policy: SncPolicy, entries: usize) -> SncConfig {
    SncConfig {
        capacity_bytes: entries * 2,
        entry_bytes: 2,
        organization: SncOrganization::FullyAssociative,
        policy,
        covered_line_bytes: 128,
    }
}

/// Drives both models with one pseudorandom trace and compares every
/// latency and counter.
fn assert_equivalent(mode: SecurityMode, occupancy: u64, slow_crypto: bool, seed: u64) {
    let mut cfg = SecureBackendConfig::paper(mode);
    cfg.mem_occupancy = occupancy;
    if slow_crypto {
        cfg = cfg.with_slow_crypto();
    }
    assert_eq!(cfg.max_inflight, 1, "paper defaults model the seed machine");
    assert_eq!(cfg.snc_shards, 1);

    let mut engine = SecureBackend::new(cfg.clone());
    let mut reference = SeedBackend::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = 0u64;
    for step in 0..2_500u32 {
        // Occasionally issue back-to-back at the same cycle to stress
        // same-timestamp scheduling.
        now += rng.next_u64() % 280;
        let line = rng.next_u64() % 96;
        let addr = 0x8000 + line * 128;
        match rng.next_u64() % 10 {
            0..=4 => {
                let kind = if rng.next_u64() % 5 == 0 {
                    LineKind::Instruction
                } else {
                    LineKind::Data
                };
                let e = engine.line_read(now, addr, kind);
                let r = reference.line_read(now, addr, kind);
                assert_eq!(e, r, "step {step}: read of {addr:#x} at {now}");
            }
            _ => {
                engine.line_writeback(now, addr);
                reference.line_writeback(now, addr);
            }
        }
    }
    assert_eq!(
        counters(&engine.traffic()),
        counters(&reference.channel.mem().stats()),
        "traffic counters diverged"
    );
    assert_eq!(
        counters(&engine.controller_stats()),
        counters(&reference.stats),
        "controller counters diverged"
    );
    if let Some(snc) = engine.snc() {
        let ref_snc = reference.snc.as_ref().expect("both models run the same mode");
        assert_eq!(
            counters(&snc.stats()),
            counters(&ref_snc.stats()),
            "snc counters diverged"
        );
        assert_eq!(snc.occupancy(), ref_snc.occupancy());
    }
}

#[test]
fn insecure_engine_matches_seed_model() {
    for occ in [0, 8] {
        assert_equivalent(SecurityMode::Insecure, occ, false, 11 + occ);
    }
}

#[test]
fn xom_engine_matches_seed_model() {
    for occ in [0, 8] {
        for slow in [false, true] {
            assert_equivalent(SecurityMode::Xom, occ, slow, 23 + occ + slow as u64);
        }
    }
}

#[test]
fn otp_lru_engine_matches_seed_model_under_pressure() {
    // 32-entry SNC against a 96-line footprint: constant evictions,
    // sequence fetches, update misses, and packed spills.
    for occ in [0, 8] {
        for slow in [false, true] {
            let mode = SecurityMode::Otp {
                snc: snc_cfg(SncPolicy::Lru, 32),
            };
            assert_equivalent(mode, occ, slow, 37 + occ * 2 + slow as u64);
        }
    }
}

#[test]
fn otp_lru_engine_matches_seed_model_when_covered() {
    // A big SNC: mostly hits and the fast path.
    let mode = SecurityMode::Otp {
        snc: snc_cfg(SncPolicy::Lru, 4096),
    };
    assert_equivalent(mode, 8, false, 41);
}

#[test]
fn otp_norepl_engine_matches_seed_model() {
    for occ in [0, 8] {
        let mode = SecurityMode::Otp {
            snc: snc_cfg(SncPolicy::NoReplacement, 32),
        };
        assert_equivalent(mode, occ, false, 53 + occ);
    }
}

#[test]
fn paper_default_machine_matches_seed_model() {
    assert_equivalent(SecurityMode::otp_lru_64k(), 8, false, 67);
    assert_equivalent(SecurityMode::otp_norepl_64k(), 8, true, 71);
}
