//! The functional secure memory: real ciphertext, real pads, real MACs.
//!
//! The timing layer ([`crate::SecureBackend`]) models *when* bytes move;
//! this module models *what* they are. It backs the tiny-ISA VM, the
//! examples, and the attack tests: memory outside the security boundary
//! holds only ciphertext, and the attack entry points mutate that
//! ciphertext exactly the way the paper's adversary would (spoofing,
//! splicing, replay — §2.2).

use crate::config::SeedScheme;
use padlock_crypto::{BlockCipher, CbcMac, CipherKind, OneTimePad, Sha256};
use padlock_mem::{RegionMap, SparseMemory};
use std::collections::BTreeMap;
use std::fmt;

/// How a region of memory is protected (decided at load time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LineProtection {
    /// Cleartext: shared libraries, program inputs (§4.3).
    Plaintext,
    /// OTP with address-only seeds: code and read-only data — written
    /// once by the vendor/loader, never written back (§3.4.1).
    OtpStatic,
    /// OTP with address + sequence-number seeds: writable data (§3.4.2).
    #[default]
    OtpDynamic,
}

/// Integrity verification level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IntegrityMode {
    /// No verification (the paper's timing runs).
    #[default]
    None,
    /// Per-line MACs bound to the address: detects spoofing and splicing,
    /// not replay (the MAC table itself lives in untrusted memory).
    Mac,
    /// MACs plus an on-chip root hash over the MAC table (a flattened
    /// stand-in for the Gassend et al. hash tree the paper cites):
    /// also detects replay.
    MacTree,
}

/// Errors surfaced by secure reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecureMemoryError {
    /// The per-line MAC did not match the line's ciphertext.
    MacMismatch {
        /// Offending line address.
        addr: u64,
    },
    /// The MAC table no longer matches the on-chip root (replay).
    RootMismatch {
        /// Line address whose read triggered verification.
        addr: u64,
    },
    /// The address is not line-aligned.
    Misaligned {
        /// Offending address.
        addr: u64,
    },
}

impl fmt::Display for SecureMemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecureMemoryError::MacMismatch { addr } => {
                write!(f, "MAC mismatch at line {addr:#x} (spoofing or splicing)")
            }
            SecureMemoryError::RootMismatch { addr } => {
                write!(f, "integrity root mismatch at line {addr:#x} (replay)")
            }
            SecureMemoryError::Misaligned { addr } => {
                write!(f, "address {addr:#x} is not line-aligned")
            }
        }
    }
}

impl std::error::Error for SecureMemoryError {}

/// An adversary's capture of one line: everything observable outside the
/// security boundary at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineSnapshot {
    /// The captured line's address.
    pub addr: u64,
    /// Raw ciphertext bytes.
    pub ciphertext: Vec<u8>,
    /// The line's MAC entry, if integrity is enabled.
    pub mac: Option<[u8; 8]>,
    /// The spilled (conceptually encrypted) sequence number.
    pub seq: Option<u64>,
}

/// Outcome of probing a line after an attack (see
/// [`SecureMemory::probe_attack`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackOutcome {
    /// Integrity verification rejected the line.
    Detected,
    /// Verification passed but decryption produced garbage — the program
    /// would compute nonsense and (per the XOM model) eventually trap.
    GarbagePlaintext,
    /// The read returned the expected plaintext: the attack succeeded.
    Undetected,
}

/// Functional encrypted memory with per-line protection and integrity.
///
/// # Examples
///
/// ```
/// use padlock_core::{IntegrityMode, LineProtection, SecureMemory, SeedScheme};
/// use padlock_crypto::CipherKind;
///
/// let mut sm = SecureMemory::new(
///     CipherKind::Des, &[7u8; 16], SeedScheme::PaperAdditive, 128,
///     IntegrityMode::Mac);
/// sm.add_region("heap", 0x1_0000, 0x2_0000, LineProtection::OtpDynamic).unwrap();
/// sm.write_line(0x1_0000, &[0xAB; 128]).unwrap();
/// assert_eq!(sm.read_line(0x1_0000).unwrap(), vec![0xAB; 128]);
/// // The ciphertext actually stored off-chip differs from the data:
/// assert_ne!(sm.raw_ciphertext(0x1_0000, 128), vec![0xAB; 128]);
/// ```
pub struct SecureMemory {
    otp: OneTimePad<Box<dyn BlockCipher>>,
    mac: Option<CbcMac<Box<dyn BlockCipher>>>,
    seed_scheme: SeedScheme,
    line_bytes: usize,
    integrity: IntegrityMode,
    mem: SparseMemory,
    regions: RegionMap<LineProtection>,
    /// Per-line sequence numbers (the union of SNC + spilled table; the
    /// functional layer does not model residency).
    seqs: BTreeMap<u64, u64>,
    /// Per-line MACs — conceptually stored in untrusted memory.
    macs: BTreeMap<u64, [u8; 8]>,
    /// On-chip root over the MAC table (MacTree mode).
    root: [u8; 32],
}

impl fmt::Debug for SecureMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecureMemory")
            .field("line_bytes", &self.line_bytes)
            .field("integrity", &self.integrity)
            .field("lines_written", &self.seqs.len())
            .finish_non_exhaustive()
    }
}

impl SecureMemory {
    /// Creates an empty secure memory keyed with `key` (the unwrapped
    /// symmetric key `Ks`).
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a positive multiple of the cipher
    /// block size, or `key` is shorter than the cipher requires.
    pub fn new(
        cipher: CipherKind,
        key: &[u8],
        seed_scheme: SeedScheme,
        line_bytes: usize,
        integrity: IntegrityMode,
    ) -> Self {
        assert!(
            line_bytes > 0 && line_bytes.is_multiple_of(cipher.block_size()),
            "line must be whole cipher blocks"
        );
        // Derive a distinct MAC key so pad and MAC streams never share
        // cipher inputs.
        let mut mac_key = key.to_vec();
        for b in &mut mac_key {
            *b ^= 0xA5;
        }
        Self {
            otp: OneTimePad::new(cipher.instantiate(key)),
            mac: Some(CbcMac::new(cipher.instantiate(&mac_key))),
            seed_scheme,
            line_bytes,
            integrity,
            mem: SparseMemory::new(),
            regions: RegionMap::new(LineProtection::OtpDynamic),
            seqs: BTreeMap::new(),
            macs: BTreeMap::new(),
            root: [0u8; 32],
        }
    }

    /// The configured line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// The integrity mode.
    pub fn integrity(&self) -> IntegrityMode {
        self.integrity
    }
}

/// Region-mapping error (wraps the region map's overlap diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapRegionError(String);

impl fmt::Display for MapRegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for MapRegionError {}

impl SecureMemory {
    fn wide_seed(&self, line_va: u64, seq: u64) -> u64 {
        match self.seed_scheme {
            SeedScheme::PaperAdditive => line_va.wrapping_add(seq),
            SeedScheme::Structured => {
                let base = (line_va & 0x0000_FFFF_FFFF_FFFF) | ((seq & 0xFFFF) << 48);
                // Epochs beyond 16 bits mix into the low half.
                base ^ (seq >> 16).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            }
        }
    }

    fn check_aligned(&self, addr: u64) -> Result<(), SecureMemoryError> {
        if !addr.is_multiple_of(self.line_bytes as u64) {
            Err(SecureMemoryError::Misaligned { addr })
        } else {
            Ok(())
        }
    }

    fn recompute_root(&mut self) {
        // BTreeMap iteration is already address-sorted, which is
        // exactly the canonical order the root hash is defined over.
        let mut h = Sha256::new();
        for (addr, tag) in &self.macs {
            h.update(&addr.to_be_bytes());
            h.update(tag);
        }
        self.root = h.finalize();
    }

    fn verify_root(&self, addr: u64) -> Result<(), SecureMemoryError> {
        let mut h = Sha256::new();
        for (a, tag) in &self.macs {
            h.update(&a.to_be_bytes());
            h.update(tag);
        }
        if h.finalize() != self.root {
            Err(SecureMemoryError::RootMismatch { addr })
        } else {
            Ok(())
        }
    }

    fn stamp_integrity(&mut self, addr: u64) {
        if self.integrity == IntegrityMode::None {
            return;
        }
        let ct = self.mem.read_vec(addr, self.line_bytes);
        let tag = self.mac.as_ref().expect("mac engine").tag(addr, &ct);
        self.macs.insert(addr, tag);
        if self.integrity == IntegrityMode::MacTree {
            self.recompute_root();
        }
    }

    fn verify_integrity(&self, addr: u64) -> Result<(), SecureMemoryError> {
        match self.integrity {
            IntegrityMode::None => Ok(()),
            IntegrityMode::Mac | IntegrityMode::MacTree => {
                if self.integrity == IntegrityMode::MacTree {
                    self.verify_root(addr)?;
                }
                // A line with no MAC entry has never crossed the security
                // boundary: nothing to authenticate yet. (An adversary
                // deleting an entry gains only destruction — the read
                // then decrypts to pad garbage, never chosen plaintext —
                // and under MacTree the deletion itself breaks the root.)
                let Some(tag) = self.macs.get(&addr).copied() else {
                    return Ok(());
                };
                let ct = self.mem.read_vec(addr, self.line_bytes);
                let ok = self
                    .mac
                    .as_ref()
                    .expect("mac engine")
                    .verify(addr, &ct, &tag);
                if ok {
                    Ok(())
                } else {
                    Err(SecureMemoryError::MacMismatch { addr })
                }
            }
        }
    }

    /// Declares a protection region (load-time operation).
    ///
    /// # Errors
    ///
    /// Returns [`MapRegionError`] on overlapping or inverted ranges.
    pub fn add_region(
        &mut self,
        name: &str,
        start: u64,
        end: u64,
        protection: LineProtection,
    ) -> Result<(), MapRegionError> {
        self.regions
            .insert(name, start, end, protection)
            .map_err(|e| MapRegionError(e.to_string()))
    }

    /// The protection governing `addr`.
    pub fn protection_at(&self, addr: u64) -> LineProtection {
        *self.regions.attr_at(addr)
    }

    /// Installs already-encrypted bytes plus their MAC (the loader path:
    /// the package ships ciphertext; nothing is re-encrypted on chip).
    ///
    /// # Errors
    ///
    /// Returns [`SecureMemoryError::Misaligned`] for unaligned bases.
    pub fn install_ciphertext_line(
        &mut self,
        addr: u64,
        ciphertext: &[u8],
    ) -> Result<(), SecureMemoryError> {
        self.check_aligned(addr)?;
        assert_eq!(ciphertext.len(), self.line_bytes, "whole lines only");
        self.mem.write_bytes(addr, ciphertext);
        self.stamp_integrity(addr);
        Ok(())
    }

    /// Writes one plaintext line through the security boundary
    /// (the processor's writeback path: encrypt, stamp, store).
    ///
    /// # Errors
    ///
    /// Returns [`SecureMemoryError::Misaligned`] for unaligned addresses.
    pub fn write_line(&mut self, addr: u64, plaintext: &[u8]) -> Result<(), SecureMemoryError> {
        self.check_aligned(addr)?;
        assert_eq!(plaintext.len(), self.line_bytes, "whole lines only");
        let ct = match self.protection_at(addr) {
            LineProtection::Plaintext => plaintext.to_vec(),
            LineProtection::OtpStatic => {
                let seed = self.wide_seed(addr, 0);
                self.otp.encrypt(seed, plaintext)
            }
            LineProtection::OtpDynamic => {
                let seq = {
                    let e = self.seqs.entry(addr).or_insert(0);
                    *e += 1;
                    *e
                };
                let seed = self.wide_seed(addr, seq);
                self.otp.encrypt(seed, plaintext)
            }
        };
        self.mem.write_bytes(addr, &ct);
        self.stamp_integrity(addr);
        Ok(())
    }

    /// Reads and decrypts one line, verifying integrity first.
    ///
    /// # Errors
    ///
    /// Returns [`SecureMemoryError::MacMismatch`] /
    /// [`SecureMemoryError::RootMismatch`] when verification fails, or
    /// [`SecureMemoryError::Misaligned`].
    pub fn read_line(&self, addr: u64) -> Result<Vec<u8>, SecureMemoryError> {
        self.check_aligned(addr)?;
        self.verify_integrity(addr)?;
        let ct = self.mem.read_vec(addr, self.line_bytes);
        Ok(match self.protection_at(addr) {
            LineProtection::Plaintext => ct,
            LineProtection::OtpStatic => {
                let seed = self.wide_seed(addr, 0);
                self.otp.decrypt(seed, &ct)
            }
            LineProtection::OtpDynamic => {
                let seq = self.seqs.get(&addr).copied().unwrap_or(0);
                let seed = self.wide_seed(addr, seq);
                self.otp.decrypt(seed, &ct)
            }
        })
    }

    /// Byte-granular read spanning lines (the VM's load path).
    ///
    /// # Errors
    ///
    /// Propagates line-read failures.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, SecureMemoryError> {
        let lb = self.line_bytes as u64;
        let mut out = Vec::with_capacity(len);
        let mut cursor = addr;
        let end = addr + len as u64;
        while cursor < end {
            let line = cursor / lb * lb;
            let data = self.read_line(line)?;
            let start = (cursor - line) as usize;
            let take = ((end - cursor) as usize).min(self.line_bytes - start);
            out.extend_from_slice(&data[start..start + take]);
            cursor += take as u64;
        }
        Ok(out)
    }

    /// Byte-granular read-modify-write spanning lines (the VM's store
    /// path).
    ///
    /// # Errors
    ///
    /// Propagates line read/write failures.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), SecureMemoryError> {
        let lb = self.line_bytes as u64;
        let mut cursor = addr;
        let end = addr + data.len() as u64;
        while cursor < end {
            let line = cursor / lb * lb;
            let mut buf = self.read_line(line)?;
            let start = (cursor - line) as usize;
            let take = ((end - cursor) as usize).min(self.line_bytes - start);
            let off = (cursor - addr) as usize;
            buf[start..start + take].copy_from_slice(&data[off..off + take]);
            self.write_line(line, &buf)?;
            cursor += take as u64;
        }
        Ok(())
    }

    /// The raw ciphertext stored off-chip (what a bus probe would see).
    pub fn raw_ciphertext(&self, addr: u64, len: usize) -> Vec<u8> {
        self.mem.read_vec(addr, len)
    }

    /// The current sequence number of a line (0 = never written).
    pub fn sequence_number(&self, addr: u64) -> u64 {
        self.seqs.get(&addr).copied().unwrap_or(0)
    }

    // ---- Attack surface (the adversary owns everything off-chip) ----

    /// Spoofing: overwrite raw memory bytes, leaving MACs untouched.
    pub fn attack_spoof(&mut self, addr: u64, bytes: &[u8]) {
        self.mem.write_bytes(addr, bytes);
    }

    /// Splicing: copy the raw ciphertext *and MAC entry* of `src` over
    /// `dst` (a valid line moved to the wrong address).
    pub fn attack_splice(&mut self, src: u64, dst: u64) {
        let ct = self.mem.read_vec(src, self.line_bytes);
        self.mem.write_bytes(dst, &ct);
        if let Some(tag) = self.macs.get(&src).copied() {
            self.macs.insert(dst, tag);
        }
    }

    /// Replay, step 1: snapshot everything the adversary can capture for
    /// a line — its ciphertext, its MAC, and the *encrypted sequence
    /// number* spilled to memory (the paper encrypts spilled numbers but
    /// does not version them, §4.1, so they replay together).
    pub fn attack_snapshot(&self, addr: u64) -> LineSnapshot {
        LineSnapshot {
            addr,
            ciphertext: self.mem.read_vec(addr, self.line_bytes),
            mac: self.macs.get(&addr).copied(),
            seq: self.seqs.get(&addr).copied(),
        }
    }

    /// Replay, step 2: restore a stale snapshot (ciphertext + MAC +
    /// spilled sequence number).
    pub fn attack_replay(&mut self, snapshot: &LineSnapshot) {
        self.mem.write_bytes(snapshot.addr, &snapshot.ciphertext);
        match snapshot.mac {
            Some(tag) => {
                self.macs.insert(snapshot.addr, tag);
            }
            None => {
                self.macs.remove(&snapshot.addr);
            }
        }
        match snapshot.seq {
            Some(seq) => {
                self.seqs.insert(snapshot.addr, seq);
            }
            None => {
                self.seqs.remove(&snapshot.addr);
            }
        }
    }

    /// A weaker replay that restores only the ciphertext and MAC — the
    /// sequence number inside the security boundary has moved on, so
    /// decryption uses the wrong pad and yields garbage.
    pub fn attack_replay_data_only(&mut self, snapshot: &LineSnapshot) {
        self.mem.write_bytes(snapshot.addr, &snapshot.ciphertext);
        match snapshot.mac {
            Some(tag) => {
                self.macs.insert(snapshot.addr, tag);
            }
            None => {
                self.macs.remove(&snapshot.addr);
            }
        }
    }

    /// Reads a line post-attack and classifies the result against the
    /// plaintext the program expects there.
    pub fn probe_attack(&self, addr: u64, expected: &[u8]) -> AttackOutcome {
        match self.read_line(addr) {
            Err(_) => AttackOutcome::Detected,
            Ok(plain) if plain == expected => AttackOutcome::Undetected,
            Ok(_) => AttackOutcome::GarbagePlaintext,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sm(integrity: IntegrityMode) -> SecureMemory {
        let mut m = SecureMemory::new(
            CipherKind::Des,
            &[0x13, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1],
            SeedScheme::PaperAdditive,
            128,
            integrity,
        );
        m.add_region("code", 0x0, 0x1_0000, LineProtection::OtpStatic)
            .unwrap();
        m.add_region("input", 0x2_0000, 0x3_0000, LineProtection::Plaintext)
            .unwrap();
        m
    }

    #[test]
    fn dynamic_write_read_roundtrip() {
        let mut m = sm(IntegrityMode::None);
        let line = vec![0x42u8; 128];
        m.write_line(0x4_0000, &line).unwrap();
        assert_eq!(m.read_line(0x4_0000).unwrap(), line);
    }

    #[test]
    fn ciphertext_differs_from_plaintext_and_rotates_per_write() {
        let mut m = sm(IntegrityMode::None);
        let line = vec![0u8; 128];
        m.write_line(0x4_0000, &line).unwrap();
        let ct1 = m.raw_ciphertext(0x4_0000, 128);
        m.write_line(0x4_0000, &line).unwrap();
        let ct2 = m.raw_ciphertext(0x4_0000, 128);
        assert_ne!(ct1, line, "data must be encrypted");
        assert_ne!(ct1, ct2, "same data re-written must produce fresh ciphertext");
        assert_eq!(m.sequence_number(0x4_0000), 2);
        assert_eq!(m.read_line(0x4_0000).unwrap(), line);
    }

    #[test]
    fn static_region_uses_constant_seed() {
        let mut m = sm(IntegrityMode::None);
        let line = vec![7u8; 128];
        m.write_line(0x100 * 128, &line).unwrap(); // inside "code"
        let ct1 = m.raw_ciphertext(0x100 * 128, 128);
        m.write_line(0x100 * 128, &line).unwrap();
        let ct2 = m.raw_ciphertext(0x100 * 128, 128);
        assert_eq!(ct1, ct2, "static seeds are constant per address");
        assert_eq!(m.sequence_number(0x100 * 128), 0);
    }

    #[test]
    fn same_plaintext_different_addresses_different_ciphertext() {
        // The paper's repetition-hiding property (§3.4 Advantage).
        let mut m = sm(IntegrityMode::None);
        let line = vec![0xEEu8; 128];
        m.write_line(0x4_0000, &line).unwrap();
        m.write_line(0x4_0080, &line).unwrap();
        assert_ne!(
            m.raw_ciphertext(0x4_0000, 128),
            m.raw_ciphertext(0x4_0080, 128)
        );
    }

    #[test]
    fn plaintext_region_is_stored_raw() {
        let mut m = sm(IntegrityMode::None);
        let line = vec![0x11u8; 128];
        m.write_line(0x2_0000, &line).unwrap();
        assert_eq!(m.raw_ciphertext(0x2_0000, 128), line);
    }

    #[test]
    fn byte_granular_access_spans_lines() {
        let mut m = sm(IntegrityMode::None);
        let data: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        m.write_bytes(0x4_0060, &data).unwrap(); // straddles 0x40000/0x40080/0x40100
        assert_eq!(m.read_bytes(0x4_0060, 200).unwrap(), data);
    }

    #[test]
    fn misaligned_line_ops_error() {
        let mut m = sm(IntegrityMode::None);
        assert_eq!(
            m.write_line(0x4_0001, &[0u8; 128]).unwrap_err(),
            SecureMemoryError::Misaligned { addr: 0x4_0001 }
        );
        assert!(matches!(
            m.read_line(0x4_0001).unwrap_err(),
            SecureMemoryError::Misaligned { .. }
        ));
    }

    #[test]
    fn spoofing_is_detected_by_mac() {
        let mut m = sm(IntegrityMode::Mac);
        let line = vec![0x55u8; 128];
        m.write_line(0x4_0000, &line).unwrap();
        m.attack_spoof(0x4_0000, &[0xFF; 16]);
        assert_eq!(m.probe_attack(0x4_0000, &line), AttackOutcome::Detected);
    }

    #[test]
    fn spoofing_without_integrity_yields_garbage_not_plaintext() {
        let mut m = sm(IntegrityMode::None);
        let line = vec![0x55u8; 128];
        m.write_line(0x4_0000, &line).unwrap();
        m.attack_spoof(0x4_0000, &[0xFF; 128]);
        assert_eq!(
            m.probe_attack(0x4_0000, &line),
            AttackOutcome::GarbagePlaintext
        );
    }

    #[test]
    fn splicing_is_detected_by_address_bound_mac() {
        let mut m = sm(IntegrityMode::Mac);
        let a = vec![0xAAu8; 128];
        let b = vec![0xBBu8; 128];
        m.write_line(0x4_0000, &a).unwrap();
        m.write_line(0x4_0080, &b).unwrap();
        m.attack_splice(0x4_0000, 0x4_0080);
        assert_eq!(m.probe_attack(0x4_0080, &b), AttackOutcome::Detected);
    }

    #[test]
    fn replay_defeats_plain_mac_but_not_the_root() {
        let old = vec![0x01u8; 128];
        let new = vec![0x02u8; 128];
        // Plain MAC mode: a full replay (ciphertext + MAC + spilled
        // sequence number) succeeds, matching the paper's deferral of
        // replay defence to hash trees.
        let mut m = sm(IntegrityMode::Mac);
        m.write_line(0x4_0000, &old).unwrap();
        let snap = m.attack_snapshot(0x4_0000);
        m.write_line(0x4_0000, &new).unwrap();
        m.attack_replay(&snap);
        assert_eq!(m.probe_attack(0x4_0000, &old), AttackOutcome::Undetected);

        // MacTree mode: the on-chip root catches it.
        let mut m = sm(IntegrityMode::MacTree);
        m.write_line(0x4_0000, &old).unwrap();
        let snap = m.attack_snapshot(0x4_0000);
        m.write_line(0x4_0000, &new).unwrap();
        m.attack_replay(&snap);
        assert_eq!(m.probe_attack(0x4_0000, &old), AttackOutcome::Detected);
    }

    #[test]
    fn data_only_replay_yields_garbage_thanks_to_onchip_sequence() {
        // If the adversary cannot also roll back the sequence number
        // (it stayed inside the security boundary), the stale ciphertext
        // decrypts under the wrong pad.
        let old = vec![0x01u8; 128];
        let new = vec![0x02u8; 128];
        let mut m = sm(IntegrityMode::Mac);
        m.write_line(0x4_0000, &old).unwrap();
        let snap = m.attack_snapshot(0x4_0000);
        m.write_line(0x4_0000, &new).unwrap();
        m.attack_replay_data_only(&snap);
        assert_eq!(
            m.probe_attack(0x4_0000, &old),
            AttackOutcome::GarbagePlaintext
        );
    }

    #[test]
    fn honest_reads_pass_under_all_integrity_modes() {
        for mode in [IntegrityMode::None, IntegrityMode::Mac, IntegrityMode::MacTree] {
            let mut m = sm(mode);
            let line = vec![0x5Au8; 128];
            m.write_line(0x4_0000, &line).unwrap();
            m.write_line(0x4_0080, &line).unwrap();
            m.write_line(0x4_0000, &line).unwrap();
            assert_eq!(m.read_line(0x4_0000).unwrap(), line, "mode {mode:?}");
        }
    }

    #[test]
    fn structured_seed_scheme_roundtrips_too() {
        let mut m = SecureMemory::new(
            CipherKind::Aes128,
            &[9u8; 16],
            SeedScheme::Structured,
            128,
            IntegrityMode::Mac,
        );
        let line = vec![0xC3u8; 128];
        m.write_line(0x8000, &line).unwrap();
        m.write_line(0x8000, &line).unwrap();
        assert_eq!(m.read_line(0x8000).unwrap(), line);
    }

    #[test]
    fn install_ciphertext_then_read_via_static_protection() {
        // Simulate the loader: vendor encrypts with the same key/scheme.
        let key = [0x13u8, 0x34, 0x57, 0x79, 0x9B, 0xBC, 0xDF, 0xF1];
        let mut m = sm(IntegrityMode::None);
        let plain = vec![0x77u8; 128];
        let vendor_otp = OneTimePad::new(CipherKind::Des.instantiate(&key));
        let addr = 0x80u64 * 128; // inside the "code" static region
        let ct = vendor_otp.encrypt(addr, &plain); // PaperAdditive, seq 0
        m.install_ciphertext_line(addr, &ct).unwrap();
        assert_eq!(m.read_line(addr).unwrap(), plain);
    }
}
