//! Configuration types for the secure memory controller.

use padlock_crypto::CryptoUnitModel;
use std::fmt;

/// How the SNC is organised on chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SncOrganization {
    /// Fully associative (the paper's default; §4 argues conflict misses
    /// should be minimised).
    FullyAssociative,
    /// Set-associative with the given number of ways (Fig. 7 uses 32).
    SetAssociative(u32),
}

impl fmt::Display for SncOrganization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SncOrganization::FullyAssociative => write!(f, "fully-assoc"),
            SncOrganization::SetAssociative(w) => write!(f, "{w}-way"),
        }
    }
}

/// How the SNC handles capacity pressure (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SncPolicy {
    /// Once full, later lines are encrypted directly (XOM-style) and never
    /// gain sequence numbers.
    NoReplacement,
    /// LRU replacement; evicted sequence numbers are encrypted and spilled
    /// to memory, and query misses fetch them back (Algorithm 1).
    Lru,
}

impl fmt::Display for SncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SncPolicy::NoReplacement => write!(f, "no-repl"),
            SncPolicy::Lru => write!(f, "LRU"),
        }
    }
}

/// Sequence Number Cache configuration.
///
/// # Examples
///
/// ```
/// use padlock_core::SncConfig;
///
/// let snc = SncConfig::paper_default();
/// assert_eq!(snc.entries(), 32 * 1024); // 64KB / 2B, covering 4MB
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SncConfig {
    /// Total SNC capacity in bytes (paper sweeps 32/64/128KB).
    pub capacity_bytes: usize,
    /// Bytes per sequence number (paper: 2).
    pub entry_bytes: usize,
    /// Organisation (fully associative or N-way).
    pub organization: SncOrganization,
    /// Management policy.
    pub policy: SncPolicy,
    /// The L2 line size each entry covers (paper: 128).
    pub covered_line_bytes: usize,
}

impl SncConfig {
    /// The paper's default: 64KB, 2-byte entries, fully associative, LRU.
    pub fn paper_default() -> Self {
        Self {
            capacity_bytes: 64 * 1024,
            entry_bytes: 2,
            organization: SncOrganization::FullyAssociative,
            policy: SncPolicy::Lru,
            covered_line_bytes: 128,
        }
    }

    /// Number of sequence-number entries.
    pub fn entries(&self) -> usize {
        self.capacity_bytes / self.entry_bytes
    }

    /// Bytes of memory covered by a full SNC.
    pub fn coverage_bytes(&self) -> usize {
        self.entries() * self.covered_line_bytes
    }

    /// Builder: set capacity.
    pub fn with_capacity(mut self, bytes: usize) -> Self {
        self.capacity_bytes = bytes;
        self
    }

    /// Builder: set organisation.
    pub fn with_organization(mut self, org: SncOrganization) -> Self {
        self.organization = org;
        self
    }

    /// Builder: set policy.
    pub fn with_policy(mut self, policy: SncPolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl Default for SncConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// How seeds are derived from (virtual address, sequence number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SeedScheme {
    /// The paper's arithmetic: `seed = VA + seq` (§3.4.2, equations 4–7).
    /// Neighbouring lines can collide with high sequence numbers; kept as
    /// the default for fidelity.
    #[default]
    PaperAdditive,
    /// `seed = VA | (seq << 48)`: address and sequence number occupy
    /// disjoint bit fields, removing cross-line pad collisions.
    Structured,
}

impl SeedScheme {
    /// Computes the 64-bit base seed for a line.
    pub fn seed(self, line_va: u64, seq: u16) -> u64 {
        match self {
            SeedScheme::PaperAdditive => line_va.wrapping_add(u64::from(seq)),
            SeedScheme::Structured => (line_va & 0x0000_FFFF_FFFF_FFFF) | (u64::from(seq) << 48),
        }
    }
}

/// Which machine the backend models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecurityMode {
    /// No cryptography: the baseline processor.
    Insecure,
    /// XOM: encryption/decryption in series with every off-chip transfer.
    Xom,
    /// One-time-pad encryption with a Sequence Number Cache.
    Otp {
        /// SNC configuration.
        snc: SncConfig,
    },
}

impl SecurityMode {
    /// Convenience: OTP with the paper's default 64KB fully associative
    /// LRU SNC.
    pub fn otp_lru_64k() -> Self {
        SecurityMode::Otp {
            snc: SncConfig::paper_default(),
        }
    }

    /// Convenience: OTP with a no-replacement SNC of the default size.
    pub fn otp_norepl_64k() -> Self {
        SecurityMode::Otp {
            snc: SncConfig::paper_default().with_policy(SncPolicy::NoReplacement),
        }
    }
}

impl fmt::Display for SecurityMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityMode::Insecure => write!(f, "baseline"),
            SecurityMode::Xom => write!(f, "XOM"),
            SecurityMode::Otp { snc } => write!(
                f,
                "SNC-{} {}KB {}",
                snc.policy,
                snc.capacity_bytes / 1024,
                snc.organization
            ),
        }
    }
}

/// Full configuration of the [`crate::SecureBackend`].
#[derive(Debug, Clone)]
pub struct SecureBackendConfig {
    /// Which machine to model.
    pub mode: SecurityMode,
    /// The crypto unit latency model (50-cycle default; Fig. 10 uses 102).
    pub crypto: CryptoUnitModel,
    /// L2 line size in bytes.
    pub line_bytes: u32,
    /// DRAM access latency (paper: 100).
    pub mem_latency: u64,
    /// Channel occupancy per transaction.
    pub mem_occupancy: u64,
    /// Independent line-address-interleaved DRAM channels. Line `i`
    /// lives on channel `i % mem_channels` — the same interleaving the
    /// SNC shards use, so an `N`-channel, `N`-shard machine pairs each
    /// shard with its own memory controller. `1` is the paper's single
    /// shared channel.
    pub mem_channels: usize,
    /// DRAM banks per channel. `1` (the paper default) is the flat
    /// uniform-latency model; with more banks each access is charged
    /// row-buffer timing (`row_hit_cycles` on an open-row hit,
    /// `row_conflict_cycles` on a precharge + activate) against its
    /// bank's busy timeline, so locality inside a channel matters and
    /// concurrent misses to different banks overlap their activates.
    pub mem_banks: usize,
    /// Latency of a banked access that finds its row open. Ignored at
    /// `mem_banks = 1`.
    pub row_hit_cycles: u64,
    /// Latency of a banked access that must precharge the open row and
    /// activate its own first. Ignored at `mem_banks = 1`.
    pub row_conflict_cycles: u64,
    /// Latency of every banked access under the closed-page policy
    /// (activate + column access against an auto-precharged bank).
    /// Ignored at `mem_banks = 1` or under the open-page policy.
    pub row_closed_cycles: u64,
    /// Whether banks leave rows open behind accesses (`Open`, the
    /// default — row hits possible, conflicts pay a precharge) or
    /// auto-precharge after every access (`Closed` — no hits, but
    /// every access costs the cheaper `row_closed_cycles`). Ignored at
    /// `mem_banks = 1`.
    pub page_policy: padlock_mem::PagePolicy,
    /// The order the drain scheduler issues a window's phase-one
    /// memory accesses in. `Fifo` (the default) is the paper's strict
    /// arrival order; `RowFirst` reorders FR-FCFS style so
    /// same-`(channel, bank, row)` misses issue back-to-back and
    /// row-mates become open-row hits. Classification, SNC probes, and
    /// retirement stay in arrival order either way, so traffic and
    /// event counters are order-invariant — only completion cycles
    /// move.
    pub drain_order: padlock_mem::DrainOrder,
    /// Write-buffer entries (per channel).
    pub write_buffer_entries: usize,
    /// Whether reads of lines never written back bypass the SNC
    /// (sequence number is known to be zero). See DESIGN.md §3.
    pub clean_lines_bypass: bool,
    /// Seed derivation scheme (timing-neutral; recorded for the
    /// functional layer and reports).
    pub seed_scheme: SeedScheme,
    /// Maximum in-flight miss transactions (MSHR entries) the
    /// controller's transaction engine overlaps within one drain
    /// window. `1` models the paper's blocking controller exactly.
    pub max_inflight: usize,
    /// Number of address-interleaved SNC shards (each with its own
    /// recency state and port). `1` is the paper's single SNC.
    pub snc_shards: usize,
    /// One-time pads coalesced per crypto issue slot when the engine
    /// batches pad precomputation for overlapping misses. Irrelevant at
    /// `max_inflight = 1` (a lone pad always issues immediately).
    pub crypto_pipeline_width: u64,
    /// Cycles an SNC probe occupies its shard's lookup port. Models
    /// contention between concurrent in-flight misses only: an
    /// uncontended probe adds no latency, matching the paper's
    /// assumption that the SNC is searched in parallel with L2.
    pub snc_port_cycles: u64,
}

impl SecureBackendConfig {
    /// The paper's machine parameters for the given mode.
    pub fn paper(mode: SecurityMode) -> Self {
        Self {
            mode,
            crypto: CryptoUnitModel::paper_default(),
            line_bytes: 128,
            mem_latency: 100,
            mem_occupancy: 8,
            mem_channels: 1,
            mem_banks: 1,
            row_hit_cycles: padlock_mem::DEFAULT_ROW_HIT_CYCLES,
            row_conflict_cycles: padlock_mem::DEFAULT_ROW_CONFLICT_CYCLES,
            row_closed_cycles: padlock_mem::DEFAULT_ROW_CLOSED_CYCLES,
            page_policy: padlock_mem::PagePolicy::Open,
            drain_order: padlock_mem::DrainOrder::Fifo,
            write_buffer_entries: 8,
            clean_lines_bypass: true,
            seed_scheme: SeedScheme::PaperAdditive,
            max_inflight: 1,
            snc_shards: 1,
            crypto_pipeline_width: 4,
            snc_port_cycles: 2,
        }
    }

    /// Builder: use the 102-cycle crypto unit of Fig. 10.
    pub fn with_slow_crypto(mut self) -> Self {
        self.crypto = CryptoUnitModel::paper_slow();
        self
    }

    /// Builder: set an arbitrary crypto model.
    pub fn with_crypto(mut self, crypto: CryptoUnitModel) -> Self {
        self.crypto = crypto;
        self
    }

    /// Builder: set the number of in-flight miss transactions the
    /// engine overlaps.
    pub fn with_max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n;
        self
    }

    /// Builder: set the number of address-interleaved SNC shards.
    pub fn with_snc_shards(mut self, n: usize) -> Self {
        self.snc_shards = n;
        self
    }

    /// Builder: set the number of line-interleaved DRAM channels.
    pub fn with_mem_channels(mut self, n: usize) -> Self {
        self.mem_channels = n;
        self
    }

    /// Builder: set the number of DRAM banks per channel (`1` = the
    /// paper's flat model).
    pub fn with_mem_banks(mut self, n: usize) -> Self {
        self.mem_banks = n;
        self
    }

    /// Builder: set the row-buffer hit and conflict latencies used when
    /// `mem_banks > 1`. The closed-page latency is clamped into the new
    /// `[hit, conflict]` band, mirroring
    /// [`padlock_mem::BankConfig::with_row_cycles`].
    pub fn with_row_cycles(mut self, hit: u64, conflict: u64) -> Self {
        self.row_hit_cycles = hit;
        self.row_conflict_cycles = conflict;
        if hit <= conflict {
            self.row_closed_cycles = self.row_closed_cycles.clamp(hit, conflict);
        }
        self
    }

    /// Builder: set the bank page policy used when `mem_banks > 1`.
    pub fn with_page_policy(mut self, policy: padlock_mem::PagePolicy) -> Self {
        self.page_policy = policy;
        self
    }

    /// Builder: set the drain scheduler's issue order.
    pub fn with_drain_order(mut self, order: padlock_mem::DrainOrder) -> Self {
        self.drain_order = order;
        self
    }

    /// The per-channel bank configuration this machine implies: the row
    /// size is derived from the line interleave
    /// ([`padlock_mem::ROW_LINES`] lines per row).
    pub fn bank_config(&self) -> padlock_mem::BankConfig {
        padlock_mem::BankConfig {
            banks: self.mem_banks,
            row_hit_cycles: self.row_hit_cycles,
            row_conflict_cycles: self.row_conflict_cycles,
            row_closed_cycles: self.row_closed_cycles,
            page_policy: self.page_policy,
            row_bytes: u64::from(self.line_bytes) * padlock_mem::ROW_LINES,
        }
    }

    /// Builder: set the SNC port occupancy per probe.
    pub fn with_snc_port_cycles(mut self, cycles: u64) -> Self {
        self.snc_port_cycles = cycles;
        self
    }

    /// A human-readable security/fabric label for this configuration:
    /// the mode's display name plus shard/channel/bank/order/MLP
    /// suffixes for every knob moved off its paper default. This is the
    /// string [`crate::SecureBackend`] reports through
    /// `MemoryBackend::label`, and machine- and server-level labels
    /// build on it.
    pub fn label(&self) -> String {
        let mut label = self.mode.to_string();
        if self.snc_shards > 1 {
            label.push_str(&format!(" x{} shards", self.snc_shards));
        }
        if self.mem_channels > 1 {
            label.push_str(&format!(" x{}ch", self.mem_channels));
        }
        if self.mem_banks > 1 {
            label.push_str(&format!(" x{}bk", self.mem_banks));
            if self.page_policy == padlock_mem::PagePolicy::Closed {
                label.push_str("-cp");
            }
        }
        if self.drain_order == padlock_mem::DrainOrder::RowFirst {
            label.push_str(" frfcfs");
        }
        if self.max_inflight > 1 {
            label.push_str(&format!(" mlp{}", self.max_inflight));
        }
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_snc_covers_4mb() {
        let snc = SncConfig::paper_default();
        assert_eq!(snc.entries(), 32768);
        assert_eq!(snc.coverage_bytes(), 4 << 20);
    }

    #[test]
    fn snc_builders_compose() {
        let snc = SncConfig::paper_default()
            .with_capacity(32 * 1024)
            .with_organization(SncOrganization::SetAssociative(32))
            .with_policy(SncPolicy::NoReplacement);
        assert_eq!(snc.entries(), 16384);
        assert_eq!(snc.organization, SncOrganization::SetAssociative(32));
        assert_eq!(snc.policy, SncPolicy::NoReplacement);
    }

    #[test]
    fn additive_seed_matches_paper_equations() {
        // seed = VA + seq (equation 5/7 semantics).
        assert_eq!(SeedScheme::PaperAdditive.seed(0x4000, 3), 0x4003);
    }

    #[test]
    fn additive_seed_collision_exists_structured_avoids_it() {
        // Line A at VA 0x1000 with seq 0x80 collides with line B at
        // VA 0x1080 with seq 0 under the paper scheme...
        let a = SeedScheme::PaperAdditive.seed(0x1000, 0x80);
        let b = SeedScheme::PaperAdditive.seed(0x1080, 0);
        assert_eq!(a, b);
        // ...but not under the structured scheme.
        let a = SeedScheme::Structured.seed(0x1000, 0x80);
        let b = SeedScheme::Structured.seed(0x1080, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn mode_display_labels() {
        assert_eq!(SecurityMode::Insecure.to_string(), "baseline");
        assert_eq!(SecurityMode::Xom.to_string(), "XOM");
        assert_eq!(
            SecurityMode::otp_lru_64k().to_string(),
            "SNC-LRU 64KB fully-assoc"
        );
        assert_eq!(
            SecurityMode::otp_norepl_64k().to_string(),
            "SNC-no-repl 64KB fully-assoc"
        );
    }

    #[test]
    fn backend_config_builders() {
        let cfg = SecureBackendConfig::paper(SecurityMode::Xom).with_slow_crypto();
        assert_eq!(cfg.crypto.pipeline_latency(), 102);
        assert_eq!(cfg.mem_latency, 100);
        assert!(cfg.clean_lines_bypass);
        // Paper defaults model the blocking single-controller machine
        // over flat (bankless) DRAM.
        assert_eq!(cfg.max_inflight, 1);
        assert_eq!(cfg.snc_shards, 1);
        assert_eq!(cfg.mem_channels, 1);
        assert_eq!(cfg.mem_banks, 1);
        assert!(cfg.bank_config().is_flat());
    }

    #[test]
    fn engine_builders_compose() {
        let cfg = SecureBackendConfig::paper(SecurityMode::otp_lru_64k())
            .with_max_inflight(8)
            .with_snc_shards(4)
            .with_mem_channels(4)
            .with_snc_port_cycles(12)
            .with_mem_banks(8)
            .with_row_cycles(55, 150);
        assert_eq!(cfg.max_inflight, 8);
        assert_eq!(cfg.snc_shards, 4);
        assert_eq!(cfg.mem_channels, 4);
        assert_eq!(cfg.snc_port_cycles, 12);
        assert_eq!(cfg.mem_banks, 8);
        let banks = cfg.bank_config();
        assert!(!banks.is_flat());
        assert_eq!(banks.row_hit_cycles, 55);
        assert_eq!(banks.row_conflict_cycles, 150);
        // 16 x 128B lines per row.
        assert_eq!(banks.row_bytes, 2048);
    }

    #[test]
    fn scheduler_knobs_default_to_the_paper_machine() {
        use padlock_mem::{DrainOrder, PagePolicy};
        let cfg = SecureBackendConfig::paper(SecurityMode::otp_lru_64k());
        assert_eq!(cfg.drain_order, DrainOrder::Fifo);
        assert_eq!(cfg.page_policy, PagePolicy::Open);
        assert_eq!(cfg.row_closed_cycles, padlock_mem::DEFAULT_ROW_CLOSED_CYCLES);
        let cfg = cfg
            .with_drain_order(DrainOrder::RowFirst)
            .with_page_policy(PagePolicy::Closed)
            .with_mem_banks(4);
        assert_eq!(cfg.drain_order, DrainOrder::RowFirst);
        assert_eq!(cfg.bank_config().page_policy, PagePolicy::Closed);
        // Tightening the band drags the closed latency along.
        let tight = cfg.with_row_cycles(10, 20);
        assert_eq!(tight.row_closed_cycles, 20);
        assert_eq!(tight.bank_config().row_closed_cycles, 20);
    }
}
